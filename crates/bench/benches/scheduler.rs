//! Criterion micro-benchmark: Unified Scheduler (Algorithm 1) planning cost
//! as model depth grows. Planning happens once per training job, but the
//! phase-2 peak-memory analysis must stay cheap even for hundred-layer,
//! 10⁵-page models — this guards the incremental-timeline complexity.

use angel_core::scheduler::{input_from_trace, oracle, UnifiedScheduler};
use angel_core::Tracer;
use angel_hw::GIB;
use angel_model::TransformerConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1_schedule");
    for layers in [8usize, 32, 96] {
        let cfg = TransformerConfig::gpt3_13b().with_layers(layers);
        let trace = Tracer::default().trace(&cfg, 4, true);
        let input = input_from_trace(&trace, 4 * 1024 * 1024, 8, 30 * GIB);
        group.bench_with_input(BenchmarkId::from_parameter(layers), &input, |b, input| {
            b.iter(|| black_box(UnifiedScheduler::default().schedule(input).unwrap()))
        });
    }
    group.finish();
}

/// Optimized segment-tree planner vs. the retained per-page oracle on the
/// same input — the criterion-visible version of the `planning_cost`
/// binary's headline comparison (which records `BENCH_plan.json`).
fn bench_scheduler_vs_oracle(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1_vs_oracle");
    group.sample_size(10);
    let cfg = TransformerConfig::gpt3_13b().with_layers(32);
    let trace = Tracer::default().trace(&cfg, 4, true);
    let input = input_from_trace(&trace, 4 * 1024 * 1024, 8, 30 * GIB);
    group.bench_with_input(BenchmarkId::new("optimized", 32), &input, |b, input| {
        b.iter(|| black_box(UnifiedScheduler::default().schedule(input).unwrap()))
    });
    group.bench_with_input(BenchmarkId::new("oracle", 32), &input, |b, input| {
        b.iter(|| black_box(oracle::schedule(&UnifiedScheduler::default(), input).unwrap()))
    });
    group.finish();
}

fn bench_tracer(c: &mut Criterion) {
    let cfg = TransformerConfig::gpt3_13b().with_layers(40);
    c.bench_function("tracer_symbolic_iteration", |b| {
        b.iter(|| black_box(Tracer::default().trace(&cfg, 4, true)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scheduler, bench_scheduler_vs_oracle, bench_tracer
}
criterion_main!(benches);
