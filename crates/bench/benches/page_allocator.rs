//! Criterion micro-benchmark: Angel-PTM's page allocator vs the baseline
//! allocators (best-fit/BFC, chunk-based, naive first-fit) on a realistic
//! offload trace — repeated allocate/release of a transformer layer's
//! model-state tensors, the workload Section 3.2 identifies as the
//! fragmentation driver.

use angel_core::PageAllocator;
use angel_hw::{DeviceId, MIB};
use angel_memsim::{AddressAllocator, BestFitAllocator, ChunkAllocator, NaiveAllocator};
use angel_model::{model_inventory, TensorClass, TransformerConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// The tensor sizes of a few GPT layers (model states only).
fn trace() -> Vec<u64> {
    let cfg = TransformerConfig::gpt3_1_7b().with_layers(4);
    model_inventory(&cfg, 1)
        .into_iter()
        .filter(|t| t.class != TensorClass::Activation)
        .map(|t| t.bytes)
        .collect()
}

fn bench_allocators(c: &mut Criterion) {
    let sizes = trace();
    let total: u64 = sizes.iter().sum();
    let capacity = total * 2;
    let mut group = c.benchmark_group("alloc_release_cycle");

    group.bench_function(BenchmarkId::new("page", "4MiB"), |b| {
        b.iter(|| {
            let mut a = PageAllocator::with_page_size(4 * MIB, false);
            a.add_pool(DeviceId::gpu(0), capacity).unwrap();
            let ids: Vec<_> = sizes
                .iter()
                .map(|&s| a.alloc_tensor_raw(s, DeviceId::gpu(0)).unwrap())
                .collect();
            for id in ids {
                a.release_tensor(id).unwrap();
            }
            black_box(a.stats(DeviceId::gpu(0)))
        })
    });

    group.bench_function("best_fit", |b| {
        b.iter(|| {
            let mut a = BestFitAllocator::new(capacity);
            let allocs: Vec<_> = sizes.iter().map(|&s| a.allocate(s).unwrap()).collect();
            for x in allocs {
                a.free(x);
            }
            black_box(a.stats())
        })
    });

    group.bench_function("naive_first_fit", |b| {
        b.iter(|| {
            let mut a = NaiveAllocator::new(capacity);
            let allocs: Vec<_> = sizes.iter().map(|&s| a.allocate(s).unwrap()).collect();
            for x in allocs {
                a.free(x);
            }
            black_box(a.stats())
        })
    });

    group.bench_function("chunk", |b| {
        let chunk = *sizes.iter().max().unwrap();
        b.iter(|| {
            let mut a = ChunkAllocator::new(capacity * 2, chunk);
            let allocs: Vec<_> = sizes.iter().map(|&s| a.allocate(s).unwrap()).collect();
            for x in allocs {
                a.free(x);
            }
            black_box(a.stats())
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_allocators
}
criterion_main!(benches);
