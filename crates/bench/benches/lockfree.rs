//! Criterion micro-benchmark: gradient-push throughput of the Lock-Free
//! Updating Mechanism (Algorithm 2) vs a mutex-coupled synchronous update —
//! the microscopic version of Table 6's 2.96× claim: the compute loop must
//! never stall on the update path.

use angel_core::lockfree::{
    ClearPolicy, LayerState, LockFreeTrainer, MemoryStore, Optimizer, SgdOptimizer, StateStore,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const LAYERS: usize = 8;
const N: usize = 4096;

fn identity(x: f32) -> f32 {
    x
}

fn bench_push_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("gradient_path");

    // Lock-free: pushes return immediately; updates run on other threads.
    group.bench_function("lockfree_push", |b| {
        let initial = vec![vec![0.1f32; N]; LAYERS];
        let store = MemoryStore::new(initial.iter().cloned().map(LayerState::new).collect());
        let t = LockFreeTrainer::spawn(
            initial,
            Box::new(store),
            Box::new(SgdOptimizer { lr: 0.01 }),
            identity,
            ClearPolicy::OnUpdateReceipt,
        );
        let mut l = 0usize;
        b.iter(|| {
            t.push_grads(l % LAYERS, vec![0.5; N]);
            let _ = black_box(t.read_params(l % LAYERS));
            l += 1;
        });
        t.wait_quiescent();
    });

    // Synchronous coupling: every "push" runs fetch + update + offload
    // inline, the way training without Algorithm 2 must.
    group.bench_function("synchronous_update", |b| {
        let initial = vec![vec![0.1f32; N]; LAYERS];
        let mut store = MemoryStore::new(initial.iter().cloned().map(LayerState::new).collect());
        let mut opt = SgdOptimizer { lr: 0.01 };
        let mut l = 0usize;
        b.iter(|| {
            let layer = l % LAYERS;
            let mut state = store.fetch(layer).expect("in-memory store cannot fail");
            opt.update(layer, &mut state, &vec![0.5; N], 1);
            black_box(&state.p32[0]);
            store
                .offload(layer, state)
                .expect("in-memory store cannot fail");
            l += 1;
        });
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_push_throughput
}
criterion_main!(benches);
