//! Criterion micro-benchmark: discrete-event executor throughput — every
//! experiment harness replays schedules through it, so its cost bounds the
//! whole evaluation suite's runtime.

use angel_sim::{Resources, SimTask, Simulation, Work};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// A layered pipeline: move → gather → compute per step, like the engine's
/// lowering.
fn build(n_steps: usize) -> Simulation {
    let mut r = Resources::new();
    let gpu = r.add_compute("gpu");
    let h2d = r.add_link("h2d", 32_000_000_000, 10_000);
    let comm = r.add_compute("comm");
    let mut sim = Simulation::new(r);
    let mut prev: Option<usize> = None;
    for _ in 0..n_steps {
        let mv = sim.submit(SimTask::new(h2d, Work::Bytes(4 << 20)));
        let mut g = SimTask::new(comm, Work::Duration(50_000)).with_deps([mv]);
        if let Some(p) = prev {
            g = g.with_deps([p]);
        }
        let gid = sim.submit(g);
        let cid = sim.submit(SimTask::new(gpu, Work::Duration(200_000)).with_deps([gid]));
        prev = Some(cid);
    }
    sim
}

fn bench_executor(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_executor");
    for steps in [100usize, 1000, 10_000] {
        let sim = build(steps);
        group.bench_with_input(BenchmarkId::from_parameter(steps), &sim, |b, sim| {
            b.iter(|| black_box(sim.run()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_executor
}
criterion_main!(benches);
