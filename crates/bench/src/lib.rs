//! Shared report helpers for the experiment harnesses.
//!
//! Every `src/bin/*` binary reproduces one table or figure of the paper and
//! prints (a) a human-readable table with the paper's reference values next
//! to ours, and (b) a JSON record on request (`--json`), consumed when
//! regenerating EXPERIMENTS.md.

use serde::Serialize;

/// A reproduced experiment: id (e.g. "table5"), caption, and rows.
#[derive(Debug, Clone, Serialize)]
pub struct Experiment {
    pub id: &'static str,
    pub caption: &'static str,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table (calibration caveats,
    /// substitutions).
    pub notes: Vec<String>,
}

impl Experiment {
    pub fn new(id: &'static str, caption: &'static str, columns: &[&str]) -> Self {
        Self {
            id,
            caption,
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Render as an aligned text table (also valid GitHub markdown).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {} — {}\n\n", self.id, self.caption));
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.columns, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{:-<1$}|", "", w + 2));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        for note in &self.notes {
            out.push_str(&format!("\n> {note}\n"));
        }
        out
    }

    /// The JSON record for this experiment (the `--json` output).
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "id": self.id,
            "caption": self.caption,
            "columns": self.columns.clone(),
            "rows": self
                .rows
                .iter()
                .map(|r| serde_json::Value::from(r.clone()))
                .collect::<Vec<_>>(),
            "notes": self.notes.clone(),
        })
    }

    /// Print to stdout; with `--json` in argv also emit the JSON record.
    pub fn emit(&self) {
        println!("{}", self.render());
        if std::env::args().any(|a| a == "--json") {
            println!(
                "{}",
                serde_json::to_string_pretty(&self.to_json()).expect("serializable")
            );
        }
    }
}

/// Format a throughput number the way the paper's tables do.
pub fn fmt_sps(samples_per_sec: f64) -> String {
    format!("{samples_per_sec:.2}")
}

/// Format a parameter count in billions/trillions.
pub fn fmt_params(params: u64) -> String {
    if params >= 1_000_000_000_000 {
        format!("{:.2}T", params as f64 / 1e12)
    } else {
        format!("{:.1}B", params as f64 / 1e9)
    }
}

/// Format a speedup/ratio.
pub fn fmt_ratio(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_markdown() {
        let mut e = Experiment::new("t", "caption", &["a", "bee"]);
        e.row(vec!["1".into(), "2".into()]);
        e.row(vec!["longer".into(), "x".into()]);
        e.note("a note");
        let r = e.render();
        assert!(r.contains("## t — caption"));
        assert!(r.contains("| longer | x   |"));
        assert!(r.contains("> a note"));
        let lines: Vec<&str> = r.lines().filter(|l| l.starts_with('|')).collect();
        assert_eq!(lines.len(), 4); // header + sep + 2 rows
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut e = Experiment::new("t", "c", &["a", "b"]);
        e.row(vec!["1".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_params(1_700_000_000), "1.7B");
        assert_eq!(fmt_params(1_200_000_000_000), "1.20T");
        assert_eq!(fmt_sps(10.987), "10.99");
        assert_eq!(fmt_ratio(2.959), "2.96x");
    }

    /// The checked-in planning-cost baseline must stay parseable and keep
    /// its acceptance property: ≥10x speedup over the per-page oracle on
    /// the 10⁵-page synthetic input, with byte-identical schedules.
    /// Regenerate with `cargo run --release -p angel-bench --bin planning_cost`.
    #[test]
    fn bench_plan_baseline_parses() {
        let path = format!("{}/../../BENCH_plan.json", env!("CARGO_MANIFEST_DIR"));
        let raw = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing planning baseline {path}: {e}"));
        let doc: serde_json::Value = serde_json::from_str(&raw).expect("valid JSON");
        assert_eq!(doc["id"].as_str(), Some("plan_bench"));
        let inputs = doc["inputs"].as_array().expect("inputs array");
        assert!(!inputs.is_empty());
        for rec in inputs {
            for key in [
                "name",
                "layers",
                "steps",
                "pages",
                "optimized_ms",
                "oracle_ms",
            ] {
                assert!(!rec[key].is_null(), "record missing {key}");
            }
            assert_eq!(rec["identical"].as_bool(), Some(true));
        }
        let synth = inputs
            .iter()
            .find(|r| r["name"].as_str() == Some("synthetic-100k-pages"))
            .expect("synthetic acceptance row");
        assert!(synth["pages"].as_u64().unwrap() >= 100_000);
        assert!(synth["steps"].as_u64().unwrap() >= 192);
        let speedup = synth["speedup"].as_f64().unwrap();
        assert!(
            speedup >= 10.0,
            "recorded speedup regressed below the 10x acceptance bar: {speedup}"
        );
        // Incremental replanning: a warm session absorbing a single-layer
        // delta at the trillion-parameter scale must beat a from-scratch
        // schedule by ≥ 10x (the slack fast path lands orders beyond), with
        // byte-identity asserted by the bench itself and most of the model
        // reused.
        let replan = inputs
            .iter()
            .find(|r| r["name"].as_str() == Some("replan-single-layer-gpt3-1t"))
            .expect("incremental replan acceptance row");
        let inc = replan["speedup"].as_f64().unwrap();
        assert!(
            inc >= 10.0,
            "incremental replan regressed below the 10x acceptance bar: {inc}"
        );
        assert_eq!(replan["identical"].as_bool(), Some(true));
        assert!(replan["layers_reused"].as_u64().unwrap() >= 500);
    }

    /// The checked-in allocation-churn baseline must stay parseable and
    /// keep its acceptance properties: the size-class pool hits in steady
    /// state, pooled page reuse beats the no-pool baseline on backed
    /// churn, and the compaction pass reclaims whole frames. Regenerate
    /// with `cargo run --release -p angel-bench --bin alloc_bench`.
    #[test]
    fn bench_alloc_baseline_parses() {
        let path = format!("{}/../../BENCH_alloc.json", env!("CARGO_MANIFEST_DIR"));
        let raw = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing alloc baseline {path}: {e}"));
        let doc: serde_json::Value = serde_json::from_str(&raw).expect("valid JSON");
        assert_eq!(doc["id"].as_str(), Some("alloc_bench"));

        let memsim = doc["memsim_churn"].as_array().expect("memsim_churn array");
        assert!(memsim.len() >= 5, "pooled + four baseline policies");
        let pooled = memsim
            .iter()
            .find(|r| r["name"].as_str() == Some("pooled (size-class reuse)"))
            .expect("pooled policy row");
        assert_eq!(pooled["failures"].as_u64(), Some(0));
        let hit_rate = pooled["hit_rate"].as_f64().unwrap();
        assert!(
            hit_rate > 0.9,
            "recurring-shape churn must hit in steady state: {hit_rate}"
        );

        let page = doc["page_churn"].as_array().expect("page_churn array");
        for mode in ["backed", "virtual"] {
            let rec = page
                .iter()
                .find(|r| r["mode"].as_str() == Some(mode))
                .unwrap_or_else(|| panic!("missing {mode} A/B row"));
            assert!(rec["pages_reused"].as_u64().unwrap() > 0);
            assert!(rec["pooled_ms"].as_f64().unwrap() > 0.0);
        }
        let backed = page
            .iter()
            .find(|r| r["mode"].as_str() == Some("backed"))
            .unwrap();
        let speedup = backed["speedup"].as_f64().unwrap();
        assert!(
            speedup >= 1.0,
            "pooled reuse must win backed steady-state churn: {speedup}"
        );

        let compaction = &doc["compaction"];
        let before = compaction["frag_ppm_before"].as_u64().unwrap();
        let after = compaction["frag_ppm_after"].as_u64().unwrap();
        assert!(before > 0, "fixture must actually fragment");
        assert!(after <= before, "compaction may not worsen fragmentation");
        assert!(
            compaction["pages_reclaimed"].as_u64().unwrap() >= 1,
            "consolidation must free at least one frame"
        );
    }

    /// The checked-in cluster-scaling baseline must stay parseable and keep
    /// its acceptance properties: a weak-scaling curve out to ≥1024
    /// simulated GPUs with per-point throughput, a verified composed mesh
    /// plan, and a ≥10⁶-page planner-stress record. Regenerate with
    /// `cargo run --release -p angel-bench --bin figure9_cluster`.
    #[test]
    fn bench_scale_baseline_parses() {
        let path = format!("{}/../../BENCH_scale.json", env!("CARGO_MANIFEST_DIR"));
        let raw = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing scaling baseline {path}: {e}"));
        let doc: serde_json::Value = serde_json::from_str(&raw).expect("valid JSON");
        assert_eq!(doc["id"].as_str(), Some("scale_bench"));
        let points = doc["points"].as_array().expect("points array");
        assert!(points.len() >= 2);
        for p in points {
            assert!(p["gpus"].as_u64().unwrap() >= 8);
            for curve in ["fixed", "scaled"] {
                assert!(p[curve]["samples_per_sec"].as_f64().unwrap() > 0.0);
                assert!(p[curve]["planning_ms"].as_f64().unwrap() >= 0.0);
                // Every point carries its SPMD certificate: the lowered
                // plan's collective traffic matched across the mesh.
                let spmd = &p[curve]["spmd"];
                assert_eq!(spmd["certified"].as_bool(), Some(true));
                assert!(spmd["reduced_events"].as_u64().unwrap() > 0);
                assert!(spmd["reduced_ms"].as_f64().unwrap() >= 0.0);
            }
        }
        let last = points.last().unwrap();
        assert!(
            last["gpus"].as_u64().unwrap() >= 1024,
            "curve must reach 1024 simulated GPUs"
        );
        // Strong scaling: the fixed model's global throughput grows with
        // the fleet.
        let first = points.first().unwrap();
        assert!(
            last["fixed"]["samples_per_sec"].as_f64().unwrap()
                > first["fixed"]["samples_per_sec"].as_f64().unwrap()
        );
        // Weak scaling: once collectives cross the NIC (≥2 servers), the
        // scaled curve holds ≥50% efficiency out to the largest fleet.
        let multi: Vec<f64> = points
            .iter()
            .filter(|p| p["servers"].as_u64().unwrap() >= 2)
            .map(|p| p["scaled"]["samples_per_sec"].as_f64().unwrap())
            .collect();
        if let (Some(first_multi), Some(last_multi)) = (multi.first(), multi.last()) {
            assert!(
                *last_multi >= 0.5 * first_multi,
                "weak-scaling efficiency regressed: {last_multi} vs {first_multi}"
            );
        }
        let composed = &doc["composed"];
        assert_eq!(composed["verified"].as_bool(), Some(true));
        assert!(composed["tasks"].as_u64().unwrap() > 0);
        // The composed mesh plan is certified both exhaustively and under
        // symmetry reduction; both passes are recorded.
        let spmd = &composed["spmd"];
        assert_eq!(spmd["certified"].as_bool(), Some(true));
        assert!(spmd["full_events"].as_u64().unwrap() > spmd["reduced_events"].as_u64().unwrap());
        let stress = &doc["planner_stress"];
        assert!(
            stress["pages"].as_u64().unwrap() >= 1_000_000,
            "planner stress input must stay ~10x BENCH_plan.json's max"
        );
        assert!(stress["planning_ms"].as_f64().unwrap() > 0.0);
    }

    /// The checked-in multi-job service baseline must stay parseable and
    /// keep its acceptance properties: a full (non-quick) open-loop sweep
    /// with throughput and TTFI percentiles per point, and a deterministic
    /// acceptance scenario with ≥3 concurrent admitted jobs, at least one
    /// preemption/resume cycle, and every admission certificate-backed.
    /// Regenerate with `cargo run --release -p angel-bench --bin service_bench`.
    #[test]
    fn bench_service_baseline_parses() {
        let path = format!("{}/../../BENCH_service.json", env!("CARGO_MANIFEST_DIR"));
        let raw = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing service baseline {path}: {e}"));
        let doc: serde_json::Value = serde_json::from_str(&raw).expect("valid JSON");
        assert_eq!(doc["id"].as_str(), Some("service_bench"));
        assert_eq!(
            doc["quick"].as_bool(),
            Some(false),
            "checked-in baseline must be the full sweep, not --quick"
        );
        let points = doc["points"].as_array().expect("points array");
        assert!(points.len() >= 3, "need a multi-point load sweep");
        for p in points {
            assert!(p["offered_load"].as_f64().unwrap() > 0.0);
            assert_eq!(
                p["submitted"].as_u64(),
                Some(p["admitted"].as_u64().unwrap() + p["rejected"].as_u64().unwrap()),
                "every submission must be decided"
            );
            assert_eq!(p["completed"].as_u64(), p["admitted"].as_u64());
            assert!(p["jobs_per_hour"].as_f64().unwrap() > 0.0);
            let p50 = p["ttfi_p50_ms"].as_f64().unwrap();
            let p99 = p["ttfi_p99_ms"].as_f64().unwrap();
            assert!(p99 >= p50, "TTFI p99 below p50: {p99} < {p50}");
            let util = p["utilization"].as_f64().unwrap();
            assert!(util > 0.0 && util <= 1.0);
            assert_eq!(p["admissions_all_verified"].as_bool(), Some(true));
        }
        let acc = &doc["acceptance"];
        assert!(
            acc["max_concurrent"].as_u64().unwrap() >= 3,
            "acceptance scenario must time-share ≥3 admitted jobs"
        );
        assert!(acc["preemptions"].as_u64().unwrap() >= 1);
        assert!(acc["resumes"].as_u64().unwrap() >= 1);
        assert_eq!(acc["completed"].as_u64(), acc["admitted"].as_u64());
        assert_eq!(acc["admissions_all_verified"].as_bool(), Some(true));
        assert!(
            acc["obs_events"].as_u64().unwrap() >= 4,
            "job events must land on the Perfetto service track"
        );
        let events = acc["events"].as_array().expect("acceptance event log");
        // The event log itself proves the cycle: a preemption down to zero
        // servers followed by a resume of the same job.
        let suspended = events.iter().find(|e| {
            e["kind"].as_str() == Some("job_preempted") && e["to_servers"].as_u64() == Some(0)
        });
        let victim = suspended.expect("a full suspension in the log")["job"].as_u64();
        assert!(
            events.iter().any(|e| {
                e["kind"].as_str() == Some("job_resumed") && e["job"].as_u64() == victim
            }),
            "the suspended victim must resume"
        );
    }
}
