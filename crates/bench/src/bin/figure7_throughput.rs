//! Figure 7 — throughput of Angel-PTM vs DeepSpeed vs Megatron-LM on GPT
//! models from 1.7B to 120B, on 1×8 and 4×8 GPUs, normalized to DeepSpeed.
//!
//! The paper trains "a series of GPT models with the maximum batch size";
//! we sweep batch sizes per (system, model, cluster) and keep each system's
//! best, then normalize to DeepSpeed as the figure does. Expected shape:
//!
//! * 1×8: Megatron wins at 1.7B (Angel ~2.4% behind), Angel wins everywhere
//!   else; Megatron OOMs from 30B; 55B runs only on Angel.
//! * 4×8: Megatron reaches 30B; 120B runs only on DeepSpeed and Angel;
//!   Angel best throughout.

use angel_baselines::{search_best_strategy, DeepSpeed};
use angel_bench::{fmt_sps, Experiment};
use angel_core::{Engine, EngineConfig, MetricsSnapshot, Recorder};
use angel_hw::ClusterSpec;
use angel_model::TransformerConfig;

const BATCHES: &[u64] = &[1, 2, 4, 8, 16, 32];

fn angel_best(model: &TransformerConfig, servers: usize, rec: &Recorder) -> Option<f64> {
    BATCHES
        .iter()
        .filter_map(|&b| {
            let cfg = EngineConfig::servers(servers).with_batch_size(b);
            Engine::initialize(model, &cfg).ok().map(|e| {
                e.with_recorder(rec.clone())
                    .train_iteration()
                    .samples_per_sec
            })
        })
        .fold(None, |best, s| Some(best.map_or(s, |b: f64| b.max(s))))
}

fn deepspeed_best(model: &TransformerConfig, servers: usize) -> Option<f64> {
    BATCHES
        .iter()
        .filter_map(|&b| {
            DeepSpeed::new(ClusterSpec::a100_tencent(servers), b)
                .iter_stats(model)
                .map(|s| s.samples_per_sec)
        })
        .fold(None, |best, s| Some(best.map_or(s, |b: f64| b.max(s))))
}

fn megatron_best(model: &TransformerConfig, servers: usize) -> Option<f64> {
    BATCHES
        .iter()
        .filter_map(|&b| {
            search_best_strategy(model, &ClusterSpec::a100_tencent(servers), b)
                .map(|e| e.samples_per_sec)
        })
        .fold(None, |best, s| Some(best.map_or(s, |b: f64| b.max(s))))
}

fn main() {
    // Table 4's "GPT3-30B" geometry computes to ~51B parameters (a paper
    // inconsistency — see EXPERIMENTS.md); for the Figure 7 sweep we use a
    // 30B model built from the Table 5 geometry so nominal and computed
    // sizes agree.
    let mut gpt30 = TransformerConfig::gpt3_28b().with_layers(37);
    gpt30.name = "GPT3-30B*".into();
    let models = [
        TransformerConfig::gpt3_1_7b(),
        TransformerConfig::gpt3_13b(),
        gpt30,
        TransformerConfig::gpt3_55b(),
        TransformerConfig::gpt3_120b(),
    ];

    // One recorder across the whole sweep: every Angel engine run feeds the
    // same metrics registry, and the aggregate snapshot is written next to
    // the tables as machine-readable JSON.
    let recorder = Recorder::enabled();

    for servers in [1usize, 4] {
        let mut table = Experiment::new(
            "figure7",
            if servers == 1 {
                "Throughput on 1×8 GPUs, normalized to DeepSpeed (bars of Figure 7 top)"
            } else {
                "Throughput on 4×8 GPUs, normalized to DeepSpeed (bars of Figure 7 bottom)"
            },
            &[
                "Model",
                "DeepSpeed",
                "Megatron-LM",
                "AngelPTM",
                "Angel/DS",
                "Angel/Megatron",
            ],
        );
        for m in &models {
            let ds = deepspeed_best(m, servers);
            let mg = megatron_best(m, servers);
            let an = angel_best(m, servers, &recorder);
            let norm = |x: Option<f64>| match (x, ds) {
                (Some(v), Some(d)) => format!("{:.2} ({})", v / d, fmt_sps(v)),
                (Some(v), None) => format!("— ({})", fmt_sps(v)),
                _ => "OOM".into(),
            };
            let ratio = |a: Option<f64>, b: Option<f64>| match (a, b) {
                (Some(a), Some(b)) => format!("{:.2}", a / b),
                _ => "—".into(),
            };
            table.row(vec![
                m.name.clone(),
                norm(ds),
                norm(mg),
                norm(an),
                ratio(an, ds),
                ratio(an, mg),
            ]);
        }
        table.note(
            "Cells show throughput normalized to DeepSpeed (absolute samples/s in \
             parentheses). Paper: Angel beats DeepSpeed by 35.4% avg / up to 70%, and \
             Megatron-LM by 38.9% avg / up to 88.9%; Megatron wins only at 1.7B on 1×8 \
             (Angel −2.4%).",
        );
        table.emit();
    }

    std::fs::create_dir_all("target").ok();
    let path = "target/figure7_metrics.json";
    let json = recorder.snapshot().to_json_string();
    std::fs::write(path, &json).expect("write metrics snapshot");
    let snap = MetricsSnapshot::from_json_str(&json).expect("snapshot round-trips");
    println!(
        "\nwrote {path}: {} Angel iterations simulated, {} sim tasks executed",
        snap.counters.get("engine.iterations").copied().unwrap_or(0),
        snap.counters
            .get("sim.tasks_executed")
            .copied()
            .unwrap_or(0),
    );
}
