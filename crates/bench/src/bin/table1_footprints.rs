//! Table 1 — memory footprints of a single Transformer layer under
//! mixed-precision training with Adam.
//!
//! Prints the per-operation footprint formulas evaluated at the paper's
//! reference geometry (GPT-3 175B: d_m = 12288, d_ffn = 49152, s = 2048) and
//! verifies the closed-form totals, plus the Section 2.2 whole-model figures
//! (648 / 162 / 1944 GB).

use angel_bench::Experiment;
use angel_hw::GIB;
use angel_model::footprint::{gpt_layer_footprint, ModelFootprint};
use angel_model::TransformerConfig;

fn main() {
    let d = 12288u64;
    let f = 49152u64;
    let b = 1u64;
    let s = 2048u64;
    let fp = gpt_layer_footprint(d, f, b, s);

    let mut table = Experiment::new(
        "table1",
        "Memory footprints of a single Transformer layer (b=1, s=2048, d_m=12288, d_ffn=49152)",
        &["Block", "Layer", "Params (B)", "Acts (B)", "Optims (B)"],
    );
    for op in &fp.ops {
        table.row(vec![
            op.block.to_string(),
            op.op.to_string(),
            op.params_bytes.to_string(),
            op.acts_bytes.to_string(),
            op.optims_bytes.to_string(),
        ]);
    }
    table.row(vec![
        "Total".into(),
        "(paper's simplified totals)".into(),
        format!("{} = 16d²+8d·dffn", fp.params_total),
        format!("{} = 40bsd+8bs·dffn", fp.acts_total),
        format!("{} = 48d²+24d·dffn", fp.optims_total),
    ]);
    assert_eq!(fp.params_total, 16 * d * d + 8 * d * f);
    assert_eq!(fp.acts_total, 40 * b * s * d + 8 * b * s * f);
    assert_eq!(fp.optims_total, 48 * d * d + 24 * d * f);

    // Section 2.2's whole-model check.
    let cfg = TransformerConfig::gpt3_175b_openai();
    let model_fp = ModelFootprint::of(&cfg, 1);
    let gb = |x: u64| x as f64 / GIB as f64;
    table.note(format!(
        "GPT-3 175B whole model (96 layers): Params {:.0} GB (paper 648), Acts {:.0} GB \
         (paper 162), Optims {:.0} GB (paper 1944)",
        gb(model_fp.params_total),
        gb(model_fp.acts_total),
        gb(model_fp.optims_total)
    ));
    table.emit();
}
