//! Ablation — the "Optimal Page Size" analysis of Section 4.1.
//!
//! "If the Page size is too large, there will be a large number of tensors
//! coexisting in the page ... resulting in wasted space. If the Page size is
//! too small, there will be increased overhead associated with data movement
//! because of the under-utilized bandwidth. Therefore ... the minimum Page
//! size that can fully utilize the PCIe bandwidth is optimal, i.e., 4MB."
//!
//! For each candidate size we report (a) the effective PCIe bandwidth of a
//! single page transfer, (b) the internal fragmentation when a transformer
//! layer's model states are packed by the real page allocator, and (c) the
//! end-to-end iteration time of the engine.

use angel_bench::Experiment;
use angel_core::{Engine, EngineConfig, PageAllocator};
use angel_hw::{DeviceId, Link, LinkClass, GB_PER_S, KIB, MIB};
use angel_model::{layer_inventory, TensorClass, TransformerConfig};

fn main() {
    let pcie = Link::new(LinkClass::Pcie, 32 * GB_PER_S, 10_000);
    let model = TransformerConfig::gpt3_13b();
    let mut table = Experiment::new(
        "ablation-page-size",
        "Page-size ablation (Section 4.1: 4 MiB is the PCIe-saturating minimum)",
        &[
            "Page size",
            "PCIe eff.",
            "Internal frag",
            "Layer stream (ms)",
            "Samples/s",
        ],
    );

    for &page in &[
        64 * KIB,
        256 * KIB,
        MIB,
        4 * MIB,
        16 * MIB,
        64 * MIB,
        256 * MIB,
    ] {
        let eff = pcie.effective_bandwidth(page) / (32.0 * GB_PER_S as f64);

        // Pack one layer's model states with the real allocator.
        let sizes: Vec<u64> = layer_inventory(&model, 0, 1)
            .into_iter()
            .filter(|t| t.class != TensorClass::Activation)
            .map(|t| t.bytes)
            .collect();
        let total: u64 = sizes.iter().sum();
        let mut alloc = PageAllocator::with_page_size(page, false);
        alloc.add_pool(DeviceId::gpu(0), total * 3).unwrap();
        for &s in &sizes {
            alloc.alloc_tensor_raw(s, DeviceId::gpu(0)).unwrap();
        }
        let frag = alloc.stats(DeviceId::gpu(0)).internal_frag();

        // Streaming one layer's FP16 shard page-by-page over PCIe: every
        // page pays the launch latency, so small pages multiply overhead.
        let shard = total / 8 / 4; // one rank's FP16 param shard
        let full_pages = shard / page;
        let tail = shard % page;
        let mut stream_ns = full_pages * pcie.transfer_time_ns(page);
        if tail > 0 {
            stream_ns += pcie.transfer_time_ns(tail);
        }
        let stream_ms = stream_ns as f64 / 1e6;

        // Engine-level sanity: the schedule still initializes at this size.
        let cfg = EngineConfig::single_server()
            .with_batch_size(4)
            .with_page_size(page);
        let sps = match Engine::initialize(&model, &cfg) {
            Ok(mut e) => format!("{:.2}", e.train_iteration().samples_per_sec),
            Err(_) => "OOM".into(),
        };

        table.row(vec![
            angel_hw::fmt_bytes(page),
            format!("{:.1}%", eff * 100.0),
            format!("{:.2}%", frag * 100.0),
            format!("{stream_ms:.1}"),
            sps,
        ]);
    }
    table.note(
        "4 MiB is the knee: ≥97% of PCIe bandwidth per page while internal \
         fragmentation stays negligible; smaller pages waste the wire, much larger \
         ones waste memory on small tensors (each sub-page tensor owns a page).",
    );
    table.emit();
}
