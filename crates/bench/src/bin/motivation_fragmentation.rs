//! Section 3.2 motivation — "Insufficient Memory Usage": coarse memory
//! management fragments as model states move between tiers.
//!
//! Replays an offload-style trace — per-layer model-state tensors allocated
//! and released in waves with interleaved lifetimes, as the hierarchical
//! schedule produces — through four managers: naive first-fit (PyTorch-like),
//! best-fit/BFC (TensorFlow), chunk-based (PatrickStar) and Angel-PTM's page
//! allocator. Reports worst external fragmentation, stranded space and the
//! largest request each manager could no longer satisfy.

use angel_bench::Experiment;
use angel_core::PageAllocator;
use angel_hw::{fmt_bytes, DeviceId, MIB};
use angel_memsim::{
    AddressAllocator, AllocError, BestFitAllocator, ChunkAllocator, NaiveAllocator,
    SegregatedFitAllocator,
};
use angel_model::{layer_inventory, TensorClass, TransformerConfig};

/// Offload trace: layers' tensors come and go with overlapping lifetimes.
/// Returns (sizes per layer, number of waves).
fn build_trace() -> Vec<Vec<u64>> {
    let cfg = TransformerConfig::gpt3_13b().with_layers(12);
    (0..cfg.layers)
        .map(|l| {
            layer_inventory(&cfg, l, 2)
                .into_iter()
                .filter(|t| t.class != TensorClass::Activation)
                .map(|t| t.bytes)
                .collect()
        })
        .collect()
}

struct Outcome {
    worst_external: f64,
    failures: u64,
    first_failure: Option<String>,
}

/// Run the trace: keep a sliding window of 4 live layers, releasing the
/// oldest before allocating the next — the residency churn of hierarchical
/// training. Repeat for several epochs so fragmentation can accumulate.
fn run(alloc: &mut dyn AddressAllocator, layers: &[Vec<u64>]) -> Outcome {
    let mut live: std::collections::VecDeque<Vec<angel_memsim::Allocation>> =
        std::collections::VecDeque::new();
    let mut failures = 0;
    let mut first_failure = None;
    for _epoch in 0..6 {
        for layer in layers {
            if live.len() >= 4 {
                for a in live.pop_front().unwrap() {
                    alloc.free(a);
                }
            }
            let mut allocs = Vec::new();
            for &bytes in layer {
                match alloc.allocate(bytes) {
                    Ok(a) => allocs.push(a),
                    Err(e) => {
                        failures += 1;
                        if first_failure.is_none() {
                            first_failure = Some(match e {
                                AllocError::Fragmented {
                                    requested,
                                    free,
                                    largest,
                                } => format!(
                                    "fragmented: need {} with {} free (largest {})",
                                    fmt_bytes(requested),
                                    fmt_bytes(free),
                                    fmt_bytes(largest)
                                ),
                                other => other.to_string(),
                            });
                        }
                    }
                }
            }
            live.push_back(allocs);
        }
        while let Some(batch) = live.pop_front() {
            for a in batch {
                alloc.free(a);
            }
        }
    }
    Outcome {
        worst_external: alloc.stats().worst_external_frag,
        failures,
        first_failure,
    }
}

fn main() {
    let layers = build_trace();
    let window_bytes: u64 = layers.iter().take(4).flatten().sum();
    // Pool sized to hold the window with 12% slack: coarse managers must
    // survive on reuse, exactly the regime Section 3.2 describes.
    let capacity = window_bytes * 112 / 100;

    let mut table = Experiment::new(
        "motivation",
        "Fragmentation of coarse memory managers under the offload trace (Section 3.2)",
        &[
            "Manager",
            "Worst ext. frag",
            "Failed allocs",
            "First failure",
        ],
    );

    let mut naive = NaiveAllocator::new(capacity);
    let o = run(&mut naive, &layers);
    table.row(vec![
        "naive first-fit (PyTorch-like)".into(),
        format!("{:.1}%", o.worst_external * 100.0),
        o.failures.to_string(),
        o.first_failure.unwrap_or_default(),
    ]);

    let mut bfc = BestFitAllocator::new(capacity);
    let o = run(&mut bfc, &layers);
    table.row(vec![
        "best-fit / BFC (TensorFlow)".into(),
        format!("{:.1}%", o.worst_external * 100.0),
        o.failures.to_string(),
        o.first_failure.unwrap_or_default(),
    ]);

    let mut segfit = SegregatedFitAllocator::new(capacity);
    let o = run(&mut segfit, &layers);
    table.row(vec![
        "segregated-fit (binned BFC)".into(),
        format!("{:.1}%", o.worst_external * 100.0),
        o.failures.to_string(),
        o.first_failure.unwrap_or_default(),
    ]);

    let chunk = layers.iter().flatten().copied().max().unwrap();
    let mut chunked = ChunkAllocator::new(capacity, chunk);
    let o = run(&mut chunked, &layers);
    table.row(vec![
        "chunk-based (PatrickStar)".into(),
        format!("{:.1}%", o.worst_external * 100.0),
        o.failures.to_string(),
        o.first_failure.unwrap_or_default(),
    ]);

    // Angel-PTM pages: run the same trace through the real page allocator.
    let mut pages = PageAllocator::with_page_size(4 * MIB, false);
    pages.add_pool(DeviceId::gpu(0), capacity).unwrap();
    let mut page_failures = 0u64;
    let mut first = None;
    for _epoch in 0..6 {
        let mut live: std::collections::VecDeque<Vec<_>> = Default::default();
        for layer in &layers {
            if live.len() >= 4 {
                for t in live.pop_front().unwrap() {
                    pages.release_tensor(t).unwrap();
                }
            }
            let mut ids = Vec::new();
            for &bytes in layer {
                match pages.alloc_tensor_raw(bytes, DeviceId::gpu(0)) {
                    Ok(id) => ids.push(id),
                    Err(e) => {
                        page_failures += 1;
                        first.get_or_insert_with(|| e.to_string());
                    }
                }
            }
            live.push_back(ids);
        }
        while let Some(batch) = live.pop_front() {
            for t in batch {
                pages.release_tensor(t).unwrap();
            }
        }
    }
    let s = pages.stats(DeviceId::gpu(0));
    table.row(vec![
        "Angel-PTM pages (4 MiB)".into(),
        "0.0% (by construction)".into(),
        page_failures.to_string(),
        first.unwrap_or_default(),
    ]);
    table.note(format!(
        "Pool = 4-layer working set + 12% slack ({}). Page allocator internal \
         fragmentation at peak: {:.2}%. Any free page serves any request, so external \
         fragmentation cannot occur; the coarse managers accumulate holes as the trace \
         churns — the paper's motivation for the Page abstraction.",
        fmt_bytes(capacity),
        s.internal_frag() * 100.0
    ));
    table.emit();
}
