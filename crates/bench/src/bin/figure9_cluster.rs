//! Cluster weak-scaling benchmark (Figure 9 / Table 3 regime): simulated
//! throughput and wall-clock planning cost from one 8×A100 server out to
//! 128 servers / 1024 GPUs, under declarative `ParallelismPlan`s.
//!
//! Three curves, all through `Engine::initialize`'s staged pipeline:
//!
//! * **fixed** — GPT3-13B on a growing fleet (strong scaling: the model
//!   stays put, the dp group and its NIC-crossing collectives grow);
//! * **scaled** — GPT3-28B geometry with 8 layers per server (weak
//!   scaling: ~0.8 B parameters per GPU, 0.8 T total at 1024 GPUs);
//! * **composed** — at the largest fleet, a dp×tp×pp mesh plan
//!   (ZeRO-3 across dp groups, tensor parallelism inside the NVLink
//!   domain, a 2-deep pipeline), statically verified.
//!
//! A fourth record stresses the segment-tree planner alone on the
//! 1024-GPU-scale input (≈10× the page count of BENCH_plan.json's largest).
//!
//! Writes the machine-readable baseline `BENCH_scale.json` at the repo root
//! (or to the path given as the first non-flag argument). `--quick` trims
//! the sweep to its endpoints for CI smoke runs. Regenerate with:
//!
//! ```text
//! cargo run --release -p angel-bench --bin figure9_cluster
//! ```

use angel_bench::{fmt_params, fmt_sps, Experiment};
use angel_core::communicator::CommRecord;
use angel_core::plan::{ParallelismPlan, ZeroStage};
use angel_core::scheduler::{input_from_trace, UnifiedScheduler};
use angel_core::verify::PlanGraph;
use angel_core::{Engine, EngineConfig, SpmdTrace, Tracer};
use angel_hw::DeviceMesh;
use angel_model::TransformerConfig;
use std::time::Instant;

/// SPMD certification of one lowered iteration's communication journal:
/// always the symmetry-reduced pass (recorded in the baseline), plus the
/// exhaustive full-projection pass when `full` is set (`--verify`). Panics
/// on any mismatch or deadlock — an uncertifiable plan fails the run.
fn spmd_point(log: &[CommRecord], mesh: &DeviceMesh, what: &str, full: bool) -> serde_json::Value {
    let t0 = Instant::now();
    let reduced = SpmdTrace::project_reduced(log, mesh).verify();
    let reduced_ms = t0.elapsed().as_secs_f64() * 1e3;
    reduced.assert_certified(what);
    if full {
        let t0 = Instant::now();
        let report = SpmdTrace::project_full(log, mesh).verify();
        let full_ms = t0.elapsed().as_secs_f64() * 1e3;
        report.assert_certified(what);
        serde_json::json!({
            "ranks": mesh.num_ranks(),
            "certified": true,
            "reduced_ranks_checked": reduced.ranks_checked,
            "reduced_events": reduced.events_checked,
            "reduced_ms": reduced_ms,
            "full_events": report.events_checked,
            "full_ms": full_ms,
        })
    } else {
        serde_json::json!({
            "ranks": mesh.num_ranks(),
            "certified": true,
            "reduced_ranks_checked": reduced.ranks_checked,
            "reduced_events": reduced.events_checked,
            "reduced_ms": reduced_ms,
        })
    }
}

/// One engine run: wall-clock planning time + simulated throughput + the
/// SPMD certification record of the lowered iteration.
fn run_point(
    model: &TransformerConfig,
    config: &EngineConfig,
    what: &str,
    full_verify: bool,
) -> Option<(f64, f64, u64, serde_json::Value)> {
    let t0 = Instant::now();
    let mut engine = Engine::initialize(model, config).ok()?;
    let planning_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mesh = config.device_mesh().expect("engine validated the plan");
    let spmd = spmd_point(&engine.lower_iteration().comm_log, &mesh, what, full_verify);
    let stats = engine.train_iteration();
    Some((planning_ms, stats.samples_per_sec, stats.iter_time_ns, spmd))
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let verify = std::env::args().any(|a| a == "--verify");
    let sweep: &[usize] = if quick {
        &[1, 128]
    } else {
        &[1, 2, 4, 8, 16, 32, 64, 128]
    };

    let fixed_model = TransformerConfig::gpt3_13b();
    let scaled_geometry = TransformerConfig::gpt3_28b();
    let layers_per_server = 8;

    let mut table = Experiment::new(
        "scale_bench",
        "Weak scaling to 1024 simulated GPUs: throughput and planning cost",
        &[
            "servers",
            "gpus",
            "fixed sps",
            "fixed plan ms",
            "scaled params",
            "scaled sps",
            "scaled plan ms",
        ],
    );
    let mut points = Vec::new();
    let mut verify_rows: Vec<Vec<String>> = Vec::new();
    for &servers in sweep {
        let gpus = servers * 8;
        let fixed = run_point(
            &fixed_model,
            &EngineConfig::servers(servers).with_batch_size(1),
            &format!("fixed plan at {gpus} GPUs"),
            verify,
        )
        .expect("13B fits every fleet");
        let scaled_model = scaled_geometry
            .clone()
            .with_layers(layers_per_server * servers);
        let scaled = run_point(
            &scaled_model,
            &EngineConfig::servers(servers).with_batch_size(1),
            &format!("weak-scaled plan at {gpus} GPUs"),
            verify,
        )
        .expect("weak-scaled model keeps per-GPU bytes constant");
        table.row(vec![
            servers.to_string(),
            gpus.to_string(),
            fmt_sps(fixed.1),
            format!("{:.1}", fixed.0),
            fmt_params(scaled_model.total_params()),
            fmt_sps(scaled.1),
            format!("{:.1}", scaled.0),
        ]);
        if verify {
            verify_rows.push(vec![
                gpus.to_string(),
                scaled.3["full_events"].as_u64().unwrap_or(0).to_string(),
                format!("{:.1}", scaled.3["full_ms"].as_f64().unwrap_or(0.0)),
                scaled.3["reduced_events"].as_u64().unwrap_or(0).to_string(),
                format!("{:.2}", scaled.3["reduced_ms"].as_f64().unwrap_or(0.0)),
            ]);
        }
        points.push(serde_json::json!({
            "servers": servers,
            "gpus": gpus,
            "fixed": {
                "model": "gpt3-13b",
                "samples_per_sec": fixed.1,
                "planning_ms": fixed.0,
                "iter_ms": fixed.2 as f64 / 1e6,
                "spmd": fixed.3,
            },
            "scaled": {
                "model": "gpt3-28b-geometry",
                "layers": scaled_model.layers,
                "params": scaled_model.total_params(),
                "samples_per_sec": scaled.1,
                "planning_ms": scaled.0,
                "iter_ms": scaled.2 as f64 / 1e6,
                "spmd": scaled.3,
            },
        }));
    }
    table.note(
        "fixed = GPT3-13B, batch 1/GPU, default ZeRO-3 plan (strong scaling); \
         scaled = GPT3-28B geometry growing 8 layers per server, ~0.8B \
         params/GPU (weak scaling). Simulated A100 servers, 16×12.5 GB/s \
         RoCE between them.",
    );

    // Composed mesh plan at the largest fleet: dp × tp=2 × pp=2, lowered
    // through the same pipeline and statically verified.
    let max_servers = *sweep.last().unwrap();
    let max_gpus = max_servers * 8;
    let plan = ParallelismPlan {
        dp: max_gpus / 4,
        tp: 2,
        pp: 2,
        zero_stage: ZeroStage::Full,
    };
    let composed_model = scaled_geometry
        .clone()
        .with_layers(layers_per_server * max_servers);
    let composed_config = EngineConfig::servers(max_servers)
        .with_batch_size(1)
        .with_parallelism(plan);
    let t0 = Instant::now();
    let engine = Engine::initialize(&composed_model, &composed_config)
        .expect("composed plan must initialize at max scale");
    let composed_planning_ms = t0.elapsed().as_secs_f64() * 1e3;
    let lowered = engine.lower_iteration();
    let verdict = PlanGraph::from_sim(&lowered.sim).verify();
    verdict.assert_clean("composed mesh plan");
    // Cross-rank SPMD certification of the same plan: always run both
    // passes here — the full-vs-reduced contrast at max scale is the
    // symmetry reduction's headline number.
    let mesh = composed_config
        .device_mesh()
        .expect("composed plan factors the fleet");
    let spmd = spmd_point(&lowered.comm_log, &mesh, "composed mesh plan", true);
    if verify {
        verify_rows.push(vec![
            format!("{max_gpus} (composed)"),
            spmd["full_events"].as_u64().unwrap_or(0).to_string(),
            format!("{:.1}", spmd["full_ms"].as_f64().unwrap_or(0.0)),
            spmd["reduced_events"].as_u64().unwrap_or(0).to_string(),
            format!("{:.2}", spmd["reduced_ms"].as_f64().unwrap_or(0.0)),
        ]);
    }
    let report = lowered.sim.run();
    verdict.assert_covers(&report, "composed mesh plan");
    let composed = serde_json::json!({
        "plan": format!("dp={} tp=2 pp=2 zero=full", plan.dp),
        "servers": max_servers,
        "gpus": max_gpus,
        "planning_ms": composed_planning_ms,
        "tasks": lowered.sim.num_tasks(),
        "slot_makespan_ms": report.makespan as f64 / 1e6,
        "verified": true,
        "spmd": spmd,
    });
    table.note(format!(
        "composed plan at {max_gpus} GPUs: dp={} × tp=2 × pp=2, {} lowered \
         tasks, verifier clean; SPMD-certified in {:.2} ms (reduced) / \
         {:.1} ms (full).",
        plan.dp,
        lowered.sim.num_tasks(),
        composed["spmd"]["reduced_ms"].as_f64().unwrap_or(0.0),
        composed["spmd"]["full_ms"].as_f64().unwrap_or(0.0),
    ));

    // Planner stress: the raw Algorithm 1 input at 1024-GPU model scale —
    // 1024 layers traced at page granularity fine enough for ~10× the page
    // count of BENCH_plan.json's largest row.
    let stress = if quick {
        serde_json::json!(null)
    } else {
        let page = 1u64 << 20;
        let stress_model = scaled_geometry.clone().with_layers(1024);
        let trace = Tracer::default().trace(&stress_model, 1, true);
        let mut input = input_from_trace(&trace, page, 1, 40 << 30);
        let need = input
            .layers
            .iter()
            .map(|l| l.full_param_bytes + l.working_set)
            .max()
            .unwrap_or(0);
        input.gpu_budget = input.gpu_budget.max(need + need / 4);
        let pages: usize = input.layers.iter().map(|l| l.shard_pages.len()).sum();
        let t0 = Instant::now();
        let schedule = UnifiedScheduler::default()
            .schedule(&input)
            .expect("stress input feasible");
        let stress_ms = t0.elapsed().as_secs_f64() * 1e3;
        table.note(format!(
            "planner stress: {pages} pages / {} steps planned in {stress_ms:.0} ms \
             ({} tasks).",
            input.steps.len(),
            schedule.tasks.len(),
        ));
        serde_json::json!({
            "layers": 1024,
            "steps": input.steps.len(),
            "pages": pages,
            "planning_ms": stress_ms,
            "tasks": schedule.tasks.len(),
        })
    };

    table.emit();

    if verify {
        let mut vt = Experiment::new(
            "spmd_verify",
            "SPMD certification time vs. GPU count (weak-scaling plan)",
            &[
                "gpus",
                "full events",
                "full ms",
                "reduced events",
                "reduced ms",
            ],
        );
        for row in verify_rows {
            vt.row(row);
        }
        vt.note(
            "full = every mesh rank projected and matched; reduced = one \
             representative rank per pipeline stage (symmetry reduction). \
             Both passes must certify (mismatch/deadlock panics the run).",
        );
        vt.emit();
    }

    let out = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_else(|| format!("{}/../../BENCH_scale.json", env!("CARGO_MANIFEST_DIR")));
    let doc = serde_json::json!({
        "id": "scale_bench",
        "generated_by": "cargo run --release -p angel-bench --bin figure9_cluster",
        "units": {"samples_per_sec": "global samples/s (simulated)", "planning_ms": "wall clock"},
        "points": points,
        "composed": composed,
        "planner_stress": stress,
    });
    std::fs::write(&out, serde_json::to_string_pretty(&doc).unwrap() + "\n")
        .expect("write BENCH_scale.json");
    println!("\nwrote {out}");
}
