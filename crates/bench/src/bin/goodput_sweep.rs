//! Goodput under failures — MTBF × checkpoint-interval sweep.
//!
//! Section 3.1: "pre-training tasks would encounter GPU failure with a high
//! probability, and should be restarted after failure." This harness
//! quantifies the operational consequence: for paper-scale models, how much
//! useful training survives once checkpoint writes, lost work and restarts
//! are paid — as a function of per-GPU reliability (MTBF) and of how far the
//! checkpoint interval strays from the Young–Daly optimum.
//!
//! Unlike `recovery_analysis` (which motivates the math), the checkpoint
//! write and restore costs here are **derived from executed schedules**: the
//! per-layer ZeRO-sharded FP32 master state is lowered through
//! `plan::lower_checkpoint` as `ssd_write`/`ssd_read`+`move_in` task graphs
//! and run on the simulated hardware, so the costs include link latency,
//! per-layer serialization and the SSD share per rank. A final note
//! demonstrates the simulator's fault events: an SSD outage injected into
//! the lowered write graph stretches the checkpoint and degrades goodput.

use angel_bench::Experiment;
use angel_core::fault::mtbf_cluster_events;
use angel_core::plan::{checkpoint_write_graph, lower_checkpoint};
use angel_core::recovery::RecoveryModel;
use angel_core::{ClusterEvent, Engine, EngineConfig, Error, MetricsSnapshot, Recorder};
use angel_model::TransformerConfig;
use angel_sim::{ns_to_s, FaultEvent, FaultKind};

/// Failure detection + rescheduling overhead on restart (seconds), on top
/// of the derived checkpoint-restore time.
const DETECT_SECS: f64 = 600.0;

/// Measured cost of recovering by *replanning onto survivors* instead of
/// restarting: one real [`Engine::run_online`] with a single-server loss.
struct SpliceCost {
    /// Wall-clock seconds of the full replan (trace → shard → incremental
    /// schedule → materialize), from the engine's splice report.
    replan_secs: f64,
    /// Post-splice throughput as a fraction of the healthy fleet's
    /// (simulated samples/s on `servers − 1` over samples/s on `servers`).
    degraded_throughput: f64,
}

fn measure_splice(model: &TransformerConfig, servers: usize) -> SpliceCost {
    let config = EngineConfig::servers(servers).with_batch_size(1);
    let mut engine = Engine::initialize(model, &config).expect("engine initializes");
    let healthy = engine.train_iteration();
    let report = engine
        .run_online(
            2,
            &[ClusterEvent::ServerLoss {
                at_iter: 0,
                servers: 1,
                at_ns: 0,
            }],
        )
        .expect("online run completes");
    let after = &report.per_iter[1];
    assert_eq!(after.tasks_failed, 0, "replanned iteration must run clean");
    SpliceCost {
        replan_secs: report.splices[0].replan_ns as f64 / 1e9,
        degraded_throughput: (after.samples_per_sec / healthy.samples_per_sec).clamp(0.01, 1.0),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let jobs: [(&str, TransformerConfig, usize); 2] = [
        ("GPT3-175B", TransformerConfig::gpt3_175b(), 96),
        ("T5-58B", TransformerConfig::t5_58b(), 32),
    ];
    let mtbfs: &[f64] = if quick {
        &[50_000.0]
    } else {
        &[10_000.0, 50_000.0, 200_000.0]
    };
    let factors: &[f64] = if quick {
        &[0.5, 1.0, 4.0]
    } else {
        &[0.25, 0.5, 1.0, 2.0, 4.0]
    };

    let mut table = Experiment::new(
        "goodput",
        "Effective goodput vs per-GPU MTBF and checkpoint interval (interval as a \
         multiple of the Young-Daly optimum; checkpoint cost from executed schedules). \
         Static = restart from checkpoint on failure; Replanned = online splice onto \
         the surviving fleet, with replan time and degraded throughput measured on \
         the engine",
        &[
            "Model",
            "GPUs",
            "MTBF/GPU (h)",
            "Ckpt write (s)",
            "Restore (s)",
            "Interval (xYD)",
            "Interval (min)",
            "Static",
            "Replanned",
        ],
    );

    // Machine-readable sidecar: per-model checkpoint costs and best goodput
    // land in a MetricsSnapshot next to the table.
    let recorder = Recorder::enabled();

    for (name, model, servers) in &jobs {
        let config = EngineConfig::servers(*servers).with_batch_size(1);
        let ckpt = lower_checkpoint(model, &config);
        let splice = measure_splice(model, *servers);
        recorder
            .gauge(&format!("ckpt.write_ms.{name}"))
            .set((ckpt.write_secs * 1e3) as u64);
        recorder
            .gauge(&format!("ckpt.restore_ms.{name}"))
            .set((ckpt.restore_secs * 1e3) as u64);
        recorder
            .gauge(&format!("splice.replan_us.{name}"))
            .set((splice.replan_secs * 1e6) as u64);
        recorder
            .gauge(&format!("splice.degraded_ppm.{name}"))
            .set((splice.degraded_throughput * 1e6) as u64);
        for &mtbf in mtbfs {
            let m = RecoveryModel::from_lowering(config.num_gpus(), mtbf, &ckpt, DETECT_SECS);
            let yd = m.young_daly_interval_secs();
            for &f in factors {
                let interval = yd * f;
                let stat = m.goodput(interval);
                let rep = m.replanned_goodput(
                    interval,
                    splice.replan_secs,
                    ckpt.restore_secs,
                    splice.degraded_throughput,
                );
                // The acceptance property: replanning onto survivors never
                // loses to a checkpoint restart, under every MTBF plan.
                assert!(
                    rep >= stat,
                    "{name} @ {mtbf:.0}h x{f}: replanned {rep} < static {stat}"
                );
                recorder.counter("goodput.rows").inc();
                recorder
                    .gauge(&format!("goodput.best_ppm.{name}"))
                    .set_max((stat * 1e6) as u64);
                recorder
                    .gauge(&format!("goodput.replanned_best_ppm.{name}"))
                    .set_max((rep * 1e6) as u64);
                table.row(vec![
                    name.to_string(),
                    config.num_gpus().to_string(),
                    format!("{mtbf:.0}"),
                    format!("{:.1}", ckpt.write_secs),
                    format!("{:.1}", ckpt.restore_secs),
                    format!("{f:.2}"),
                    format!("{:.1}", interval / 60.0),
                    format!("{:.3}%", stat * 100.0),
                    format!("{:.3}%", rep * 100.0),
                ]);
            }
        }
        table.note(format!(
            "{name}: one measured splice — replan {:.2} ms, post-splice throughput \
             {:.2}% of the healthy fleet on {} surviving servers.",
            splice.replan_secs * 1e3,
            splice.degraded_throughput * 100.0,
            servers - 1,
        ));
    }

    // MTBF fault plan replayed online: a deterministic event stream drawn
    // from the fleet MTTF (time-compressed so a short replay sees faults)
    // drives the same engine loop end to end — outages tighten the budget,
    // server losses splice onto survivors, and every iteration after a
    // splice runs the freshly planned fleet.
    {
        let (name, model, servers) = &jobs[1];
        let config = EngineConfig::servers(*servers).with_batch_size(1);
        let mut engine = Engine::initialize(model, &config).expect("engine initializes");
        let healthy = engine.train_iteration();
        let iters = if quick { 4 } else { 8 };
        let m = RecoveryModel::from_lowering(
            config.num_gpus(),
            50_000.0,
            &lower_checkpoint(model, &config),
            DETECT_SECS,
        );
        // Compress time: pretend each iteration covers a quarter MTTF so
        // the plan fires within the replay window.
        let iter_time_ns = (m.fleet_mttf_secs() / 4.0 * 1e9) as u64;
        let events = mtbf_cluster_events(7, iters, iter_time_ns, m.fleet_mttf_secs(), *servers);
        let report = engine
            .run_online(iters, &events)
            .expect("fault-plan replay completes");
        // Steady-state retention: the best clean iteration after the first
        // splice that had no event injected (stranded iterations report
        // zero useful samples, outage iterations are stretched by the
        // downtime, pre-fault iterations ran the full fleet).
        let first_splice = report.splices.first().map_or(0, |s| s.at_iter);
        let retained = report
            .per_iter
            .iter()
            .enumerate()
            .filter(|(k, it)| {
                *k > first_splice
                    && it.tasks_failed == 0
                    && events.iter().all(|e| e.at_iter() != *k)
            })
            .map(|(_, it)| it.samples_per_sec / healthy.samples_per_sec)
            .fold(0.0f64, f64::max);
        recorder
            .counter("goodput.fault_plan_events")
            .add(events.len() as u64);
        recorder
            .counter("goodput.fault_plan_splices")
            .add(report.splices.len() as u64);
        table.note(format!(
            "MTBF fault plan replayed online ({name}, {iters} iterations, fleet MTTF \
             compressed 4x): {} events drawn, {} splices, steady-state throughput \
             between faults {:.1}% of healthy — the loop absorbs the whole plan \
             without a restart.",
            events.len(),
            report.splices.len(),
            retained * 100.0,
        ));
    }

    // Terminal failure: losing the whole fleet is not a splice — it is a
    // typed error. A ServerLoss covering every server used to be silently
    // respliced onto one phantom server; now it surfaces as
    // ClusterExhausted and the only recovery path is a checkpoint restart
    // on new hardware (the Static column's cost model).
    {
        let mut engine =
            Engine::initialize(&jobs[1].1, &EngineConfig::servers(2).with_batch_size(1))
                .expect("engine initializes");
        let err = engine
            .run_online(
                2,
                &[ClusterEvent::ServerLoss {
                    at_iter: 0,
                    servers: 2,
                    at_ns: 0,
                }],
            )
            .expect_err("total fleet loss must not replan");
        assert!(
            matches!(
                err,
                Error::ClusterExhausted {
                    had_servers: 2,
                    lost_servers: 2,
                }
            ),
            "total loss must be ClusterExhausted, got: {err}"
        );
        recorder.counter("goodput.cluster_exhausted").inc();
        table.note(format!(
            "Terminal failure: a ServerLoss covering the whole 2-server fleet does \
             not splice — the engine returns the typed error \"{err}\" and keeps its \
             last good plan; recovery means a checkpoint restart on new hardware, \
             priced by the Static column.",
        ));
    }

    // Fault-event demonstration: an SSD outage covering a checkpoint write
    // stretches it by the downtime; re-deriving the recovery model with the
    // degraded cost shows the goodput impact.
    let (name, model, servers) = &jobs[0];
    let config = EngineConfig::servers(*servers).with_batch_size(1);
    let ckpt = lower_checkpoint(model, &config);
    let lo = checkpoint_write_graph(model, &config);
    let ssd = lo.ssd_id();
    let mut sim = lo.into_sim();
    let outage_ns = (ckpt.write_secs * 2e9) as u64; // 2× the clean write
    sim.inject_fault(FaultEvent {
        resource: ssd,
        at: 0,
        kind: FaultKind::Outage {
            duration: outage_ns,
        },
    });
    let degraded_write = ns_to_s(sim.run().makespan);
    recorder
        .gauge("ckpt.degraded_write_ms")
        .set((degraded_write * 1e3) as u64);
    let clean = RecoveryModel::from_lowering(config.num_gpus(), 50_000.0, &ckpt, DETECT_SECS);
    let degraded = RecoveryModel {
        checkpoint_write_secs: degraded_write,
        ..clean
    };
    table.note(format!(
        "Fault event: an SSD outage of {:.1} s injected into the lowered {name} \
         write graph stretches one checkpoint from {:.1} s to {:.1} s; if writes \
         stayed degraded, Young-Daly goodput at 50k h MTBF would drop from {:.3}% \
         to {:.3}%.",
        ns_to_s(outage_ns),
        ckpt.write_secs,
        degraded_write,
        clean.optimal_goodput() * 100.0,
        degraded.optimal_goodput() * 100.0,
    ));
    table.note(
        "Short intervals overpay in checkpoint writes, long intervals in lost work; \
         the Young-Daly column (1.00xYD) maximizes goodput in every MTBF row. Less \
         reliable fleets both checkpoint more often and lose more to each failure.",
    );
    table.emit();

    std::fs::create_dir_all("target").ok();
    let path = "target/goodput_metrics.json";
    let json = recorder.snapshot().to_json_string();
    std::fs::write(path, &json).expect("write metrics snapshot");
    let snap = MetricsSnapshot::from_json_str(&json).expect("snapshot round-trips");
    println!(
        "\nwrote {path}: {} sweep rows, {} gauges",
        snap.counters.get("goodput.rows").copied().unwrap_or(0),
        snap.gauges.len(),
    );
}
