//! Table 6 (validation-loss columns) — real training: does the Lock-Free
//! Updating Mechanism hurt model quality?
//!
//! Paper: T5-MoE-1T reaches valid loss 1.124; the 10T model 0.853
//! synchronously and 0.861 with lock-free updates — i.e. (a) bigger models
//! reach lower loss, (b) lock-free staleness costs ≈1%. We reproduce both
//! *shapes* with genuine training (hand-written transformer + mixed-precision
//! Adam + Algorithm 2 with real threads and an SSD-throttled state store):
//! a small and a larger character LM, each trained synchronously and
//! lock-free on the same synthetic corpus.

use angel_bench::Experiment;
use angel_core::lockfree::ClearPolicy;
use angel_train::{train_lockfree, train_sync, CharCorpus, GptConfig, TrainConfig};

fn main() {
    let corpus = CharCorpus::generate(16, 60_000, 2024);
    let mut table = Experiment::new(
        "table6-convergence",
        "Validation loss: synchronous vs lock-free training (real runs, synthetic corpus)",
        &[
            "Model",
            "Mode",
            "Valid loss",
            "Initial",
            "Grads dropped",
            "Updates",
            "Paper analogue",
        ],
    );

    let small = GptConfig {
        vocab: 16,
        seq_len: 32,
        d_model: 24,
        d_ffn: 48,
        layers: 2,
    };
    let large = GptConfig {
        vocab: 16,
        seq_len: 32,
        d_model: 48,
        d_ffn: 96,
        layers: 3,
    };

    let mut losses = Vec::new();
    for (name, model, paper) in [
        ("small (≈1T analogue)", small, "1.124"),
        ("large (≈10T analogue)", large, "0.853 / 0.861"),
    ] {
        let cfg = TrainConfig {
            model,
            steps: 2500,
            seq_len: 32,
            seed: 7,
            // Emulate an SSD-bound state store so lock-free updates lag for
            // real (per-update delay proportional to state bytes). The rate
            // is chosen so staleness lands at a few iterations, the regime
            // the paper's deployment operates in (its updating thread "runs
            // slower than the GPU due to the limited SSD I/O bandwidth" but
            // still cycles continuously).
            ssd_bytes_per_sec: Some(150_000_000),
            // Algorithm 2's buffer-clear timing is ambiguous in the paper's
            // pseudocode; the lossless take-at-snapshot reading (the clear
            // is paired with the gradient read) matches the reported ≈1%
            // quality gap, while the literal clear-on-receipt reading drops
            // every micro-batch landing inside an update window (measured
            // separately below). See EXPERIMENTS.md.
            clear_policy: ClearPolicy::TakeAtSnapshot,
            ..Default::default()
        };
        let sync = train_sync(&cfg, &corpus);
        let lf = train_lockfree(&cfg, &corpus);
        table.row(vec![
            name.into(),
            "sync".into(),
            format!("{:.4}", sync.valid_loss),
            format!("{:.4}", sync.initial_valid_loss),
            "0".into(),
            sync.updates_applied.to_string(),
            paper.into(),
        ]);
        table.row(vec![
            name.into(),
            "lock-free".into(),
            format!("{:.4}", lf.valid_loss),
            format!("{:.4}", lf.initial_valid_loss),
            lf.grads_dropped.to_string(),
            lf.updates_applied.to_string(),
            String::new(),
        ]);
        losses.push((sync.valid_loss, lf.valid_loss));
    }

    // The paper-literal clear protocol, for comparison.
    let lossy_cfg = TrainConfig {
        model: large,
        steps: 2500,
        seq_len: 32,
        seed: 7,
        ssd_bytes_per_sec: Some(150_000_000),
        clear_policy: ClearPolicy::OnUpdateReceipt,
        ..Default::default()
    };
    let lossy = train_lockfree(&lossy_cfg, &corpus);
    table.row(vec![
        "large (≈10T analogue)".into(),
        "lock-free (clear-on-receipt)".into(),
        format!("{:.4}", lossy.valid_loss),
        format!("{:.4}", lossy.initial_valid_loss),
        lossy.grads_dropped.to_string(),
        lossy.updates_applied.to_string(),
        String::new(),
    ]);

    let (s_small, _) = losses[0];
    let (s_large, l_large) = losses[1];
    table.note(format!(
        "Shape checks — larger model reaches lower loss: {:.4} → {:.4} (paper 1.124 → \
         0.853); lock-free within {:.1}% of sync on the large model (paper: 0.861 vs \
         0.853 = +0.9%).",
        s_small,
        s_large,
        (l_large - s_large).abs() / s_large * 100.0
    ));
    table.emit();
}
