//! Multi-job training service under open-loop load.
//!
//! Angel-PTM is operated as a shared service: many teams stream jobs at one
//! GPU fleet and the control plane decides admission, placement and
//! preemption. This harness drives the `angel-service` control plane with a
//! synthetic open-loop submission generator (seeded exponential
//! inter-arrivals, so the arrival process never waits on the system) at
//! increasing offered loads, and reports the service-level metrics:
//! completed jobs/hour, p50/p99 time-to-first-iteration, cluster
//! utilization, and preemption counts. Every admission is justified by the
//! §8 plan-graph verifier's provable peak-memory bound — the bench asserts
//! the certificates fit.
//!
//! A deterministic acceptance scenario (fixed submissions, no RNG) pins the
//! service-level properties the sweep's stochastic mix merely exercises:
//! ≥3 concurrently admitted jobs, with at least one preemption/resume
//! cycle, all admissions certificate-backed.
//!
//! Writes the machine-readable baseline `BENCH_service.json` at the repo
//! root (or to the first non-flag argument).

use angel_bench::Experiment;
use angel_core::{ObsThread, Recorder};
use angel_model::TransformerConfig;
use angel_service::{admit_at, ControlPlane, JobSpec, ServiceConfig, ServiceReport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shared-cluster size for every sweep point.
const SERVERS: usize = 4;

fn small_model() -> TransformerConfig {
    TransformerConfig::gpt3_1_7b()
        .with_layers(2)
        .with_seq_len(256)
}

fn medium_model() -> TransformerConfig {
    TransformerConfig::gpt3_1_7b()
        .with_layers(4)
        .with_seq_len(256)
}

/// A model no slice of this cluster can certify — exercises the
/// rejection path at every load.
fn whale_model() -> TransformerConfig {
    TransformerConfig::gpt3_28b().with_layers(3000)
}

/// Draw the next job from the mix. Weights: mostly small 1-server jobs,
/// some elastic 2-server jobs, occasional urgent preemptors, rare whales.
fn draw_job(rng: &mut StdRng, k: usize) -> JobSpec {
    let pick = rng.gen_range(0u32..100);
    if pick < 50 {
        JobSpec::new(format!("small-{k}"), small_model(), 5)
    } else if pick < 75 {
        JobSpec::new(format!("elastic-{k}"), medium_model(), 4).with_servers(2, 1)
    } else if pick < 90 {
        JobSpec::new(format!("urgent-{k}"), small_model(), 2)
            .with_servers(2, 2)
            .with_priority(5)
    } else {
        JobSpec::new(format!("whale-{k}"), whale_model(), 1)
    }
}

/// One sweep point: `jobs` open-loop submissions at `load` offered
/// utilization (arrival rate × mean service time ÷ servers).
fn run_point(load: f64, jobs: usize, mean_job_ns: u64, seed: u64) -> ServiceReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cp = ControlPlane::new(&ServiceConfig::new(SERVERS).with_max_queue(jobs));
    let mean_gap_ns = mean_job_ns as f64 / (load * SERVERS as f64);
    let mut t_ns = 0u64;
    for k in 0..jobs {
        // Exponential inter-arrival via inverse CDF on a uniform draw.
        let u: f64 = rng.gen_range(0.0f64..1.0);
        let gap = (-(1.0 - u).ln() * mean_gap_ns).max(1.0) as u64;
        t_ns += gap;
        cp.submit(draw_job(&mut rng, k), t_ns);
    }
    cp.into_report()
}

/// The deterministic acceptance scenario, with the obs layer attached so
/// job events also land on the Perfetto `service` track.
fn acceptance_scenario() -> (ServiceReport, u64) {
    let recorder = Recorder::enabled();
    let mut cp = ControlPlane::new(&ServiceConfig::new(SERVERS).with_recorder(recorder.clone()));
    cp.submit(
        JobSpec::new("alpha", small_model(), 6).with_servers(2, 1),
        0,
    );
    cp.submit(JobSpec::new("beta", small_model(), 6), 0);
    cp.submit(JobSpec::new("gamma", small_model(), 6), 0);
    // All four servers are now held (2+1+1); the urgent job's rigid
    // 2-server demand forces a preemption at a victim boundary, and the
    // victim grows back once the urgent job departs.
    cp.submit(
        JobSpec::new("urgent", small_model(), 2)
            .with_servers(2, 2)
            .with_priority(7),
        1,
    );
    let report = cp.into_report();
    let obs_events = recorder
        .events()
        .iter()
        .filter(|e| e.thread == ObsThread::Service)
        .count() as u64;
    (report, obs_events)
}

fn point_json(load: f64, r: &ServiceReport) -> serde_json::Value {
    let hours = r.makespan_ns as f64 / 3.6e12;
    let all_verified = r
        .admissions
        .iter()
        .all(|a| a.certificate.peak_bound_bytes <= a.certificate.gpu_budget_bytes);
    serde_json::json!({
        "offered_load": load,
        "submitted": r.submitted as u64,
        "admitted": r.admitted as u64,
        "rejected": r.rejected as u64,
        "completed": r.completed as u64,
        "preemptions": r.preemptions as u64,
        "resumes": r.resumes as u64,
        "max_concurrent": r.max_concurrent as u64,
        "jobs_per_hour": r.completed as f64 / hours.max(1e-12),
        "ttfi_p50_ms": r.ttfi_percentile_ns(0.50) as f64 / 1e6,
        "ttfi_p99_ms": r.ttfi_percentile_ns(0.99) as f64 / 1e6,
        "utilization": r.utilization,
        "admissions_all_verified": all_verified,
    })
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    // Calibrate mean service time from one admitted small job: iterations ×
    // simulated iteration time (the virtual-clock unit of the whole bench).
    let probe = JobSpec::new("probe", small_model(), 5);
    let (mut engine, cert) = admit_at(&probe, 1).expect("probe job admits");
    assert!(
        cert.peak_bound_bytes <= cert.gpu_budget_bytes,
        "probe certificate must fit"
    );
    let iter_ns = engine.train_iteration().iter_time_ns;
    let mean_job_ns = iter_ns * probe.iters as u64;

    let loads: &[f64] = if quick {
        &[1.5, 3.0]
    } else {
        &[0.5, 1.0, 2.0, 4.0]
    };
    let jobs_per_point = if quick { 8 } else { 16 };

    let mut table = Experiment::new(
        "service",
        "Multi-job training service under open-loop synthetic load on a shared \
         4-server cluster: verified admission (plan-graph peak bound vs slice \
         budget), priority preemption with splice-based shrink/grow, time-to-first- \
         iteration percentiles over the virtual timeline",
        &[
            "Load",
            "Jobs",
            "Admitted",
            "Rejected",
            "Done",
            "Jobs/h",
            "TTFI p50 (ms)",
            "TTFI p99 (ms)",
            "Util",
            "Preempt",
            "Resume",
            "MaxConc",
        ],
    );

    let mut points = Vec::new();
    for (i, &load) in loads.iter().enumerate() {
        let r = run_point(load, jobs_per_point, mean_job_ns, 0xA11CE + i as u64);
        let p = point_json(load, &r);
        table.row(vec![
            format!("{load:.1}"),
            r.submitted.to_string(),
            r.admitted.to_string(),
            r.rejected.to_string(),
            r.completed.to_string(),
            format!("{:.0}", p["jobs_per_hour"].as_f64().unwrap_or(0.0)),
            format!("{:.2}", p["ttfi_p50_ms"].as_f64().unwrap_or(0.0)),
            format!("{:.2}", p["ttfi_p99_ms"].as_f64().unwrap_or(0.0)),
            format!("{:.2}", r.utilization),
            r.preemptions.to_string(),
            r.resumes.to_string(),
            r.max_concurrent.to_string(),
        ]);
        assert_eq!(
            r.admitted + r.rejected,
            r.submitted,
            "every submission must be decided"
        );
        assert_eq!(r.completed, r.admitted, "every admitted job must finish");
        assert_eq!(
            p["admissions_all_verified"].as_bool(),
            Some(true),
            "an admission escaped the verifier's bound"
        );
        points.push(p);
    }

    // Deterministic acceptance scenario (no RNG): the service-level
    // properties the PR is accepted on.
    let (acc, obs_events) = acceptance_scenario();
    assert!(acc.max_concurrent >= 3, "need ≥3 concurrent admitted jobs");
    assert!(acc.preemptions >= 1, "need ≥1 preemption");
    assert!(acc.resumes >= 1, "need ≥1 resume");
    assert_eq!(acc.completed, 4);
    assert!(obs_events >= 4, "job events must reach the obs layer");
    table.note(format!(
        "Acceptance scenario (deterministic): {} jobs admitted with verified peak \
         bounds, {} running concurrently at peak, {} preemption(s) and {} \
         resume(s) via boundary splices, {} job events mirrored onto the Perfetto \
         `service` track.",
        acc.admitted, acc.max_concurrent, acc.preemptions, acc.resumes, obs_events,
    ));
    table.note(
        "Whale submissions are rejected at admission time: the verifier's provable \
         peak-memory bound exceeds every slice's GPU budget, so they never occupy \
         the queue (typed RejectReason in the event stream).",
    );
    table.emit();

    let out = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_else(|| format!("{}/../../BENCH_service.json", env!("CARGO_MANIFEST_DIR")));
    let acc_events: Vec<serde_json::Value> = acc.events.iter().map(|e| e.to_json()).collect();
    let doc = serde_json::json!({
        "id": "service_bench",
        "generated_by": "cargo run --release -p angel-bench --bin service_bench",
        "quick": quick,
        "servers": SERVERS as u64,
        "mean_job_ms": mean_job_ns as f64 / 1e6,
        "points": points,
        "acceptance": {
            "max_concurrent": acc.max_concurrent as u64,
            "preemptions": acc.preemptions as u64,
            "resumes": acc.resumes as u64,
            "completed": acc.completed as u64,
            "admitted": acc.admitted as u64,
            "utilization": acc.utilization,
            "obs_events": obs_events,
            "admissions_all_verified": acc
                .admissions
                .iter()
                .all(|a| a.certificate.peak_bound_bytes <= a.certificate.gpu_budget_bytes),
            "events": acc_events,
        },
    });
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&doc).expect("serializable") + "\n",
    )
    .expect("write BENCH_service.json");
    println!("\nwrote {out}");
}
