//! Figure 9 — scalability of Angel-PTM training T5-MoE models under expert
//! parallelism, 9 experts per GPU per layer (model size grows with the
//! fleet: 128 GPUs → 1152 experts, 256 GPUs → the full 2304-expert 1.2T).
//!
//! The paper reports near-linear scaling, below GPT3-175B's because "more
//! input data will be fed into the all-to-all communication of the MoE
//! layer". We model per-GPU iteration time as compute (constant per GPU
//! under the paper's scaling rule) plus the MoE all-to-all, whose per-GPU
//! volume grows with fleet size — the mechanism behind the gap.

use angel_bench::{fmt_ratio, fmt_sps, Experiment};
use angel_core::{Engine, EngineConfig};
use angel_model::moe::{all_to_all_bytes_per_gpu, ExpertParallelism};
use angel_model::TransformerConfig;
use angel_sim::collectives::{hierarchical_collective_time_ns, Collective};

fn main() {
    let base = TransformerConfig::t5_moe_1_2t();
    let batch = 8u64;
    let mut table = Experiment::new(
        "figure9",
        "Scalability on T5-MoE under expert parallelism (9 experts/GPU/layer)",
        &[
            "GPUs",
            "Experts/layer",
            "Samples/s",
            "Scaling vs 64",
            "Linear",
            "All-to-all share",
        ],
    );
    let mut baseline: Option<f64> = None;
    for servers in [8usize, 16, 24, 32] {
        let gpus = servers * 8;
        let ep = ExpertParallelism::paper_scaling(gpus);
        let model = ep.scale_model(&base);
        let cfg = EngineConfig::servers(servers).with_batch_size(batch);
        let Ok(mut engine) = Engine::initialize(&model, &cfg) else {
            table.row(vec![
                gpus.to_string(),
                ep.total_experts().to_string(),
                "OOM".into(),
                "—".into(),
                "—".into(),
                "—".into(),
            ]);
            continue;
        };
        let s = engine.train_iteration();
        // MoE all-to-all per layer (dispatch + combine), on the cluster
        // fabric, added on the iteration critical path.
        let a2a_bytes = all_to_all_bytes_per_gpu(&model, batch, gpus as u64);
        let a2a_per_layer = hierarchical_collective_time_ns(
            Collective::AllToAll,
            a2a_bytes,
            &cfg.cluster,
            gpus as u64,
        );
        let a2a_total = a2a_per_layer * model.layers as u64;
        let iter = s.iter_time_ns + a2a_total;
        let sps = (batch * gpus as u64) as f64 / (iter as f64 / 1e9);
        let b = *baseline.get_or_insert(sps);
        table.row(vec![
            gpus.to_string(),
            ep.total_experts().to_string(),
            fmt_sps(sps),
            fmt_ratio(sps / b),
            fmt_ratio(gpus as f64 / 64.0),
            format!("{:.1}%", a2a_total as f64 / iter as f64 * 100.0),
        ]);
    }
    table.note(
        "Near-linear but below GPT3-175B's scaling (Figure 8): the all-to-all share of \
         the iteration grows with the fleet, exactly the paper's explanation.",
    );
    table.emit();
}
