//! Table 5 — maximum supported model scale on a single server.
//!
//! "We increase the number of transformer blocks and fix other model
//! settings" (GPT: 128 heads, d=8192, d_ffn=32768; T5: d=4096,
//! d_ffn=16384). For each system we binary-search the largest layer count
//! that initializes, then measure throughput at batch 1 and at the largest
//! batch the memory model admits.

use angel_baselines::DeepSpeed;
use angel_bench::{fmt_params, fmt_sps, Experiment};
use angel_core::{Engine, EngineConfig};
use angel_hw::ClusterSpec;
use angel_model::TransformerConfig;

/// Largest batch size (powers of two-ish sweep) at which `init` succeeds.
fn max_batch(mut fits: impl FnMut(u64) -> bool) -> u64 {
    let mut best = 1;
    for b in [1u64, 2, 4, 8, 12, 16, 24, 32, 38, 48, 50, 64] {
        if fits(b) {
            best = b;
        }
    }
    best
}

fn main() {
    let mut table = Experiment::new(
        "table5",
        "Max supported model scale on a single server (8×A100-40G, 1 TiB host)",
        &["Model", "System", "#Params", "#Batch", "Samples/s", "Paper"],
    );

    for (family, base) in [
        ("GPT", TransformerConfig::gpt3_28b()),
        ("T5", TransformerConfig::t5_27b()),
    ] {
        // ---- DeepSpeed -------------------------------------------------
        let ds = DeepSpeed::new(ClusterSpec::single_a100(), 1);
        let ds_layers = ds.max_layers(&base);
        let ds_model = base.clone().with_layers(ds_layers);
        let ds_b1 = ds.iter_stats(&ds_model).expect("max model fits at batch 1");
        let ds_bmax = max_batch(|b| DeepSpeed::new(ClusterSpec::single_a100(), b).fits(&ds_model));
        let ds_max = DeepSpeed::new(ClusterSpec::single_a100(), ds_bmax)
            .iter_stats(&ds_model)
            .expect("fits at max batch");
        let paper_ds = if family == "GPT" {
            "28B, 7.61 sps @36"
        } else {
            "27B, 7.31 sps @32"
        };
        table.row(vec![
            family.into(),
            "DeepSpeed".into(),
            fmt_params(ds_model.total_params()),
            "1".into(),
            fmt_sps(ds_b1.samples_per_sec),
            paper_ds.into(),
        ]);
        table.row(vec![
            family.into(),
            "DeepSpeed".into(),
            fmt_params(ds_model.total_params()),
            ds_bmax.to_string(),
            fmt_sps(ds_max.samples_per_sec),
            String::new(),
        ]);

        // ---- Angel-PTM at DeepSpeed's max model (same-model comparison) --
        let angel_cfg = |b: u64| EngineConfig::single_server().with_batch_size(b);
        let angel_bmax_same = max_batch(|b| Engine::initialize(&ds_model, &angel_cfg(b)).is_ok());
        let mut e = Engine::initialize(&ds_model, &angel_cfg(angel_bmax_same)).unwrap();
        let s = e.train_iteration();
        let paper_angel_same = if family == "GPT" {
            "28B, 10.99 sps @38"
        } else {
            "27B, 14.38 sps @50"
        };
        table.row(vec![
            family.into(),
            "AngelPTM".into(),
            fmt_params(ds_model.total_params()),
            angel_bmax_same.to_string(),
            fmt_sps(s.samples_per_sec),
            paper_angel_same.into(),
        ]);

        // ---- Angel-PTM at its own maximum scale ---------------------------
        let angel_layers = Engine::max_layers(&base, &angel_cfg(1));
        let angel_model = base.clone().with_layers(angel_layers);
        let mut e1 = Engine::initialize(&angel_model, &angel_cfg(1)).unwrap();
        let s1 = e1.train_iteration();
        let paper_max = if family == "GPT" {
            "55B, 0.464 sps @1"
        } else {
            "58B, 0.432 sps @1"
        };
        table.row(vec![
            family.into(),
            "AngelPTM".into(),
            fmt_params(angel_model.total_params()),
            "1".into(),
            fmt_sps(s1.samples_per_sec),
            paper_max.into(),
        ]);
        let angel_bmax = max_batch(|b| Engine::initialize(&angel_model, &angel_cfg(b)).is_ok());
        let mut em = Engine::initialize(&angel_model, &angel_cfg(angel_bmax)).unwrap();
        let sm = em.train_iteration();
        let paper_maxb = if family == "GPT" {
            "55B, 3.34 sps @10"
        } else {
            "58B, 3.37 sps @4"
        };
        table.row(vec![
            family.into(),
            "AngelPTM".into(),
            fmt_params(angel_model.total_params()),
            angel_bmax.to_string(),
            fmt_sps(sm.samples_per_sec),
            paper_maxb.into(),
        ]);

        let scale_gain = angel_model.total_params() as f64 / ds_model.total_params() as f64 - 1.0;
        table.note(format!(
            "{family}: Angel-PTM max scale gain over DeepSpeed = {:.1}% (paper: {}%)",
            scale_gain * 100.0,
            if family == "GPT" { "96.4" } else { "114.8" }
        ));
    }
    table.emit();
}
