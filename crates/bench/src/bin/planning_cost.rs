//! Planning-cost benchmark: the Unified Scheduler's (Algorithm 1) wall-clock
//! planning time, optimized segment-tree planner vs. the retained per-page
//! oracle, on paper-scale inputs (DESIGN.md §9).
//!
//! Writes the machine-readable baseline `BENCH_plan.json` at the repo root
//! (or to the path given as the first non-flag argument) so every future PR
//! has a recorded perf trajectory. Regenerate with:
//!
//! ```text
//! cargo run --release -p angel-bench --bin planning_cost
//! ```
//!
//! Every timed pair is also checked byte-identical (same tasks, same stats),
//! so the speedup numbers are for provably equivalent schedules.

use angel_bench::Experiment;
use angel_core::scheduler::{
    input_from_trace, oracle, LayerPlan, Schedule, SchedulerInput, UnifiedScheduler,
};
use angel_core::{MetricsSnapshot, Planner, Recorder, ReplanDelta, Tracer};
use angel_model::TransformerConfig;
use std::time::Instant;

/// A synthetic eviction-heavy input: `layers × 2` compute steps, uniform
/// pages, a budget small enough that most pages churn through the wait
/// stack but large enough that every layer stays feasible.
fn synthetic(layers: usize, pages_per_layer: usize, page: u64, dp: u64) -> SchedulerInput {
    let shard = page * pages_per_layer as u64;
    let full = shard * dp;
    let working_set = 4 * page;
    // ~20% of the total shard bytes fit: heavy phase-1 churn, and room for
    // phase-2 advancement in the backward half.
    let budget = (full + working_set).max(shard * layers as u64 / 5);
    SchedulerInput {
        layers: (0..layers)
            .map(|l| LayerPlan {
                layer: l,
                shard_pages: vec![page; pages_per_layer],
                full_param_bytes: full,
                working_set,
            })
            .collect(),
        steps: SchedulerInput::default_steps(layers),
        gpu_budget: budget,
        page_size: page,
        step_base_load: Vec::new(),
    }
}

/// Best-of-`reps` wall time of `f`, in seconds, plus its last result.
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.unwrap())
}

struct Row {
    name: &'static str,
    input: SchedulerInput,
}

fn model_row(name: &'static str, cfg: &TransformerConfig, dp: usize, budget: u64) -> Row {
    let trace = Tracer::default().trace(cfg, 1, true);
    let mut input = input_from_trace(&trace, 4 << 20, dp, budget);
    // Keep every layer feasible (MoE layers gather every expert): floor the
    // budget at 1.25x the largest single-layer requirement. This is a
    // planning-cost benchmark, not a capacity experiment.
    let need = input
        .layers
        .iter()
        .map(|l| l.full_param_bytes + l.working_set)
        .max()
        .unwrap_or(0);
    input.gpu_budget = input.gpu_budget.max(need + need / 4);
    Row { name, input }
}

/// A replan case: a named mutation of `base`, expressed both as the mutated
/// input (for the from-scratch side) and as forward/reverse deltas (for the
/// incremental side, applied alternately so each timed replan starts from a
/// warm session with reusable buffers).
struct DeltaCase {
    name: String,
    base: SchedulerInput,
    mutated: SchedulerInput,
}

impl DeltaCase {
    fn single_layer(model: &str, base: &SchedulerInput) -> Self {
        // A one-byte working-set nudge on one layer: the canonical local
        // delta (an activation-footprint re-estimate). The planner must
        // revalidate, recompute the touched layer and diff triggers, but the
        // surviving decisions let the emission patch in place.
        let idx = base.layers.len() / 2;
        let mut mutated = base.clone();
        mutated.layers[idx].working_set += 1;
        Self {
            name: format!("replan-single-layer-{model}"),
            base: base.clone(),
            mutated,
        }
    }

    fn outage(model: &str, base: &SchedulerInput) -> Self {
        // A degraded fleet tightens the budget by 1/16 — a pure capacity
        // delta, the Engine::run_online outage splice.
        let mut mutated = base.clone();
        mutated.gpu_budget -= mutated.gpu_budget / 16;
        Self {
            name: format!("replan-outage-{model}"),
            base: base.clone(),
            mutated,
        }
    }

    fn resize(model: &str, base: &SchedulerInput, resized: &SchedulerInput) -> Self {
        // Elastic resize dp 8 → 16: every layer's shard halves — the delta
        // touches all layers, the fast path's worst case.
        Self {
            name: format!("replan-resize-{model}"),
            base: base.clone(),
            mutated: resized.clone(),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let reps = if quick { 1 } else { 3 };
    let gib = 1u64 << 30;
    let rows = vec![
        // The acceptance input: ~10⁵ pages over ≥192 compute steps (384
        // layers × 2 passes = 768 steps — the 100T-scale depth regime of
        // Table 5 where the old per-page planner went quadratic).
        Row {
            name: "synthetic-100k-pages",
            input: synthetic(384, 261, 1024, 8),
        },
        // Paper-scale model configs (one-server dp=8 keeps shards page-rich).
        model_row("gpt3-13b", &TransformerConfig::gpt3_13b(), 8, 30 * gib),
        model_row("gpt3-175b", &TransformerConfig::gpt3_175b(), 8, 30 * gib),
        model_row(
            "gpt3-1t",
            &TransformerConfig::gpt3_175b().with_layers(548),
            8,
            30 * gib,
        ),
        model_row(
            "t5-moe-1.2t",
            &TransformerConfig::t5_moe_1_2t(),
            8,
            30 * gib,
        ),
    ];

    let sched = UnifiedScheduler::default();
    let mut table = Experiment::new(
        "plan_bench",
        "Algorithm 1 planning time: segment-tree planner vs. per-page oracle",
        &[
            "input",
            "layers",
            "steps",
            "pages",
            "optimized",
            "oracle",
            "speedup",
            "identical",
        ],
    );
    let recorder = Recorder::enabled();
    let plan_us = recorder.histogram(
        "plan.optimized_us",
        // Planning-latency decades: 100 µs .. 10 s of wall time.
        &[100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000],
    );
    let mut records = Vec::new();
    for row in &rows {
        let pages: usize = row.input.layers.iter().map(|l| l.shard_pages.len()).sum();
        let (opt_s, fast): (f64, Schedule) =
            time_best(reps, || sched.schedule(&row.input).expect("feasible"));
        let (ora_s, slow) = time_best(1, || {
            oracle::schedule(&sched, &row.input).expect("feasible")
        });
        let identical = fast == slow;
        assert!(
            identical,
            "{}: optimized and oracle schedules diverge",
            row.name
        );
        let speedup = ora_s / opt_s.max(1e-9);
        recorder.counter("plan.rows").inc();
        plan_us.observe((opt_s * 1e6) as u64);
        recorder
            .gauge(&format!("plan.pages.{}", row.name))
            .set(pages as u64);
        table.row(vec![
            row.name.to_string(),
            row.input.layers.len().to_string(),
            row.input.steps.len().to_string(),
            pages.to_string(),
            format!("{:.2} ms", opt_s * 1e3),
            format!("{:.2} ms", ora_s * 1e3),
            format!("{speedup:.1}x"),
            identical.to_string(),
        ]);
        records.push(serde_json::json!({
            "name": row.name,
            "layers": row.input.layers.len(),
            "steps": row.input.steps.len(),
            "pages": pages,
            "tasks": fast.tasks.len(),
            "optimized_ms": opt_s * 1e3,
            "oracle_ms": ora_s * 1e3,
            "speedup": speedup,
            "identical": identical,
        }));
    }
    // Incremental replanning (the ReplanDelta fast path) vs. a from-scratch
    // schedule of the same mutated input. Columns map as: optimized =
    // warm-session incremental replan, oracle = full schedule() of the
    // mutated input. `identical` asserts the session's emitted schedule is
    // byte-equal to the from-scratch one.
    let mut cases = Vec::new();
    for (model, cfg) in [
        ("gpt3-13b", TransformerConfig::gpt3_13b()),
        ("gpt3-175b", TransformerConfig::gpt3_175b()),
        ("gpt3-1t", TransformerConfig::gpt3_175b().with_layers(548)),
    ] {
        let base = model_row("base", &cfg, 8, 30 * gib).input;
        let resized = model_row("resized", &cfg, 16, 30 * gib).input;
        cases.push(DeltaCase::single_layer(model, &base));
        cases.push(DeltaCase::outage(model, &base));
        cases.push(DeltaCase::resize(model, &base, &resized));
    }
    for case in &cases {
        let fwd = ReplanDelta::diff(&case.base, &case.mutated);
        let rev = ReplanDelta::diff(&case.mutated, &case.base);
        let mut planner = Planner::new(sched.clone(), case.base.clone()).expect("feasible base");
        // Alternate forward/reverse applies: each timed replan runs on a
        // warm session whose timeline and emission buffers are reused
        // (reset, not reallocated). Best-of over both directions.
        let mut inc_s = f64::INFINITY;
        for _ in 0..reps {
            for delta in [&fwd, &rev] {
                let t0 = Instant::now();
                planner.replan(delta).expect("feasible delta");
                inc_s = inc_s.min(t0.elapsed().as_secs_f64());
            }
        }
        planner.replan(&fwd).expect("feasible delta"); // land on `mutated`
        let outcome = planner.last_outcome();
        let (full_s, full): (f64, Schedule) =
            time_best(reps, || sched.schedule(&case.mutated).expect("feasible"));
        let identical = *planner.schedule() == full;
        assert!(
            identical,
            "{}: incremental replan diverges from from-scratch schedule",
            case.name
        );
        let speedup = full_s / inc_s.max(1e-9);
        let pages: usize = case
            .mutated
            .layers
            .iter()
            .map(|l| l.shard_pages.len())
            .sum();
        recorder.counter("plan.replans").inc();
        recorder.counter("plan.replan_ns").add((inc_s * 1e9) as u64);
        recorder
            .counter("plan.layers_reused")
            .add(outcome.layers_reused as u64);
        plan_us.observe((inc_s * 1e6) as u64);
        table.row(vec![
            case.name.clone(),
            case.mutated.layers.len().to_string(),
            case.mutated.steps.len().to_string(),
            pages.to_string(),
            format!("{:.3} ms", inc_s * 1e3),
            format!("{:.3} ms", full_s * 1e3),
            format!("{speedup:.1}x"),
            identical.to_string(),
        ]);
        records.push(serde_json::json!({
            "name": case.name.clone(),
            "layers": case.mutated.layers.len(),
            "steps": case.mutated.steps.len(),
            "pages": pages,
            "tasks": full.tasks.len(),
            "optimized_ms": inc_s * 1e3,
            "oracle_ms": full_s * 1e3,
            "speedup": speedup,
            "identical": identical,
            "layers_reused": outcome.layers_reused,
            "layers_touched": outcome.layers_touched,
            "patched_in_place": outcome.patched_in_place,
        }));
    }

    table.note(
        "Optimized = lazy range-add/range-max segment-tree timeline with batched \
         per-layer evict/re-add; oracle = retained per-page O(pages × steps) \
         implementation. Both emit byte-identical schedules (asserted). \
         replan-* rows compare a warm incremental session (optimized) against \
         a from-scratch schedule of the mutated input (oracle).",
    );
    table.emit();

    std::fs::create_dir_all("target").ok();
    let out = args
        .iter()
        .find(|a| !a.starts_with('-'))
        .cloned()
        .unwrap_or_else(|| {
            if quick {
                // Smoke runs must not overwrite the checked-in baseline.
                "target/BENCH_plan.json".to_string()
            } else {
                format!("{}/../../BENCH_plan.json", env!("CARGO_MANIFEST_DIR"))
            }
        });
    let doc = serde_json::json!({
        "id": "plan_bench",
        "generated_by": "cargo run --release -p angel-bench --bin planning_cost",
        "unit": "milliseconds (best of 3 optimized, single oracle run)",
        "inputs": records,
    });
    std::fs::write(&out, serde_json::to_string_pretty(&doc).unwrap() + "\n")
        .expect("write BENCH_plan.json");
    println!("\nwrote {out}");

    std::fs::create_dir_all("target").ok();
    let path = "target/planning_metrics.json";
    let json = recorder.snapshot().to_json_string();
    std::fs::write(path, &json).expect("write metrics snapshot");
    let snap = MetricsSnapshot::from_json_str(&json).expect("snapshot round-trips");
    let hist = &snap.histograms["plan.optimized_us"];
    println!(
        "wrote {path}: {} inputs planned, mean optimized time {:.2} ms",
        snap.counters.get("plan.rows").copied().unwrap_or(0),
        hist.sum as f64 / hist.total.max(1) as f64 / 1e3,
    );
}
