//! Ablation — which Unified Scheduler design choices matter (Section 4.2)?
//!
//! Toggles, one at a time, on a memory-pressured model:
//! * phase 2 all-gather advancement (overlap communication with earlier
//!   compute);
//! * the dynamic GPU cache of optimizer states (GPU-side updates);
//! * activation recomputation.

use angel_bench::{fmt_sps, Experiment};
use angel_core::{Engine, EngineConfig};
use angel_model::TransformerConfig;

/// Best throughput over a batch sweep (each variant picks its own batch, as
/// the paper's runs do).
fn best(model: &TransformerConfig, cfg: &EngineConfig) -> Option<(u64, f64, f64, f64, usize, f64)> {
    let mut out: Option<(u64, f64, f64, f64, usize, f64)> = None;
    for b in [1u64, 2, 4, 8, 12, 16, 24, 32] {
        let mut c = cfg.clone();
        c.batch_size = b;
        if let Ok(mut e) = Engine::initialize(model, &c) {
            let gathers = e.schedule().stats.gathers_advanced;
            let cached = e.cache_plan().cached_fraction;
            let s = e.train_iteration();
            if out.is_none_or(|(_, sp, ..)| s.samples_per_sec > sp) {
                out = Some((
                    b,
                    s.samples_per_sec,
                    s.gpu_utilization,
                    s.overlap_ratio,
                    gathers,
                    cached,
                ));
            }
        }
    }
    out
}

fn main() {
    for model in [TransformerConfig::gpt3_13b(), TransformerConfig::gpt3_30b()] {
        let base = EngineConfig::single_server();
        let mut table = Experiment::new(
            "ablation-scheduler",
            "Unified Scheduler ablation, 1×8 GPUs, best batch per variant",
            &[
                "Variant",
                "Best batch",
                "Samples/s",
                "GPU util",
                "Overlap",
                "Gathers adv.",
                "Cached",
            ],
        );
        table.note(format!("Model: {}", model.name));

        let variants: Vec<(&str, EngineConfig)> = vec![
            ("full Angel-PTM", base.clone()),
            (
                "− phase-2 advancement",
                base.clone().with_phase2_advance(false),
            ),
            ("− GPU cache", base.clone().with_gpu_cache(false)),
            ("− recomputation", base.clone().with_recompute(false)),
        ];

        let mut full_sps = None;
        for (name, cfg) in variants {
            match best(&model, &cfg) {
                Some((b, sps, util, overlap, gathers, cached)) => {
                    if full_sps.is_none() {
                        full_sps = Some(sps);
                    }
                    table.row(vec![
                        name.into(),
                        b.to_string(),
                        format!(
                            "{} ({:+.1}%)",
                            fmt_sps(sps),
                            (sps / full_sps.unwrap() - 1.0) * 100.0
                        ),
                        format!("{:.2}", util),
                        format!("{:.2}", overlap),
                        gathers.to_string(),
                        format!("{:.0}%", cached * 100.0),
                    ]);
                }
                None => {
                    table.row(vec![
                        name.into(),
                        "—".into(),
                        "OOM".into(),
                        "—".into(),
                        "—".into(),
                        "—".into(),
                        "—".into(),
                    ]);
                }
            }
        }
        table.note(
            "Dropping phase-2 advancement serializes gathers behind compute; dropping the \
             GPU cache keeps optimizer traffic on CPU/PCIe (visible when a large cached \
             fraction was possible); dropping recomputation caps the feasible batch.",
        );
        table.emit();

        // The cache's regime is the small-batch one (the paper's fine-tuning
        // workloads): at max batch activations leave it no room.
        let mut cache_table = Experiment::new(
            "ablation-cache",
            "GPU-cache ablation at batch 2 (the small-batch fine-tuning regime)",
            &["Variant", "Samples/s", "Cached", "GPU util"],
        );
        cache_table.note(format!("Model: {}", model.name));
        for (name, cfg) in [
            ("with GPU cache", base.clone().with_batch_size(2)),
            (
                "without GPU cache",
                base.clone().with_batch_size(2).with_gpu_cache(false),
            ),
        ] {
            if let Ok(mut e) = Engine::initialize(&model, &cfg) {
                let cached = e.cache_plan().cached_fraction;
                let s = e.train_iteration();
                cache_table.row(vec![
                    name.into(),
                    fmt_sps(s.samples_per_sec),
                    format!("{:.0}%", cached * 100.0),
                    format!("{:.2}", s.gpu_utilization),
                ]);
            }
        }
        cache_table.emit();
    }
}
