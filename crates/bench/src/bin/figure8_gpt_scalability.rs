//! Figure 8 — scalability of Angel-PTM training GPT3-175B on 256→768 GPUs.
//!
//! The paper reports super-linear scaling: 11.68 samples/s on 256 GPUs up to
//! 36.46 on 768 (3.12× for 3× the GPUs), because spreading model states over
//! more GPUs frees memory for larger micro-batches, CPU updates parallelize
//! over more hosts and movements over more PCIe channels. We reproduce the
//! mechanism: per-GPU batch is chosen as the largest that fits at each fleet
//! size, so bigger fleets climb the GPU-efficiency curve.

use angel_bench::{fmt_ratio, fmt_sps, Experiment};
use angel_core::{Engine, EngineConfig};
use angel_model::TransformerConfig;

fn best_at(servers: usize, model: &TransformerConfig) -> Option<(u64, f64)> {
    let mut best: Option<(u64, f64)> = None;
    for b in [1u64, 2, 4, 8, 16, 32] {
        let cfg = EngineConfig::servers(servers).with_batch_size(b);
        if let Ok(mut e) = Engine::initialize(model, &cfg) {
            let s = e.train_iteration();
            if best.is_none_or(|(_, sp)| s.samples_per_sec > sp) {
                best = Some((b, s.samples_per_sec));
            }
        }
    }
    best
}

fn main() {
    let model = TransformerConfig::gpt3_175b();
    let mut table = Experiment::new(
        "figure8",
        "Scalability on GPT3-175B (paper: 11.68 sps @256 GPUs → 36.46 @768, 3.12× super-linear)",
        &[
            "GPUs",
            "Micro-batch/GPU",
            "Samples/s",
            "Scaling vs 256",
            "Linear would be",
        ],
    );
    let fleets = [32usize, 48, 64, 80, 96]; // 256..768 GPUs
    let mut base: Option<f64> = None;
    for servers in fleets {
        let gpus = servers * 8;
        match best_at(servers, &model) {
            Some((b, sps)) => {
                let baseline = *base.get_or_insert(sps);
                table.row(vec![
                    gpus.to_string(),
                    b.to_string(),
                    fmt_sps(sps),
                    fmt_ratio(sps / baseline),
                    fmt_ratio(gpus as f64 / 256.0),
                ]);
            }
            None => {
                table.row(vec![
                    gpus.to_string(),
                    "—".into(),
                    "OOM".into(),
                    "—".into(),
                    "—".into(),
                ]);
            }
        }
    }
    table.note(
        "Super-linear scaling comes from per-GPU micro-batch growth as states spread \
         thinner (GPU efficiency curve) and from update/movement parallelism across \
         hosts, as in the paper's analysis.",
    );
    table.emit();
}
