//! Trace-event schema linter for the exported timelines, run by CI after
//! `observe` / `timeline_export`.
//!
//! ```text
//! trace_lint [--min-pids N] [--min-counter-tracks N] FILE...
//! trace_lint --metrics FILE...
//! ```
//!
//! Trace mode checks every event in `traceEvents` against the Chrome
//! trace-event format: a known phase (`M`, `X`, `C`, `i`), integer
//! `pid`/`tid`, finite non-negative `ts`/`dur` (a NaN or infinite float
//! serializes as JSON `null` and is rejected here), counter values present
//! and finite, and metadata events carrying a name. `--min-pids` /
//! `--min-counter-tracks` additionally assert the merged-timeline shape.
//! Metrics mode parses each file as a [`MetricsSnapshot`] and re-checks the
//! histogram invariants. Any violation prints the offending event and exits
//! non-zero.

use angel_core::MetricsSnapshot;

/// Finite non-negative number, required present (JSON `null` = non-finite
/// float at serialization time — exactly the corruption this linter exists
/// to catch).
fn finite_nonneg(v: &serde_json::Value, what: &str) -> Result<f64, String> {
    let x = v
        .as_f64()
        .ok_or_else(|| format!("{what} is {v:?}, expected a finite number"))?;
    if !x.is_finite() {
        return Err(format!("{what} is not finite"));
    }
    if x < 0.0 {
        return Err(format!("{what} is negative ({x})"));
    }
    Ok(x)
}

fn lint_event(e: &serde_json::Value) -> Result<(), String> {
    let ph = e["ph"].as_str().ok_or_else(|| "missing ph".to_string())?;
    e["pid"].as_u64().ok_or("pid not a u64")?;
    let name = e["name"].as_str().ok_or("missing name")?;
    // tid is required everywhere except process-scoped metadata
    // (process_name has no thread).
    if ph != "M" || name != "process_name" {
        e["tid"].as_u64().ok_or("tid not a u64")?;
    }
    match ph {
        "M" => {
            if name == "thread_name" || name == "process_name" {
                e["args"]["name"]
                    .as_str()
                    .ok_or("metadata without args.name")?;
            }
        }
        "X" => {
            finite_nonneg(&e["ts"], "ts")?;
            finite_nonneg(&e["dur"], "dur")?;
        }
        "i" => {
            finite_nonneg(&e["ts"], "ts")?;
        }
        "C" => {
            finite_nonneg(&e["ts"], "ts")?;
            finite_nonneg(&e["args"]["value"], "args.value")?;
        }
        other => return Err(format!("unknown phase {other:?}")),
    }
    Ok(())
}

fn lint_trace(text: &str, min_pids: usize, min_counter_tracks: usize) -> Result<String, String> {
    let doc: serde_json::Value =
        serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = doc["traceEvents"]
        .as_array()
        .ok_or("no traceEvents array")?;
    if events.is_empty() {
        return Err("empty traceEvents".into());
    }
    let mut pids = std::collections::BTreeSet::new();
    let mut counter_tracks = std::collections::BTreeSet::new();
    for (i, e) in events.iter().enumerate() {
        lint_event(e).map_err(|msg| format!("event {i}: {msg}: {e:?}"))?;
        pids.insert(e["pid"].as_u64().unwrap());
        if e["ph"].as_str() == Some("C") {
            counter_tracks.insert(e["name"].as_str().unwrap().to_string());
        }
    }
    if pids.len() < min_pids {
        return Err(format!("{} pid(s), need >= {min_pids}", pids.len()));
    }
    if counter_tracks.len() < min_counter_tracks {
        return Err(format!(
            "{} counter track(s) {counter_tracks:?}, need >= {min_counter_tracks}",
            counter_tracks.len()
        ));
    }
    Ok(format!(
        "{} events, {} processes, {} counter tracks",
        events.len(),
        pids.len(),
        counter_tracks.len()
    ))
}

fn lint_metrics(text: &str) -> Result<String, String> {
    let snap = MetricsSnapshot::from_json_str(text)?;
    for (name, h) in &snap.histograms {
        let by_bucket: u64 = h.counts.iter().sum();
        if by_bucket != h.total {
            return Err(format!(
                "histogram {name}: bucket counts sum to {by_bucket}, total says {}",
                h.total
            ));
        }
    }
    Ok(format!(
        "{} counters, {} gauges, {} histograms",
        snap.counters.len(),
        snap.gauges.len(),
        snap.histograms.len()
    ))
}

fn main() {
    let mut metrics_mode = false;
    let mut min_pids = 1usize;
    let mut min_counter_tracks = 0usize;
    let mut files = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--metrics" => metrics_mode = true,
            "--min-pids" => {
                min_pids = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--min-pids N");
            }
            "--min-counter-tracks" => {
                min_counter_tracks = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--min-counter-tracks N");
            }
            _ => files.push(a),
        }
    }
    if files.is_empty() {
        eprintln!("usage: trace_lint [--metrics] [--min-pids N] [--min-counter-tracks N] FILE...");
        std::process::exit(2);
    }
    let mut failed = false;
    for f in &files {
        let text = match std::fs::read_to_string(f) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("FAIL {f}: {e}");
                failed = true;
                continue;
            }
        };
        let res = if metrics_mode {
            lint_metrics(&text)
        } else {
            lint_trace(&text, min_pids, min_counter_tracks)
        };
        match res {
            Ok(summary) => println!("ok   {f}: {summary}"),
            Err(msg) => {
                eprintln!("FAIL {f}: {msg}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
