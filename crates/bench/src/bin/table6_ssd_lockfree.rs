//! Table 6 — large-scale T5-MoE training with SSD, with and without the
//! Lock-Free Updating Mechanism (throughput columns; the validation-loss
//! columns are reproduced by real training in `table6_convergence`).
//!
//! Paper rows: AngelPTM 1T @64 GPUs = 37.26 samples/s; 10T @576 = 317.82;
//! +Lock-Free 10T @576 = 942.31 (2.96×), loss unharmed.
//!
//! Reproduction note (documented in EXPERIMENTS.md): the paper's synchronous
//! 10T baseline cannot be updating every FP32 state on every iteration —
//! ~2 TB/server of SSD traffic per update cycle at 3.5 GB/s would take
//! minutes, not the seconds its throughput implies — so the sync rows must
//! already amortize updates over `U` gradient-accumulation iterations, as is
//! standard at these batch sizes. We therefore report the sync/lock-free
//! comparison as a function of U: sync pays `ssd_cycle/U` on the critical
//! path every iteration, lock-free hides it entirely (at the cost of the
//! staleness the convergence experiment measures). The paper's 2.96× falls
//! where `ssd_cycle/U ≈ 2× compute`.

use angel_bench::{fmt_params, fmt_ratio, fmt_sps, Experiment};
use angel_core::{Engine, EngineConfig};
use angel_model::{ModelFamily, TransformerConfig};

/// A T5-MoE scaled to roughly `target` parameters by choosing the expert
/// count (the paper scales the same way: "we scale up the model to 10T by
/// increasing the number of experts").
fn moe_with_params(target: u64) -> TransformerConfig {
    let base = TransformerConfig::t5_moe_1_2t();
    let per_expert = base.ffn_params_per_expert() * base.layers as u64;
    let experts = (target / per_expert).max(1) as usize;
    let mut cfg = base.with_experts(experts);
    cfg.name = format!("T5-MoE-{}", fmt_params(cfg.total_params()));
    cfg.family = ModelFamily::T5Moe;
    cfg
}

fn main() {
    let mut table = Experiment::new(
        "table6",
        "T5-MoE training with SSD: synchronous vs Lock-Free Updating (Algorithm 2)",
        &[
            "#Params",
            "#GPUs",
            "Mode",
            "Samples/s",
            "vs sync",
            "Staleness (iters)",
            "Paper",
        ],
    );

    let batch = 8u64;
    for (target, servers, paper_sync, paper_lf) in [
        (1_000_000_000_000u64, 8usize, "37.26", ""),
        (10_000_000_000_000u64, 72usize, "317.82", "942.31 (2.96x)"),
    ] {
        let model = moe_with_params(target);
        let gpus = servers * 8;

        let cfg = EngineConfig::servers(servers)
            .with_batch_size(batch)
            .with_ssd(true);
        let Ok(mut lf_engine) = Engine::initialize(&model, &cfg.clone().with_lock_free(true))
        else {
            table.row(vec![
                fmt_params(model.total_params()),
                gpus.to_string(),
                "—".into(),
                "OOM".into(),
                "—".into(),
                "—".into(),
                String::new(),
            ]);
            continue;
        };
        let lf = lf_engine.train_iteration();
        let t_gpu = lf.iter_time_ns as f64;
        let t_ssd = lf.update_cycle_ns as f64;

        // Synchronous at several accumulation periods U.
        let u_star = (t_ssd / (2.0 * t_gpu)).ceil().max(1.0) as u64;
        for u in [u_star, 4 * u_star] {
            let sync_iter = t_gpu + t_ssd / u as f64;
            let sync_sps = (batch * gpus as u64) as f64 / (sync_iter / 1e9);
            table.row(vec![
                fmt_params(model.total_params()),
                gpus.to_string(),
                format!("sync (U={u})"),
                fmt_sps(sync_sps),
                "1.00x".into(),
                "0.0".into(),
                if u == u_star {
                    paper_sync.into()
                } else {
                    String::new()
                },
            ]);
            if u == u_star {
                let lf_sps = (batch * gpus as u64) as f64 / (t_gpu / 1e9);
                table.row(vec![
                    fmt_params(model.total_params()),
                    gpus.to_string(),
                    "+ Lock-Free".into(),
                    fmt_sps(lf_sps),
                    fmt_ratio(lf_sps / sync_sps),
                    format!("{:.1}", t_ssd / (u as f64 * t_gpu)),
                    paper_lf.into(),
                ]);
            }
        }
    }
    table.note(
        "U = gradient-accumulation iterations per optimizer update; U* is where the \
         exposed SSD cost is 2× compute, matching the paper's observed 2.96× lock-free \
         speedup. Validation-loss parity is demonstrated with real training in \
         `table6_convergence`.",
    );
    table.emit();
}
