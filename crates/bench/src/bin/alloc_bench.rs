//! Allocation churn benchmark: page-pool reuse and compaction A/B.
//!
//! Section 3.2 of the paper motivates pages by the *churn* of offload
//! training: the same tensor shapes are allocated and released every
//! iteration as model states move between tiers. This harness measures the
//! two production features layered on that design:
//!
//! 1. **memsim churn** — the size-class [`PooledAllocator`] against every
//!    baseline policy (best-fit, naive first-fit, chunk, segregated-fit) on
//!    a recurring-shape workload, with steady-state hit rate;
//! 2. **page churn A/B** — `angel-core`'s `PageAllocator` with pooled page
//!    reuse (`reuse_limit = None`) vs. the no-pool baseline
//!    (`reuse_limit = Some(0)`), on backed pages (where reuse skips
//!    rematerialization/zeroing) and virtual pages (address arithmetic
//!    only, the honest control);
//! 3. **compaction** — a deterministically fragmented device is compacted
//!    and the recovered frames and fragmentation drop are recorded.
//!
//! Writes the machine-readable baseline `BENCH_alloc.json` at the repo root
//! (or to the path given as the first non-flag argument). `--quick` shrinks
//! iteration counts for CI smoke runs. Regenerate with:
//!
//! ```text
//! cargo run --release -p angel-bench --bin alloc_bench
//! ```

use angel_bench::Experiment;
use angel_core::{PageAllocator, Recorder};
use angel_hw::DeviceId;
use angel_memsim::{
    AddressAllocator, Allocation, BestFitAllocator, ChunkAllocator, NaiveAllocator,
    PooledAllocator, SegregatedFitAllocator,
};
use std::time::Instant;

/// Recurring per-iteration tensor shapes (bytes) for the memsim workload:
/// a mix of activation-sized, gradient-shard and metadata blocks.
const SHAPES: [u64; 8] = [
    300_000, 48_000, 1_000_000, 48_000, 524_288, 12_288, 786_432, 64_000,
];

/// Drive one allocator through `iters` iterations of the recurring-shape
/// workload. Returns `(total_s, steady_s, failures)`: the steady-state
/// window excludes `warmup` iterations.
fn memsim_churn(alloc: &mut dyn AddressAllocator, iters: usize, warmup: usize) -> (f64, f64, u64) {
    let mut failures = 0u64;
    let mut steady = 0.0f64;
    let t0 = Instant::now();
    for iter in 0..iters {
        let t_iter = Instant::now();
        let mut live: Vec<Allocation> = Vec::with_capacity(SHAPES.len());
        for &size in &SHAPES {
            match alloc.allocate(size) {
                Ok(a) => live.push(a),
                Err(_) => failures += 1,
            }
        }
        for a in live {
            alloc.free(a);
        }
        if iter >= warmup {
            steady += t_iter.elapsed().as_secs_f64();
        }
    }
    (t0.elapsed().as_secs_f64(), steady, failures)
}

/// Per-iteration tensor sizes for the page-churn workload, in units of the
/// page size (mixed large multi-page tensors plus one small own-page
/// tensor — the shapes that exercise open-page sharing and whole-page
/// reuse).
const PAGE_SHAPES: [f64; 6] = [3.5, 2.25, 1.5, 0.5, 4.0, 1.75];

/// Churn a `PageAllocator`: allocate the shape set, release everything,
/// repeat. Every release returns whole pages, so the pooled configuration
/// serves the next iteration entirely from cached frames.
fn page_churn(backed: bool, reuse_limit: Option<usize>, iters: usize) -> (f64, u64, u64) {
    let ps = 1u64 << 20;
    let rec = Recorder::enabled();
    let mut a = PageAllocator::with_page_size(ps, backed).with_reuse_limit(reuse_limit);
    a.set_recorder(rec.clone());
    a.add_pool(DeviceId::CPU, 32 * ps).expect("fresh pool");
    let t0 = Instant::now();
    for _ in 0..iters {
        let live: Vec<_> = PAGE_SHAPES
            .iter()
            .map(|&f| {
                a.alloc_tensor_raw((f * ps as f64) as u64, DeviceId::CPU)
                    .expect("churn fits the pool")
            })
            .collect();
        for id in live {
            a.release_tensor(id).expect("live tensor");
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let snap = rec.snapshot();
    (
        elapsed,
        snap.counters["alloc.pages_reused"],
        snap.counters["alloc.pages_materialized"],
    )
}

/// Build a deterministically fragmented device and compact it: 16 pairs of
/// 1.5-page tensors share tail pages; releasing the first of each pair
/// leaves 16 partial pages with stranded bump space that only a
/// squeeze-and-consolidate pass can recover.
fn compaction_record() -> serde_json::Value {
    let ps = 256u64 * 1024;
    let mut a = PageAllocator::with_page_size(ps, true);
    a.add_pool(DeviceId::CPU, 64 * ps).expect("fresh pool");
    let mut first = Vec::new();
    for _ in 0..16 {
        first.push(
            a.alloc_tensor_raw(3 * ps / 2, DeviceId::CPU)
                .expect("pair head"),
        );
        a.alloc_tensor_raw(3 * ps / 2, DeviceId::CPU)
            .expect("pair tail");
    }
    for id in first {
        a.release_tensor(id).expect("live");
    }
    let before = a.stats(DeviceId::CPU);
    let report = a.compact_device(DeviceId::CPU).expect("pool exists");
    let after = a.stats(DeviceId::CPU);
    serde_json::json!({
        "frag_ppm_before": (before.internal_frag() * 1e6) as u64,
        "frag_ppm_after": (after.internal_frag() * 1e6) as u64,
        "pages_compacted": report.pages_compacted,
        "tenant_moves": report.tenant_moves,
        "pages_reclaimed": report.pages_reclaimed,
        "bytes_copied": report.bytes_copied,
    })
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (memsim_iters, page_iters) = if quick { (40, 15) } else { (400, 150) };
    let warmup = 2;

    // --- 1. memsim churn across policies -------------------------------
    let cap = 64u64 << 20;
    let mut table = Experiment::new(
        "alloc_bench",
        "Allocation churn: size-class reuse pool vs. baseline policies",
        &["policy", "total", "steady/iter", "failures", "hit rate"],
    );
    let mut memsim_rows = Vec::new();
    let mut pooled = PooledAllocator::new(BestFitAllocator::new(cap));
    let mut best_fit = BestFitAllocator::new(cap);
    let mut naive = NaiveAllocator::new(cap);
    let mut chunk = ChunkAllocator::new(cap, 1 << 20);
    let mut segfit = SegregatedFitAllocator::new(cap);
    let policies: Vec<&mut dyn AddressAllocator> =
        vec![&mut best_fit, &mut naive, &mut chunk, &mut segfit];
    let steady_iters = (memsim_iters - warmup) as f64;
    {
        let (total, steady, failures) = memsim_churn(&mut pooled, memsim_iters, warmup);
        let hit_rate = pooled.hit_rate();
        table.row(vec![
            pooled.name().to_string(),
            format!("{:.2} ms", total * 1e3),
            format!("{:.2} us", steady / steady_iters * 1e6),
            failures.to_string(),
            format!("{:.1}%", hit_rate * 100.0),
        ]);
        memsim_rows.push(serde_json::json!({
            "name": pooled.name(),
            "total_ms": total * 1e3,
            "steady_us_per_iter": steady / steady_iters * 1e6,
            "failures": failures,
            "hit_rate": hit_rate,
        }));
    }
    for alloc in policies {
        let name = alloc.name();
        let (total, steady, failures) = memsim_churn(alloc, memsim_iters, warmup);
        table.row(vec![
            name.to_string(),
            format!("{:.2} ms", total * 1e3),
            format!("{:.2} us", steady / steady_iters * 1e6),
            failures.to_string(),
            "-".to_string(),
        ]);
        memsim_rows.push(serde_json::json!({
            "name": name,
            "total_ms": total * 1e3,
            "steady_us_per_iter": steady / steady_iters * 1e6,
            "failures": failures,
        }));
    }

    // --- 2. PageAllocator pool-vs-no-pool A/B --------------------------
    let mut ab = Experiment::new(
        "alloc_bench_ab",
        "PageAllocator churn: pooled page reuse vs. no-pool baseline",
        &[
            "pages",
            "pooled",
            "no pool",
            "speedup",
            "reused",
            "materialized (no pool)",
        ],
    );
    let mut page_rows = Vec::new();
    for backed in [true, false] {
        let mode = if backed { "backed" } else { "virtual" };
        let (pooled_s, reused, _) = page_churn(backed, None, page_iters);
        let (no_pool_s, _, materialized) = page_churn(backed, Some(0), page_iters);
        let speedup = no_pool_s / pooled_s.max(1e-9);
        ab.row(vec![
            mode.to_string(),
            format!("{:.2} ms", pooled_s * 1e3),
            format!("{:.2} ms", no_pool_s * 1e3),
            format!("{speedup:.2}x"),
            reused.to_string(),
            materialized.to_string(),
        ]);
        page_rows.push(serde_json::json!({
            "mode": mode,
            "pooled_ms": pooled_s * 1e3,
            "no_pool_ms": no_pool_s * 1e3,
            "speedup": speedup,
            "pages_reused": reused,
            "pages_materialized_no_pool": materialized,
        }));
    }
    ab.note(
        "Backed pages own real zeroed memory: pooled reuse skips the \
         rematerialization memset, which is where the steady-state win comes \
         from. Virtual pages are the control — pure bookkeeping.",
    );

    // --- 3. compaction -------------------------------------------------
    let compaction = compaction_record();

    table.emit();
    ab.emit();
    println!(
        "compaction: {}",
        serde_json::to_string(&compaction).expect("serializable")
    );

    let out = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_else(|| format!("{}/../../BENCH_alloc.json", env!("CARGO_MANIFEST_DIR")));
    let doc = serde_json::json!({
        "id": "alloc_bench",
        "generated_by": "cargo run --release -p angel-bench --bin alloc_bench",
        "unit": "milliseconds (single run per policy)",
        "quick": quick,
        "memsim_churn": memsim_rows,
        "page_churn": page_rows,
        "compaction": compaction,
    });
    std::fs::write(&out, serde_json::to_string_pretty(&doc).unwrap() + "\n")
        .expect("write BENCH_alloc.json");
    println!("\nwrote {out}");
}
