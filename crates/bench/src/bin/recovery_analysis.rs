//! Failure-and-recovery analysis — Section 3.1's observation quantified:
//! "When more GPUs are involved, the Mean Time To Failure (MTTF) is
//! shortened accordingly ... pre-training tasks would encounter GPU failure
//! with a high probability, and should be restarted after failure."
//!
//! For each fleet size of the Figure 8 sweep this prints the fleet MTTF,
//! expected failures over a three-week pre-training run, the checkpoint cost
//! of the model's FP32 states over the servers' SSDs, the Young–Daly
//! checkpoint interval and the resulting goodput.

use angel_bench::Experiment;
use angel_core::plan::lower_checkpoint;
use angel_core::recovery::RecoveryModel;
use angel_core::EngineConfig;
use angel_model::TransformerConfig;

fn main() {
    let model = TransformerConfig::gpt3_175b();
    let run_hours = 21.0 * 24.0; // a three-week pre-training job

    let mut table = Experiment::new(
        "recovery",
        "Failure/recovery economics for a 3-week GPT3-175B run (per-GPU MTTF 50k h)",
        &[
            "GPUs",
            "Fleet MTTF (h)",
            "Failures/run",
            "Ckpt write (s)",
            "Young-Daly (min)",
            "Goodput",
        ],
    );

    for servers in [8usize, 32, 64, 96] {
        let config = EngineConfig::servers(servers).with_batch_size(1);
        let gpus = config.num_gpus();
        // Checkpoint cost from the executed per-layer ssd_write schedule —
        // more ranks means smaller ZeRO shards per SSD, so bigger fleets
        // checkpoint faster.
        let ckpt = lower_checkpoint(&model, &config);
        let m = RecoveryModel::from_lowering(gpus, 50_000.0, &ckpt, 600.0);
        table.row(vec![
            gpus.to_string(),
            format!("{:.0}", m.fleet_mttf_secs() / 3600.0),
            format!("{:.1}", m.expected_failures(run_hours)),
            format!("{:.1}", ckpt.write_secs),
            format!("{:.1}", m.young_daly_interval_secs() / 60.0),
            format!("{:.2}%", m.optimal_goodput() * 100.0),
        ]);
    }
    table.note(
        "Bigger fleets fail more often but also checkpoint faster (more SSDs in \
         parallel), so goodput stays high when the interval follows Young–Daly — the \
         operational case for checkpoint-based recovery that Section 3.1 motivates.",
    );
    table.note(
        "Checkpoint write/restore costs are the makespans of executed \
         plan::lower_checkpoint task graphs (per-layer ZeRO shards on each rank's \
         SSD share), not hand-entered bandwidth arithmetic.",
    );
    table.emit();
}
