//! Failure-and-recovery analysis — Section 3.1's observation quantified:
//! "When more GPUs are involved, the Mean Time To Failure (MTTF) is
//! shortened accordingly ... pre-training tasks would encounter GPU failure
//! with a high probability, and should be restarted after failure."
//!
//! For each fleet size of the Figure 8 sweep this prints the fleet MTTF,
//! expected failures over a three-week pre-training run, the checkpoint cost
//! of the model's FP32 states over the servers' SSDs, the Young–Daly
//! checkpoint interval and the resulting goodput.

use angel_bench::Experiment;
use angel_core::recovery::{checkpoint_write_secs, RecoveryModel};
use angel_model::TransformerConfig;

fn main() {
    let model = TransformerConfig::gpt3_175b();
    // Restartable state: FP32 master + moments (12 B/param).
    let state_bytes = model.total_params() * 12;
    let run_hours = 21.0 * 24.0; // a three-week pre-training job

    let mut table = Experiment::new(
        "recovery",
        "Failure/recovery economics for a 3-week GPT3-175B run (per-GPU MTTF 50k h)",
        &[
            "GPUs",
            "Fleet MTTF (h)",
            "Failures/run",
            "Ckpt write (s)",
            "Young-Daly (min)",
            "Goodput",
        ],
    );

    for servers in [8usize, 32, 64, 96] {
        let gpus = servers * 8;
        let ckpt = checkpoint_write_secs(state_bytes, 3_500_000_000, servers);
        let m = RecoveryModel {
            gpus,
            mttf_per_gpu_hours: 50_000.0,
            checkpoint_write_secs: ckpt,
            restart_secs: 600.0,
        };
        table.row(vec![
            gpus.to_string(),
            format!("{:.0}", m.fleet_mttf_secs() / 3600.0),
            format!("{:.1}", m.expected_failures(run_hours)),
            format!("{ckpt:.1}"),
            format!("{:.1}", m.young_daly_interval_secs() / 60.0),
            format!("{:.2}%", m.optimal_goodput() * 100.0),
        ]);
    }
    table.note(
        "Bigger fleets fail more often but also checkpoint faster (more SSDs in \
         parallel), so goodput stays high when the interval follows Young–Daly — the \
         operational case for checkpoint-based recovery that Section 3.1 motivates.",
    );
    table.emit();
}
