//! Table 2 — distribution of tensor sizes within one layer of GPT-3.
//!
//! Generates the per-layer tensor inventory at the Table 2 setting (GPT-3
//! geometry, batch 16 — the batch implied by the table's 768 MB activation
//! class) and prints the size histogram next to the paper's rows.

use angel_bench::Experiment;
use angel_hw::MIB;
use angel_model::inventory::{layer_inventory, size_distribution};
use angel_model::TransformerConfig;

/// The paper's Table 2, verbatim: (size in MB, count).
const PAPER: &[(f64, usize)] = &[
    (3072.0, 4),
    (2304.0, 6),
    (1152.0, 4),
    (768.0, 20),
    (576.0, 12),
    (288.0, 8),
    (0.375, 4),
    (0.046875, 6),
    (0.0234375, 4),
];

fn main() {
    let cfg = TransformerConfig::gpt3_175b_openai().with_seq_len(2048);
    let inv = layer_inventory(&cfg, 0, 16);
    let dist = size_distribution(&inv);

    let mut table = Experiment::new(
        "table2",
        "Distribution of tensor sizes within one layer of GPT-3 (ours vs paper)",
        &["Tensor size (MB)", "Count (ours)", "Count (paper)"],
    );

    let mut matched_large = 0;
    for (size, count) in dist.iter().rev() {
        let mb = *size as f64 / MIB as f64;
        let paper_count = PAPER
            .iter()
            .find(|(p, _)| (p - mb).abs() / p.max(1e-9) < 1e-6)
            .map(|(_, c)| c.to_string())
            .unwrap_or_else(|| "—".into());
        if mb >= 1.0 && paper_count != "—" && paper_count == count.to_string() {
            matched_large += 1;
        }
        table.row(vec![format!("{mb}"), count.to_string(), paper_count]);
    }
    for (mb, c) in PAPER {
        let found = dist
            .iter()
            .any(|(size, _)| (*size as f64 / MIB as f64 - mb).abs() / mb.max(1e-9) < 1e-6);
        if !found {
            table.row(vec![format!("{mb}"), "—".into(), c.to_string()]);
        }
    }
    assert_eq!(
        matched_large, 6,
        "all six ≥1 MB classes must match the paper exactly"
    );
    table.note(
        "All six ≥1 MB size classes match Table 2 exactly. The paper's three sub-MB rows \
         are not derivable from its own Table 1 formulas (see EXPERIMENTS.md); ours list \
         the small tensors that do follow from Table 1 (attention scores at the simplified \
         b×s shape, LayerNorm parameters and optimizer states).",
    );
    table.emit();
}
