//! The Communicator — Section 5 of the paper.
//!
//! "The Communicator in Angel-PTM is responsible for scheduling
//! communication between different network devices, including NIC and
//! NVLink. We implement the Communicator by using the NCCL library ...
//! The Communicator also maintains a queue to store communication tasks and
//! schedules them for execution based on instructions from the Unified
//! Scheduler, thus it enables reordering the tasks in the queue to improve
//! the overlap between computation and communication."
//!
//! NCCL serializes collectives *per communicator*, and a mesh run owns one
//! communicator per parallelism group: the dp group's ZeRO
//! all-gathers/reduce-scatters, the tp group's per-layer all-reduces, and
//! the pp group's point-to-point activation sends each ride their own FIFO
//! channel, so a tp all-reduce never queues behind a dp gather. Each channel
//! is priced by a [`GroupSpec`]: the hierarchical α+β model of
//! [`angel_sim::collectives::hierarchical_collective_ns`] — an intra-server
//! NVLink ring composed with an inter-server NIC tree — parameterized by how
//! the group's ranks are laid out on the [`DeviceMesh`].
//!
//! Within one channel *submission order matters*: a late-needed gather in
//! front of an early-needed one stalls the pipeline. [`Communicator`]
//! therefore buffers enqueued operations and, at [`Communicator::flush`],
//! submits them ordered by trigger id (ties broken by enqueue order) — the
//! reordering the paper describes.

use crate::error::{Error, Result};
use angel_hw::{ClusterSpec, DeviceMesh, Link, MeshAxis};
use angel_sim::collectives::{hierarchical_collective_ns, Collective};
use angel_sim::{Ns, ResourceId, Resources, SimTask, Simulation, Work};

/// Which parallelism group a communication operation belongs to. Each group
/// maps to one NCCL-style FIFO channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CommGroup {
    /// Data parallelism: ZeRO all-gather / reduce-scatter / all-reduce.
    Dp,
    /// Tensor parallelism: per-layer activation all-reduces.
    Tp,
    /// Pipeline parallelism: point-to-point stage boundary transfers.
    Pp,
}

impl CommGroup {
    /// The simulation resource name of this group's channel.
    pub fn channel_name(self) -> &'static str {
        match self {
            CommGroup::Dp => "communicator:dp-channel",
            CommGroup::Tp => "communicator:tp-channel",
            CommGroup::Pp => "communicator:pp-channel",
        }
    }

    /// The mesh axis this group runs along.
    pub fn axis(self) -> MeshAxis {
        match self {
            CommGroup::Dp => MeshAxis::Dp,
            CommGroup::Tp => MeshAxis::Tp,
            CommGroup::Pp => MeshAxis::Pp,
        }
    }

    /// Short lowercase name used in verifier reports ("dp"/"tp"/"pp").
    pub fn short(self) -> &'static str {
        match self {
            CommGroup::Dp => "dp",
            CommGroup::Tp => "tp",
            CommGroup::Pp => "pp",
        }
    }
}

/// The physical layout of one communication group, reduced to what the
/// hierarchical cost model needs: how many ranks participate, how they pack
/// into servers, and which wire each level rides.
#[derive(Debug, Clone)]
pub struct GroupSpec {
    /// Total ranks in the group.
    pub ranks: u64,
    /// Group members co-located on one server (the intra-node ring size).
    pub ranks_per_server: u64,
    /// Servers the group spans (the inter-node tree size).
    pub servers: u64,
    /// Intra-server link (NVLink).
    pub intra: Link,
    /// Inter-server link (per-GPU share of the RoCE NIC).
    pub inter: Link,
}

impl GroupSpec {
    /// A flat fleet of `ranks` GPUs filling servers in order — the layout of
    /// the pure data-parallel (pre-mesh) configuration. Arithmetically
    /// identical to
    /// [`angel_sim::collectives::hierarchical_collective_time_ns`].
    pub fn from_cluster(cluster: &ClusterSpec, ranks: u64) -> Self {
        let per_server = cluster.server.num_gpus() as u64;
        let (ranks_per_server, servers) = if ranks <= per_server {
            (ranks, 1)
        } else {
            (per_server, ranks.div_ceil(per_server))
        };
        Self {
            ranks,
            ranks_per_server,
            servers,
            intra: cluster.server.nvlink.clone(),
            inter: cluster.shared_nic(),
        }
    }

    /// The layout of one `axis` group of `mesh` (homogeneous across groups).
    pub fn from_mesh(mesh: &DeviceMesh, axis: MeshAxis) -> Self {
        Self {
            ranks: mesh.axis_size(axis) as u64,
            ranks_per_server: mesh.colocated_per_server(axis) as u64,
            servers: mesh.group_servers(axis) as u64,
            intra: mesh.cluster().server.nvlink.clone(),
            inter: mesh.cluster().shared_nic(),
        }
    }

    /// Duration of a collective over this group: intra-server ring composed
    /// with inter-server tree.
    pub fn collective_ns(&self, op: Collective, bytes: u64) -> Ns {
        hierarchical_collective_ns(
            op,
            bytes,
            &self.intra,
            &self.inter,
            self.ranks_per_server,
            self.servers,
        )
    }

    /// The wire a point-to-point transfer between adjacent group members
    /// rides: NVLink while the group sits inside one server, the NIC once
    /// it spans servers.
    pub fn p2p_link(&self) -> &Link {
        if self.servers <= 1 {
            &self.intra
        } else {
            &self.inter
        }
    }

    /// Duration of one point-to-point hop of `bytes` (pp activations).
    pub fn p2p_ns(&self, bytes: u64) -> Ns {
        if self.ranks <= 1 {
            return 0;
        }
        self.p2p_link().transfer_ns(bytes)
    }
}

/// What kind of communication operation a [`CommRecord`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommKind {
    /// A group collective (all members participate symmetrically).
    Collective(Collective),
    /// The sending half of a point-to-point transfer (pp boundary).
    P2pSend,
    /// The receiving half of a point-to-point transfer (pp boundary).
    P2pRecv,
}

impl CommKind {
    /// Short human form used in trace excerpts and reports.
    pub fn describe(self) -> String {
        match self {
            CommKind::Collective(op) => format!("{op:?}"),
            CommKind::P2pSend => "P2pSend".into(),
            CommKind::P2pRecv => "P2pRecv".into(),
        }
    }
}

/// One communication operation as submitted to the simulation, in channel
/// program order. The lowered [`angel_sim::SimTask`] only keeps a duration;
/// the SPMD verifier needs the *semantic* description — which group, which
/// op, how many bytes — to project the single-rank lowering onto every mesh
/// rank and match collectives across the group, so the Communicator journals
/// every submission here.
#[derive(Debug, Clone)]
pub struct CommRecord {
    /// The channel (parallelism group) the operation rode.
    pub group: CommGroup,
    /// Collective vs. p2p half.
    pub kind: CommKind,
    /// Payload bytes (per-rank shard size as handed to the cost model).
    pub bytes: u64,
    /// The simulation task id this record describes.
    pub task: usize,
    /// The submitted task's label (mismatch reports cite it).
    pub label: String,
}

/// One group's FIFO channel plus its cost model.
#[derive(Debug)]
struct GroupChannel {
    channel: ResourceId,
    spec: GroupSpec,
}

/// A queued communication operation.
#[derive(Debug, Clone)]
struct Pending {
    group: CommGroup,
    op: Collective,
    bytes: u64,
    trigger: usize,
    deps: Vec<usize>,
    label: String,
    /// Position in the enqueue sequence (stable tie-break).
    seq: usize,
    /// Caller handle used to look up the submitted task id after flush.
    handle: usize,
}

/// The Communicator: a reorderable queue over per-group collective channels.
#[derive(Debug)]
pub struct Communicator {
    dp: GroupChannel,
    tp: Option<GroupChannel>,
    pp: Option<GroupChannel>,
    queue: Vec<Pending>,
    /// handle → submitted sim task id (populated by flush).
    submitted: Vec<Option<usize>>,
    /// Journal of every submitted operation, in submission order.
    log: Vec<CommRecord>,
}

impl Communicator {
    /// A dp-only communicator over a flat fleet of `ranks` GPUs — the
    /// degenerate (pure ZeRO) configuration every pre-mesh caller built.
    pub fn new(resources: &mut Resources, cluster: ClusterSpec, ranks: u64) -> Self {
        let spec = GroupSpec::from_cluster(&cluster, ranks);
        Self {
            dp: GroupChannel {
                channel: resources.add_compute(CommGroup::Dp.channel_name()),
                spec,
            },
            tp: None,
            pp: None,
            queue: Vec::new(),
            submitted: Vec::new(),
            log: Vec::new(),
        }
    }

    /// Per-group channels for a device mesh: the dp channel always exists;
    /// tp and pp channels are registered only when their axis is non-trivial
    /// (so degenerate meshes keep the pre-mesh resource surface).
    pub fn for_mesh(resources: &mut Resources, mesh: &DeviceMesh) -> Self {
        let channel = |r: &mut Resources, g: CommGroup| GroupChannel {
            channel: r.add_compute(g.channel_name()),
            spec: GroupSpec::from_mesh(mesh, g.axis()),
        };
        let dp = channel(resources, CommGroup::Dp);
        let tp = (mesh.tp() > 1).then(|| channel(resources, CommGroup::Tp));
        let pp = (mesh.pp() > 1).then(|| channel(resources, CommGroup::Pp));
        Self {
            dp,
            tp,
            pp,
            queue: Vec::new(),
            submitted: Vec::new(),
            log: Vec::new(),
        }
    }

    fn group(&self, group: CommGroup) -> Option<&GroupChannel> {
        match group {
            CommGroup::Dp => Some(&self.dp),
            CommGroup::Tp => self.tp.as_ref(),
            CommGroup::Pp => self.pp.as_ref(),
        }
    }

    /// The dp channel (the only channel of a degenerate communicator).
    pub fn channel_id(&self) -> ResourceId {
        self.dp.channel
    }

    /// The channel of `group`, if that axis is non-trivial.
    pub fn group_channel(&self, group: CommGroup) -> Option<ResourceId> {
        self.group(group).map(|g| g.channel)
    }

    /// The layout spec of `group`, if that axis is non-trivial.
    pub fn group_spec(&self, group: CommGroup) -> Option<&GroupSpec> {
        self.group(group).map(|g| &g.spec)
    }

    /// Duration model for a dp-group collective.
    pub fn collective_ns(&self, op: Collective, bytes: u64) -> Ns {
        self.dp.spec.collective_ns(op, bytes)
    }

    /// Duration model for a collective on `group`'s channel (0 when the
    /// axis is trivial — a one-rank group communicates nothing).
    pub fn group_collective_ns(&self, group: CommGroup, op: Collective, bytes: u64) -> Ns {
        self.group(group)
            .map_or(0, |g| g.spec.collective_ns(op, bytes))
    }

    /// Queue a dp-group collective. Returns a handle resolvable to the
    /// simulation task id after [`Communicator::flush`].
    pub fn enqueue(
        &mut self,
        op: Collective,
        bytes: u64,
        trigger: usize,
        deps: impl IntoIterator<Item = usize>,
        label: impl Into<String>,
    ) -> usize {
        self.enqueue_on(CommGroup::Dp, op, bytes, trigger, deps, label)
    }

    /// Queue a collective on a specific group's channel.
    pub fn enqueue_on(
        &mut self,
        group: CommGroup,
        op: Collective,
        bytes: u64,
        trigger: usize,
        deps: impl IntoIterator<Item = usize>,
        label: impl Into<String>,
    ) -> usize {
        let handle = self.submitted.len();
        self.submitted.push(None);
        self.queue.push(Pending {
            group,
            op,
            bytes,
            trigger,
            deps: deps.into_iter().collect(),
            label: label.into(),
            seq: self.queue.len(),
            handle,
        });
        handle
    }

    /// Reorder the queue by trigger id and submit everything, each operation
    /// to its group's channel stream. Returns the number of operations whose
    /// position changed.
    pub fn flush(&mut self, sim: &mut Simulation) -> usize {
        let mut ops = std::mem::take(&mut self.queue);
        let before: Vec<usize> = ops.iter().map(|p| p.handle).collect();
        ops.sort_by_key(|p| (p.trigger, p.seq));
        let reordered = ops
            .iter()
            .zip(&before)
            .filter(|(p, &orig)| p.handle != orig)
            .count();
        for p in ops {
            let dur = self.group_collective_ns(p.group, p.op, p.bytes);
            let channel = self.group(p.group).unwrap_or(&self.dp).channel;
            let id = sim.submit(
                SimTask::new(channel, Work::Duration(dur))
                    .with_deps(p.deps.clone())
                    .with_label(p.label.clone()),
            );
            self.submitted[p.handle] = Some(id);
            self.log.push(CommRecord {
                group: p.group,
                kind: CommKind::Collective(p.op),
                bytes: p.bytes,
                task: id,
                label: p.label,
            });
        }
        reordered
    }

    /// The simulation task id for an enqueued operation. Errors with
    /// [`Error::UnflushedCollective`] when the handle was never submitted
    /// via [`Communicator::flush`] (or is unknown) — a plan-wiring bug the
    /// caller can surface instead of aborting.
    pub fn task_id(&self, handle: usize) -> Result<usize> {
        self.submitted
            .get(handle)
            .copied()
            .flatten()
            .ok_or(Error::UnflushedCollective { handle })
    }

    /// Submit one dp-group collective immediately (bypassing the queue) —
    /// used when the caller already emits operations in trigger order, as
    /// the Unified Scheduler's sorted task list does.
    pub fn submit_now(
        &mut self,
        sim: &mut Simulation,
        op: Collective,
        bytes: u64,
        deps: impl IntoIterator<Item = usize>,
        label: impl Into<String>,
    ) -> usize {
        self.submit_now_on(CommGroup::Dp, sim, op, bytes, deps, label)
    }

    /// Submit one collective immediately on a specific group's channel
    /// (falling back to the dp channel when the axis is trivial, with zero
    /// duration — the degenerate group communicates nothing).
    pub fn submit_now_on(
        &mut self,
        group: CommGroup,
        sim: &mut Simulation,
        op: Collective,
        bytes: u64,
        deps: impl IntoIterator<Item = usize>,
        label: impl Into<String>,
    ) -> usize {
        let label = label.into();
        let dur = self.group_collective_ns(group, op, bytes);
        let channel = self.group(group).unwrap_or(&self.dp).channel;
        let id = sim.submit(
            SimTask::new(channel, Work::Duration(dur))
                .with_deps(deps)
                .with_label(label.clone()),
        );
        self.log.push(CommRecord {
            group,
            kind: CommKind::Collective(op),
            bytes,
            task: id,
            label,
        });
        id
    }

    /// Submit one half of a pipeline point-to-point transfer on the pp
    /// channel, priced by the pp group's boundary link (falling back to the
    /// dp channel with zero duration when pp is trivial). `kind` must be
    /// [`CommKind::P2pSend`] or [`CommKind::P2pRecv`]; the two halves of
    /// one transfer carry equal bytes so the verifier can pair them across
    /// adjacent stages.
    pub fn submit_p2p(
        &mut self,
        sim: &mut Simulation,
        kind: CommKind,
        bytes: u64,
        deps: impl IntoIterator<Item = usize>,
        label: impl Into<String>,
    ) -> usize {
        debug_assert!(
            !matches!(kind, CommKind::Collective(_)),
            "collectives go through submit_now_on"
        );
        let label = label.into();
        let (dur, channel) = match self.group(CommGroup::Pp) {
            Some(g) => (g.spec.p2p_ns(bytes), g.channel),
            None => (0, self.dp.channel),
        };
        let id = sim.submit(
            SimTask::new(channel, Work::Duration(dur))
                .with_deps(deps)
                .with_label(label.clone()),
        );
        self.log.push(CommRecord {
            group: CommGroup::Pp,
            kind,
            bytes,
            task: id,
            label,
        });
        id
    }

    /// The journal of every submitted operation, in submission order.
    pub fn comm_log(&self) -> &[CommRecord] {
        &self.log
    }

    /// Take ownership of the journal (used when a lowering hands its
    /// communication history to the SPMD verifier).
    pub fn take_comm_log(&mut self) -> Vec<CommRecord> {
        std::mem::take(&mut self.log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use angel_hw::MIB;
    use angel_sim::collectives::hierarchical_collective_time_ns;

    fn setup() -> (Resources, ClusterSpec) {
        (Resources::new(), ClusterSpec::single_a100())
    }

    #[test]
    fn collective_durations_scale_with_bytes() {
        let (mut r, cluster) = setup();
        let comm = Communicator::new(&mut r, cluster, 8);
        let small = comm.collective_ns(Collective::AllGather, MIB);
        let big = comm.collective_ns(Collective::AllGather, 64 * MIB);
        assert!(
            big > 5 * small,
            "latency-dominated small transfer: {small} vs {big}"
        );
    }

    /// The flat-fleet [`GroupSpec`] must price exactly like the pre-mesh
    /// whole-cluster model, at any scale — the byte-identity that keeps
    /// every existing lowering unchanged.
    #[test]
    fn flat_group_spec_matches_cluster_model() {
        for servers in [1usize, 2, 16, 128] {
            let cluster = ClusterSpec::a100_tencent(servers);
            let ranks = cluster.total_gpus() as u64;
            let spec = GroupSpec::from_cluster(&cluster, ranks);
            for op in [
                Collective::AllGather,
                Collective::ReduceScatter,
                Collective::AllReduce,
            ] {
                for bytes in [1u64, MIB, 256 * MIB] {
                    assert_eq!(
                        spec.collective_ns(op, bytes),
                        hierarchical_collective_time_ns(op, bytes, &cluster, ranks),
                        "{op:?} servers={servers} bytes={bytes}"
                    );
                }
            }
        }
    }

    #[test]
    fn mesh_groups_ride_the_right_wires() {
        // 4 servers, dp=4 × pp=4 × tp=2: tp sits inside a server (NVLink),
        // dp peers are one per server (NIC).
        let mesh = DeviceMesh::new(ClusterSpec::a100_tencent(4), 4, 4, 2).unwrap();
        let tp = GroupSpec::from_mesh(&mesh, MeshAxis::Tp);
        assert_eq!((tp.ranks, tp.servers), (2, 1));
        let dp = GroupSpec::from_mesh(&mesh, MeshAxis::Dp);
        assert_eq!((dp.ranks, dp.ranks_per_server, dp.servers), (4, 1, 4));
        // Same bytes: the NVLink-resident tp group is far cheaper than the
        // NIC-crossing dp group.
        let b = 64 * MIB;
        assert!(
            tp.collective_ns(Collective::AllReduce, b) * 3
                < dp.collective_ns(Collective::AllReduce, b)
        );
        // pp (stride tp=2, span 8 ranks) still fits inside one server here,
        // so its boundary hop stays on NVLink — the layout keeps pipeline
        // neighbors as local as the axis order allows.
        let pp = GroupSpec::from_mesh(&mesh, MeshAxis::Pp);
        assert_eq!(pp.p2p_link().class, angel_hw::LinkClass::NvLink);
        assert!(pp.p2p_ns(b) > 0);
        // Grow the stage count past a server's GPUs and the pp hop is
        // forced onto the NIC.
        let deep = DeviceMesh::new(ClusterSpec::a100_tencent(4), 2, 8, 2).unwrap();
        let deep_pp = GroupSpec::from_mesh(&deep, MeshAxis::Pp);
        assert_eq!((deep_pp.ranks, deep_pp.servers), (8, 2));
        assert_eq!(deep_pp.p2p_link().class, angel_hw::LinkClass::Nic);
    }

    #[test]
    fn mesh_communicator_registers_per_group_channels() {
        let mesh = DeviceMesh::new(ClusterSpec::a100_tencent(4), 4, 4, 2).unwrap();
        let mut r = Resources::new();
        let comm = Communicator::for_mesh(&mut r, &mesh);
        assert!(comm.group_channel(CommGroup::Tp).is_some());
        assert!(comm.group_channel(CommGroup::Pp).is_some());
        assert_ne!(
            comm.group_channel(CommGroup::Tp),
            Some(comm.channel_id()),
            "tp rides its own channel"
        );
        // Degenerate mesh: only the dp channel exists.
        let flat = DeviceMesh::data_parallel(ClusterSpec::single_a100());
        let mut r2 = Resources::new();
        let comm2 = Communicator::for_mesh(&mut r2, &flat);
        assert!(comm2.group_channel(CommGroup::Tp).is_none());
        assert!(comm2.group_channel(CommGroup::Pp).is_none());
        assert_eq!(comm2.group_channel(CommGroup::Dp), Some(comm2.channel_id()));
    }

    #[test]
    fn degenerate_mesh_prices_like_flat_fleet() {
        // for_mesh on the pure-dp mesh must reproduce new()'s durations.
        let cluster = ClusterSpec::a100_tencent(4);
        let mesh = DeviceMesh::data_parallel(cluster.clone());
        let mut r1 = Resources::new();
        let legacy = Communicator::new(&mut r1, cluster, 32);
        let mut r2 = Resources::new();
        let meshed = Communicator::for_mesh(&mut r2, &mesh);
        for bytes in [1u64, MIB, 512 * MIB] {
            assert_eq!(
                legacy.collective_ns(Collective::AllGather, bytes),
                meshed.collective_ns(Collective::AllGather, bytes),
            );
        }
    }

    #[test]
    fn reordering_sorts_by_trigger() {
        let (mut r, cluster) = setup();
        let mut comm = Communicator::new(&mut r, cluster, 8);
        let mut sim = Simulation::new(r);
        // Enqueue out of order: trigger 2, then 0, then 1.
        let h2 = comm.enqueue(Collective::AllGather, MIB, 2, [], "g2");
        let h0 = comm.enqueue(Collective::AllGather, MIB, 0, [], "g0");
        let h1 = comm.enqueue(Collective::AllGather, MIB, 1, [], "g1");
        let reordered = comm.flush(&mut sim);
        assert!(reordered > 0);
        let report = sim.run();
        // g0 runs first, g2 last on the FIFO channel.
        let (t0, t1, t2) = (
            comm.task_id(h0).unwrap(),
            comm.task_id(h1).unwrap(),
            comm.task_id(h2).unwrap(),
        );
        assert!(report.start_times[t0] < report.start_times[t1]);
        assert!(report.start_times[t1] < report.start_times[t2]);
    }

    #[test]
    fn reordering_improves_overlap() {
        // A compute consumer of the trigger-0 gather: if a long irrelevant
        // gather sits in front (no reordering), the consumer waits; with
        // reordering it starts immediately after its own gather.
        let build = |reorder: bool| {
            let (mut r, cluster) = setup();
            let gpu = r.add_compute("gpu");
            let mut comm = Communicator::new(&mut r, cluster, 8);
            let mut sim = Simulation::new(r);
            let long = comm.enqueue(Collective::AllGather, 512 * MIB, 5, [], "late-but-long");
            let short = comm.enqueue(Collective::AllGather, MIB, 0, [], "needed-now");
            if reorder {
                comm.flush(&mut sim);
            } else {
                // Simulate a FIFO-only communicator: submit in enqueue order.
                let d_long = comm.collective_ns(Collective::AllGather, 512 * MIB);
                let d_short = comm.collective_ns(Collective::AllGather, MIB);
                let ch = comm.channel_id();
                let l = sim.submit(SimTask::new(ch, Work::Duration(d_long)));
                let s = sim.submit(SimTask::new(ch, Work::Duration(d_short)));
                let _ = (l, long);
                let c = sim.submit(SimTask::new(gpu, Work::Duration(1_000_000)).with_deps([s]));
                let _ = c;
                return sim.run().makespan;
            }
            let s = comm.task_id(short).unwrap();
            sim.submit(SimTask::new(gpu, Work::Duration(1_000_000)).with_deps([s]));
            sim.run().makespan
        };
        let with = build(true);
        let without = build(false);
        assert!(
            with < without,
            "reordering must shorten the pipeline: {with} vs {without}"
        );
    }

    #[test]
    fn task_id_before_flush_is_a_typed_error() {
        let (mut r, cluster) = setup();
        let mut comm = Communicator::new(&mut r, cluster, 8);
        let h = comm.enqueue(Collective::AllGather, MIB, 0, [], "g");
        assert_eq!(
            comm.task_id(h),
            Err(Error::UnflushedCollective { handle: h })
        );
        // Unknown handles error the same way instead of panicking.
        assert!(matches!(
            comm.task_id(99),
            Err(Error::UnflushedCollective { handle: 99 })
        ));
        let mut sim = Simulation::new(r);
        comm.flush(&mut sim);
        assert!(comm.task_id(h).is_ok());
    }
}
