//! The Communicator — Section 5 of the paper.
//!
//! "The Communicator in Angel-PTM is responsible for scheduling
//! communication between different network devices, including NIC and
//! NVLink. We implement the Communicator by using the NCCL library ...
//! The Communicator also maintains a queue to store communication tasks and
//! schedules them for execution based on instructions from the Unified
//! Scheduler, thus it enables reordering the tasks in the queue to improve
//! the overlap between computation and communication."
//!
//! The communication channel is a FIFO stream (NCCL serializes collectives
//! per communicator), so *submission order matters*: a late-needed gather in
//! front of an early-needed one stalls the pipeline. [`Communicator`]
//! therefore buffers enqueued operations and, at [`Communicator::flush`],
//! submits them ordered by trigger id (ties broken by enqueue order) — the
//! reordering the paper describes.

use angel_hw::ClusterSpec;
use angel_sim::collectives::{hierarchical_collective_time_ns, Collective};
use angel_sim::{Ns, ResourceId, Resources, SimTask, Simulation, Work};

/// A queued communication operation.
#[derive(Debug, Clone)]
struct Pending {
    op: Collective,
    bytes: u64,
    trigger: usize,
    deps: Vec<usize>,
    label: String,
    /// Position in the enqueue sequence (stable tie-break).
    seq: usize,
    /// Caller handle used to look up the submitted task id after flush.
    handle: usize,
}

/// The Communicator: a reorderable queue over one collective channel.
#[derive(Debug)]
pub struct Communicator {
    channel: ResourceId,
    cluster: ClusterSpec,
    ranks: u64,
    queue: Vec<Pending>,
    /// handle → submitted sim task id (populated by flush).
    submitted: Vec<Option<usize>>,
}

impl Communicator {
    pub fn new(resources: &mut Resources, cluster: ClusterSpec, ranks: u64) -> Self {
        Self {
            channel: resources.add_compute("communicator:nccl-channel"),
            cluster,
            ranks,
            queue: Vec::new(),
            submitted: Vec::new(),
        }
    }

    pub fn channel_id(&self) -> ResourceId {
        self.channel
    }

    /// Duration model for a collective on this cluster.
    pub fn collective_ns(&self, op: Collective, bytes: u64) -> Ns {
        hierarchical_collective_time_ns(op, bytes, &self.cluster, self.ranks)
    }

    /// Queue a collective. Returns a handle resolvable to the simulation
    /// task id after [`Communicator::flush`].
    pub fn enqueue(
        &mut self,
        op: Collective,
        bytes: u64,
        trigger: usize,
        deps: impl IntoIterator<Item = usize>,
        label: impl Into<String>,
    ) -> usize {
        let handle = self.submitted.len();
        self.submitted.push(None);
        self.queue.push(Pending {
            op,
            bytes,
            trigger,
            deps: deps.into_iter().collect(),
            label: label.into(),
            seq: self.queue.len(),
            handle,
        });
        handle
    }

    /// Reorder the queue by trigger id and submit everything to the channel
    /// stream. Returns the number of operations whose position changed.
    pub fn flush(&mut self, sim: &mut Simulation) -> usize {
        let mut ops = std::mem::take(&mut self.queue);
        let before: Vec<usize> = ops.iter().map(|p| p.handle).collect();
        ops.sort_by_key(|p| (p.trigger, p.seq));
        let reordered = ops
            .iter()
            .zip(&before)
            .filter(|(p, &orig)| p.handle != orig)
            .count();
        for p in ops {
            let dur = self.collective_ns(p.op, p.bytes);
            let id = sim.submit(
                SimTask::new(self.channel, Work::Duration(dur))
                    .with_deps(p.deps.clone())
                    .with_label(p.label.clone()),
            );
            self.submitted[p.handle] = Some(id);
        }
        reordered
    }

    /// The simulation task id for an enqueued operation (after flush).
    pub fn task_id(&self, handle: usize) -> usize {
        self.submitted[handle].expect("flush() before task_id()")
    }

    /// Submit one collective immediately (bypassing the queue) — used when
    /// the caller already emits operations in trigger order, as the Unified
    /// Scheduler's sorted task list does.
    pub fn submit_now(
        &self,
        sim: &mut Simulation,
        op: Collective,
        bytes: u64,
        deps: impl IntoIterator<Item = usize>,
        label: impl Into<String>,
    ) -> usize {
        let dur = self.collective_ns(op, bytes);
        sim.submit(
            SimTask::new(self.channel, Work::Duration(dur))
                .with_deps(deps)
                .with_label(label),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use angel_hw::MIB;

    fn setup() -> (Resources, ClusterSpec) {
        (Resources::new(), ClusterSpec::single_a100())
    }

    #[test]
    fn collective_durations_scale_with_bytes() {
        let (mut r, cluster) = setup();
        let comm = Communicator::new(&mut r, cluster, 8);
        let small = comm.collective_ns(Collective::AllGather, MIB);
        let big = comm.collective_ns(Collective::AllGather, 64 * MIB);
        assert!(
            big > 5 * small,
            "latency-dominated small transfer: {small} vs {big}"
        );
    }

    #[test]
    fn reordering_sorts_by_trigger() {
        let (mut r, cluster) = setup();
        let mut comm = Communicator::new(&mut r, cluster, 8);
        let mut sim = Simulation::new(r);
        // Enqueue out of order: trigger 2, then 0, then 1.
        let h2 = comm.enqueue(Collective::AllGather, MIB, 2, [], "g2");
        let h0 = comm.enqueue(Collective::AllGather, MIB, 0, [], "g0");
        let h1 = comm.enqueue(Collective::AllGather, MIB, 1, [], "g1");
        let reordered = comm.flush(&mut sim);
        assert!(reordered > 0);
        let report = sim.run();
        // g0 runs first, g2 last on the FIFO channel.
        assert!(report.start_times[comm.task_id(h0)] < report.start_times[comm.task_id(h1)]);
        assert!(report.start_times[comm.task_id(h1)] < report.start_times[comm.task_id(h2)]);
    }

    #[test]
    fn reordering_improves_overlap() {
        // A compute consumer of the trigger-0 gather: if a long irrelevant
        // gather sits in front (no reordering), the consumer waits; with
        // reordering it starts immediately after its own gather.
        let build = |reorder: bool| {
            let (mut r, cluster) = setup();
            let gpu = r.add_compute("gpu");
            let mut comm = Communicator::new(&mut r, cluster, 8);
            let mut sim = Simulation::new(r);
            let long = comm.enqueue(Collective::AllGather, 512 * MIB, 5, [], "late-but-long");
            let short = comm.enqueue(Collective::AllGather, MIB, 0, [], "needed-now");
            if reorder {
                comm.flush(&mut sim);
            } else {
                // Simulate a FIFO-only communicator: submit in enqueue order.
                let d_long = comm.collective_ns(Collective::AllGather, 512 * MIB);
                let d_short = comm.collective_ns(Collective::AllGather, MIB);
                let ch = comm.channel_id();
                let l = sim.submit(SimTask::new(ch, Work::Duration(d_long)));
                let s = sim.submit(SimTask::new(ch, Work::Duration(d_short)));
                let _ = (l, long);
                let c = sim.submit(SimTask::new(gpu, Work::Duration(1_000_000)).with_deps([s]));
                let _ = c;
                return sim.run().makespan;
            }
            let s = comm.task_id(short);
            sim.submit(SimTask::new(gpu, Work::Duration(1_000_000)).with_deps([s]));
            sim.run().makespan
        };
        let with = build(true);
        let without = build(false);
        assert!(
            with < without,
            "reordering must shorten the pipeline: {with} vs {without}"
        );
    }

    #[test]
    #[should_panic(expected = "flush() before task_id()")]
    fn task_id_requires_flush() {
        let (mut r, cluster) = setup();
        let mut comm = Communicator::new(&mut r, cluster, 8);
        let h = comm.enqueue(Collective::AllGather, MIB, 0, [], "g");
        let _ = comm.task_id(h);
    }
}
