//! # Angel-PTM core — the paper's contribution, implemented for real
//!
//! This crate implements the central designs of *Angel-PTM: A Scalable and
//! Economical Large-scale Pre-training System in Tencent* (VLDB 2023):
//!
//! * the **Page abstraction** ([`page`], Figure 3 of the paper): the minimum
//!   unit of memory operations across hierarchical storage — allocation,
//!   release, movement and remote communication — with at most two tensors
//!   per page and a default page size of 4 MiB (the smallest transfer that
//!   saturates PCIe);
//! * **page-level tensor management** ([`tensor`], Figure 4) and the
//!   pre-allocated, pooled **page allocator** ([`allocator`]) that eliminates
//!   the fragmentation of per-tensor and chunk-based schemes;
//! * the **Tracer** ([`tracer`], Section 5): replays one symbolic training
//!   iteration to obtain every tensor's access pattern and life-time
//!   (`tensor_id`, `first_id`, `end_id`, `cpu_time`, `gpu_time`);
//! * the **Unified Scheduler** ([`scheduler`], Algorithm 1): fine-grained
//!   life-time based scheduling that prioritises `move_to_gpu` page tasks,
//!   evicts under memory pressure through a wait-stack, and advances
//!   all-gathers to overlap with earlier computation whenever peak memory
//!   allows;
//! * **ZeRO-style parameter sharding** ([`zero`], Section 3.2) with
//!   parallelised PCIe movement across GPUs (Section 5, "Efficient Movement
//!   on Distributed Servers");
//! * the **dynamic GPU cache** ([`cache`], Section 4.2): spare GPU memory
//!   holds hot optimizer-state pages and their updates run on the GPU;
//! * the **Lock-Free Updating Mechanism** ([`lockfree`], Algorithm 2): real
//!   threads — a CPU updating thread, a CPU buffering thread and the
//!   training loop — decoupled through FP16 parameter/gradient buffers so
//!   SSD-bound optimizer updates never block GPU computation;
//! * the **planning pipeline** ([`plan`]): five explicit stages shared by
//!   the Engine and every baseline —
//!
//!   ```text
//!   Trace ──▶ Shard ──▶ Place ──▶ Schedule ──▶ Lower
//!   (§5      (§3.2     (§4.1/4.2  (Alg. 1 +    (§5 Executor/
//!    Tracer)  ZeRO+EP)  heuristic)  §4.2 cache)  Communicator)
//!   ```
//!
//! * the **Engine** ([`engine`]): the user-facing API in the spirit of the
//!   paper's Figure 6 (`initialize` → `forward/backward/step`), a thin
//!   composition of those pipeline stages that runs the lowered iteration
//!   on the `angel-sim` discrete-event hardware model and reports iteration
//!   times, utilization and memory peaks.
//!
//! Hardware (GPUs, PCIe, NVLink, NICs, SSD) is simulated with the calibrated
//! Table 3 parameters — see DESIGN.md for the substitution argument — but
//! all memory-management and scheduling logic here is the real algorithm
//! operating on real data structures, and the lock-free mechanism moves real
//! bytes between real threads.
//!
//! ## Quickstart
//!
//! ```
//! use angel_core::{Engine, EngineConfig};
//! use angel_model::TransformerConfig;
//!
//! // A small GPT on one simulated A100 server.
//! let model = TransformerConfig::gpt3_1_7b();
//! let config = EngineConfig::single_server().with_batch_size(8);
//! let mut engine = Engine::initialize(&model, &config).expect("model fits");
//! let stats = engine.train_iteration();
//! assert!(stats.samples_per_sec > 0.0);
//! ```

// Unit tests keep panicking assertions; library code is covered by the
// workspace-wide unwrap/expect ban (clippy.toml disallowed-methods).
#![cfg_attr(test, allow(clippy::disallowed_methods))]

pub mod allocator;
pub mod cache;
pub mod communicator;
pub mod config;
pub mod engine;
pub mod error;
pub mod executor;
pub mod fault;
pub mod lockfree;
pub mod obs;
pub mod page;
pub mod plan;
pub mod recovery;
pub mod replan;
pub mod scheduler;
pub mod seqtree;
pub mod sync;
pub mod tensor;
pub mod tracer;
pub mod verify;
pub mod zero;

pub use allocator::{CompactionReport, PageAllocator, PoolStats};
pub use communicator::{CommGroup, CommKind, CommRecord, Communicator, GroupSpec};
pub use config::EngineConfig;
pub use engine::{ClusterEvent, Engine, IterStats, OnlineReport, RunReport, SpliceReport};
pub use error::{Error, Result, StoreError, StoreErrorKind, StoreOp, TrainerError};
pub use executor::{Executor, Stream};
pub use fault::{FaultCounters, FaultPlan, FaultyStore};
pub use obs::{MetricsSnapshot, ObsEvent, ObsThread, Recorder};
pub use page::{Page, PageId, PAGE_SIZE_DEFAULT};
pub use plan::{
    lower_schedule, FaultTarget, Lowering, LoweringConfig, MemoryPlan, ParallelismPlan, Placement,
    SchedulePlan, ShardPlan, TracePlan, ZeroStage,
};
pub use replan::{Planner, ReplanDelta, ReplanOutcome};
pub use scheduler::{ScheduleTask, TaskOp, UnifiedScheduler};
pub use tensor::{Tensor, TensorId};
pub use tracer::{TensorTrace, Tracer};
pub use verify::{PlanGraph, PlanReport, SpmdReport, SpmdTrace};
