//! Failure and recovery — Section 3.1 of the paper.
//!
//! "When more GPUs are involved, the Mean Time To Failure (MTTF) is
//! shortened accordingly. Given the large amount of GPUs and the long
//! training time, pre-training tasks would encounter GPU failure with a
//! high probability, and should be restarted after failure."
//!
//! This module provides the production math that statement implies:
//!
//! * fleet MTTF from per-GPU MTTF (failures are independent exponentials,
//!   so the fleet rate is the sum of the per-GPU rates);
//! * checkpoint cost from the model-state volume and the storage bandwidth
//!   (FP32 master states, the minimal restartable set);
//! * **goodput** — the fraction of wall-clock spent on useful training —
//!   under a periodic-checkpoint policy, and the Young–Daly interval that
//!   maximizes it.

use serde::{Deserialize, Serialize};

/// Failure/recovery parameters for one training job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryModel {
    /// Number of GPUs in the job.
    pub gpus: usize,
    /// Mean time to failure of a single GPU, in hours. Production A100
    /// fleets report on the order of 5×10⁴–10⁵ hours per accelerator
    /// (failures here include host, NIC and fabric faults attributed to the
    /// rank).
    pub mttf_per_gpu_hours: f64,
    /// Seconds to write one checkpoint (all FP32 master states to durable
    /// storage).
    pub checkpoint_write_secs: f64,
    /// Seconds to detect a failure, reschedule, reload the last checkpoint
    /// and resume.
    pub restart_secs: f64,
}

impl RecoveryModel {
    /// Build the model from an *executed* checkpoint schedule
    /// ([`crate::plan::lower_checkpoint`]): the write cost is the makespan
    /// of the lowered `ssd_write` graph, and the restart cost is failure
    /// detection/rescheduling (`detect_secs`) plus the lowered restore
    /// (SSD reads + H2D restage) makespan.
    pub fn from_lowering(
        gpus: usize,
        mttf_per_gpu_hours: f64,
        ckpt: &crate::plan::CheckpointLowering,
        detect_secs: f64,
    ) -> Self {
        Self {
            gpus,
            mttf_per_gpu_hours,
            checkpoint_write_secs: ckpt.write_secs,
            restart_secs: detect_secs + ckpt.restore_secs,
        }
    }

    /// Fleet MTTF in seconds: per-GPU MTTF divided by the GPU count.
    pub fn fleet_mttf_secs(&self) -> f64 {
        assert!(self.gpus >= 1);
        self.mttf_per_gpu_hours * 3600.0 / self.gpus as f64
    }

    /// Expected failures over a run of `hours`.
    pub fn expected_failures(&self, hours: f64) -> f64 {
        hours * 3600.0 / self.fleet_mttf_secs()
    }

    /// The Young–Daly checkpoint interval (seconds between checkpoint
    /// starts): `sqrt(2 · C · MTTF)` — the first-order optimum when
    /// `C ≪ MTTF`.
    pub fn young_daly_interval_secs(&self) -> f64 {
        (2.0 * self.checkpoint_write_secs * self.fleet_mttf_secs()).sqrt()
    }

    /// Goodput (useful fraction of wall-clock) under periodic checkpoints
    /// every `interval` seconds: time lost to (a) checkpoint writes,
    /// (b) half an interval of re-done work per failure, (c) restart
    /// downtime per failure.
    pub fn goodput(&self, interval_secs: f64) -> f64 {
        assert!(interval_secs > 0.0);
        let mttf = self.fleet_mttf_secs();
        let checkpoint_overhead = self.checkpoint_write_secs / interval_secs;
        let failure_rate = 1.0 / mttf; // failures per second
        let lost_per_failure = interval_secs / 2.0 + self.restart_secs + self.checkpoint_write_secs;
        let failure_overhead = failure_rate * lost_per_failure;
        (1.0 - checkpoint_overhead - failure_overhead).max(0.0)
    }

    /// Goodput at the Young–Daly interval.
    pub fn optimal_goodput(&self) -> f64 {
        self.goodput(self.young_daly_interval_secs())
    }

    /// Goodput under **online replanning** ([`crate::Engine::run_online`])
    /// instead of full restart: a failure costs half an interval of re-done
    /// work plus an in-process replan (`replan_secs`) and checkpoint restore
    /// (`restore_secs`) — but *not* the detection/rescheduling downtime of a
    /// cold restart, because the surviving ranks replan in place. After the
    /// splice the job runs degraded at `degraded_throughput` (relative, ≤ 1,
    /// e.g. 95/96 after losing one of 96 servers) until the fleet heals at
    /// the next checkpoint interval, charged as extra lost time on the
    /// second half of the interval.
    pub fn replanned_goodput(
        &self,
        interval_secs: f64,
        replan_secs: f64,
        restore_secs: f64,
        degraded_throughput: f64,
    ) -> f64 {
        assert!(interval_secs > 0.0);
        assert!((0.0..=1.0).contains(&degraded_throughput) && degraded_throughput > 0.0);
        let checkpoint_overhead = self.checkpoint_write_secs / interval_secs;
        let failure_rate = 1.0 / self.fleet_mttf_secs();
        let degraded_penalty = (interval_secs / 2.0) * (1.0 / degraded_throughput - 1.0);
        let lost_per_failure = interval_secs / 2.0
            + replan_secs
            + restore_secs
            + self.checkpoint_write_secs
            + degraded_penalty;
        (1.0 - checkpoint_overhead - failure_rate * lost_per_failure).max(0.0)
    }
}

/// Checkpoint write time for `state_bytes` of FP32 master states over a
/// storage channel of `bandwidth` bytes/s shared by `writers` concurrent
/// writers (e.g. all servers writing to a distributed store, or each server
/// to its local SSD — then `writers = 1` per-server with per-server bytes).
pub fn checkpoint_write_secs(state_bytes: u64, bandwidth: u64, writers: usize) -> f64 {
    assert!(bandwidth > 0 && writers >= 1);
    state_bytes as f64 / (bandwidth as f64 * writers as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(gpus: usize) -> RecoveryModel {
        RecoveryModel {
            gpus,
            mttf_per_gpu_hours: 50_000.0,
            checkpoint_write_secs: 120.0,
            restart_secs: 600.0,
        }
    }

    #[test]
    fn fleet_mttf_shrinks_with_gpus() {
        // The Section 3.1 observation, quantified.
        let small = job(8).fleet_mttf_secs();
        let large = job(768).fleet_mttf_secs();
        assert!((small / large - 96.0).abs() < 1e-9);
        // 768 GPUs at 50k hours each: a failure roughly every 2.7 days.
        assert!((large / 3600.0 - 65.1).abs() < 0.1, "{}", large / 3600.0);
    }

    #[test]
    fn expected_failures_over_a_training_run() {
        // A three-week pre-training run on 768 GPUs sees several failures —
        // why "should be restarted after failure" matters.
        let f = job(768).expected_failures(21.0 * 24.0);
        assert!(f > 5.0 && f < 10.0, "{f}");
    }

    #[test]
    fn young_daly_is_the_goodput_optimum() {
        let m = job(256);
        let star = m.young_daly_interval_secs();
        let at_star = m.goodput(star);
        for factor in [0.25, 0.5, 2.0, 4.0] {
            assert!(
                m.goodput(star * factor) <= at_star + 1e-9,
                "interval {}×: {} vs {}",
                factor,
                m.goodput(star * factor),
                at_star
            );
        }
        assert!(
            at_star > 0.97,
            "goodput at optimum should be high: {at_star}"
        );
    }

    #[test]
    fn more_gpus_need_more_frequent_checkpoints() {
        assert!(job(768).young_daly_interval_secs() < job(64).young_daly_interval_secs());
    }

    #[test]
    fn checkpoint_time_from_state_volume() {
        // GPT3-175B FP32 masters+moments ≈ 2.1 TB over 96 servers' SSDs
        // (3.5 GB/s each): ~6.3 s.
        let t = checkpoint_write_secs(2_100_000_000_000, 3_500_000_000, 96);
        assert!((t - 6.25).abs() < 0.1, "{t}");
    }

    #[test]
    fn model_from_lowered_checkpoint_schedule() {
        use crate::config::EngineConfig;
        use crate::plan::lower_checkpoint;
        let model = angel_model::TransformerConfig::gpt3_175b();
        let config = EngineConfig::servers(96).with_batch_size(1);
        let ckpt = lower_checkpoint(&model, &config);
        let m = RecoveryModel::from_lowering(config.num_gpus(), 50_000.0, &ckpt, 600.0);
        assert_eq!(m.checkpoint_write_secs, ckpt.write_secs);
        assert!(m.restart_secs > 600.0, "restore time must be added");
        // Derived cost lands in the same regime as the hand-entered
        // arithmetic the old analysis used (~6.3 s for 2.1 TB / 96 SSDs),
        // but it now includes link latency and per-layer serialization.
        assert!(m.checkpoint_write_secs > 3.0 && m.checkpoint_write_secs < 20.0);
        assert!(m.optimal_goodput() > 0.95);
    }

    #[test]
    fn replanning_beats_restarting() {
        // The replan (seconds) plus a mild degraded-throughput penalty is
        // cheaper than the cold restart's detection + rescheduling downtime
        // (minutes) across fleet sizes and checkpoint intervals.
        for gpus in [64, 256, 768] {
            let m = job(gpus);
            let star = m.young_daly_interval_secs();
            for factor in [0.5, 1.0, 2.0] {
                let interval = star * factor;
                let static_g = m.goodput(interval);
                let replanned = m.replanned_goodput(interval, 5.0, 60.0, 95.0 / 96.0);
                assert!(
                    replanned >= static_g,
                    "gpus={gpus} interval={interval}: {replanned} < {static_g}"
                );
            }
        }
    }

    #[test]
    fn full_speed_replan_recovers_the_static_formula_minus_detection() {
        // With no degradation and zero replan cost, the only difference from
        // `goodput` is restart_secs vs restore_secs.
        let m = job(256);
        let a = m.replanned_goodput(3600.0, 0.0, m.restart_secs, 1.0);
        let b = m.goodput(3600.0);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn degenerate_goodput_floors_at_zero() {
        let mut m = job(8);
        m.mttf_per_gpu_hours = 0.001; // pathological fleet
        assert_eq!(m.goodput(10.0), 0.0);
    }
}
