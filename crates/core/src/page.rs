//! The Page abstraction — Figure 3 of the paper.
//!
//! A [`Page`] is "the minimum unit of memory operations for heterogeneous
//! storage, including allocation, release, movement, and remote
//! communication. Each tensor in the model states is composed of several
//! pages." The struct mirrors the paper's C-style definition field by field:
//!
//! ```c
//! struct Page {
//!   void*  data_ptr;
//!   size_t total_bytes;
//!   size_t available_bytes;
//!   size_t device_index;      // {0: GPU, 1: CPU, 2: SSD}
//!   size_t tensor_id[2];      // ids for tensors in this page
//!   size_t tensor_bytes[2];   // occupied bytes for each tensor
//!   void allocate(size_t required_bytes, size_t id);
//!   void release(size_t id);
//!   void move(size_t target_device_index);
//!   void send(size_t id);
//!   void receive(size_t id);
//! };
//! ```
//!
//! Two tenancy rules from Section 4.1 are enforced here:
//! * a page holds **at most two tensors** at any time ("we decide to limit
//!   each page to contain information about a maximum of two tensors");
//! * tenants occupy disjoint byte ranges allocated bump-style from offset 0.
//!
//! Pages can be *backed* (owning a real `BytesMut` buffer — used by the real
//! training path and by tests that check data integrity through moves) or
//! *virtual* (bookkeeping only — used when simulating hundreds of gigabytes
//! of model states).

use crate::error::{Error, Result};
use crate::tensor::TensorId;
use angel_hw::{DeviceId, MIB};
use bytes::BytesMut;

/// The paper's optimal page size: "the minimum Page size that can fully
/// utilize the PCIe bandwidth is optimal for our system, i.e., 4MB."
pub const PAGE_SIZE_DEFAULT: u64 = 4 * MIB;

/// Identifier of a page within a [`crate::PageAllocator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub usize);

/// One tenant entry: a tensor occupying `[offset, offset + bytes)` of the
/// page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tenant {
    pub tensor: TensorId,
    pub offset: u64,
    pub bytes: u64,
}

/// The Page of Figure 3.
#[derive(Debug, Clone)]
pub struct Page {
    id: PageId,
    /// `data_ptr` in the paper: real backing bytes, or `None` when the page
    /// is virtual (capacity/throughput simulations).
    data: Option<BytesMut>,
    /// `total_bytes`.
    total_bytes: u64,
    /// `available_bytes` — bytes free for the next allocation (bump
    /// allocation from the low end).
    available_bytes: u64,
    /// `device_index` — where the page currently lives.
    device: DeviceId,
    /// `tensor_id[2]` + `tensor_bytes[2]`: at most two tenants.
    tenants: [Option<Tenant>; 2],
}

impl Page {
    /// A virtual page (no backing memory) on `device`.
    pub fn new_virtual(id: PageId, total_bytes: u64, device: DeviceId) -> Self {
        assert!(total_bytes > 0);
        Self {
            id,
            data: None,
            total_bytes,
            available_bytes: total_bytes,
            device,
            tenants: [None, None],
        }
    }

    /// A backed page owning `total_bytes` of zeroed real memory.
    pub fn new_backed(id: PageId, total_bytes: u64, device: DeviceId) -> Self {
        let mut page = Self::new_virtual(id, total_bytes, device);
        page.data = Some(BytesMut::zeroed(total_bytes as usize));
        page
    }

    pub fn id(&self) -> PageId {
        self.id
    }

    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    pub fn available_bytes(&self) -> u64 {
        self.available_bytes
    }

    pub fn device(&self) -> DeviceId {
        self.device
    }

    pub fn is_backed(&self) -> bool {
        self.data.is_some()
    }

    /// Bytes occupied by tenants.
    pub fn used_bytes(&self) -> u64 {
        self.total_bytes - self.available_bytes
    }

    /// Number of tenants currently in the page (0, 1 or 2).
    pub fn num_tenants(&self) -> usize {
        self.tenants.iter().filter(|t| t.is_some()).count()
    }

    /// Whether the page has no tenants and is fully reusable.
    pub fn is_free(&self) -> bool {
        self.num_tenants() == 0
    }

    pub fn tenants(&self) -> impl Iterator<Item = &Tenant> {
        self.tenants.iter().flatten()
    }

    /// The tenant entry for `tensor`, if present.
    pub fn tenant_of(&self, tensor: TensorId) -> Option<&Tenant> {
        self.tenants.iter().flatten().find(|t| t.tensor == tensor)
    }

    /// `allocate(required_bytes, id)`: reserve `required_bytes` for tensor
    /// `id`, bump-allocated after the existing tenant (if any). Fails when
    /// the page already has two tenants, the tensor is already resident, or
    /// space is insufficient.
    pub fn allocate(&mut self, required_bytes: u64, tensor: TensorId) -> Result<u64> {
        if required_bytes == 0 || required_bytes > self.available_bytes {
            return Err(Error::PageInvariant("allocation does not fit in page"));
        }
        if self.tenant_of(tensor).is_some() {
            return Err(Error::PageInvariant("tensor already resident in page"));
        }
        let slot = self
            .tenants
            .iter()
            .position(|t| t.is_none())
            .ok_or(Error::PageInvariant("page already holds two tensors"))?;
        let offset = self.total_bytes - self.available_bytes;
        self.tenants[slot] = Some(Tenant {
            tensor,
            offset,
            bytes: required_bytes,
        });
        self.available_bytes -= required_bytes;
        Ok(offset)
    }

    /// Install a tenant at an explicit `[offset, offset + bytes)` range
    /// without bump allocation — used by the allocator when re-keying a
    /// freshly laid-out tensor (move/merge paths). The range must lie within
    /// the already-consumed region left behind by the tenant being replaced.
    pub(crate) fn allocate_at(&mut self, tensor: TensorId, offset: u64, bytes: u64) -> Result<u64> {
        if bytes == 0 || offset + bytes > self.total_bytes {
            return Err(Error::PageInvariant("allocate_at out of bounds"));
        }
        if self.tenant_of(tensor).is_some() {
            return Err(Error::PageInvariant("tensor already resident in page"));
        }
        let slot = self
            .tenants
            .iter()
            .position(|t| t.is_none())
            .ok_or(Error::PageInvariant("page already holds two tensors"))?;
        self.tenants[slot] = Some(Tenant {
            tensor,
            offset,
            bytes,
        });
        // Keep the bump cursor past this range.
        let cursor = self.total_bytes - self.available_bytes;
        if offset + bytes > cursor {
            self.available_bytes = self.total_bytes - (offset + bytes);
        }
        Ok(offset)
    }

    /// `release(id)`: drop tensor `id` from the page. When the page becomes
    /// empty it is fully reusable; while the *other* tenant remains, the
    /// released range is not reusable (bump allocation) — this bounded,
    /// transient waste is the price of the two-tenant simplicity and is
    /// reported as internal fragmentation by the allocator.
    pub fn release(&mut self, tensor: TensorId) -> Result<()> {
        let slot = self
            .tenants
            .iter()
            .position(|t| t.map(|t| t.tensor) == Some(tensor))
            .ok_or(Error::UnknownTensor(tensor.0))?;
        self.tenants[slot] = None;
        if self.is_free() {
            self.available_bytes = self.total_bytes;
        }
        Ok(())
    }

    /// Drop the page's backing memory. Only legal on an empty page — the
    /// allocator calls this when trimming its reuse pool, so a reclaimed
    /// frame costs nothing until [`Page::rematerialize`] revives it.
    pub(crate) fn unmaterialize(&mut self) {
        debug_assert!(self.is_free(), "unmaterializing a page with tenants");
        self.data = None;
    }

    /// Re-attach backing memory to a reclaimed page (zeroed, like a fresh
    /// materialization — reuse-pool hits skip this and keep old contents,
    /// which is the entire point of the pool). No-op for virtual allocators.
    pub(crate) fn rematerialize(&mut self, backed: bool) {
        debug_assert!(self.is_free(), "rematerializing a page with tenants");
        if backed && self.data.is_none() {
            self.data = Some(BytesMut::zeroed(self.total_bytes as usize));
        }
    }

    /// Repack tenants to bump layout from offset 0, reclaiming the
    /// unusable gap a departed co-tenant left behind. Returns the bytes
    /// recovered. Backed pages physically move the tenant data.
    pub(crate) fn compact_tenants(&mut self) -> u64 {
        let mut entries: Vec<Tenant> = self.tenants.iter().flatten().copied().collect();
        entries.sort_by_key(|t| t.offset);
        let mut cursor = 0u64;
        for entry in &mut entries {
            if entry.offset != cursor {
                debug_assert!(entry.offset > cursor, "overlapping tenants");
                if let Some(data) = self.data.as_mut() {
                    data.copy_within(
                        entry.offset as usize..(entry.offset + entry.bytes) as usize,
                        cursor as usize,
                    );
                }
                entry.offset = cursor;
            }
            cursor += entry.bytes;
        }
        let before = self.available_bytes;
        self.available_bytes = self.total_bytes - cursor;
        self.tenants = [None, None];
        for (slot, entry) in entries.into_iter().enumerate() {
            self.tenants[slot] = Some(entry);
        }
        self.available_bytes - before
    }

    /// `move(target_device_index)`: relocate the page (bookkeeping; the
    /// transfer cost is charged by the scheduler/simulator — the paper's
    /// `move` is likewise asynchronous, the data motion happening on a CUDA
    /// stream).
    pub fn move_to(&mut self, target: DeviceId) {
        self.device = target;
    }

    /// `send(id)` / `receive(id)`: serialize the page payload for transport
    /// to another server and install a received payload. Only meaningful for
    /// backed pages; virtual pages transport metadata only.
    pub fn send(&self) -> Option<&[u8]> {
        self.data.as_deref()
    }

    /// Install `payload` as this page's contents (the receive side of a
    /// server-to-server transfer).
    pub fn receive(&mut self, payload: &[u8]) -> Result<()> {
        let data = self
            .data
            .as_mut()
            .ok_or(Error::PageInvariant("receive() on a virtual page"))?;
        if payload.len() != data.len() {
            return Err(Error::PageInvariant("payload size mismatch"));
        }
        data.copy_from_slice(payload);
        Ok(())
    }

    /// Write `bytes` into the page at the tenant range of `tensor` starting
    /// at `range_offset` within that range. Backed pages only.
    pub fn write(&mut self, tensor: TensorId, range_offset: u64, bytes: &[u8]) -> Result<()> {
        let tenant = *self
            .tenant_of(tensor)
            .ok_or(Error::UnknownTensor(tensor.0))?;
        if range_offset + bytes.len() as u64 > tenant.bytes {
            return Err(Error::PageInvariant("write beyond tenant range"));
        }
        let data = self
            .data
            .as_mut()
            .ok_or(Error::PageInvariant("write() on a virtual page"))?;
        let start = (tenant.offset + range_offset) as usize;
        data[start..start + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Read the tenant range of `tensor` (whole range). Backed pages only.
    pub fn read(&self, tensor: TensorId) -> Result<&[u8]> {
        let tenant = *self
            .tenant_of(tensor)
            .ok_or(Error::UnknownTensor(tensor.0))?;
        let data = self
            .data
            .as_ref()
            .ok_or(Error::PageInvariant("read() on a virtual page"))?;
        Ok(&data[tenant.offset as usize..(tenant.offset + tenant.bytes) as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu0() -> DeviceId {
        DeviceId::gpu(0)
    }

    #[test]
    fn fresh_page_is_empty() {
        let p = Page::new_virtual(PageId(0), PAGE_SIZE_DEFAULT, gpu0());
        assert_eq!(p.total_bytes(), 4 * MIB);
        assert_eq!(p.available_bytes(), 4 * MIB);
        assert!(p.is_free());
        assert!(!p.is_backed());
    }

    #[test]
    fn two_tenants_bump_allocated() {
        let mut p = Page::new_virtual(PageId(0), 100, gpu0());
        let o1 = p.allocate(60, TensorId(1)).unwrap();
        let o2 = p.allocate(30, TensorId(2)).unwrap();
        assert_eq!((o1, o2), (0, 60));
        assert_eq!(p.available_bytes(), 10);
        assert_eq!(p.num_tenants(), 2);
    }

    #[test]
    fn third_tenant_rejected() {
        let mut p = Page::new_virtual(PageId(0), 100, gpu0());
        p.allocate(10, TensorId(1)).unwrap();
        p.allocate(10, TensorId(2)).unwrap();
        assert!(matches!(
            p.allocate(10, TensorId(3)),
            Err(Error::PageInvariant("page already holds two tensors"))
        ));
    }

    #[test]
    fn duplicate_tenant_rejected() {
        let mut p = Page::new_virtual(PageId(0), 100, gpu0());
        p.allocate(10, TensorId(1)).unwrap();
        assert!(p.allocate(10, TensorId(1)).is_err());
    }

    #[test]
    fn oversized_allocation_rejected() {
        let mut p = Page::new_virtual(PageId(0), 100, gpu0());
        assert!(p.allocate(101, TensorId(1)).is_err());
        assert!(p.allocate(0, TensorId(1)).is_err());
        p.allocate(100, TensorId(1)).unwrap();
        assert!(p.allocate(1, TensorId(2)).is_err());
    }

    #[test]
    fn release_last_tenant_resets_page() {
        let mut p = Page::new_virtual(PageId(0), 100, gpu0());
        p.allocate(60, TensorId(1)).unwrap();
        p.allocate(40, TensorId(2)).unwrap();
        p.release(TensorId(1)).unwrap();
        // Bump allocation: released low range is not reusable while tensor 2
        // lives.
        assert_eq!(p.available_bytes(), 0);
        assert_eq!(p.num_tenants(), 1);
        p.release(TensorId(2)).unwrap();
        assert!(p.is_free());
        assert_eq!(p.available_bytes(), 100);
    }

    #[test]
    fn release_unknown_tensor_errors() {
        let mut p = Page::new_virtual(PageId(0), 100, gpu0());
        assert_eq!(p.release(TensorId(9)), Err(Error::UnknownTensor(9)));
    }

    #[test]
    fn move_changes_device_only() {
        let mut p = Page::new_virtual(PageId(0), 100, gpu0());
        p.allocate(50, TensorId(1)).unwrap();
        p.move_to(DeviceId::CPU);
        assert_eq!(p.device(), DeviceId::CPU);
        assert_eq!(p.used_bytes(), 50);
        p.move_to(DeviceId::SSD);
        assert_eq!(p.device(), DeviceId::SSD);
    }

    #[test]
    fn backed_page_data_round_trip() {
        let mut p = Page::new_backed(PageId(0), 128, gpu0());
        p.allocate(64, TensorId(1)).unwrap();
        p.allocate(32, TensorId(2)).unwrap();
        p.write(TensorId(2), 0, &[7u8; 32]).unwrap();
        p.write(TensorId(1), 8, &[9u8; 8]).unwrap();
        assert_eq!(p.read(TensorId(2)).unwrap(), &[7u8; 32]);
        let t1 = p.read(TensorId(1)).unwrap();
        assert_eq!(&t1[8..16], &[9u8; 8]);
        assert_eq!(&t1[0..8], &[0u8; 8]);
    }

    #[test]
    fn write_beyond_tenant_range_rejected() {
        let mut p = Page::new_backed(PageId(0), 128, gpu0());
        p.allocate(16, TensorId(1)).unwrap();
        assert!(p.write(TensorId(1), 10, &[0u8; 7]).is_err());
        assert!(p.write(TensorId(1), 0, &[0u8; 16]).is_ok());
    }

    #[test]
    fn send_receive_round_trip() {
        let mut a = Page::new_backed(PageId(0), 64, gpu0());
        let mut b = Page::new_backed(PageId(1), 64, DeviceId::gpu(1));
        a.allocate(64, TensorId(1)).unwrap();
        b.allocate(64, TensorId(1)).unwrap();
        a.write(TensorId(1), 0, &[42u8; 64]).unwrap();
        let payload = a.send().unwrap().to_vec();
        b.receive(&payload).unwrap();
        assert_eq!(b.read(TensorId(1)).unwrap(), &[42u8; 64]);
    }

    #[test]
    fn unmaterialize_and_rematerialize_round_trip() {
        let mut p = Page::new_backed(PageId(0), 64, gpu0());
        assert!(p.is_backed());
        p.unmaterialize();
        assert!(!p.is_backed());
        // Rematerialized pages come back zeroed, like a fresh allocation.
        p.rematerialize(true);
        assert!(p.is_backed());
        p.allocate(64, TensorId(1)).unwrap();
        assert_eq!(p.read(TensorId(1)).unwrap(), &[0u8; 64]);
        // Virtual allocators never attach data.
        let mut v = Page::new_virtual(PageId(1), 64, gpu0());
        v.rematerialize(false);
        assert!(!v.is_backed());
    }

    #[test]
    fn compact_tenants_closes_release_gap() {
        let mut p = Page::new_backed(PageId(0), 100, gpu0());
        p.allocate(60, TensorId(1)).unwrap();
        p.allocate(30, TensorId(2)).unwrap();
        p.write(TensorId(2), 0, &[7u8; 30]).unwrap();
        p.release(TensorId(1)).unwrap();
        // Bump allocation strands the released low range...
        assert_eq!(p.available_bytes(), 10);
        // ...until compaction slides the survivor down to offset 0.
        let recovered = p.compact_tenants();
        assert_eq!(recovered, 60);
        assert_eq!(p.available_bytes(), 70);
        assert_eq!(p.tenant_of(TensorId(2)).unwrap().offset, 0);
        assert_eq!(p.read(TensorId(2)).unwrap(), &[7u8; 30]);
        // Already-packed pages are untouched.
        assert_eq!(p.compact_tenants(), 0);
    }

    #[test]
    fn virtual_page_rejects_data_ops() {
        let mut p = Page::new_virtual(PageId(0), 64, gpu0());
        p.allocate(32, TensorId(1)).unwrap();
        assert!(p.send().is_none());
        assert!(p.receive(&[0u8; 64]).is_err());
        assert!(p.write(TensorId(1), 0, &[1]).is_err());
        assert!(p.read(TensorId(1)).is_err());
    }
}
