//! Fault injection for the lock-free update path.
//!
//! Angel-PTM is a production system: at Tencent fleet sizes, SSD hiccups and
//! device losses are routine events (Section 3.1), not exceptional ones. The
//! [`FaultyStore`] decorator wraps any [`StateStore`] and injects, from a
//! seeded generator:
//!
//! * **transient I/O errors** (per-op probability, independently tunable for
//!   fetch and offload) — the retry-with-backoff path of
//!   [`crate::lockfree::LockFreeTrainer`];
//! * **latency spikes** (per-op probability + spike duration) — slow I/O
//!   that must never block the training loop;
//! * **permanent layer death** (after the n-th operation of a chosen kind on
//!   a chosen layer, both operations fail permanently) — the degraded-mode
//!   parking path.
//!
//! Faults are injected *before* the inner store is touched, so the inner
//! store's state stays consistent across injected errors: an injected fetch
//! failure does not consume the layer, an injected offload failure does not
//! store it. The injector is deterministic given the seed and the sequence
//! of operations applied to it (the sequence itself depends on thread
//! scheduling — determinism here means reproducible fault *behaviour per
//! op*, not a reproducible global interleaving).

use crate::engine::ClusterEvent;
use crate::error::{StoreError, StoreOp};
use crate::lockfree::{LayerState, StateStore};
use crate::plan::FaultTarget;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What to inject, when. Built with the `with_*` combinators.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    pub seed: u64,
    /// Probability an individual `fetch` fails with a transient error.
    pub fetch_transient_prob: f64,
    /// Probability an individual `offload` fails with a transient error.
    pub offload_transient_prob: f64,
    /// Probability an individual operation stalls for `spike`.
    pub spike_prob: f64,
    /// Stall duration of a latency spike.
    pub spike: Duration,
    /// Scheduled permanent deaths: `(layer, op, after)` — once `layer` has
    /// seen `after` operations of kind `op`, the layer dies permanently
    /// (both operations fail from then on, including the triggering one).
    dead_triggers: Vec<(usize, StoreOp, u64)>,
}

impl FaultPlan {
    /// A plan that injects nothing (yet) — combine with `with_*`.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            fetch_transient_prob: 0.0,
            offload_transient_prob: 0.0,
            spike_prob: 0.0,
            spike: Duration::ZERO,
            dead_triggers: Vec::new(),
        }
    }

    /// Inject transient errors with the given per-op probabilities.
    pub fn with_transient_prob(mut self, fetch: f64, offload: f64) -> Self {
        assert!((0.0..=1.0).contains(&fetch) && (0.0..=1.0).contains(&offload));
        self.fetch_transient_prob = fetch;
        self.offload_transient_prob = offload;
        self
    }

    /// Stall a fraction of operations by `spike`.
    pub fn with_latency_spikes(mut self, prob: f64, spike: Duration) -> Self {
        assert!((0.0..=1.0).contains(&prob));
        self.spike_prob = prob;
        self.spike = spike;
        self
    }

    /// Kill `layer` permanently on its first operation of kind `op`.
    pub fn with_dead_layer(self, layer: usize, op: StoreOp) -> Self {
        self.with_dead_layer_after(layer, op, 0)
    }

    /// Kill `layer` permanently once it has completed `after` operations of
    /// kind `op` (the `after`+1-th such operation fails and the layer is
    /// dead — for both operations — from then on).
    pub fn with_dead_layer_after(mut self, layer: usize, op: StoreOp, after: u64) -> Self {
        self.dead_triggers.push((layer, op, after));
        self
    }
}

#[derive(Debug, Default)]
struct CounterInner {
    errors: AtomicU64,
    spikes: AtomicU64,
}

/// Shared handle onto a [`FaultyStore`]'s counters — clone it out before
/// moving the store into the trainer, then compare against
/// [`crate::lockfree::LockFreeStats`] after the run.
#[derive(Debug, Clone, Default)]
pub struct FaultCounters(Arc<CounterInner>);

impl FaultCounters {
    /// Errors surfaced by the store (injected or propagated from the inner
    /// store). Matches the trainer's `store_faults` counter by construction.
    pub fn injected(&self) -> u64 {
        self.0.errors.load(Ordering::SeqCst)
    }

    /// Latency spikes injected.
    pub fn spikes(&self) -> u64 {
        self.0.spikes.load(Ordering::SeqCst)
    }
}

/// A [`StateStore`] decorator injecting seeded faults per [`FaultPlan`].
pub struct FaultyStore<S> {
    inner: S,
    plan: FaultPlan,
    rng: StdRng,
    counters: FaultCounters,
    /// Completed-or-attempted op counts per (layer, op), for dead triggers.
    op_counts: HashMap<(usize, StoreOp), u64>,
    dead: HashSet<usize>,
}

impl<S: StateStore> FaultyStore<S> {
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed);
        Self {
            inner,
            plan,
            rng,
            counters: FaultCounters::default(),
            op_counts: HashMap::new(),
            dead: HashSet::new(),
        }
    }

    /// Counter handle, valid after the store moves into the trainer.
    pub fn counters(&self) -> FaultCounters {
        self.counters.clone()
    }

    fn error(&self, e: StoreError) -> StoreError {
        self.counters.0.errors.fetch_add(1, Ordering::SeqCst);
        e
    }

    /// Common pre-delegation injection; `Ok(())` means "proceed to inner".
    fn inject(&mut self, layer: usize, op: StoreOp) -> Result<(), StoreError> {
        if self.dead.contains(&layer) {
            return Err(self.error(StoreError::permanent(layer, op, "layer storage died")));
        }
        let count = self.op_counts.entry((layer, op)).or_insert(0);
        let seen = *count;
        *count += 1;
        if self
            .plan
            .dead_triggers
            .iter()
            .any(|&(l, o, after)| l == layer && o == op && seen >= after)
        {
            self.dead.insert(layer);
            return Err(self.error(StoreError::permanent(layer, op, "layer storage died")));
        }
        if self.plan.spike_prob > 0.0 && self.rng.gen_bool(self.plan.spike_prob) {
            self.counters.0.spikes.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(self.plan.spike);
        }
        let p = match op {
            StoreOp::Fetch => self.plan.fetch_transient_prob,
            StoreOp::Offload => self.plan.offload_transient_prob,
        };
        if p > 0.0 && self.rng.gen_bool(p) {
            return Err(self.error(StoreError::transient(layer, op, "injected I/O error")));
        }
        Ok(())
    }
}

impl<S: StateStore> StateStore for FaultyStore<S> {
    fn fetch(&mut self, layer: usize) -> Result<LayerState, StoreError> {
        self.inject(layer, StoreOp::Fetch)?;
        match self.inner.fetch(layer) {
            Ok(s) => Ok(s),
            Err(e) => Err(self.error(e)),
        }
    }

    fn offload(&mut self, layer: usize, state: LayerState) -> Result<(), StoreError> {
        self.inject(layer, StoreOp::Offload)?;
        match self.inner.offload(layer, state) {
            Ok(()) => Ok(()),
            Err(e) => Err(self.error(e)),
        }
    }
}

/// Draw a deterministic stream of [`ClusterEvent`]s from an exponential
/// fleet-failure model — the bridge from the MTBF fault plans of the
/// goodput studies to [`crate::Engine::run_online`]. Each iteration fails
/// independently with probability `iter_time / fleet_mttf`; a failure is a
/// transient interconnect outage (half of the time, lasting a quarter of an
/// iteration) or the permanent loss of one server. Server losses stop once
/// the fleet is down to two servers, so replanning stays feasible.
pub fn mtbf_cluster_events(
    seed: u64,
    iters: usize,
    iter_time_ns: u64,
    fleet_mttf_secs: f64,
    servers: usize,
) -> Vec<ClusterEvent> {
    assert!(fleet_mttf_secs > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let p = ((iter_time_ns as f64 / 1e9) / fleet_mttf_secs).min(1.0);
    let mut alive = servers;
    let mut events = Vec::new();
    for at_iter in 0..iters {
        if p > 0.0 && rng.gen_bool(p) {
            if rng.gen_bool(0.5) || alive <= 2 {
                events.push(ClusterEvent::Outage {
                    at_iter,
                    target: FaultTarget::Comm,
                    at_ns: 0,
                    duration_ns: iter_time_ns / 4,
                });
            } else {
                alive -= 1;
                events.push(ClusterEvent::ServerLoss {
                    at_iter,
                    servers: 1,
                    at_ns: 0,
                });
            }
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lockfree::MemoryStore;

    fn store_with(plan: FaultPlan) -> FaultyStore<MemoryStore> {
        let initial = vec![LayerState::new(vec![1.0; 4]); 3];
        FaultyStore::new(MemoryStore::new(initial), plan)
    }

    #[test]
    fn clean_plan_is_transparent() {
        let mut s = store_with(FaultPlan::seeded(1));
        let st = s.fetch(0).unwrap();
        s.offload(0, st).unwrap();
        assert_eq!(s.counters().injected(), 0);
    }

    #[test]
    fn injection_is_deterministic_per_op_sequence() {
        let run = || {
            let mut s = store_with(FaultPlan::seeded(42).with_transient_prob(0.5, 0.5));
            let mut outcomes = Vec::new();
            for _ in 0..50 {
                match s.fetch(0) {
                    Ok(st) => {
                        outcomes.push(true);
                        // offload may itself fail; put the state back only
                        // on success so the layer stays occupied.
                        if s.inner.offload(0, st).is_err() {
                            unreachable!("inner MemoryStore cannot fail here");
                        }
                    }
                    Err(e) => {
                        assert!(e.is_transient());
                        outcomes.push(false);
                    }
                }
            }
            (outcomes, s.counters().injected())
        };
        let (a, na) = run();
        let (b, nb) = run();
        assert_eq!(a, b, "same seed + same op sequence ⇒ same faults");
        assert_eq!(na, nb);
        assert!(na > 0, "p=0.5 over 50 ops must fire");
    }

    #[test]
    fn mtbf_cluster_events_are_deterministic_and_bounded() {
        let iter_ns = 2_000_000_000; // 2 s iterations
        let a = mtbf_cluster_events(7, 500, iter_ns, 20.0, 8);
        let b = mtbf_cluster_events(7, 500, iter_ns, 20.0, 8);
        assert_eq!(a, b, "same seed ⇒ same event stream");
        assert!(!a.is_empty(), "MTBF of 10 iterations must fire over 500");
        // Server losses never shrink the fleet below two servers.
        let losses = a
            .iter()
            .filter(|e| matches!(e, ClusterEvent::ServerLoss { .. }))
            .count();
        assert!(losses <= 6);
        // Events arrive in iteration order, at most one per iteration.
        for w in a.windows(2) {
            assert!(w[0].at_iter() < w[1].at_iter());
        }
        // A long MTBF yields a quiet stream.
        assert!(mtbf_cluster_events(7, 10, iter_ns, 1e9, 8).is_empty());
    }

    #[test]
    fn injected_fetch_failure_leaves_inner_intact() {
        // An injected error must not consume the layer from the inner store.
        let mut s = store_with(FaultPlan::seeded(3).with_transient_prob(1.0, 0.0));
        assert!(s.fetch(0).unwrap_err().is_transient());
        // Bypassing injection, the state is still there.
        assert!(s.inner.fetch(0).is_ok());
    }

    #[test]
    fn dead_trigger_counts_ops() {
        let mut s = store_with(FaultPlan::seeded(5).with_dead_layer_after(2, StoreOp::Fetch, 2));
        for _ in 0..2 {
            let st = s.fetch(2).unwrap();
            s.offload(2, st).unwrap();
        }
        let e = s.fetch(2).unwrap_err();
        assert!(!e.is_transient());
        // Death is permanent and covers both ops.
        assert!(!s
            .offload(2, LayerState::new(vec![0.0; 4]))
            .unwrap_err()
            .is_transient());
        // Other layers unaffected.
        assert!(s.fetch(0).is_ok());
    }
}
