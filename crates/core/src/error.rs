//! Error types for the Angel-PTM core.

use angel_hw::DeviceId;
use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Everything that can go wrong in memory management and scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A device's page pool is exhausted.
    OutOfPages {
        device: DeviceId,
        requested_pages: usize,
        free_pages: usize,
    },
    /// The model cannot be placed on the configured hardware at all
    /// (model states exceed the sum of all usable tiers).
    ModelTooLarge { state_bytes: u64, usable_bytes: u64 },
    /// The per-layer working set exceeds a single GPU's memory, so no
    /// schedule exists (even fully serialized).
    WorkingSetTooLarge { layer_bytes: u64, gpu_bytes: u64 },
    /// A tensor id was used before allocation or after release.
    UnknownTensor(usize),
    /// An operation was applied to a tensor on the wrong device.
    WrongDevice {
        expected: Option<DeviceId>,
        actual: Option<DeviceId>,
    },
    /// Page-level invariant violation (caller bug surfaced as error in
    /// release builds where debug_asserts are off).
    PageInvariant(&'static str),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::OutOfPages {
                device,
                requested_pages,
                free_pages,
            } => write!(
                f,
                "out of pages on {device}: requested {requested_pages}, {free_pages} free"
            ),
            Error::ModelTooLarge {
                state_bytes,
                usable_bytes,
            } => write!(
                f,
                "model states ({}) exceed usable hierarchical memory ({})",
                angel_hw::fmt_bytes(*state_bytes),
                angel_hw::fmt_bytes(*usable_bytes)
            ),
            Error::WorkingSetTooLarge {
                layer_bytes,
                gpu_bytes,
            } => write!(
                f,
                "per-layer working set ({}) exceeds GPU memory ({})",
                angel_hw::fmt_bytes(*layer_bytes),
                angel_hw::fmt_bytes(*gpu_bytes)
            ),
            Error::UnknownTensor(id) => write!(f, "unknown tensor id {id}"),
            Error::WrongDevice { expected, actual } => {
                write!(f, "wrong device: expected {expected:?}, found {actual:?}")
            }
            Error::PageInvariant(msg) => write!(f, "page invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = Error::OutOfPages {
            device: DeviceId::gpu(0),
            requested_pages: 10,
            free_pages: 2,
        };
        assert!(e.to_string().contains("GPU0"));
        let e = Error::ModelTooLarge {
            state_bytes: 1 << 40,
            usable_bytes: 1 << 30,
        };
        assert!(e.to_string().contains("1.00 TiB"));
        let e = Error::UnknownTensor(7);
        assert!(e.to_string().contains('7'));
    }
}
