//! Error types for the Angel-PTM core.

use angel_hw::DeviceId;
use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Which [`crate::lockfree::StateStore`] operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreOp {
    Fetch,
    Offload,
}

impl fmt::Display for StoreOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreOp::Fetch => write!(f, "fetch"),
            StoreOp::Offload => write!(f, "offload"),
        }
    }
}

/// How a [`crate::lockfree::StateStore`] operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreErrorKind {
    /// Transient I/O fault (EIO, timeout, checksum mismatch): a retry of the
    /// same operation may succeed.
    Transient,
    /// Permanent fault: the layer's backing storage is gone (dead device,
    /// invariant violation) and no retry will succeed.
    Permanent,
}

/// A failed state-store operation on the lock-free update path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreError {
    pub layer: usize,
    pub op: StoreOp,
    pub kind: StoreErrorKind,
    /// Human-readable cause (e.g. which injector fired).
    pub detail: &'static str,
}

impl StoreError {
    pub fn transient(layer: usize, op: StoreOp, detail: &'static str) -> Self {
        Self {
            layer,
            op,
            kind: StoreErrorKind::Transient,
            detail,
        }
    }

    pub fn permanent(layer: usize, op: StoreOp, detail: &'static str) -> Self {
        Self {
            layer,
            op,
            kind: StoreErrorKind::Permanent,
            detail,
        }
    }

    pub fn is_transient(&self) -> bool {
        self.kind == StoreErrorKind::Transient
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            StoreErrorKind::Transient => "transient",
            StoreErrorKind::Permanent => "permanent",
        };
        write!(
            f,
            "{kind} store error during {} of layer {}: {}",
            self.op, self.layer, self.detail
        )
    }
}

impl std::error::Error for StoreError {}

/// Terminal failures of the lock-free trainer itself (as opposed to
/// per-layer store faults, which the trainer degrades around).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainerError {
    /// A store operation failed permanently while extracting final state.
    Store(StoreError),
    /// A worker thread panicked; its state (and the store it owned) is lost.
    WorkerPanicked { thread: &'static str },
}

impl fmt::Display for TrainerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainerError::Store(e) => write!(f, "{e}"),
            TrainerError::WorkerPanicked { thread } => {
                write!(f, "lock-free worker thread '{thread}' panicked")
            }
        }
    }
}

impl std::error::Error for TrainerError {}

impl From<StoreError> for TrainerError {
    fn from(e: StoreError) -> Self {
        TrainerError::Store(e)
    }
}

/// Everything that can go wrong in memory management and scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A device's page pool is exhausted.
    OutOfPages {
        device: DeviceId,
        requested_pages: usize,
        free_pages: usize,
    },
    /// The model cannot be placed on the configured hardware at all
    /// (model states exceed the sum of all usable tiers).
    ModelTooLarge { state_bytes: u64, usable_bytes: u64 },
    /// The per-layer working set exceeds a single GPU's memory, so no
    /// schedule exists (even fully serialized).
    WorkingSetTooLarge { layer_bytes: u64, gpu_bytes: u64 },
    /// A tensor id was used before allocation or after release.
    UnknownTensor(usize),
    /// An operation was applied to a tensor on the wrong device.
    WrongDevice {
        expected: Option<DeviceId>,
        actual: Option<DeviceId>,
    },
    /// Page-level invariant violation (caller bug surfaced as error in
    /// release builds where debug_asserts are off).
    PageInvariant(&'static str),
    /// [`crate::Communicator::task_id`] was asked for a collective that was
    /// never flushed to the channel — a plan bug (a consumer wired to an
    /// unsubmitted gather) that should surface as a plan error, not abort
    /// the simulation.
    UnflushedCollective { handle: usize },
    /// A [`crate::ParallelismPlan`] cannot be laid onto the configured
    /// cluster (axis product ≠ GPU count, TP spilling out of the NVLink
    /// domain, invalid ZeRO stage, ...).
    InvalidParallelism(String),
    /// `add_pool` was asked to re-register a pool that still holds live
    /// tensors. Silently replacing it would zero `used_pages`/`tenant_bytes`
    /// under the residents and corrupt every stat and gauge afterwards.
    PoolInUse { device: DeviceId, used_pages: usize },
    /// A [`crate::replan::ReplanDelta`] is malformed (out-of-range or
    /// duplicate layer index, layer-count change without a step list, a step
    /// referencing a missing layer, ...). The planner rejects it without
    /// mutating its state, so the previous plan stays live.
    BadReplanDelta(&'static str),
    /// A [`crate::ClusterEvent::ServerLoss`] destroyed the entire fleet:
    /// no server survives to replan onto. Earlier versions silently
    /// respliced onto one phantom server; total loss is terminal and must
    /// surface to the caller (the engine keeps its last good plan, but no
    /// further iteration can run for real).
    ClusterExhausted {
        /// Servers the fleet held before the fatal event.
        had_servers: usize,
        /// Servers the event removed (≥ `had_servers`).
        lost_servers: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::OutOfPages {
                device,
                requested_pages,
                free_pages,
            } => write!(
                f,
                "out of pages on {device}: requested {requested_pages}, {free_pages} free"
            ),
            Error::ModelTooLarge {
                state_bytes,
                usable_bytes,
            } => write!(
                f,
                "model states ({}) exceed usable hierarchical memory ({})",
                angel_hw::fmt_bytes(*state_bytes),
                angel_hw::fmt_bytes(*usable_bytes)
            ),
            Error::WorkingSetTooLarge {
                layer_bytes,
                gpu_bytes,
            } => write!(
                f,
                "per-layer working set ({}) exceeds GPU memory ({})",
                angel_hw::fmt_bytes(*layer_bytes),
                angel_hw::fmt_bytes(*gpu_bytes)
            ),
            Error::UnknownTensor(id) => write!(f, "unknown tensor id {id}"),
            Error::WrongDevice { expected, actual } => {
                write!(f, "wrong device: expected {expected:?}, found {actual:?}")
            }
            Error::PageInvariant(msg) => write!(f, "page invariant violated: {msg}"),
            Error::UnflushedCollective { handle } => write!(
                f,
                "collective handle {handle} was never flushed to the channel"
            ),
            Error::InvalidParallelism(msg) => write!(f, "invalid parallelism plan: {msg}"),
            Error::PoolInUse { device, used_pages } => write!(
                f,
                "pool on {device} still holds {used_pages} used page(s); release its tensors before re-registering"
            ),
            Error::BadReplanDelta(msg) => write!(f, "bad replan delta: {msg}"),
            Error::ClusterExhausted {
                had_servers,
                lost_servers,
            } => write!(
                f,
                "cluster exhausted: lost {lost_servers} of {had_servers} server(s), none survive to replan onto"
            ),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = Error::OutOfPages {
            device: DeviceId::gpu(0),
            requested_pages: 10,
            free_pages: 2,
        };
        assert!(e.to_string().contains("GPU0"));
        let e = Error::ModelTooLarge {
            state_bytes: 1 << 40,
            usable_bytes: 1 << 30,
        };
        assert!(e.to_string().contains("1.00 TiB"));
        let e = Error::UnknownTensor(7);
        assert!(e.to_string().contains('7'));
        let e = Error::UnflushedCollective { handle: 3 };
        assert!(e.to_string().contains("handle 3"));
        let e = Error::InvalidParallelism("dp × tp mismatch".into());
        assert!(e.to_string().contains("dp × tp mismatch"));
        let e = Error::PoolInUse {
            device: DeviceId::CPU,
            used_pages: 4,
        };
        assert!(e.to_string().contains("CPU"));
        assert!(e.to_string().contains("4 used page"));
        let e = Error::ClusterExhausted {
            had_servers: 2,
            lost_servers: 3,
        };
        assert!(e.to_string().contains("lost 3 of 2"));
        assert!(e.to_string().contains("none survive"));
    }

    #[test]
    fn store_error_display_and_kind() {
        let e = StoreError::transient(3, StoreOp::Fetch, "injected EIO");
        assert!(e.is_transient());
        assert!(e.to_string().contains("transient"));
        assert!(e.to_string().contains("fetch"));
        assert!(e.to_string().contains("layer 3"));
        let p = StoreError::permanent(1, StoreOp::Offload, "device gone");
        assert!(!p.is_transient());
        let t: TrainerError = p.into();
        assert!(t.to_string().contains("offload"));
        let w = TrainerError::WorkerPanicked { thread: "updating" };
        assert!(w.to_string().contains("updating"));
    }
}
