//! The Tensor structure — Figure 4 of the paper.
//!
//! ```c
//! struct Tensor {
//!   size_t id;
//!   vector<Page> page_list;
//!   size_t dtype;
//!   size_t* shape;
//!   size_t device_index;   // -1 when not ready for computation
//!   void allocate(size_t* shape, size_t dtype);
//!   void release();
//!   void move(size_t target_device_index);
//!   void merge();
//! };
//! ```
//!
//! In this Rust port the tensor does not *own* its pages (pages live in the
//! [`crate::PageAllocator`] arena, since one page can be shared by two
//! tensors); it holds their ids plus its range within each. The paper's
//! footnote — "we set the device index as -1 when the tensor is not ready
//! for computation (i.e., some of its pages need to be fetched from
//! heterogeneous memory or other servers)" — maps onto `Option<DeviceId>`.

use crate::page::PageId;
use angel_hw::DeviceId;
use serde::{Deserialize, Serialize};

/// Unique tensor identifier. The paper assigns these by hooking parameter
/// construction ("we modify the `__init__` method of the Parameter class to
/// use a global variable id").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TensorId(pub usize);

/// Element data types the memory manager cares about (it only needs sizes;
/// real arithmetic lives in `angel-train`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// Raw bytes (untyped buffers, e.g. serialized pages in flight).
    Byte,
    /// 2-byte half precision (FP16 or BF16).
    Half,
    /// 4-byte single precision.
    Single,
}

impl DType {
    pub fn bytes(self) -> u64 {
        match self {
            DType::Byte => 1,
            DType::Half => 2,
            DType::Single => 4,
        }
    }
}

/// A tensor's slice of one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageRange {
    pub page: PageId,
    /// Byte offset of this range within the page.
    pub offset: u64,
    /// Bytes of this tensor stored in the page.
    pub bytes: u64,
}

/// The Tensor of Figure 4.
#[derive(Debug, Clone)]
pub struct Tensor {
    pub id: TensorId,
    /// `page_list`: the pages composing this tensor, in element order.
    pub pages: Vec<PageRange>,
    pub dtype: DType,
    pub shape: Vec<usize>,
    /// `device_index`: `None` = the paper's −1, "not ready for computation".
    pub device: Option<DeviceId>,
}

impl Tensor {
    /// Metadata-only constructor; page ranges are attached by
    /// [`crate::PageAllocator::alloc_tensor`].
    pub fn new(id: TensorId, shape: Vec<usize>, dtype: DType) -> Self {
        Self {
            id,
            pages: Vec::new(),
            dtype,
            shape,
            device: None,
        }
    }

    /// Number of elements.
    pub fn numel(&self) -> u64 {
        self.shape.iter().map(|&d| d as u64).product()
    }

    /// Total size in bytes.
    pub fn bytes(&self) -> u64 {
        self.numel() * self.dtype.bytes()
    }

    /// Bytes currently covered by page ranges (equals [`Tensor::bytes`] once
    /// allocated).
    pub fn allocated_bytes(&self) -> u64 {
        self.pages.iter().map(|r| r.bytes).sum()
    }

    /// Whether the tensor's data is materialized in pages.
    pub fn is_allocated(&self) -> bool {
        !self.pages.is_empty()
    }

    /// The paper's `device_index` with its −1 convention.
    pub fn device_index(&self) -> isize {
        match self.device {
            Some(d) => d.kind.code() as isize,
            None => -1,
        }
    }

    /// Whether all pages sit on one device and the tensor is compute-ready.
    pub fn is_ready(&self) -> bool {
        self.device.is_some()
    }

    /// Whether the tensor occupies a contiguous range of a single page —
    /// the post-condition of the paper's `merge()`.
    pub fn is_contiguous(&self) -> bool {
        self.pages.len() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_from_shape_and_dtype() {
        let t = Tensor::new(TensorId(0), vec![128, 256], DType::Half);
        assert_eq!(t.numel(), 32768);
        assert_eq!(t.bytes(), 65536);
        let t = Tensor::new(TensorId(1), vec![10], DType::Single);
        assert_eq!(t.bytes(), 40);
    }

    #[test]
    fn device_index_sentinel() {
        let mut t = Tensor::new(TensorId(0), vec![4], DType::Half);
        assert_eq!(t.device_index(), -1);
        assert!(!t.is_ready());
        t.device = Some(DeviceId::gpu(3));
        assert_eq!(t.device_index(), 0); // GPU code
        t.device = Some(DeviceId::SSD);
        assert_eq!(t.device_index(), 2);
        assert!(t.is_ready());
    }

    #[test]
    fn unallocated_tensor_state() {
        let t = Tensor::new(TensorId(0), vec![4, 4], DType::Single);
        assert!(!t.is_allocated());
        assert_eq!(t.allocated_bytes(), 0);
        assert!(t.is_contiguous()); // vacuously
    }

    #[test]
    fn scalar_shape() {
        let t = Tensor::new(TensorId(0), vec![], DType::Single);
        assert_eq!(t.numel(), 1); // empty product
        assert_eq!(t.bytes(), 4);
    }
}
