//! The dynamic GPU cache of optimizer states — Section 4.2's caching
//! technique.
//!
//! "If sufficient space is available, we reserve a portion of the GPU memory
//! as the cache to store a segment of the CPU's optimizer states.
//! Additionally, we move the relevant CPU computations to the GPUs, which
//! reduces memory transfers and accelerates computation ... we dynamically
//! make cache size decisions for each model based on its tensor lifetime
//! information, ensuring training without encountering GPU out-of-memory
//! errors."
//!
//! This module takes the Unified Scheduler's planned peak (which already
//! reflects tensor lifetimes) and sizes the cache to fill the remaining GPU
//! memory, at page granularity, with a configurable safety margin. Cached
//! optimizer pages are updated *on the GPU* (HBM-bandwidth-bound), the rest
//! on the CPU (DDR-bandwidth-bound) — the split the Engine charges to the
//! simulator.

use serde::{Deserialize, Serialize};

/// The outcome of a cache-sizing decision for one rank.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CachePlan {
    /// Bytes of optimizer state cached in GPU memory.
    pub cache_bytes: u64,
    /// Number of whole pages that fit in the cache.
    pub cache_pages: usize,
    /// Fraction of this rank's optimizer states that is cached.
    pub cached_fraction: f64,
    /// Optimizer-state bytes updated on the GPU per iteration (the cached
    /// portion).
    pub gpu_update_bytes: u64,
    /// Optimizer-state bytes updated on the CPU per iteration.
    pub cpu_update_bytes: u64,
}

/// Size the optimizer-state cache for one rank.
///
/// * `gpu_capacity` — the rank's total GPU memory;
/// * `planned_peak` — the scheduler's peak GPU bytes (params, gathers,
///   working sets) that the cache must never displace;
/// * `optim_state_bytes` — the rank's share of FP32 optimizer states;
/// * `page_size` — cache granularity;
/// * `safety_margin` — bytes kept free for allocator slack and fragmentation
///   headroom (the "ensuring training without OOM" clause).
pub fn plan_cache(
    gpu_capacity: u64,
    planned_peak: u64,
    optim_state_bytes: u64,
    page_size: u64,
    safety_margin: u64,
) -> CachePlan {
    let spare = gpu_capacity
        .saturating_sub(planned_peak)
        .saturating_sub(safety_margin);
    let cache_pages = (spare / page_size).min(optim_state_bytes.div_ceil(page_size)) as usize;
    let cache_bytes = (cache_pages as u64 * page_size).min(optim_state_bytes);
    let cached_fraction = if optim_state_bytes == 0 {
        0.0
    } else {
        cache_bytes as f64 / optim_state_bytes as f64
    };
    CachePlan {
        cache_bytes,
        cache_pages,
        cached_fraction,
        gpu_update_bytes: cache_bytes,
        cpu_update_bytes: optim_state_bytes - cache_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use angel_hw::{GIB, MIB};

    const PAGE: u64 = 4 * MIB;

    #[test]
    fn no_spare_no_cache() {
        let p = plan_cache(40 * GIB, 40 * GIB, 10 * GIB, PAGE, 0);
        assert_eq!(p.cache_bytes, 0);
        assert_eq!(p.cpu_update_bytes, 10 * GIB);
        assert_eq!(p.cached_fraction, 0.0);
    }

    #[test]
    fn spare_memory_fills_with_cache() {
        // 40 GiB GPU, 25 GiB peak, 1 GiB margin → 14 GiB cache.
        let p = plan_cache(40 * GIB, 25 * GIB, 100 * GIB, PAGE, GIB);
        assert_eq!(p.cache_bytes, 14 * GIB);
        assert_eq!(p.gpu_update_bytes, 14 * GIB);
        assert_eq!(p.cpu_update_bytes, 86 * GIB);
        assert!((p.cached_fraction - 0.14).abs() < 1e-9);
    }

    #[test]
    fn cache_capped_by_state_size() {
        // Medium-scale models: "we can store and compute a large portion of
        // tensors on the GPUs" — here the whole state fits.
        let p = plan_cache(40 * GIB, 10 * GIB, 8 * GIB, PAGE, 0);
        assert_eq!(p.cache_bytes, 8 * GIB);
        assert_eq!(p.cpu_update_bytes, 0);
        assert_eq!(p.cached_fraction, 1.0);
    }

    #[test]
    fn page_granularity() {
        let p = plan_cache(100 * PAGE, 90 * PAGE + 1, 100 * PAGE, PAGE, 0);
        // Spare is just under 10 pages → 9 whole pages.
        assert_eq!(p.cache_pages, 9);
        assert_eq!(p.cache_bytes, 9 * PAGE);
    }

    #[test]
    fn margin_respected() {
        let with = plan_cache(40 * GIB, 20 * GIB, 100 * GIB, PAGE, 2 * GIB);
        let without = plan_cache(40 * GIB, 20 * GIB, 100 * GIB, PAGE, 0);
        assert_eq!(without.cache_bytes - with.cache_bytes, 2 * GIB);
    }

    #[test]
    fn zero_state_edge() {
        let p = plan_cache(40 * GIB, 10 * GIB, 0, PAGE, 0);
        assert_eq!(p.cache_bytes, 0);
        assert_eq!(p.cached_fraction, 0.0);
    }
}
