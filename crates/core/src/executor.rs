//! The Executor — Section 5 of the paper.
//!
//! "The Executor in Angel-PTM is responsible for scheduling the computation
//! of Tensors on computational devices such as CPUs and GPUs on the server.
//! Meanwhile, it maintains a separate stream for each of these computational
//! devices, including a CPU stream and a GPU stream. By receiving
//! instructions from the unified scheduler, it inserts computations into the
//! corresponding stream and schedules them to the computation threads in the
//! order of insertion. When all the inputs for the computation are ready,
//! the computation begins, and feedback is sent back to the unified
//! scheduler after the computation is complete."
//!
//! Mapped onto the discrete-event substrate: each device stream is an
//! `angel-sim` FIFO resource; "inputs ready" is the dependency edge set;
//! "feedback" is the returned task id that later operations depend on. The
//! event-driven triggering the paper describes ("computations will be
//! launched into threads only if the events of modifying its input tensor
//! are completed") is exactly the executor semantics of
//! [`angel_sim::Simulation::run`].

use angel_sim::{Ns, ResourceId, Resources, SimTask, Simulation, Work};

/// Which device stream a computation runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stream {
    /// The GPU compute stream (forward/backward kernels, cached updates).
    Gpu,
    /// The CPU worker pool (optimizer updates).
    Cpu,
}

/// The Executor: owns one stream per computational device.
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    gpu_stream: ResourceId,
    cpu_stream: ResourceId,
}

impl Executor {
    /// Register the executor's streams with the simulation's resources.
    pub fn new(resources: &mut Resources) -> Self {
        Self {
            gpu_stream: resources.add_compute("executor:gpu-stream"),
            cpu_stream: resources.add_compute("executor:cpu-stream"),
        }
    }

    pub fn stream_id(&self, stream: Stream) -> ResourceId {
        match stream {
            Stream::Gpu => self.gpu_stream,
            Stream::Cpu => self.cpu_stream,
        }
    }

    /// Insert a computation into a device stream. It starts once the stream
    /// reaches it **and** all `deps` completed; the returned id is the
    /// completion event other components wait on.
    pub fn submit(
        &self,
        sim: &mut Simulation,
        stream: Stream,
        duration_ns: Ns,
        deps: impl IntoIterator<Item = usize>,
        label: impl Into<String>,
    ) -> usize {
        sim.submit(
            SimTask::new(self.stream_id(stream), Work::Duration(duration_ns))
                .with_deps(deps)
                .with_label(label),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_serialize_within_but_overlap_across() {
        let mut resources = Resources::new();
        let ex = Executor::new(&mut resources);
        let mut sim = Simulation::new(resources);
        // Two GPU kernels + one CPU update, no cross dependencies.
        ex.submit(&mut sim, Stream::Gpu, 100, [], "k1");
        ex.submit(&mut sim, Stream::Gpu, 100, [], "k2");
        ex.submit(&mut sim, Stream::Cpu, 150, [], "update");
        let report = sim.run();
        // GPU kernels serialize (200), CPU overlaps: makespan 200, not 350.
        assert_eq!(report.makespan, 200);
    }

    #[test]
    fn input_ready_events_gate_execution() {
        let mut resources = Resources::new();
        let ex = Executor::new(&mut resources);
        let mut sim = Simulation::new(resources);
        let producer = ex.submit(&mut sim, Stream::Cpu, 300, [], "produce-input");
        ex.submit(&mut sim, Stream::Gpu, 50, [producer], "consume");
        let report = sim.run();
        assert_eq!(report.start_times[1], 300);
        assert_eq!(report.makespan, 350);
    }

    #[test]
    fn insertion_order_is_execution_order_within_a_stream() {
        let mut resources = Resources::new();
        let ex = Executor::new(&mut resources);
        let mut sim = Simulation::new(resources);
        let ids: Vec<_> = (0..5)
            .map(|i| ex.submit(&mut sim, Stream::Gpu, 10, [], format!("k{i}")))
            .collect();
        let report = sim.run();
        for w in ids.windows(2) {
            assert!(report.start_times[w[0]] < report.start_times[w[1]]);
        }
    }
}
