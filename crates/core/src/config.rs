//! Engine configuration and the calibration constants tying the simulation
//! to the paper's hardware.

use angel_hw::{ClusterSpec, DeviceMesh, GIB};
use angel_sim::compute::{CpuUpdateModel, GpuComputeModel, GpuUpdateModel};
use serde::{Deserialize, Serialize};

use crate::error::Result;
use crate::page::PAGE_SIZE_DEFAULT;
use crate::plan::ParallelismPlan;

/// Host-memory calibration. The fractions below are *policy-derived*, not
/// per-experiment tuning knobs (see DESIGN.md §4):
///
/// * Angel-PTM pre-allocates its CPU page pool from pinned memory and
///   shares the host with the dataloader, NCCL bounce buffers, CUDA/driver
///   allocations and the OS; we budget 48% of physical RAM for the page
///   pool. This single constant, together with the byte placement rules,
///   reproduces the paper's Table 5 maxima (55B GPT / 58B T5 on one
///   server — including the T5 > GPT ordering) without per-experiment
///   tuning.
/// * The FP16 parameter/gradient buffers of the lock-free mechanism
///   (Algorithm 2) consume additional host bytes (4 per parameter),
///   accounted separately by the engine when lock-free mode is on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostMemoryPolicy {
    /// Fraction of host RAM usable by the page pool.
    pub usable_fraction: f64,
}

impl Default for HostMemoryPolicy {
    fn default() -> Self {
        Self {
            usable_fraction: 0.48,
        }
    }
}

/// Full engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The hardware to (simulated-)run on.
    pub cluster: ClusterSpec,
    /// Page size for the allocator and the schedule (the paper's optimum is
    /// 4 MiB; the ablation harness varies this).
    pub page_size: u64,
    /// Per-GPU micro-batch size.
    pub batch_size: u64,
    /// How the cluster's GPUs factor into dp × tp × pp and which ZeRO stage
    /// the dp axis runs. Defaults to pure ZeRO-3 data parallelism over every
    /// GPU — the paper's configuration, and the degenerate mesh that keeps
    /// all pre-mesh results byte-identical.
    pub parallelism: ParallelismPlan,
    /// Micro-batches per iteration (the pipeline fill of a pp > 1 plan;
    /// 1 for pure data parallelism).
    pub micro_batches: u64,
    /// Activation recomputation (on by default, as in the paper).
    pub recompute: bool,
    /// Use the SSD tier for FP32 optimizer states (Section 6.5 only).
    pub use_ssd: bool,
    /// Enable the Lock-Free Updating Mechanism (Algorithm 2).
    pub lock_free: bool,
    /// Enable the dynamic GPU cache of optimizer states (Section 4.2).
    pub gpu_cache: bool,
    /// Enable phase 2 of Algorithm 1 (all-gather advancement). Off only in
    /// the scheduler ablation.
    pub phase2_advance: bool,
    /// GPU bytes reserved outside the model-state budget: CUDA context,
    /// NCCL buffers, allocator slack (observed ~2 GiB on A100 deployments).
    pub gpu_reserved: u64,
    /// Fractional per-step cost of page bookkeeping, event handling and
    /// schedule dispatch. The paper measures it directly: Angel-PTM "runs
    /// slightly slower than Megatron-LM (a 2.4% slowdown)" on a model that
    /// needs no memory movement at all, so the overhead is ~2.5% of compute.
    pub mm_overhead: f64,
    pub host_policy: HostMemoryPolicy,
    pub gpu_compute: GpuComputeModel,
    pub cpu_update: CpuUpdateModel,
    pub gpu_update: GpuUpdateModel,
    /// Debug builds statically verify each lowered iteration, but the
    /// verifier's happens-before closure is O(V²·E/64) — quadratic at large
    /// lowerings. Iterations with more tasks than this skip the per-iteration
    /// self-verify (`ANGEL_DEBUG_VERIFY=always|off` overrides either way).
    pub debug_verify_task_limit: usize,
}

impl EngineConfig {
    /// One Tencent A100 server (Table 3), the Section 6.2/6.3 "1×8" setting.
    pub fn single_server() -> Self {
        Self::for_cluster(ClusterSpec::single_a100())
    }

    /// `n` Tencent A100 servers.
    pub fn servers(n: usize) -> Self {
        Self::for_cluster(ClusterSpec::a100_tencent(n))
    }

    pub fn for_cluster(cluster: ClusterSpec) -> Self {
        let parallelism = ParallelismPlan::zero3(cluster.total_gpus());
        Self {
            cluster,
            page_size: PAGE_SIZE_DEFAULT,
            batch_size: 1,
            parallelism,
            micro_batches: 1,
            recompute: true,
            use_ssd: false,
            lock_free: false,
            gpu_cache: true,
            phase2_advance: true,
            gpu_reserved: 2 * GIB,
            mm_overhead: 0.025,
            host_policy: HostMemoryPolicy::default(),
            gpu_compute: GpuComputeModel::a100(),
            cpu_update: CpuUpdateModel::epyc_tencent(),
            gpu_update: GpuUpdateModel::default(),
            debug_verify_task_limit: 20_000,
        }
    }

    pub fn with_debug_verify_task_limit(mut self, limit: usize) -> Self {
        self.debug_verify_task_limit = limit;
        self
    }

    pub fn with_batch_size(mut self, b: u64) -> Self {
        assert!(b >= 1);
        self.batch_size = b;
        self
    }

    /// Set the dp × tp × pp factorization (validated against the cluster at
    /// [`EngineConfig::device_mesh`] / engine initialization).
    pub fn with_parallelism(mut self, plan: ParallelismPlan) -> Self {
        self.parallelism = plan;
        self
    }

    pub fn with_micro_batches(mut self, m: u64) -> Self {
        assert!(m >= 1);
        self.micro_batches = m;
        self
    }

    pub fn with_page_size(mut self, page_size: u64) -> Self {
        assert!(page_size > 0);
        self.page_size = page_size;
        self
    }

    pub fn with_ssd(mut self, on: bool) -> Self {
        self.use_ssd = on;
        self
    }

    pub fn with_lock_free(mut self, on: bool) -> Self {
        self.lock_free = on;
        self
    }

    pub fn with_gpu_cache(mut self, on: bool) -> Self {
        self.gpu_cache = on;
        self
    }

    pub fn with_phase2_advance(mut self, on: bool) -> Self {
        self.phase2_advance = on;
        self
    }

    pub fn with_recompute(mut self, on: bool) -> Self {
        self.recompute = on;
        self
    }

    pub fn with_gpu_reserved(mut self, bytes: u64) -> Self {
        self.gpu_reserved = bytes;
        self
    }

    /// Total GPUs in the cluster.
    pub fn num_gpus(&self) -> usize {
        self.cluster.total_gpus()
    }

    /// Lay the configured [`ParallelismPlan`] onto the cluster.
    pub fn device_mesh(&self) -> Result<DeviceMesh> {
        self.parallelism.validate(&self.cluster)
    }

    /// Global batch size: each of the `dp` model replicas consumes
    /// `batch_size` samples per micro-batch. With the default plan
    /// (dp = every GPU, one micro-batch) this is `batch_size × num_gpus`.
    pub fn global_batch(&self) -> u64 {
        self.batch_size * self.micro_batches * self.parallelism.dp as u64
    }

    /// Host bytes usable by the page pool, per server.
    pub fn usable_host_bytes(&self) -> u64 {
        (self.cluster.server.cpu.capacity as f64 * self.host_policy.usable_fraction) as u64
    }

    /// SSD bytes usable per server (0 when the SSD tier is off).
    pub fn usable_ssd_bytes(&self) -> u64 {
        if !self.use_ssd {
            return 0;
        }
        self.cluster
            .server
            .ssd
            .as_ref()
            .map(|d| d.capacity)
            .unwrap_or(0)
    }

    /// Per-GPU bytes available to model states and schedules.
    pub fn gpu_budget(&self) -> u64 {
        self.cluster
            .server
            .gpu(0)
            .capacity
            .saturating_sub(self.gpu_reserved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = EngineConfig::single_server();
        assert_eq!(c.page_size, 4 * 1024 * 1024);
        assert_eq!(c.num_gpus(), 8);
        assert!(c.recompute);
        assert!(!c.use_ssd);
        assert!(!c.lock_free);
        assert_eq!(c.usable_ssd_bytes(), 0);
    }

    #[test]
    fn budgets() {
        let c = EngineConfig::single_server();
        assert_eq!(c.gpu_budget(), 38 * GIB);
        let host = c.usable_host_bytes();
        assert!(host > 480 * GIB && host < 500 * GIB);
        let with_ssd = c.with_ssd(true);
        assert!(with_ssd.usable_ssd_bytes() > 10 * (1u64 << 40));
    }

    #[test]
    fn cluster_scaling() {
        let c = EngineConfig::servers(96).with_batch_size(4);
        assert_eq!(c.num_gpus(), 768);
        assert_eq!(c.global_batch(), 3072);
    }

    #[test]
    fn parallelism_plans_validate_onto_the_cluster() {
        let c = EngineConfig::servers(4).with_parallelism(ParallelismPlan::megatron(4, 2, 4));
        let mesh = c.device_mesh().unwrap();
        assert_eq!((mesh.dp(), mesh.pp(), mesh.tp()), (4, 4, 2));
        // A plan whose axis product misses the cluster is a typed error.
        assert!(EngineConfig::servers(4)
            .with_parallelism(ParallelismPlan::zero3(8))
            .device_mesh()
            .is_err());
        // Global batch counts dp replicas × micro-batches, not raw GPUs.
        let c = c.with_batch_size(2).with_micro_batches(8);
        assert_eq!(c.global_batch(), 64);
    }

    #[test]
    fn builders_compose() {
        let c = EngineConfig::single_server()
            .with_batch_size(16)
            .with_page_size(1 << 20)
            .with_ssd(true)
            .with_lock_free(true)
            .with_gpu_cache(false)
            .with_recompute(false)
            .with_gpu_reserved(GIB);
        assert_eq!(c.batch_size, 16);
        assert_eq!(c.page_size, 1 << 20);
        assert!(c.use_ssd && c.lock_free && !c.gpu_cache && !c.recompute);
        assert_eq!(c.gpu_budget(), 39 * GIB);
    }
}
