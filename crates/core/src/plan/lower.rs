//! Stage 5 — Lower: turn plans into `angel-sim` task graphs (Section 5's
//! Executor and Communicator, on simulated hardware).
//!
//! [`Lowering`] is the one place task graphs are built: it owns the
//! simulation's resource surface (GPU/CPU streams, PCIe H2D/D2H links, the
//! collective channel, the SSD channel, optionally a GPU memory domain) and
//! exposes the movement/compute/collective primitives every system lowers
//! through. The Engine lowers Algorithm 1 schedules ([`lower_schedule`]);
//! the baselines lower their own policies (DeepSpeed's static partition
//! with just-in-time gathers, Megatron's 1F1B pipeline) through the same
//! primitives — so all systems are measured on identical simulated hardware
//! and differ only in policy, never in plumbing.
//!
//! [`LoweringConfig`] carries the policy-visible hardware knobs: a PCIe
//! efficiency factor (1.0 for Angel-PTM's page-granular streaming;
//! DeepSpeed's tensor-granular transfers run degraded) and an optional GPU
//! memory domain for acquire/release accounting.

use crate::cache::CachePlan;
use crate::communicator::{CommGroup, CommKind, CommRecord, Communicator};
use crate::config::EngineConfig;
use crate::executor::{Executor, Stream};
use crate::scheduler::{Schedule, StepKind, TaskOp};
use crate::zero::ZeroPartition;
use angel_hw::{ClusterSpec, DeviceMesh};
use angel_model::TransformerConfig;
use angel_sim::collectives::Collective;
use angel_sim::{
    Access, ExecutionReport, MemDomainId, MemEffect, Ns, ResourceId, Resources, SimTask, Simulation,
};
use serde::{Deserialize, Serialize};

use crate::verify::{objects, PlanGraph, PlanReport};

use super::memory::Placement;

/// Hardware-surface parameters of one lowering.
#[derive(Debug, Clone)]
pub struct LoweringConfig {
    /// Cluster whose links/collective fabric the graph runs on.
    pub cluster: ClusterSpec,
    /// Ranks participating in dp collectives (duration model denominator).
    pub ranks: u64,
    /// The device mesh, when the caller runs a non-trivial parallelism
    /// plan: its tp/pp axes get their own communicator channels, priced by
    /// their own group layouts.
    pub mesh: Option<DeviceMesh>,
    /// PCIe efficiency relative to ideal streaming (1.0 = page-granular).
    pub pcie_efficiency: f64,
    /// Capacity of the GPU memory domain, when acquire/release accounting
    /// is wanted.
    pub gpu_mem_capacity: Option<u64>,
}

impl LoweringConfig {
    pub fn new(cluster: ClusterSpec, ranks: u64) -> Self {
        Self {
            cluster,
            ranks,
            mesh: None,
            pcie_efficiency: 1.0,
            gpu_mem_capacity: None,
        }
    }

    /// The Engine's surface: full-efficiency PCIe, GPU memory domain sized
    /// to the page-pool budget, collectives over the configured mesh (the
    /// whole fleet on the dp axis by default).
    pub fn for_engine(config: &EngineConfig) -> Self {
        let mut cfg = Self::new(config.cluster.clone(), config.num_gpus() as u64)
            .with_gpu_mem(config.gpu_budget());
        if let Ok(mesh) = config.device_mesh() {
            cfg = cfg.with_mesh(mesh);
        }
        cfg
    }

    pub fn with_mesh(mut self, mesh: DeviceMesh) -> Self {
        self.mesh = Some(mesh);
        self
    }

    pub fn with_pcie_efficiency(mut self, efficiency: f64) -> Self {
        self.pcie_efficiency = efficiency;
        self
    }

    pub fn with_gpu_mem(mut self, capacity: u64) -> Self {
        self.gpu_mem_capacity = Some(capacity);
        self
    }
}

/// The shared task-graph builder over one simulation's resource surface.
pub struct Lowering {
    sim: Simulation,
    executor: Executor,
    communicator: Communicator,
    gpu_mem: Option<MemDomainId>,
    h2d: ResourceId,
    d2h: ResourceId,
    ssd: ResourceId,
}

impl Lowering {
    /// Register the standard resource surface and open the simulation.
    pub fn new(cfg: &LoweringConfig) -> Self {
        let mut resources = Resources::new();
        let executor = Executor::new(&mut resources);
        let gpu_mem = cfg
            .gpu_mem_capacity
            .map(|c| resources.add_mem_domain("gpu-mem", c));
        let pcie = &cfg.cluster.server.pcie;
        let pcie_bw = (pcie.bandwidth as f64 * cfg.pcie_efficiency) as u64;
        let h2d = resources.add_link("pcie-h2d", pcie_bw, pcie.latency_ns);
        let d2h = resources.add_link("pcie-d2h", pcie_bw, pcie.latency_ns);
        let communicator = match &cfg.mesh {
            Some(mesh) => Communicator::for_mesh(&mut resources, mesh),
            None => Communicator::new(&mut resources, cfg.cluster.clone(), cfg.ranks),
        };
        let gpus_per_server = cfg.cluster.server.num_gpus() as u64;
        let ssd_link = &cfg.cluster.server.ssd_link;
        // SSD bandwidth is shared by the server's ranks.
        let ssd = resources.add_link(
            "ssd-channel",
            (ssd_link.bandwidth / gpus_per_server).max(1),
            ssd_link.latency_ns,
        );
        Self {
            sim: Simulation::new(resources),
            executor,
            communicator,
            gpu_mem,
            h2d,
            d2h,
            ssd,
        }
    }

    // ---- Movement primitives --------------------------------------------

    /// H2D transfer that also acquires GPU memory for the moved bytes
    /// (page move-in). Without a GPU memory domain this is a plain
    /// [`Lowering::move_in`].
    pub fn stage_in(&mut self, bytes: u64, label: impl Into<String>) -> usize {
        let mut task = SimTask::transfer(self.h2d, bytes).with_label(label);
        if let Some(domain) = self.gpu_mem {
            task = task.with_mem(MemEffect {
                domain,
                acquire: bytes,
                release: 0,
            });
        }
        self.sim.submit(task)
    }

    /// Host-to-device transfer on the H2D PCIe channel.
    pub fn move_in(
        &mut self,
        bytes: u64,
        deps: impl IntoIterator<Item = usize>,
        label: impl Into<String>,
    ) -> usize {
        self.sim.submit(
            SimTask::transfer(self.h2d, bytes)
                .with_deps(deps)
                .with_label(label),
        )
    }

    /// Device-to-host transfer on the D2H PCIe channel (offload).
    pub fn offload(
        &mut self,
        bytes: u64,
        deps: impl IntoIterator<Item = usize>,
        label: impl Into<String>,
    ) -> usize {
        self.sim.submit(
            SimTask::transfer(self.d2h, bytes)
                .with_deps(deps)
                .with_label(label),
        )
    }

    /// Read from the rank's SSD share.
    pub fn ssd_read(
        &mut self,
        bytes: u64,
        deps: impl IntoIterator<Item = usize>,
        label: impl Into<String>,
    ) -> usize {
        self.sim.submit(
            SimTask::transfer(self.ssd, bytes)
                .with_deps(deps)
                .with_label(label),
        )
    }

    /// Write to the rank's SSD share.
    pub fn ssd_write(
        &mut self,
        bytes: u64,
        deps: impl IntoIterator<Item = usize>,
        label: impl Into<String>,
    ) -> usize {
        self.sim.submit(
            SimTask::transfer(self.ssd, bytes)
                .with_deps(deps)
                .with_label(label),
        )
    }

    // ---- Collective primitives ------------------------------------------

    /// All-gather of `bytes` across the configured ranks.
    pub fn all_gather(
        &mut self,
        bytes: u64,
        deps: impl IntoIterator<Item = usize>,
        label: impl Into<String>,
    ) -> usize {
        self.communicator
            .submit_now(&mut self.sim, Collective::AllGather, bytes, deps, label)
    }

    /// Reduce-scatter of `bytes` across the configured ranks.
    pub fn reduce_scatter(
        &mut self,
        bytes: u64,
        deps: impl IntoIterator<Item = usize>,
        label: impl Into<String>,
    ) -> usize {
        self.communicator
            .submit_now(&mut self.sim, Collective::ReduceScatter, bytes, deps, label)
    }

    /// The dp-group gradient synchronization of a [`ParallelismPlan`]:
    /// reduce-scatter under ZeRO-3, all-reduce for replicated stages.
    pub fn grad_sync(
        &mut self,
        op: Collective,
        bytes: u64,
        deps: impl IntoIterator<Item = usize>,
        label: impl Into<String>,
    ) -> usize {
        self.communicator
            .submit_now(&mut self.sim, op, bytes, deps, label)
    }

    /// Per-layer activation all-reduce on the tensor-parallel group's own
    /// channel (free and on the dp channel when tp = 1).
    pub fn tp_all_reduce(
        &mut self,
        bytes: u64,
        deps: impl IntoIterator<Item = usize>,
        label: impl Into<String>,
    ) -> usize {
        self.communicator.submit_now_on(
            CommGroup::Tp,
            &mut self.sim,
            Collective::AllReduce,
            bytes,
            deps,
            label,
        )
    }

    /// The sending half of a pipeline stage boundary transfer on the pp
    /// group's channel: NVLink while the pp group sits inside one server,
    /// the NIC once stages span servers.
    pub fn pp_send(
        &mut self,
        bytes: u64,
        deps: impl IntoIterator<Item = usize>,
        label: impl Into<String>,
    ) -> usize {
        self.communicator
            .submit_p2p(&mut self.sim, CommKind::P2pSend, bytes, deps, label)
    }

    /// The receiving half of a pipeline stage boundary transfer (same
    /// channel and pricing as [`Lowering::pp_send`]).
    pub fn pp_recv(
        &mut self,
        bytes: u64,
        deps: impl IntoIterator<Item = usize>,
        label: impl Into<String>,
    ) -> usize {
        self.communicator
            .submit_p2p(&mut self.sim, CommKind::P2pRecv, bytes, deps, label)
    }

    /// A zero-duration marker on the dp channel — keeps the task-graph
    /// shape (and counts) of gather-style steps for plans whose parameters
    /// are already resident (ZeRO stages None/Optimizer gather nothing).
    pub fn comm_noop(
        &mut self,
        deps: impl IntoIterator<Item = usize>,
        label: impl Into<String>,
    ) -> usize {
        self.sim.submit(
            SimTask::duration(self.communicator.channel_id(), 0)
                .with_deps(deps)
                .with_label(label),
        )
    }

    /// A collective with an externally-modelled exposed duration (e.g. the
    /// partially-overlapped data-parallel all-reduce of a 1F1B pipeline).
    pub fn collective_exposed(
        &mut self,
        duration_ns: Ns,
        deps: impl IntoIterator<Item = usize>,
        label: impl Into<String>,
    ) -> usize {
        self.sim.submit(
            SimTask::duration(self.communicator.channel_id(), duration_ns)
                .with_deps(deps)
                .with_label(label),
        )
    }

    // ---- Compute primitives ---------------------------------------------

    /// A kernel on the GPU stream.
    pub fn compute_gpu(
        &mut self,
        duration_ns: Ns,
        deps: impl IntoIterator<Item = usize>,
        label: impl Into<String>,
    ) -> usize {
        self.executor
            .submit(&mut self.sim, Stream::Gpu, duration_ns, deps, label)
    }

    /// An optimizer update on the CPU stream.
    pub fn update_cpu(
        &mut self,
        duration_ns: Ns,
        deps: impl IntoIterator<Item = usize>,
        label: impl Into<String>,
    ) -> usize {
        self.executor
            .submit(&mut self.sim, Stream::Cpu, duration_ns, deps, label)
    }

    // ---- Resource ids (for utilization reporting) -----------------------

    pub fn gpu_id(&self) -> ResourceId {
        self.executor.stream_id(Stream::Gpu)
    }

    pub fn cpu_id(&self) -> ResourceId {
        self.executor.stream_id(Stream::Cpu)
    }

    pub fn h2d_id(&self) -> ResourceId {
        self.h2d
    }

    pub fn d2h_id(&self) -> ResourceId {
        self.d2h
    }

    pub fn comm_id(&self) -> ResourceId {
        self.communicator.channel_id()
    }

    /// The tp group's channel, when the plan has a non-trivial tp axis.
    pub fn tp_id(&self) -> Option<ResourceId> {
        self.communicator.group_channel(CommGroup::Tp)
    }

    /// The pp group's channel, when the plan has a non-trivial pp axis.
    pub fn pp_id(&self) -> Option<ResourceId> {
        self.communicator.group_channel(CommGroup::Pp)
    }

    pub fn ssd_id(&self) -> ResourceId {
        self.ssd
    }

    /// The simulation under construction (read-only).
    pub fn sim(&self) -> &Simulation {
        &self.sim
    }

    /// Declare which logical objects a submitted task touches, for the
    /// static race/lifetime verifier (see [`crate::verify::plan`]).
    pub fn annotate(&mut self, task: usize, accesses: impl IntoIterator<Item = Access>) {
        self.sim.annotate(task, accesses);
    }

    /// Reserve room for `additional` more tasks; lowerings that know their
    /// graph size call this once instead of growing the task vector.
    pub fn reserve_tasks(&mut self, additional: usize) {
        self.sim.reserve_tasks(additional);
    }

    /// Run the static race/lifetime/peak-bound verifier over the graph
    /// built so far.
    pub fn verify(&self) -> PlanReport {
        PlanGraph::from_sim(&self.sim).verify()
    }

    /// Execute the graph.
    pub fn run(&self) -> ExecutionReport {
        self.sim.run()
    }

    /// Hand the finished graph to the caller.
    pub fn into_sim(self) -> Simulation {
        self.sim
    }

    /// The journal of every communication operation submitted so far.
    pub fn comm_log(&self) -> &[CommRecord] {
        self.communicator.comm_log()
    }

    /// Hand the finished graph plus the communication journal to the
    /// caller (the SPMD verifier consumes both).
    pub fn into_sim_and_log(mut self) -> (Simulation, Vec<CommRecord>) {
        let log = self.communicator.take_comm_log();
        (self.sim, log)
    }
}

/// Everything needed to lower one planned Engine iteration.
pub struct ScheduleLowering<'a> {
    pub model: &'a TransformerConfig,
    pub config: &'a EngineConfig,
    pub schedule: &'a Schedule,
    pub placement: Placement,
    pub cache_plan: CachePlan,
    pub zero: &'a ZeroPartition,
    /// Per-layer FP16 bytes crossing the collective fabric.
    pub layer_comm_bytes: &'a [u64],
}

/// A lowered iteration: the ready-to-run simulation plus the ids of the
/// resources whose utilization the stats report.
pub struct LoweredIteration {
    pub sim: Simulation,
    pub gpu: ResourceId,
    pub h2d: ResourceId,
    pub d2h: ResourceId,
    pub comm: ResourceId,
    /// The Communicator's journal of every collective and p2p half, in
    /// submission order — the SPMD verifier's input (see
    /// [`crate::verify::spmd`]).
    pub comm_log: Vec<CommRecord>,
}

/// Which lowered hardware resource a cluster fault event strikes — the
/// stable vocabulary [`crate::engine::ClusterEvent`]s use, resolved against
/// each fresh lowering's [`ResourceId`]s by
/// [`LoweredIteration::fault_resource`] (ids are per-simulation, so events
/// cannot carry them directly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultTarget {
    /// The GPU compute stream (kernel-level stall or device loss).
    Gpu,
    /// The host-to-device PCIe channel (staging path).
    H2d,
    /// The device-to-host PCIe channel (offload path).
    D2h,
    /// The collective-communication channel (NIC reset, fabric loss).
    Comm,
}

impl LoweredIteration {
    /// Resolve a [`FaultTarget`] to this lowering's resource id.
    pub fn fault_resource(&self, target: FaultTarget) -> ResourceId {
        match target {
            FaultTarget::Gpu => self.gpu,
            FaultTarget::H2d => self.h2d,
            FaultTarget::D2h => self.d2h,
            FaultTarget::Comm => self.comm,
        }
    }
}

/// Lower an Algorithm 1 [`Schedule`] plus its [`Placement`] onto the
/// simulated hardware: streams via the Executor, collectives via the
/// Communicator, transfers on the PCIe/SSD links.
pub fn lower_schedule(args: &ScheduleLowering<'_>) -> LoweredIteration {
    let config = args.config;
    let schedule = args.schedule;
    let plan = config.parallelism;
    let mut lo = Lowering::new(&LoweringConfig::for_engine(config));
    let gpus_per_server = config.cluster.server.num_gpus();

    let n_steps = schedule.num_steps;
    let flops = angel_model::flops::layer_flops(args.model, config.batch_size);
    // Tensor parallelism splits every kernel (and its weights) `tp` ways.
    let tp = plan.tp.max(1) as u64;
    // FP16 activation bytes of one micro-batch at a layer boundary.
    let boundary_bytes =
        config.batch_size * args.model.seq_len as u64 * args.model.d_model as u64 * 2;

    // Per-step bookkeeping while lowering: one pass over the task list
    // recovers each step's kind and (phase-2 advanced) gather trigger.
    let mut compute_task: Vec<Option<usize>> = vec![None; n_steps];
    let mut gather_trigger: Vec<usize> = (0..n_steps).collect();
    let mut step_kind: Vec<Option<StepKind>> = vec![None; n_steps];
    for t in &schedule.tasks {
        match t.op {
            TaskOp::AllGather { step, .. } => gather_trigger[step] = t.trigger_id,
            TaskOp::Compute(k) => step_kind[t.trigger_id] = Some(k),
            TaskOp::MoveToGpu(_) => {}
        }
    }

    // Whether synchronous optimizer updates appear as tasks in this graph
    // (decides who frees the gradient shard: the cpu_update, or the
    // grad_offload as last on-graph consumer). The schedule covers this
    // rank's pipeline stage: half its steps are backward passes.
    let n_layers = (n_steps as u64 / 2).max(1);
    let cpu_params = args.cache_plan.cpu_update_bytes / 12 / n_layers;
    let ssd_updates = config.use_ssd && args.placement.ssd_bytes > 0;
    let updates_on_graph = !config.lock_free && (ssd_updates || cpu_params > 0);

    // The graph size is known from the schedule — reserve it up front:
    // resident-page moves, per-step gather + compute (+ tp all-reduce), the
    // backward-half extras (grad sync, offload, up to 4 update-path tasks)
    // and the pp boundary pair.
    let n_moves = schedule
        .tasks
        .iter()
        .filter(|t| matches!(t.op, TaskOp::MoveToGpu(_)))
        .count();
    lo.reserve_tasks(n_moves + 3 * n_steps + n_steps.div_ceil(2) * 6 + 3);

    // 1. Initial page movements (trigger 0) on the H2D channel — an O(1)
    // slice of the trigger-indexed schedule.
    for t in schedule.at_trigger(0) {
        if let TaskOp::MoveToGpu(page) = t.op {
            let id = lo.stage_in(page.bytes, format!("move l{}p{}", page.layer, page.index));
            lo.annotate(id, [Access::write(objects::page(page.layer, page.index))]);
        }
    }

    // 2. Per-step gathers and computes in trigger order.
    for i in 0..n_steps {
        let Some(step) = step_kind[i] else {
            // Pass 1 above records a StepKind for every step index.
            unreachable!("step {i} lowered without a compute kind");
        };
        let layer = step.layer();
        // All-gather of the full layer parameters across ranks, launched
        // at its (phase-2 advanced) trigger: dependency on the compute
        // task of step `trigger − 1`.
        let trig = gather_trigger[i];
        let gdeps: Vec<usize> = if trig > 0 {
            compute_task[trig - 1].into_iter().collect()
        } else {
            Vec::new()
        };
        let gid = if plan.gathers_params() {
            lo.all_gather(
                args.layer_comm_bytes[layer],
                gdeps,
                format!("all_gather s{i}"),
            )
        } else {
            // Replicated stages gather nothing; a zero-duration marker
            // keeps the per-step graph shape (and the verifier's lifetime
            // story) identical across ZeRO stages.
            lo.comm_noop(gdeps, format!("stage_params s{i}"))
        };
        // Each gather materializes a fresh per-step working buffer (which
        // is what lets phase-2 advanced prefetch overlap safely) from the
        // persistent parameter shards.
        lo.annotate(
            gid,
            [
                Access::read(objects::layer_params(layer)),
                Access::alloc(objects::gathered(i)),
            ],
        );

        // Compute: forward or backward (+ recompute), over this rank's
        // 1/tp slice of the layer.
        let width = (args.model.d_model / plan.tp.max(1)) as f64;
        let dur = match step {
            StepKind::Forward(_) => config.gpu_compute.time_ns_sized(
                flops.forward / tp,
                config.batch_size as f64,
                width,
            ),
            StepKind::Backward(_) => config.gpu_compute.time_ns_sized(
                (flops.backward + if config.recompute { flops.recompute } else { 0 }) / tp,
                config.batch_size as f64,
                width,
            ),
        };
        // Page bookkeeping / event dispatch overhead rides the GPU stream
        // (the paper's measured ~2.4% management cost).
        let dur = dur + (dur as f64 * config.mm_overhead) as u64;
        let cid = lo.compute_gpu(dur, [gid], format!("compute s{i}"));
        // Compute is the gathered buffer's only (and last) consumer;
        // backward additionally materializes the layer's full gradients.
        let mut compute_accesses = vec![
            Access::read(objects::gathered(i)),
            Access::free(objects::gathered(i)),
        ];
        if let StepKind::Backward(l) = step {
            compute_accesses.push(Access::alloc(objects::layer_grads(l)));
        }
        lo.annotate(cid, compute_accesses);

        // Tensor parallelism synchronizes each step's partial activations
        // (two all-reduces per layer visit — attention and MLP) on the tp
        // group's own channel; downstream work chains behind it.
        let mut eid = cid;
        if plan.tp > 1 {
            eid = lo.tp_all_reduce(2 * boundary_bytes, [cid], format!("tp_all_reduce s{i}"));
        }
        compute_task[i] = Some(eid);

        // Pipeline boundary: after this stage's last forward, the boundary
        // activations travel to the next stage and the backward half waits
        // for the gradients to come back on the pp channel.
        if plan.pp > 1 && i + 1 == n_steps / 2 {
            let pp_bytes = boundary_bytes.div_ceil(tp);
            let send = lo.pp_send(pp_bytes, [eid], "pp_send");
            let recv = lo.pp_recv(pp_bytes, [send], "pp_recv");
            compute_task[i] = Some(recv);
        }

        // Backward extras: synchronize gradients across the dp group
        // (reduce-scatter under ZeRO-3, all-reduce when replicated) and
        // offload this rank's share.
        if let StepKind::Backward(l) = step {
            let sync_op = plan.grad_sync_op();
            let rs = lo.grad_sync(
                sync_op,
                args.layer_comm_bytes[l],
                [eid],
                match sync_op {
                    Collective::ReduceScatter => format!("reduce_scatter l{l}"),
                    _ => format!("grad_all_reduce l{l}"),
                },
            );
            // The reduce-scatter consumes the full gradients and leaves
            // this rank's reduced shard.
            lo.annotate(
                rs,
                [
                    Access::free(objects::layer_grads(l)),
                    Access::alloc(objects::grad_shard(l)),
                ],
            );
            let shard = args.zero.shard_bytes(args.layer_comm_bytes[l]);
            let off = lo.offload(shard, [rs], format!("grad_offload l{l}"));
            // When no optimizer update appears on this graph (lock-free
            // mode accounts for updates analytically), the offload is the
            // shard's last on-graph consumer.
            if updates_on_graph {
                lo.annotate(off, [Access::read(objects::grad_shard(l))]);
            } else {
                lo.annotate(
                    off,
                    [
                        Access::read(objects::grad_shard(l)),
                        Access::free(objects::grad_shard(l)),
                    ],
                );
            }

            // Synchronous optimizer updates join the iteration's critical
            // path; the lock-free mechanism decouples them (accounted
            // analytically by train_iteration).
            if !config.lock_free {
                let upd_dur = config
                    .cpu_update
                    .time_ns_sharded(cpu_params * 28, gpus_per_server);
                if ssd_updates {
                    let layer_ssd = args.placement.ssd_bytes / n_layers;
                    let rd = lo.ssd_read(layer_ssd, [off], format!("ssd_read l{l}"));
                    lo.annotate(rd, [Access::read(objects::layer_state(l))]);
                    let upd = lo.update_cpu(upd_dur, [rd], format!("cpu_update l{l}"));
                    lo.annotate(
                        upd,
                        [
                            Access::free(objects::grad_shard(l)),
                            Access::write(objects::layer_state(l)),
                        ],
                    );
                    let wr = lo.ssd_write(layer_ssd, [upd], format!("ssd_write l{l}"));
                    lo.annotate(wr, [Access::read(objects::layer_state(l))]);
                    // Updated FP16 parameters return to the GPU pages.
                    let up = lo.move_in(cpu_params * 2, [upd], format!("param_up l{l}"));
                    lo.annotate(up, [Access::write(objects::layer_params(l))]);
                } else if cpu_params > 0 {
                    let upd = lo.update_cpu(upd_dur, [off], format!("cpu_update l{l}"));
                    lo.annotate(
                        upd,
                        [
                            Access::free(objects::grad_shard(l)),
                            Access::write(objects::layer_state(l)),
                        ],
                    );
                    // Updated FP16 parameters return to the GPU pages;
                    // GPU-cached layers skip this PCIe round trip — the
                    // Section 4.2 cache's second saving.
                    let up = lo.move_in(cpu_params * 2, [upd], format!("param_up l{l}"));
                    lo.annotate(up, [Access::write(objects::layer_params(l))]);
                }
            }
        }
    }

    // GPU-cached optimizer updates run on the GPU stream after backward
    // (ordered behind every compute by stream submission order).
    if args.cache_plan.gpu_update_bytes > 0 && !config.lock_free {
        let traffic = args.cache_plan.gpu_update_bytes / 12 * 28;
        let id = lo.compute_gpu(config.gpu_update.time_ns(traffic), [], "gpu_cached_update");
        lo.annotate(id, [Access::write(objects::gpu_cached_states())]);
    }

    let (gpu, h2d, d2h, comm) = (lo.gpu_id(), lo.h2d_id(), lo.d2h_id(), lo.comm_id());
    let (sim, comm_log) = lo.into_sim_and_log();
    LoweredIteration {
        sim,
        gpu,
        h2d,
        d2h,
        comm,
        comm_log,
    }
}

/// Checkpoint cost parameters derived by *executing* the checkpoint task
/// graphs on the simulated hardware (instead of hand-entered bandwidth
/// arithmetic): the write side lowers per-layer ZeRO-sharded FP32 master
/// state (12 B/param) as `ssd_write` tasks on one rank's SSD share; the
/// restore side lowers the matching `ssd_read`s plus the H2D `move_in` of
/// the FP16 compute copies. Feed the result to
/// [`crate::recovery::RecoveryModel::from_lowering`].
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointLowering {
    /// Global restartable state: FP32 master + Adam moments, 12 B/param.
    pub state_bytes: u64,
    /// Bytes one rank writes (its ZeRO shard of every layer).
    pub rank_shard_bytes: u64,
    /// Seconds to write one checkpoint (makespan of the executed write
    /// graph — all ranks write their shards concurrently, so one rank's
    /// schedule is the fleet's).
    pub write_secs: f64,
    /// Seconds to read the checkpoint back and restage FP16 parameters to
    /// the GPU on restart.
    pub restore_secs: f64,
}

/// Per-layer FP32 master-state bytes (12 B/param: FP32 params + two Adam
/// moments), with the remainder (embeddings, head) folded into layer 0.
fn layer_state_bytes(model: &TransformerConfig) -> Vec<u64> {
    let layers = model.layers as u64;
    let per_layer = model.params_per_layer() * 12;
    let remainder = model.total_params() * 12 - per_layer * layers;
    (0..layers)
        .map(|l| per_layer + if l == 0 { remainder } else { 0 })
        .collect()
}

/// Build the checkpoint-*write* task graph for one rank: every layer's
/// ZeRO shard of FP32 master state, serialized on the rank's SSD share.
/// Exposed separately so callers can inject `angel_sim` faults (e.g. an
/// SSD outage) into the simulation before running it.
pub fn checkpoint_write_graph(model: &TransformerConfig, config: &EngineConfig) -> Lowering {
    let mut lo = Lowering::new(&LoweringConfig::for_engine(config));
    let ranks = config.num_gpus() as u64;
    lo.reserve_tasks(model.layers);
    for (l, bytes) in layer_state_bytes(model).iter().enumerate() {
        let id = lo.ssd_write(bytes.div_ceil(ranks), [], format!("ckpt_write l{l}"));
        lo.annotate(id, [Access::read(objects::layer_state(l))]);
    }
    lo
}

/// Build the checkpoint-*restore* task graph for one rank: per-layer SSD
/// reads of the FP32 shard, each followed by the H2D restage of the
/// layer's FP16 compute copy (2 B/param of the shard), pipelined so reads
/// overlap earlier restages.
pub fn checkpoint_restore_graph(model: &TransformerConfig, config: &EngineConfig) -> Lowering {
    let mut lo = Lowering::new(&LoweringConfig::for_engine(config));
    let ranks = config.num_gpus() as u64;
    lo.reserve_tasks(2 * model.layers);
    for (l, bytes) in layer_state_bytes(model).iter().enumerate() {
        let shard = bytes.div_ceil(ranks);
        let rd = lo.ssd_read(shard, [], format!("ckpt_read l{l}"));
        lo.annotate(rd, [Access::write(objects::layer_state(l))]);
        // FP16 copies are 2 of the 12 bytes-per-param of master state.
        let up = lo.move_in(shard / 6, [rd], format!("ckpt_restage l{l}"));
        lo.annotate(
            up,
            [
                Access::read(objects::layer_state(l)),
                Access::write(objects::layer_params(l)),
            ],
        );
    }
    lo
}

/// Derive checkpoint write/restore cost by executing both graphs.
pub fn lower_checkpoint(model: &TransformerConfig, config: &EngineConfig) -> CheckpointLowering {
    let ranks = config.num_gpus() as u64;
    let state_bytes = model.total_params() * 12;
    let rank_shard_bytes = layer_state_bytes(model)
        .iter()
        .map(|b| b.div_ceil(ranks))
        .sum();
    let write = checkpoint_write_graph(model, config).run();
    let restore = checkpoint_restore_graph(model, config).run();
    CheckpointLowering {
        state_bytes,
        rank_shard_bytes,
        write_secs: angel_sim::ns_to_s(write.makespan),
        restore_secs: angel_sim::ns_to_s(restore.makespan),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lowering() -> Lowering {
        Lowering::new(&LoweringConfig::new(ClusterSpec::single_a100(), 8))
    }

    #[test]
    fn resource_surface_is_stable() {
        let lo = lowering();
        // The Engine's utilization reporting and every baseline depend on
        // this fixed surface: two executor streams, two PCIe links, one
        // collective channel, one SSD channel.
        let names: Vec<&str> = lo.sim.resources().names().collect();
        assert_eq!(
            names,
            [
                "executor:gpu-stream",
                "executor:cpu-stream",
                "pcie-h2d",
                "pcie-d2h",
                "communicator:dp-channel",
                "ssd-channel"
            ]
        );
    }

    #[test]
    fn mesh_surface_adds_per_group_channels() {
        let mesh = DeviceMesh::new(ClusterSpec::a100_tencent(4), 4, 4, 2).unwrap();
        let lo =
            Lowering::new(&LoweringConfig::new(ClusterSpec::a100_tencent(4), 32).with_mesh(mesh));
        let names: Vec<&str> = lo.sim.resources().names().collect();
        assert_eq!(
            names,
            [
                "executor:gpu-stream",
                "executor:cpu-stream",
                "pcie-h2d",
                "pcie-d2h",
                "communicator:dp-channel",
                "communicator:tp-channel",
                "communicator:pp-channel",
                "ssd-channel"
            ]
        );
        assert!(lo.tp_id().is_some() && lo.pp_id().is_some());
        // A degenerate mesh keeps the stable 6-resource surface.
        let flat = DeviceMesh::data_parallel(ClusterSpec::single_a100());
        let lo = Lowering::new(&LoweringConfig::new(ClusterSpec::single_a100(), 8).with_mesh(flat));
        assert_eq!(lo.sim.resources().names().count(), 6);
        assert!(lo.tp_id().is_none() && lo.pp_id().is_none());
    }

    #[test]
    fn tp_and_pp_primitives_price_through_their_groups() {
        use crate::communicator::GroupSpec;
        use angel_hw::MeshAxis;
        let cluster = ClusterSpec::a100_tencent(4);
        let mesh = DeviceMesh::new(cluster.clone(), 4, 4, 2).unwrap();
        let tp_spec = GroupSpec::from_mesh(&mesh, MeshAxis::Tp);
        let pp_spec = GroupSpec::from_mesh(&mesh, MeshAxis::Pp);
        let mut lo = Lowering::new(&LoweringConfig::new(cluster, 32).with_mesh(mesh));
        let t = lo.tp_all_reduce(64 << 20, [], "tp");
        let p = lo.pp_send(8 << 20, [t], "pp");
        let _ = p;
        assert_eq!(
            lo.run().makespan,
            tp_spec.collective_ns(Collective::AllReduce, 64 << 20) + pp_spec.p2p_ns(8 << 20)
        );
    }

    #[test]
    fn streams_serialize_and_chain_exactly() {
        // The 1F1B identity the Megatron lowering relies on: a chain of k
        // equal kernels plus one exposed collective has makespan
        // k·d + dp, exactly (integer addition in the DES).
        let mut lo = lowering();
        let mut prev: Option<usize> = None;
        for k in 0..7 {
            prev = Some(lo.compute_gpu(1000, prev, format!("micro {k}")));
        }
        lo.collective_exposed(123, prev, "dp");
        assert_eq!(lo.run().makespan, 7 * 1000 + 123);
    }

    #[test]
    fn pcie_efficiency_slows_transfers() {
        let time_at = |eff: f64| {
            let mut lo = Lowering::new(
                &LoweringConfig::new(ClusterSpec::single_a100(), 8).with_pcie_efficiency(eff),
            );
            lo.move_in(1 << 30, [], "in");
            lo.run().makespan
        };
        let full = time_at(1.0);
        let degraded = time_at(0.5);
        assert!(
            degraded > full * 3 / 2,
            "halved PCIe efficiency must slow a 1 GiB move: {full} vs {degraded}"
        );
    }

    #[test]
    fn collectives_price_through_the_cluster_model() {
        use angel_sim::collectives::hierarchical_collective_time_ns;
        let cluster = ClusterSpec::single_a100();
        let mut lo = Lowering::new(&LoweringConfig::new(cluster.clone(), 8));
        let g = lo.all_gather(64 << 20, [], "g");
        let r = lo.reduce_scatter(64 << 20, [g], "r");
        let _ = r;
        let expect_g =
            hierarchical_collective_time_ns(Collective::AllGather, 64 << 20, &cluster, 8);
        let expect_r =
            hierarchical_collective_time_ns(Collective::ReduceScatter, 64 << 20, &cluster, 8);
        assert_eq!(lo.run().makespan, expect_g + expect_r);
    }

    #[test]
    fn stage_in_accounts_gpu_memory() {
        let mut lo = Lowering::new(
            &LoweringConfig::new(ClusterSpec::single_a100(), 8).with_gpu_mem(1 << 30),
        );
        let a = lo.stage_in(4 << 20, "page a");
        let b = lo.stage_in(4 << 20, "page b");
        assert!(a < b);
        // Both moves run on the H2D link, which is busy while they stream.
        let report = lo.run();
        assert!(report.utilization(lo.h2d_id()) > 0.9);
    }

    #[test]
    fn checkpoint_cost_derives_from_executed_schedule() {
        let model = TransformerConfig::gpt3_175b();
        let config = EngineConfig::servers(96).with_batch_size(1);
        let ckpt = lower_checkpoint(&model, &config);
        assert_eq!(ckpt.state_bytes, model.total_params() * 12);
        // Shards cover the state (up to per-layer rounding).
        let ranks = config.num_gpus() as u64;
        assert!(ckpt.rank_shard_bytes >= ckpt.state_bytes / ranks);
        // The derived write time must match first-principles arithmetic:
        // shard bytes over the rank's SSD share, plus per-task latency.
        let ssd = &config.cluster.server.ssd_link;
        let share = ssd.bandwidth / config.cluster.server.num_gpus() as u64;
        let floor = ckpt.rank_shard_bytes as f64 / share as f64;
        assert!(
            ckpt.write_secs >= floor * 0.99,
            "{} < {floor}",
            ckpt.write_secs
        );
        assert!(
            ckpt.write_secs < floor * 1.2,
            "{} vs {floor}",
            ckpt.write_secs
        );
        // Restore adds the H2D restage but pipelines it against the reads.
        assert!(ckpt.restore_secs >= ckpt.write_secs * 0.99);
        assert!(ckpt.restore_secs < ckpt.write_secs * 1.5);
    }

    #[test]
    fn checkpoint_write_graph_degrades_under_ssd_outage() {
        use angel_sim::{FaultEvent, FaultKind};
        let model = TransformerConfig::gpt3_1_7b();
        let config = EngineConfig::single_server().with_batch_size(1);
        let lo = checkpoint_write_graph(&model, &config);
        let ssd = lo.ssd_id();
        let clean = lo.run().makespan;
        let mut sim = lo.into_sim();
        let outage = clean / 2;
        sim.inject_fault(FaultEvent {
            resource: ssd,
            at: clean / 4,
            kind: FaultKind::Outage { duration: outage },
        });
        let faulted = sim.run();
        assert!(faulted.failed_tasks.is_empty());
        assert_eq!(faulted.makespan, clean + outage);
    }

    #[test]
    fn ssd_channel_shares_server_bandwidth() {
        // One rank's SSD channel runs at link bandwidth ÷ gpus-per-server,
        // so an SSD read of B bytes takes ≈ gpus_per_server× the raw link
        // time.
        let cluster = ClusterSpec::single_a100();
        let raw_bw = cluster.server.ssd_link.bandwidth;
        let gps = cluster.server.num_gpus() as u64;
        let mut lo = Lowering::new(&LoweringConfig::new(cluster.clone(), 8));
        lo.ssd_read(raw_bw, [], "read one raw-bandwidth-second");
        let t = lo.run().makespan;
        let expect = cluster.server.ssd_link.latency_ns
            + angel_hw::link::bytes_over_bandwidth_ns(raw_bw, (raw_bw / gps).max(1));
        assert_eq!(t, expect);
    }
}
