//! The staged planning pipeline behind [`crate::Engine::initialize`].
//!
//! Initialization is a composition of five individually-testable stages,
//! each producing a plain data product consumed by the next:
//!
//! ```text
//!   Trace ──▶ Shard ──▶ Place ──▶ Schedule ──▶ Lower
//!   (§5)      (§3.2)    (§4.1/4.2) (Alg. 1)     (§5)
//! ```
//!
//! * [`TracePlan`] — one symbolic iteration over the model yields every
//!   tensor's access pattern and lifetime (paper Section 5, the Tracer),
//!   plus the ZeRO partition geometry.
//! * [`ShardPlan`] — ZeRO and expert-parallel byte accounting: per-layer
//!   shard pages, working sets and collective volumes, assembled into the
//!   [`crate::scheduler::SchedulerInput`] (Section 3.2; Section 6.4 for
//!   MoE expert parallelism).
//! * [`MemoryPlan`] — the hierarchical-memory budgets of Section 4.1/4.2:
//!   host pool vs. pinned lock-free buffers, SSD share, GPU budget — and
//!   the capacity invariants that reject oversized models.
//! * [`SchedulePlan`] — the Unified Scheduler (Algorithm 1) run over the
//!   shard plan, plus the dynamic GPU cache sizing (Section 4.2).
//! * [`Lowering`] — turns a schedule and a placement into an `angel-sim`
//!   task graph (Section 5's Executor/Communicator streams). The same
//!   surface lowers the baselines (DeepSpeed's static partition,
//!   Megatron's 1F1B pipeline), so every system is measured on identical
//!   simulated hardware through identical primitives.

pub mod lower;
pub mod memory;
pub mod parallel;
pub mod schedule;
pub mod shard;
pub mod trace;

pub use lower::{
    checkpoint_restore_graph, checkpoint_write_graph, lower_checkpoint, lower_schedule,
    CheckpointLowering, FaultTarget, LoweredIteration, Lowering, LoweringConfig, ScheduleLowering,
};
pub use memory::{MemoryPlan, Placement, PlacementPlan};
pub use parallel::{ParallelismPlan, ZeroStage};
pub use schedule::SchedulePlan;
pub use shard::ShardPlan;
pub use trace::TracePlan;
