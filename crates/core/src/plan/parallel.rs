//! The declarative parallelism plan: dp × tp × pp with a ZeRO stage on the
//! dp axis, validated onto a physical [`DeviceMesh`].
//!
//! Angel-PTM's cluster experiments (Table 3, Figure 9) compose ZeRO-style
//! parameter sharding with the model-parallel axes Megatron-LM pioneered.
//! veScale and TorchTitan express that composition as a single declarative
//! object laid onto a device mesh; [`ParallelismPlan`] is our equivalent:
//!
//! * **dp** — data parallelism. The ZeRO stage decides what is sharded
//!   across the dp group: [`ZeroStage::Full`] shards parameters, gradients
//!   and optimizer states (Angel-PTM's default and the only pre-mesh
//!   behaviour); [`ZeroStage::Optimizer`] shards only optimizer states
//!   (ZeRO-1 / DeepSpeed stage 1); [`ZeroStage::None`] replicates
//!   everything (Megatron-style vanilla dp).
//! * **tp** — tensor parallelism: every layer's tensors split `tp` ways
//!   *within* one server's NVLink domain, synchronized by per-layer
//!   all-reduces on the tp group.
//! * **pp** — pipeline parallelism: layers partition into `pp` contiguous
//!   stages; adjacent stages exchange boundary activations point-to-point.
//!
//! The plan is pure policy; [`ParallelismPlan::validate`] is the one place
//! it meets hardware, producing the [`DeviceMesh`] every later stage
//! (shard, schedule, lower, communicator) prices against.

use crate::error::{Error, Result};
use angel_hw::{ClusterSpec, DeviceMesh};
use angel_sim::collectives::Collective;
use serde::{Deserialize, Serialize};

/// What ZeRO shards across the data-parallel group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ZeroStage {
    /// Stage 0: everything replicated; gradients all-reduced (vanilla dp).
    None,
    /// Stage 1: optimizer states sharded; parameters and gradients
    /// replicated, gradients all-reduced.
    Optimizer,
    /// Stage 3: parameters, gradients and optimizer states all sharded —
    /// per-layer all-gathers and reduce-scatters (Angel-PTM's default).
    Full,
}

/// A dp × tp × pp factorization plus the dp-axis ZeRO stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelismPlan {
    pub dp: usize,
    pub tp: usize,
    pub pp: usize,
    pub zero_stage: ZeroStage,
}

impl ParallelismPlan {
    /// Pure ZeRO-3 data parallelism over `dp` ranks — the pre-mesh default
    /// every earlier PR lowered.
    pub fn zero3(dp: usize) -> Self {
        Self {
            dp,
            tp: 1,
            pp: 1,
            zero_stage: ZeroStage::Full,
        }
    }

    /// A Megatron-style plan: model parallelism with replicated dp groups.
    pub fn megatron(dp: usize, tp: usize, pp: usize) -> Self {
        Self {
            dp,
            tp,
            pp,
            zero_stage: ZeroStage::None,
        }
    }

    /// Lay the plan onto `cluster`, turning mesh-construction failures into
    /// typed plan errors.
    pub fn validate(&self, cluster: &ClusterSpec) -> Result<DeviceMesh> {
        DeviceMesh::new(cluster.clone(), self.dp, self.pp, self.tp)
            .map_err(|e| Error::InvalidParallelism(e.to_string()))
    }

    /// Degree of model parallelism (how many ranks a replica spans).
    pub fn model_parallel(&self) -> u64 {
        (self.tp * self.pp) as u64
    }

    /// ZeRO denominator for FP16 parameters/gradients: the dp degree under
    /// stage 3, 1 (replicated) otherwise.
    pub fn param_shard_ranks(&self) -> u64 {
        match self.zero_stage {
            ZeroStage::Full => self.dp as u64,
            _ => 1,
        }
    }

    /// ZeRO denominator for FP32 optimizer states.
    pub fn optim_shard_ranks(&self) -> u64 {
        match self.zero_stage {
            ZeroStage::Full | ZeroStage::Optimizer => self.dp as u64,
            ZeroStage::None => 1,
        }
    }

    /// Whether parameters must be all-gathered per layer (stage 3 only —
    /// other stages keep them resident).
    pub fn gathers_params(&self) -> bool {
        self.zero_stage == ZeroStage::Full
    }

    /// The dp-group gradient synchronization collective: reduce-scatter when
    /// gradients are sharded (stage 3), all-reduce when replicated.
    pub fn grad_sync_op(&self) -> Collective {
        match self.zero_stage {
            ZeroStage::Full => Collective::ReduceScatter,
            _ => Collective::AllReduce,
        }
    }

    /// Layers held by the representative (first) pipeline stage —
    /// `ceil(layers / pp)`, the heaviest stage under uneven division.
    pub fn stage_layers(&self, layers: usize) -> usize {
        layers.div_ceil(self.pp).max(1)
    }

    /// Refit the plan onto `total_gpus` after a server loss or an elastic
    /// resize: tp, pp and the ZeRO stage are preserved (they shape the
    /// lowered kernels and the pipeline partition), and the dp axis absorbs
    /// the fleet change. Errors when the model-parallel block `tp × pp`
    /// does not divide the new fleet.
    pub fn refit(&self, total_gpus: usize) -> Result<Self> {
        let mp = self.tp * self.pp;
        if mp == 0 || total_gpus == 0 || !total_gpus.is_multiple_of(mp) {
            return Err(Error::InvalidParallelism(format!(
                "cannot refit tp={} × pp={} onto {total_gpus} GPUs",
                self.tp, self.pp
            )));
        }
        Ok(Self {
            dp: total_gpus / mp,
            ..*self
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero3_is_the_degenerate_default() {
        let p = ParallelismPlan::zero3(32);
        assert_eq!((p.dp, p.tp, p.pp), (32, 1, 1));
        assert_eq!(p.param_shard_ranks(), 32);
        assert_eq!(p.optim_shard_ranks(), 32);
        assert!(p.gathers_params());
        assert_eq!(p.grad_sync_op(), Collective::ReduceScatter);
        assert_eq!(p.model_parallel(), 1);
    }

    #[test]
    fn megatron_replicates_states() {
        let p = ParallelismPlan::megatron(4, 8, 1);
        assert_eq!(p.param_shard_ranks(), 1);
        assert_eq!(p.optim_shard_ranks(), 1);
        assert!(!p.gathers_params());
        assert_eq!(p.grad_sync_op(), Collective::AllReduce);
    }

    #[test]
    fn zero1_shards_only_optimizer() {
        let p = ParallelismPlan {
            dp: 16,
            tp: 2,
            pp: 1,
            zero_stage: ZeroStage::Optimizer,
        };
        assert_eq!(p.param_shard_ranks(), 1);
        assert_eq!(p.optim_shard_ranks(), 16);
        assert_eq!(p.grad_sync_op(), Collective::AllReduce);
    }

    #[test]
    fn validate_maps_mesh_errors() {
        let cluster = ClusterSpec::a100_tencent(2); // 16 GPUs
        assert!(ParallelismPlan::zero3(16).validate(&cluster).is_ok());
        let err = ParallelismPlan::zero3(8).validate(&cluster).unwrap_err();
        assert!(matches!(err, Error::InvalidParallelism(_)));
        assert!(err.to_string().contains("16 GPUs"));
        // tp straddling the NVLink domain is rejected too.
        let err = ParallelismPlan {
            dp: 1,
            tp: 16,
            pp: 1,
            zero_stage: ZeroStage::Full,
        }
        .validate(&cluster)
        .unwrap_err();
        assert!(err.to_string().contains("NVLink"));
    }

    #[test]
    fn refit_absorbs_fleet_changes_on_the_dp_axis() {
        let p = ParallelismPlan::megatron(4, 2, 4); // 32 GPUs
        let shrunk = p.refit(16).unwrap();
        assert_eq!((shrunk.dp, shrunk.tp, shrunk.pp), (2, 2, 4));
        assert_eq!(shrunk.zero_stage, p.zero_stage);
        let grown = p.refit(64).unwrap();
        assert_eq!(grown.dp, 8);
        // The model-parallel block must divide the new fleet.
        assert!(matches!(p.refit(20), Err(Error::InvalidParallelism(_))));
        assert!(p.refit(0).is_err());
        // Pure ZeRO-3 refits onto anything ≥ 1 GPU.
        assert_eq!(ParallelismPlan::zero3(768).refit(760).unwrap().dp, 760);
    }

    #[test]
    fn stage_layers_round_up() {
        let p = ParallelismPlan::megatron(1, 1, 4);
        assert_eq!(p.stage_layers(10), 3);
        assert_eq!(p.stage_layers(8), 2);
        assert_eq!(ParallelismPlan::zero3(8).stage_layers(10), 10);
    }
}
