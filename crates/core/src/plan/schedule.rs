//! Stage 4 — Schedule: the Unified Scheduler (Algorithm 1) plus the dynamic
//! GPU cache sizing (Section 4.2).
//!
//! Algorithm 1 plans every page movement, all-gather and compute of one
//! iteration under the GPU budget: phase 1 evicts under memory pressure
//! through a wait-stack, phase 2 advances all-gathers to overlap with
//! earlier computation whenever the lifetime-accurate peak allows. The
//! schedule's residency statistics then size the optimizer-state cache:
//! spare GPU memory (budget − planned peak − safety margin) holds hot
//! FP32 pages so their updates run on the GPU and skip the PCIe round trip.

use crate::cache::{plan_cache, CachePlan};
use crate::config::EngineConfig;
use crate::error::Result;
use crate::replan::{Planner, ReplanDelta};
use crate::scheduler::{Schedule, UnifiedScheduler};
use crate::zero::ZeroPartition;

use super::memory::MemoryPlan;
use super::shard::ShardPlan;

/// The planned iteration: task list, cache sizing, GPU residency.
#[derive(Debug, Clone)]
pub struct SchedulePlan {
    /// Algorithm 1's task list with trigger ids and statistics.
    pub schedule: Schedule,
    /// Section 4.2 cache: which optimizer bytes stay on the GPU.
    pub cache_plan: CachePlan,
    /// FP16 param+grad bytes the scheduler keeps GPU-resident.
    pub resident_param_bytes: u64,
}

impl SchedulePlan {
    /// Run Algorithm 1 over the shard plan and size the GPU cache.
    pub fn build(
        config: &EngineConfig,
        shard: &ShardPlan,
        mem: &MemoryPlan,
        zero: &ZeroPartition,
    ) -> Result<Self> {
        Self::build_with_planner(config, shard, mem, zero, &mut None)
    }

    /// [`SchedulePlan::build`] through a persistent incremental
    /// [`Planner`] session. When `planner` holds a session with the same
    /// scheduler configuration, the new shard input is planned as a
    /// [`ReplanDelta`] against the previous one — the segment-tree fast
    /// path that reuses untouched layers' decisions and task slots — and
    /// the session's [`crate::ReplanOutcome`] reports what carried over.
    /// Otherwise (first plan, or a configuration change) a fresh session is
    /// created and stored. Either way the resulting schedule is
    /// byte-identical to [`UnifiedScheduler::schedule`] on `shard.input`,
    /// and a rejected (infeasible) input leaves the session on its previous
    /// plan.
    pub fn build_with_planner(
        config: &EngineConfig,
        shard: &ShardPlan,
        mem: &MemoryPlan,
        zero: &ZeroPartition,
        planner: &mut Option<Planner>,
    ) -> Result<Self> {
        let sched = UnifiedScheduler {
            phase2: config.phase2_advance,
            ..Default::default()
        };
        let schedule = match planner {
            Some(p) if *p.scheduler() == sched => {
                let delta = ReplanDelta::diff(p.input(), &shard.input);
                p.replan(&delta)?;
                p.schedule().clone()
            }
            _ => {
                let p = Planner::new(sched, shard.input.clone())?;
                let schedule = p.schedule().clone();
                *planner = Some(p);
                schedule
            }
        };

        // GPU residency decided by the scheduler (param shard pages) plus
        // whatever optimizer cache fits afterwards. The base is this rank's
        // model-parallel slice: the whole model for pure data parallelism.
        let resident_param_bytes = (schedule.stats.resident_fraction
            * zero.shard_bytes(shard.model_parallel_params * 4) as f64)
            as u64;
        let cache_plan = if config.gpu_cache {
            plan_cache(
                mem.gpu_budget,
                schedule.stats.peak_gpu_bytes,
                shard.rank_optim,
                config.page_size,
                config.page_size * 16, // safety margin: 16 pages
            )
        } else {
            plan_cache(
                mem.gpu_budget,
                mem.gpu_budget,
                shard.rank_optim,
                config.page_size,
                0,
            )
        };
        Ok(Self {
            schedule,
            cache_plan,
            resident_param_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::trace::TracePlan;
    use super::*;
    use angel_model::TransformerConfig;

    fn tiny() -> TransformerConfig {
        TransformerConfig::gpt3_1_7b()
            .with_layers(4)
            .with_seq_len(256)
    }

    fn pipeline(config: &EngineConfig) -> (TracePlan, ShardPlan, MemoryPlan, SchedulePlan) {
        let model = tiny();
        let traced = TracePlan::build(&model, config).unwrap();
        let shard = ShardPlan::build(&model, config, &traced);
        let mem = MemoryPlan::build(config, &shard).unwrap();
        let planned = SchedulePlan::build(config, &shard, &mem, &traced.zero).unwrap();
        (traced, shard, mem, planned)
    }

    #[test]
    fn small_model_is_fully_resident_and_cached() {
        let config = EngineConfig::single_server();
        let (_, shard, mem, planned) = pipeline(&config);
        assert!((planned.schedule.stats.resident_fraction - 1.0).abs() < 1e-9);
        assert!(planned.schedule.stats.peak_gpu_bytes <= mem.gpu_budget);
        // The whole FP16 shard counts as resident bytes.
        assert_eq!(
            planned.resident_param_bytes,
            ZeroPartition::new(mem.n_gpus).shard_bytes(shard.total_params * 4)
        );
        assert!(planned.cache_plan.cached_fraction > 0.99);
    }

    #[test]
    fn disabling_the_cache_leaves_optimizer_off_gpu() {
        let with = pipeline(&EngineConfig::single_server()).3;
        let without = pipeline(&EngineConfig::single_server().with_gpu_cache(false)).3;
        assert!(with.cache_plan.cache_bytes > 0);
        assert_eq!(without.cache_plan.cache_bytes, 0);
        // The schedule itself is cache-independent.
        assert_eq!(with.schedule.stats, without.schedule.stats);
    }

    #[test]
    fn planner_session_reuse_is_byte_identical_to_fresh_builds() {
        let model = tiny();
        let config = EngineConfig::single_server();
        let traced = TracePlan::build(&model, &config).unwrap();
        let shard = ShardPlan::build(&model, &config, &traced);
        let mem = MemoryPlan::build(&config, &shard).unwrap();
        let mut planner = None;
        let first =
            SchedulePlan::build_with_planner(&config, &shard, &mem, &traced.zero, &mut planner)
                .unwrap();
        assert_eq!(
            first.schedule.tasks,
            SchedulePlan::build(&config, &shard, &mem, &traced.zero)
                .unwrap()
                .schedule
                .tasks
        );

        // Second build with a tighter budget goes through the incremental
        // session and must still match a from-scratch plan of the new input.
        let mut tight = config.clone();
        tight.gpu_reserved *= 4;
        let traced2 = TracePlan::build(&model, &tight).unwrap();
        let shard2 = ShardPlan::build(&model, &tight, &traced2);
        let mem2 = MemoryPlan::build(&tight, &shard2).unwrap();
        let second =
            SchedulePlan::build_with_planner(&tight, &shard2, &mem2, &traced2.zero, &mut planner)
                .unwrap();
        let fresh = SchedulePlan::build(&tight, &shard2, &mem2, &traced2.zero).unwrap();
        assert_eq!(second.schedule.tasks, fresh.schedule.tasks);
        assert_eq!(second.schedule.stats, fresh.schedule.stats);
        let p = planner.as_ref().unwrap();
        assert_eq!(p.input(), &shard2.input);
        assert!(p.last_outcome().triggers_total > 0);

        // A scheduler-config change (phase-2 off) abandons the session and
        // rebuilds — the stored planner now carries the new configuration.
        let off = tight.clone().with_phase2_advance(false);
        let third =
            SchedulePlan::build_with_planner(&off, &shard2, &mem2, &traced2.zero, &mut planner)
                .unwrap();
        assert_eq!(third.schedule.stats.gathers_advanced, 0);
        assert!(!planner.as_ref().unwrap().scheduler().phase2);
    }

    #[test]
    fn phase2_advances_gathers() {
        let on = pipeline(&EngineConfig::single_server()).3;
        let off = pipeline(&EngineConfig::single_server().with_phase2_advance(false)).3;
        assert!(on.schedule.stats.gathers_advanced > 0);
        assert_eq!(off.schedule.stats.gathers_advanced, 0);
    }
}
