//! Stage 2 — Shard: ZeRO and expert-parallel byte accounting (Section 3.2,
//! and Section 6.4 for MoE models).
//!
//! This stage turns the trace into the [`SchedulerInput`] — per-layer shard
//! pages, gathered sizes and working sets — and computes the per-rank byte
//! quantities every later stage prices against:
//!
//! * dense models: plain ZeRO sharding of every layer's FP16 parameters;
//! * MoE models: expert parameters are partitioned by expert parallelism —
//!   each rank holds `experts/N` experts locally and never gathers the
//!   rest; only the non-expert ("dense") parameters are ZeRO-sharded and
//!   travel the collective fabric. Gradients follow the same split: a rank
//!   only materializes its local experts' gradients (tokens routed
//!   elsewhere never come back);
//! * mesh plans: the [`ParallelismPlan`] composes on top — tensor
//!   parallelism divides every layer's tensors (and activations) by `tp`
//!   before ZeRO sharding, pipeline parallelism confines this rank's
//!   schedule to its stage's `ceil(layers/pp)` layers, and the ZeRO stage
//!   decides which state is sharded across the dp group at all.

use crate::config::EngineConfig;
use crate::plan::{ParallelismPlan, ZeroStage};
use crate::scheduler::{input_from_trace, LayerPlan, SchedulerInput};
use crate::tracer::Trace;
use angel_model::TransformerConfig;

use super::trace::TracePlan;

/// The sharded view of the model: scheduler input plus rank byte totals.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Per-layer pages/working sets for the Unified Scheduler.
    pub input: SchedulerInput,
    /// Per-layer FP16 parameter bytes that cross the collective fabric
    /// (all parameters for dense models; non-expert parameters only under
    /// expert parallelism).
    pub layer_comm_bytes: Vec<u64>,
    /// Whole-model parameter count.
    pub total_params: u64,
    /// Parameters of one model-parallel slice (`total / (tp·pp)` — the
    /// whole model for pure data parallelism).
    pub model_parallel_params: u64,
    /// Whole-model state bytes (16 B/param).
    pub state_bytes: u64,
    /// This rank's ZeRO parameter share.
    pub rank_params: u64,
    /// This rank's share of model states.
    pub rank_state_bytes: u64,
    /// This rank's FP32 optimizer-state bytes (12 B/param).
    pub rank_optim: u64,
    /// This rank's FP16 parameter+gradient bytes (4 B/param).
    pub rank_p16g16: u64,
}

impl ShardPlan {
    /// Shard `model` across the mesh described by `traced`.
    pub fn build(model: &TransformerConfig, config: &EngineConfig, traced: &TracePlan) -> Self {
        let plan = traced.plan;
        let trace = &traced.trace;
        let total_params = model.total_params();
        let state_bytes = model.model_state_bytes();

        // Model parallelism divides the replica first; the ZeRO stage then
        // decides what the dp group shards of each rank's slice.
        let mp = plan.model_parallel();
        let model_parallel_params = total_params.div_ceil(mp);
        let rank_params = model_parallel_params.div_ceil(plan.param_shard_ranks());
        let rank_optim = model_parallel_params.div_ceil(plan.optim_shard_ranks()) * 12;
        let rank_p16g16 = rank_params * 4;
        let rank_state_bytes = match plan.zero_stage {
            // Fully sharded: an even slice of everything.
            ZeroStage::Full => state_bytes.div_ceil(mp * plan.dp as u64),
            // Replicated parameters/gradients plus the (possibly sharded)
            // optimizer states.
            _ => rank_p16g16 + rank_optim,
        };

        let gpu_budget = config.gpu_budget();
        let degenerate = plan.tp == 1 && plan.pp == 1 && plan.zero_stage == ZeroStage::Full;
        let input = if model.is_moe() {
            moe_input(
                model,
                trace,
                traced.n_gpus,
                config.page_size,
                gpu_budget,
                config.recompute,
            )
        } else if degenerate {
            input_from_trace(trace, config.page_size, plan.dp, gpu_budget)
        } else {
            mesh_input(trace, &plan, config.page_size, gpu_budget)
        };

        let layer_comm_bytes = (0..model.layers)
            .map(|l| {
                if model.is_moe() {
                    trace.layer_param16_split(l).0
                } else {
                    trace.layer_param16_bytes(l).div_ceil(plan.tp as u64)
                }
            })
            .collect();

        Self {
            input,
            layer_comm_bytes,
            total_params,
            model_parallel_params,
            state_bytes,
            rank_params,
            rank_state_bytes,
            rank_optim,
            rank_p16g16,
        }
    }
}

/// Scheduler input for a non-degenerate mesh plan: this rank schedules its
/// pipeline stage's layers, with every tensor (parameters, activations,
/// gradients) already divided `tp` ways, and the ZeRO stage deciding how
/// much of each layer's parameters this rank stores between iterations.
fn mesh_input(
    trace: &Trace,
    plan: &ParallelismPlan,
    page_size: u64,
    gpu_budget: u64,
) -> SchedulerInput {
    let tp = plan.tp as u64;
    let n_layers = plan.stage_layers(trace.layers);
    let param_shard = plan.param_shard_ranks();
    let layers = (0..n_layers)
        .map(|l| {
            let full = trace.layer_param16_bytes(l).div_ceil(tp);
            let shard = full.div_ceil(param_shard);
            let mut pages = Vec::with_capacity(shard.div_ceil(page_size.max(1)) as usize);
            let mut rest = shard;
            while rest > 0 {
                let take = rest.min(page_size);
                pages.push(take);
                rest -= take;
            }
            LayerPlan {
                layer: l,
                shard_pages: pages,
                full_param_bytes: full,
                working_set: trace.layer_working_set(l).div_ceil(tp),
            }
        })
        .collect();
    let steps = SchedulerInput::default_steps(n_layers);
    // Stage-local lifetime window: layer `l`'s activations live from its
    // forward (step `l`) to its backward (step `2·n_layers − 1 − l`).
    let step_base_load = if trace.recompute {
        Vec::new()
    } else {
        steps
            .iter()
            .enumerate()
            .map(|(j, s)| {
                (0..n_layers)
                    .filter(|&l| l != s.layer() && l <= j && j <= 2 * n_layers - 1 - l)
                    .map(|l| trace.layer_activation_bytes(l).div_ceil(tp))
                    .sum()
            })
            .collect()
    };
    SchedulerInput {
        layers,
        steps,
        gpu_budget,
        page_size,
        step_base_load,
    }
}

/// Scheduler input under expert parallelism: the dense fraction of every
/// layer is ZeRO-sharded, the expert fraction is partitioned whole-expert
/// per rank.
fn moe_input(
    model: &TransformerConfig,
    trace: &Trace,
    n_gpus: usize,
    page_size: u64,
    gpu_budget: u64,
    recompute: bool,
) -> SchedulerInput {
    let experts_per_rank = (model.experts as u64).div_ceil(n_gpus as u64);
    let layers = (0..trace.layers)
        .map(|l| {
            let (dense, expert_total) = trace.layer_param16_split(l);
            let local_experts = if model.experts > 0 {
                expert_total / model.experts as u64 * experts_per_rank
            } else {
                0
            };
            let shard = dense.div_ceil(n_gpus as u64) + local_experts;
            let mut pages = Vec::new();
            let mut rest = shard;
            while rest > 0 {
                let take = rest.min(page_size);
                pages.push(take);
                rest -= take;
            }
            let (dense_g, expert_g) = trace.layer_grad16_split(l);
            let local_expert_g = if model.experts > 0 {
                expert_g / model.experts as u64 * experts_per_rank
            } else {
                0
            };
            LayerPlan {
                layer: l,
                shard_pages: pages,
                full_param_bytes: dense + local_experts,
                working_set: trace.layer_activation_bytes(l) + dense_g + local_expert_g,
            }
        })
        .collect();
    let steps = SchedulerInput::default_steps(trace.layers);
    // Without recomputation, every layer's activations stay live from its
    // forward to its backward; that accumulated load is outside this
    // schedule's control but must constrain it.
    let step_base_load = if recompute {
        Vec::new()
    } else {
        steps
            .iter()
            .enumerate()
            .map(|(j, s)| {
                (0..trace.layers)
                    .filter(|&l| {
                        l != s.layer() && trace.forward_id(l) <= j && j <= trace.backward_id(l)
                    })
                    .map(|l| trace.layer_activation_bytes(l))
                    .sum()
            })
            .collect()
    };
    SchedulerInput {
        layers,
        steps,
        gpu_budget,
        page_size,
        step_base_load,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(model: &TransformerConfig, config: &EngineConfig) -> ShardPlan {
        let traced = TracePlan::build(model, config).unwrap();
        ShardPlan::build(model, config, &traced)
    }

    fn moe_model(experts: usize) -> TransformerConfig {
        TransformerConfig::t5_moe_1_2t()
            .with_layers(4)
            .with_experts(experts)
    }

    #[test]
    fn dense_layers_page_up_to_the_shard() {
        let model = TransformerConfig::gpt3_1_7b().with_layers(4);
        let config = EngineConfig::single_server();
        let plan = build(&model, &config);
        let n = config.num_gpus() as u64;
        for (l, lp) in plan.input.layers.iter().enumerate() {
            let shard: u64 = lp.shard_pages.iter().sum();
            assert_eq!(shard, lp.full_param_bytes.div_ceil(n), "layer {l}");
            assert!(lp
                .shard_pages
                .iter()
                .all(|&p| p > 0 && p <= config.page_size));
        }
        assert_eq!(plan.layer_comm_bytes.len(), 4);
    }

    #[test]
    fn moe_shard_covers_dense_share_plus_local_experts() {
        // 6 experts on 8 GPUs: uneven split, each rank provisions
        // ceil(6/8) = 1 expert's bytes.
        let model = moe_model(6);
        let config = EngineConfig::single_server();
        let plan = build(&model, &config);
        let traced = TracePlan::build(&model, &config).unwrap();
        let n = config.num_gpus() as u64;
        for (l, lp) in plan.input.layers.iter().enumerate() {
            let (dense, expert_total) = traced.trace.layer_param16_split(l);
            let per_expert = expert_total / 6;
            let shard: u64 = lp.shard_pages.iter().sum();
            assert_eq!(shard, dense.div_ceil(n) + per_expert, "layer {l}");
            // Gathered size excludes remote experts.
            assert_eq!(lp.full_param_bytes, dense + per_expert, "layer {l}");
            // Only the dense fraction travels the collective fabric.
            assert_eq!(plan.layer_comm_bytes[l], dense, "layer {l}");
        }
    }

    #[test]
    fn moe_uneven_experts_round_up_per_rank() {
        // 12 experts on 8 GPUs: ceil(12/8) = 2 local experts per rank —
        // more bytes per rank than the even 8-expert split.
        let config = EngineConfig::single_server();
        let twelve = build(&moe_model(12), &config);
        let eight = build(&moe_model(8), &config);
        let traced = TracePlan::build(&moe_model(12), &config).unwrap();
        for l in 0..4 {
            let (_, expert_total) = traced.trace.layer_param16_split(l);
            let per_expert = expert_total / 12;
            let shard12: u64 = twelve.input.layers[l].shard_pages.iter().sum();
            let shard8: u64 = eight.input.layers[l].shard_pages.iter().sum();
            // 2 experts of the 12-way split vs 1 expert of the 8-way split;
            // each 8-way expert is as large as a 12-way one here (same
            // total expert bytes per layer ÷ experts).
            assert!(shard12 > shard8, "layer {l}: {shard12} vs {shard8}");
            assert!(shard12 >= 2 * per_expert, "layer {l}");
        }
    }

    #[test]
    fn zero_expert_moe_degrades_to_dense_accounting() {
        // `experts == 0` must not divide by zero and must carry no expert
        // bytes in shards or working sets.
        let model = moe_model(0);
        let config = EngineConfig::single_server();
        let traced = TracePlan::build(&model, &config).unwrap();
        let input = moe_input(
            &model,
            &traced.trace,
            traced.n_gpus,
            config.page_size,
            config.gpu_budget(),
            config.recompute,
        );
        let n = traced.n_gpus as u64;
        for (l, lp) in input.layers.iter().enumerate() {
            let (dense, _) = traced.trace.layer_param16_split(l);
            let (dense_g, _) = traced.trace.layer_grad16_split(l);
            let shard: u64 = lp.shard_pages.iter().sum();
            assert_eq!(shard, dense.div_ceil(n), "layer {l}");
            assert_eq!(lp.full_param_bytes, dense, "layer {l}");
            assert_eq!(
                lp.working_set,
                traced.trace.layer_activation_bytes(l) + dense_g,
                "layer {l}"
            );
        }
    }

    #[test]
    fn recompute_controls_moe_step_base_load() {
        let model = moe_model(8);
        let on = build(&model, &EngineConfig::single_server().with_recompute(true));
        let off = build(&model, &EngineConfig::single_server().with_recompute(false));
        // Recompute discards inter-step activations: no base load at all.
        assert!(on.input.step_base_load.is_empty());
        // Without recompute every step carries the other live layers'
        // activations; mid-iteration steps carry the most.
        assert_eq!(off.input.step_base_load.len(), off.input.steps.len());
        assert!(off.input.step_base_load.iter().any(|&b| b > 0));
        // Working sets also shrink under recompute (activations released).
        for l in 0..4 {
            assert!(on.input.layers[l].working_set <= off.input.layers[l].working_set);
        }
    }

    #[test]
    fn mesh_plan_divides_layers_and_bytes() {
        // 4 servers (32 GPUs): dp=4 × pp=4 × tp=2 on an 8-layer model.
        let model = TransformerConfig::gpt3_1_7b().with_layers(8);
        let config = EngineConfig::servers(4)
            .with_parallelism(crate::plan::ParallelismPlan::megatron(4, 2, 4));
        let plan = build(&model, &config);
        let traced = TracePlan::build(&model, &config).unwrap();
        // This rank's stage holds 8/4 = 2 layers.
        assert_eq!(plan.input.layers.len(), 2);
        assert_eq!(plan.input.steps.len(), 4);
        for (l, lp) in plan.input.layers.iter().enumerate() {
            let full = traced.trace.layer_param16_bytes(l).div_ceil(2);
            // Stage None: no ZeRO sharding — the whole tp slice is the shard.
            assert_eq!(lp.full_param_bytes, full, "layer {l}");
            assert_eq!(lp.shard_pages.iter().sum::<u64>(), full, "layer {l}");
            assert_eq!(plan.layer_comm_bytes[l], full, "layer {l}");
        }
        // Replicated states: 16 bytes per parameter of the tp·pp slice.
        let slice = plan.total_params.div_ceil(8);
        assert_eq!(plan.rank_params, slice);
        assert_eq!(plan.rank_state_bytes, slice * 16);
    }

    #[test]
    fn zero3_mesh_composes_tp_with_sharding() {
        // dp=8 × tp=2 under full ZeRO: each layer's tp slice is further
        // sharded 8 ways across the dp group.
        let model = TransformerConfig::gpt3_1_7b().with_layers(4);
        let config = EngineConfig::servers(2).with_parallelism(crate::plan::ParallelismPlan {
            dp: 8,
            tp: 2,
            pp: 1,
            zero_stage: ZeroStage::Full,
        });
        let plan = build(&model, &config);
        let traced = TracePlan::build(&model, &config).unwrap();
        for (l, lp) in plan.input.layers.iter().enumerate() {
            let slice = traced.trace.layer_param16_bytes(l).div_ceil(2);
            assert_eq!(lp.full_param_bytes, slice, "layer {l}");
            assert_eq!(
                lp.shard_pages.iter().sum::<u64>(),
                slice.div_ceil(8),
                "layer {l}"
            );
        }
        assert_eq!(plan.rank_params, plan.total_params.div_ceil(2).div_ceil(8));
        assert_eq!(plan.rank_optim, plan.rank_params * 12);
    }

    #[test]
    fn rank_totals_follow_zero_arithmetic() {
        let model = TransformerConfig::gpt3_1_7b().with_layers(4);
        let config = EngineConfig::single_server();
        let plan = build(&model, &config);
        let n = config.num_gpus() as u64;
        assert_eq!(plan.rank_params, plan.total_params.div_ceil(n));
        assert_eq!(plan.rank_optim, plan.rank_params * 12);
        assert_eq!(plan.rank_p16g16, plan.rank_params * 4);
        assert_eq!(plan.state_bytes, model.model_state_bytes());
    }
}
