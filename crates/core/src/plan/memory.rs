//! Stage 3 — Place: hierarchical-memory budgets and placement (Section
//! 4.1/4.2 of the paper).
//!
//! [`MemoryPlan::build`] fixes the per-rank tier budgets: the GPU page-pool
//! budget, the host page pool left over after the lock-free mechanism's
//! pinned FP16 buffers, and the SSD share. [`MemoryPlan::place`] then
//! distributes the rank's model states across the tiers under the paper's
//! heuristic — forward/backward states on GPU, optimizer states behind the
//! GPU cache on CPU, FP32 states spilling to SSD when enabled — and
//! enforces the capacity invariant. [`MemoryPlan::materialize`] commits the
//! placement to a real [`PageAllocator`] so every page-accounting invariant
//! is enforced, not assumed.
//!
//! Every capacity rejection goes through [`MemoryPlan::too_large`], so the
//! reported usable capacity is consistent across failure modes: the full
//! hierarchy (GPU + CPU pool + SSD) across all ranks.

use crate::allocator::PageAllocator;
use crate::config::EngineConfig;
use crate::error::{Error, Result};
use crate::tensor::DType;
use angel_hw::DeviceId;
use serde::{Deserialize, Serialize};

use super::schedule::SchedulePlan;
use super::shard::ShardPlan;

/// Where this rank's model-state bytes ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// FP16 param+grad bytes resident on this rank's GPU (scheduler+cache).
    pub gpu_bytes: u64,
    /// Bytes in the CPU page pool (this rank's share).
    pub cpu_bytes: u64,
    /// Bytes on SSD (this rank's share).
    pub ssd_bytes: u64,
    /// This rank's total share of model states.
    pub rank_state_bytes: u64,
}

/// Per-rank budgets of the three memory tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryPlan {
    /// Data-parallel degree (number of ranks).
    pub n_gpus: usize,
    /// Ranks sharing one server's host memory and SSD.
    pub gpus_per_server: u64,
    /// Physical host memory per server.
    pub host_physical: u64,
    /// Pinned Algorithm 2 FP16 buffers per server (lock-free mode only).
    pub buffers_per_server: u64,
    /// This rank's share of the host page pool.
    pub rank_cpu_pool: u64,
    /// This rank's share of the SSD pool (0 when SSD is off).
    pub rank_ssd_pool: u64,
    /// This rank's GPU page-pool budget.
    pub gpu_budget: u64,
}

/// A [`Placement`] plus the tier split quantities materialization needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementPlan {
    pub placement: Placement,
    /// FP16 parameter/gradient bytes spilled to the CPU page pool.
    pub p16_cpu: u64,
    /// FP32 optimizer-state bytes in the CPU page pool.
    pub optim_cpu: u64,
    /// FP32 optimizer-state bytes on SSD.
    pub optim_ssd: u64,
}

impl MemoryPlan {
    /// Fix the tier budgets for one representative rank.
    ///
    /// Lock-free mode pins the Algorithm 2 FP16 buffers (p'₁₆ + g'₁₆,
    /// 4 bytes/param) as two flat host arrays outside the page pool; the
    /// pool then manages the remaining host memory. The buffers may use at
    /// most 60% of physical RAM (beyond that the host cannot also run the
    /// dataloader and the pool).
    pub fn build(config: &EngineConfig, shard: &ShardPlan) -> Result<Self> {
        let gpus_per_server = config.cluster.server.num_gpus() as u64;
        let host_physical = config.cluster.server.cpu.capacity;
        let buffers_per_server = if config.lock_free {
            shard.rank_params * 4 * gpus_per_server
        } else {
            0
        };
        let pool_per_server = (host_physical.saturating_sub(buffers_per_server) as f64
            * config.host_policy.usable_fraction) as u64;
        let plan = Self {
            n_gpus: config.num_gpus(),
            gpus_per_server,
            host_physical,
            buffers_per_server,
            rank_cpu_pool: pool_per_server / gpus_per_server,
            rank_ssd_pool: config.usable_ssd_bytes() / gpus_per_server,
            gpu_budget: config.gpu_budget(),
        };
        if buffers_per_server > (host_physical as f64 * 0.60) as u64 {
            return Err(plan.too_large(shard.state_bytes));
        }
        Ok(plan)
    }

    /// Total usable bytes across the memory hierarchy, all ranks: the
    /// capacity every [`Error::ModelTooLarge`] reports, whichever invariant
    /// tripped.
    pub fn usable_capacity_bytes(&self) -> u64 {
        (self.gpu_budget + self.rank_cpu_pool + self.rank_ssd_pool) * self.n_gpus as u64
    }

    /// The uniform capacity error for a model of `state_bytes`.
    pub fn too_large(&self, state_bytes: u64) -> Error {
        Error::ModelTooLarge {
            state_bytes,
            usable_bytes: self.usable_capacity_bytes(),
        }
    }

    /// Distribute the rank's states across the tiers.
    ///
    /// Optimizer states: GPU cache first, then SSD (when enabled) else CPU;
    /// FP16 states: GPU-resident fraction, remainder CPU. In lock-free mode
    /// the CPU-side FP16 states live entirely in the pinned Algorithm 2
    /// buffers (already accounted by [`MemoryPlan::build`]), so the page
    /// pool carries none of them.
    pub fn place(
        &self,
        config: &EngineConfig,
        shard: &ShardPlan,
        planned: &SchedulePlan,
    ) -> Result<PlacementPlan> {
        let optim_on_gpu = planned.cache_plan.cache_bytes;
        let optim_rest = shard.rank_optim - optim_on_gpu;
        let (optim_ssd, optim_cpu) = if config.use_ssd {
            (
                optim_rest.min(self.rank_ssd_pool),
                optim_rest.saturating_sub(self.rank_ssd_pool),
            )
        } else {
            (0, optim_rest)
        };
        let p16_cpu = if config.lock_free {
            0
        } else {
            shard
                .rank_p16g16
                .saturating_sub(planned.resident_param_bytes)
        };
        let cpu_needed = optim_cpu + p16_cpu;
        if cpu_needed > self.rank_cpu_pool {
            return Err(self.too_large(shard.state_bytes));
        }
        Ok(PlacementPlan {
            placement: Placement {
                gpu_bytes: planned.resident_param_bytes + optim_on_gpu,
                cpu_bytes: cpu_needed,
                ssd_bytes: optim_ssd,
                rank_state_bytes: shard.rank_state_bytes,
            },
            p16_cpu,
            optim_cpu,
            optim_ssd,
        })
    }

    /// Commit the placement to a real allocator.
    ///
    /// Virtual pages: bookkeeping only, so even terabyte placements are
    /// cheap, but every pool-capacity and two-tenant invariant is enforced
    /// for real. One tensor per layer per state class, on its planned tier;
    /// GPU residency changes dynamically per the schedule, so only the
    /// CPU/SSD-resident structures are allocated here.
    pub fn materialize(
        &self,
        config: &EngineConfig,
        n_layers: usize,
        placed: &PlacementPlan,
    ) -> Result<PageAllocator> {
        let mut allocator = PageAllocator::with_page_size(config.page_size, false);
        allocator.add_pool(DeviceId::gpu(0), self.gpu_budget)?;
        allocator.add_pool(DeviceId::CPU, self.rank_cpu_pool)?;
        if config.use_ssd {
            allocator.add_pool(DeviceId::SSD, self.rank_ssd_pool)?;
        }
        let layers = n_layers as u64;
        // div_ceil so the layer slices cover the placement in full (floor
        // division dropped up to `layers − 1` bytes); zero-byte state
        // classes allocate nothing (a 1-byte floor pinned a phantom page
        // per layer whenever no FP16 state spilled to the CPU).
        let per_layer_p16 = placed.p16_cpu.div_ceil(layers);
        let per_layer_optim_cpu = placed.optim_cpu.div_ceil(layers);
        let per_layer_optim_ssd = placed.optim_ssd.div_ceil(layers);
        for _layer in 0..n_layers {
            if per_layer_p16 > 0 {
                allocator.alloc_tensor(vec![per_layer_p16 as usize], DType::Byte, DeviceId::CPU)?;
            }
            if per_layer_optim_cpu > 0 {
                allocator.alloc_tensor(
                    vec![per_layer_optim_cpu as usize],
                    DType::Byte,
                    DeviceId::CPU,
                )?;
            }
            if per_layer_optim_ssd > 0 {
                allocator.alloc_tensor(
                    vec![per_layer_optim_ssd as usize],
                    DType::Byte,
                    DeviceId::SSD,
                )?;
            }
        }
        Ok(allocator)
    }
}

#[cfg(test)]
mod tests {
    use super::super::trace::TracePlan;
    use super::*;
    use angel_model::TransformerConfig;

    fn tiny() -> TransformerConfig {
        TransformerConfig::gpt3_1_7b()
            .with_layers(4)
            .with_seq_len(256)
    }

    fn shard_for(model: &TransformerConfig, config: &EngineConfig) -> ShardPlan {
        ShardPlan::build(model, config, &TracePlan::build(model, config).unwrap())
    }

    #[test]
    fn budgets_partition_the_server() {
        let config = EngineConfig::single_server();
        let mem = MemoryPlan::build(&config, &shard_for(&tiny(), &config)).unwrap();
        assert_eq!(mem.buffers_per_server, 0);
        assert_eq!(mem.gpu_budget, config.gpu_budget());
        // The pool is the policy fraction of host memory, split per rank.
        let expected = (mem.host_physical as f64 * config.host_policy.usable_fraction) as u64
            / mem.gpus_per_server;
        assert_eq!(mem.rank_cpu_pool, expected);
        assert_eq!(mem.rank_ssd_pool, 0, "SSD off by default");
    }

    #[test]
    fn lock_free_buffers_shrink_the_pool() {
        let model = tiny();
        let sync_cfg = EngineConfig::single_server();
        let lf_cfg = EngineConfig::single_server().with_lock_free(true);
        let sync = MemoryPlan::build(&sync_cfg, &shard_for(&model, &sync_cfg)).unwrap();
        let lf = MemoryPlan::build(&lf_cfg, &shard_for(&model, &lf_cfg)).unwrap();
        assert!(lf.buffers_per_server > 0);
        assert!(lf.rank_cpu_pool < sync.rank_cpu_pool);
    }

    #[test]
    fn oversized_lock_free_buffers_report_hierarchy_capacity() {
        // A model whose pinned FP16 buffers alone exceed 60% of host RAM.
        let model = TransformerConfig::gpt3_28b().with_layers(3000);
        let config = EngineConfig::single_server().with_lock_free(true);
        let shard = shard_for(&model, &config);
        match MemoryPlan::build(&config, &shard) {
            Err(Error::ModelTooLarge {
                state_bytes,
                usable_bytes,
            }) => {
                assert_eq!(state_bytes, model.model_state_bytes());
                // The unified helper reports the whole hierarchy, exactly as
                // the pool-overflow branch does — not bare host RAM.
                let gps = config.cluster.server.num_gpus() as u64;
                let host = config.cluster.server.cpu.capacity;
                let buffers = shard.rank_params * 4 * gps;
                let pool = (host.saturating_sub(buffers) as f64
                    * config.host_policy.usable_fraction) as u64
                    / gps;
                let expected = (config.gpu_budget() + pool) * config.num_gpus() as u64;
                assert_eq!(usable_bytes, expected);
            }
            other => panic!("expected ModelTooLarge, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn capacity_helper_sums_all_tiers_across_ranks() {
        let mem = MemoryPlan {
            n_gpus: 8,
            gpus_per_server: 8,
            host_physical: 0,
            buffers_per_server: 0,
            rank_cpu_pool: 100,
            rank_ssd_pool: 10,
            gpu_budget: 1000,
        };
        assert_eq!(mem.usable_capacity_bytes(), (1000 + 100 + 10) * 8);
        match mem.too_large(42) {
            Error::ModelTooLarge {
                state_bytes,
                usable_bytes,
            } => {
                assert_eq!((state_bytes, usable_bytes), (42, 8880));
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn materialize_skips_zero_byte_classes() {
        // p16_cpu = 0 (everything GPU-resident) must not pin any CPU pages:
        // the old 1-byte floor allocated one phantom page per layer.
        let config = EngineConfig::single_server();
        let mem = MemoryPlan::build(&config, &shard_for(&tiny(), &config)).unwrap();
        let placed = PlacementPlan {
            placement: Placement {
                gpu_bytes: 0,
                cpu_bytes: 0,
                ssd_bytes: 0,
                rank_state_bytes: 0,
            },
            p16_cpu: 0,
            optim_cpu: 0,
            optim_ssd: 0,
        };
        let alloc = mem.materialize(&config, 4, &placed).unwrap();
        assert_eq!(alloc.stats(DeviceId::CPU).used_pages, 0, "no phantom pages");
    }

    #[test]
    fn materialize_covers_the_full_placement() {
        // div_ceil: 4 layers × ceil(1001/4) = 1004 ≥ 1001 bytes — the floor
        // division would have materialized only 1000.
        let config = EngineConfig::single_server();
        let mem = MemoryPlan::build(&config, &shard_for(&tiny(), &config)).unwrap();
        let placed = PlacementPlan {
            placement: Placement {
                gpu_bytes: 0,
                cpu_bytes: 1001,
                ssd_bytes: 0,
                rank_state_bytes: 0,
            },
            p16_cpu: 1001,
            optim_cpu: 0,
            optim_ssd: 0,
        };
        let alloc = mem.materialize(&config, 4, &placed).unwrap();
        let covered: u64 = (0..4).map(|_| 251u64).sum();
        assert!(covered >= 1001);
        // Four tensors of 251 bytes each, all on the CPU pool.
        assert_eq!(alloc.stats(DeviceId::CPU).tenant_bytes, covered);
    }
}
