//! Stage 1 — Trace: one symbolic iteration over the model (paper Section 5).
//!
//! The Tracer replays forward, backward and update once to record every
//! tensor's `(first_id, end_id)` lifetime; everything downstream (sharding,
//! placement, scheduling) is a pure function of this trace. This stage also
//! fixes the ZeRO partition geometry, since the data-parallel degree is a
//! property of the cluster, not of any later policy decision.

use crate::config::EngineConfig;
use crate::tracer::{Trace, Tracer};
use crate::zero::ZeroPartition;
use angel_model::TransformerConfig;

/// The traced iteration plus the partition geometry derived from the fleet.
#[derive(Debug, Clone)]
pub struct TracePlan {
    /// Lifetime-annotated tensor accesses of one training iteration.
    pub trace: Trace,
    /// Data-parallel degree (ZeRO sharding denominator).
    pub n_gpus: usize,
    /// ZeRO parameter/gradient/optimizer-state partition.
    pub zero: ZeroPartition,
}

impl TracePlan {
    /// Run the Tracer over `model` under `config`'s batch/recompute policy.
    pub fn build(model: &TransformerConfig, config: &EngineConfig) -> Self {
        let n_gpus = config.num_gpus();
        let tracer = Tracer {
            gpu_model: config.gpu_compute,
            cpu_model: config.cpu_update,
        };
        Self {
            trace: tracer.trace(model, config.batch_size, config.recompute),
            n_gpus,
            zero: ZeroPartition::new(n_gpus),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TransformerConfig {
        TransformerConfig::gpt3_1_7b()
            .with_layers(4)
            .with_seq_len(256)
    }

    #[test]
    fn trace_covers_every_layer() {
        let tp = TracePlan::build(&tiny(), &EngineConfig::single_server());
        assert_eq!(tp.trace.layers, 4);
        for l in 0..4 {
            assert!(tp.trace.forward_id(l) <= tp.trace.backward_id(l));
            assert!(tp.trace.layer_param16_bytes(l) > 0);
        }
    }

    #[test]
    fn partition_matches_fleet() {
        let tp = TracePlan::build(&tiny(), &EngineConfig::single_server());
        assert_eq!(tp.n_gpus, EngineConfig::single_server().num_gpus());
        // ZeRO shards divide the total evenly (up to div_ceil rounding).
        let shard = tp.zero.shard_bytes(1 << 20);
        assert_eq!(shard, (1u64 << 20).div_ceil(tp.n_gpus as u64));
    }

    #[test]
    fn recompute_flag_propagates() {
        let on = TracePlan::build(&tiny(), &EngineConfig::single_server().with_recompute(true));
        let off = TracePlan::build(
            &tiny(),
            &EngineConfig::single_server().with_recompute(false),
        );
        assert!(on.trace.recompute);
        assert!(!off.trace.recompute);
    }
}
