//! Stage 1 — Trace: one symbolic iteration over the model (paper Section 5).
//!
//! The Tracer replays forward, backward and update once to record every
//! tensor's `(first_id, end_id)` lifetime; everything downstream (sharding,
//! placement, scheduling) is a pure function of this trace. This stage also
//! lays the configured [`ParallelismPlan`] onto the cluster — producing the
//! [`DeviceMesh`] and the ZeRO partition geometry every later stage prices
//! against — so an invalid plan fails here, before any byte accounting.

use crate::config::EngineConfig;
use crate::error::{Error, Result};
use crate::plan::ParallelismPlan;
use crate::tracer::{Trace, Tracer};
use crate::zero::ZeroPartition;
use angel_hw::DeviceMesh;
use angel_model::TransformerConfig;

/// The traced iteration plus the mesh and partition geometry.
#[derive(Debug, Clone)]
pub struct TracePlan {
    /// Lifetime-annotated tensor accesses of one training iteration.
    pub trace: Trace,
    /// Total GPUs in the cluster.
    pub n_gpus: usize,
    /// ZeRO parameter/gradient/optimizer-state partition across the ranks
    /// that actually shard parameters (the dp group under ZeRO-3, nobody
    /// under replicated stages).
    pub zero: ZeroPartition,
    /// The validated physical layout of the parallelism plan.
    pub mesh: DeviceMesh,
    /// The plan itself (copied out of the config for downstream stages).
    pub plan: ParallelismPlan,
}

impl TracePlan {
    /// Run the Tracer over `model` under `config`'s batch/recompute policy
    /// and validate the parallelism plan against the cluster.
    pub fn build(model: &TransformerConfig, config: &EngineConfig) -> Result<Self> {
        let plan = config.parallelism;
        let mesh = config.device_mesh()?;
        if model.is_moe() && plan.model_parallel() > 1 {
            return Err(Error::InvalidParallelism(format!(
                "MoE models use expert parallelism on the dp axis; tensor/pipeline \
                 parallelism is unsupported (got tp={}, pp={})",
                plan.tp, plan.pp
            )));
        }
        let tracer = Tracer {
            gpu_model: config.gpu_compute,
            cpu_model: config.cpu_update,
        };
        Ok(Self {
            trace: tracer.trace(model, config.batch_size, config.recompute),
            n_gpus: config.num_gpus(),
            zero: ZeroPartition::new(plan.param_shard_ranks() as usize),
            mesh,
            plan,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ZeroStage;

    fn tiny() -> TransformerConfig {
        TransformerConfig::gpt3_1_7b()
            .with_layers(4)
            .with_seq_len(256)
    }

    #[test]
    fn trace_covers_every_layer() {
        let tp = TracePlan::build(&tiny(), &EngineConfig::single_server()).unwrap();
        assert_eq!(tp.trace.layers, 4);
        for l in 0..4 {
            assert!(tp.trace.forward_id(l) <= tp.trace.backward_id(l));
            assert!(tp.trace.layer_param16_bytes(l) > 0);
        }
    }

    #[test]
    fn partition_matches_fleet() {
        let tp = TracePlan::build(&tiny(), &EngineConfig::single_server()).unwrap();
        assert_eq!(tp.n_gpus, EngineConfig::single_server().num_gpus());
        // The default plan is pure ZeRO-3 over every GPU.
        assert_eq!(tp.plan, ParallelismPlan::zero3(8));
        assert_eq!((tp.mesh.dp(), tp.mesh.tp(), tp.mesh.pp()), (8, 1, 1));
        // ZeRO shards divide the total evenly (up to div_ceil rounding).
        let shard = tp.zero.shard_bytes(1 << 20);
        assert_eq!(shard, (1u64 << 20).div_ceil(tp.n_gpus as u64));
    }

    #[test]
    fn recompute_flag_propagates() {
        let on =
            TracePlan::build(&tiny(), &EngineConfig::single_server().with_recompute(true)).unwrap();
        let off = TracePlan::build(
            &tiny(),
            &EngineConfig::single_server().with_recompute(false),
        )
        .unwrap();
        assert!(on.trace.recompute);
        assert!(!off.trace.recompute);
    }

    #[test]
    fn invalid_plans_fail_at_trace_time() {
        // Axis product ≠ GPU count.
        let bad = EngineConfig::single_server().with_parallelism(ParallelismPlan::zero3(4));
        assert!(matches!(
            TracePlan::build(&tiny(), &bad),
            Err(Error::InvalidParallelism(_))
        ));
        // MoE models reject model parallelism.
        let moe = TransformerConfig::t5_moe_1_2t().with_layers(4);
        let mp = EngineConfig::single_server().with_parallelism(ParallelismPlan {
            dp: 4,
            tp: 2,
            pp: 1,
            zero_stage: ZeroStage::Full,
        });
        let err = TracePlan::build(&moe, &mp).unwrap_err();
        assert!(err.to_string().contains("MoE"));
    }

    #[test]
    fn replicated_stages_do_not_shard() {
        let cfg =
            EngineConfig::single_server().with_parallelism(ParallelismPlan::megatron(4, 2, 1));
        let tp = TracePlan::build(&tiny(), &cfg).unwrap();
        // Stage-None keeps parameters whole: the partition is trivial.
        assert_eq!(tp.zero.shard_bytes(1 << 20), 1 << 20);
    }
}
