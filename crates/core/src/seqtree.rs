//! A lazy range-add / range-max segment tree over a fixed-length array of
//! byte counts — the backing store of the Unified Scheduler's residency
//! timeline (see `crates/core/src/scheduler.rs` and DESIGN.md §9).
//!
//! Algorithm 1 maintains `mem[j]` = planned GPU bytes at compute step `j`
//! and needs four operations on it, each hit O(pages) times per plan:
//!
//! * add `±bytes` to a contiguous step interval (evict / re-add / gather
//!   advancement),
//! * read one step's total (the phase-1 fit check),
//! * the max over an interval (the batched re-add fit check),
//! * the *latest* step in an interval whose total exceeds a threshold (the
//!   phase-2 advancement stop point).
//!
//! All four are O(log steps) here, which is what turns planning from
//! quadratic to near-linear at the paper's 10⁴–10⁵-pages-per-layer scale.
//!
//! Totals are externally `u64`; deltas are signed (`i64`) because evictions
//! subtract. The tree never pushes lazy tags: queries carry the accumulated
//! pending add down the descent instead, so reads take `&self`.

/// Lazy range-add / range-max tree over `u64` totals with `i64` deltas.
///
/// Node convention: `max[v]` is the true maximum of `v`'s interval with
/// `lazy[v]` and every tag *below* `v` applied, but no ancestor tags.
#[derive(Debug, Clone)]
pub struct RangeAddMax {
    /// Logical length (number of leaves in use).
    n: usize,
    max: Vec<i64>,
    lazy: Vec<i64>,
}

impl RangeAddMax {
    /// Build from initial totals in O(n).
    pub fn from_values(values: &[u64]) -> Self {
        let n = values.len();
        let mut tree = Self {
            n,
            max: vec![0; 4 * n.max(1)],
            lazy: vec![0; 4 * n.max(1)],
        };
        if n > 0 {
            tree.build(1, 0, n - 1, values);
        }
        tree
    }

    /// Rebuild from new totals, reusing the existing node arrays — the
    /// replan fast path re-arms one persistent tree per delta instead of
    /// allocating a fresh one (`from_values`) per plan. Byte-identical to
    /// `*self = Self::from_values(values)` without the allocation.
    pub fn reset_from_values(&mut self, values: &[u64]) {
        let n = values.len();
        let want = 4 * n.max(1);
        self.max.clear();
        self.max.resize(want, 0);
        self.lazy.clear();
        self.lazy.resize(want, 0);
        self.n = n;
        if n > 0 {
            self.build(1, 0, n - 1, values);
        }
    }

    /// Revert to a saved snapshot, reusing this tree's allocations
    /// (`Vec::clone_from` keeps capacity). With `add` range patches on top,
    /// this is the planner's range-revert: one memcpy back to the baseline
    /// timeline, then O(log n) range updates for only the deltas — untouched
    /// ranges come back verbatim without a rebuild.
    pub fn restore_from(&mut self, snapshot: &Self) {
        self.n = snapshot.n;
        self.max.clone_from(&snapshot.max);
        self.lazy.clone_from(&snapshot.lazy);
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn build(&mut self, v: usize, lo: usize, hi: usize, values: &[u64]) {
        if lo == hi {
            self.max[v] = values[lo] as i64;
            return;
        }
        let mid = lo + (hi - lo) / 2;
        self.build(2 * v, lo, mid, values);
        self.build(2 * v + 1, mid + 1, hi, values);
        self.max[v] = self.max[2 * v].max(self.max[2 * v + 1]);
    }

    /// Add `delta` to every total in the inclusive range `[lo, hi]`.
    /// Empty ranges (`lo > hi`) are a no-op.
    pub fn add(&mut self, lo: usize, hi: usize, delta: i64) {
        if lo > hi || delta == 0 || self.n == 0 {
            return;
        }
        debug_assert!(hi < self.n, "range [{lo}, {hi}] out of 0..{}", self.n);
        self.add_rec(1, 0, self.n - 1, lo, hi, delta);
    }

    fn add_rec(&mut self, v: usize, nlo: usize, nhi: usize, lo: usize, hi: usize, delta: i64) {
        if hi < nlo || nhi < lo {
            return;
        }
        if lo <= nlo && nhi <= hi {
            self.max[v] += delta;
            self.lazy[v] += delta;
            return;
        }
        let mid = nlo + (nhi - nlo) / 2;
        self.add_rec(2 * v, nlo, mid, lo, hi, delta);
        self.add_rec(2 * v + 1, mid + 1, nhi, lo, hi, delta);
        self.max[v] = self.max[2 * v].max(self.max[2 * v + 1]) + self.lazy[v];
    }

    /// The total at index `i`.
    pub fn get(&self, i: usize) -> u64 {
        debug_assert!(i < self.n);
        let mut v = 1;
        let (mut lo, mut hi) = (0, self.n - 1);
        let mut acc = 0i64;
        while lo < hi {
            acc += self.lazy[v];
            let mid = lo + (hi - lo) / 2;
            if i <= mid {
                v *= 2;
                hi = mid;
            } else {
                v = 2 * v + 1;
                lo = mid + 1;
            }
        }
        let total = self.max[v] + acc;
        debug_assert!(total >= 0, "timeline total went negative at {i}");
        total as u64
    }

    /// Maximum total over the inclusive range `[lo, hi]`; `None` when the
    /// range is empty.
    pub fn max_in(&self, lo: usize, hi: usize) -> Option<u64> {
        if lo > hi || self.n == 0 {
            return None;
        }
        debug_assert!(hi < self.n);
        let m = self.max_rec(1, 0, self.n - 1, lo, hi, 0);
        debug_assert!(m >= 0);
        Some(m as u64)
    }

    fn max_rec(&self, v: usize, nlo: usize, nhi: usize, lo: usize, hi: usize, acc: i64) -> i64 {
        if hi < nlo || nhi < lo {
            return i64::MIN;
        }
        if lo <= nlo && nhi <= hi {
            return self.max[v] + acc;
        }
        let mid = nlo + (nhi - nlo) / 2;
        let acc = acc + self.lazy[v];
        self.max_rec(2 * v, nlo, mid, lo, hi, acc).max(self.max_rec(
            2 * v + 1,
            mid + 1,
            nhi,
            lo,
            hi,
            acc,
        ))
    }

    /// Maximum over the whole array (0 when empty).
    pub fn max_all(&self) -> u64 {
        if self.n == 0 {
            0
        } else {
            self.max[1].max(0) as u64
        }
    }

    /// The *largest* index in `[lo, hi]` whose total exceeds `threshold`,
    /// or `None` if every total in the range is `<= threshold`.
    pub fn last_above(&self, lo: usize, hi: usize, threshold: u64) -> Option<usize> {
        if lo > hi || self.n == 0 {
            return None;
        }
        debug_assert!(hi < self.n);
        self.last_above_rec(1, 0, self.n - 1, lo, hi, threshold as i64, 0)
    }

    #[allow(clippy::too_many_arguments)]
    fn last_above_rec(
        &self,
        v: usize,
        nlo: usize,
        nhi: usize,
        lo: usize,
        hi: usize,
        threshold: i64,
        acc: i64,
    ) -> Option<usize> {
        if hi < nlo || nhi < lo || self.max[v] + acc <= threshold {
            return None;
        }
        if nlo == nhi {
            return Some(nlo);
        }
        let mid = nlo + (nhi - nlo) / 2;
        let acc = acc + self.lazy[v];
        // Rightmost match wins: try the right child first.
        self.last_above_rec(2 * v + 1, mid + 1, nhi, lo, hi, threshold, acc)
            .or_else(|| self.last_above_rec(2 * v, nlo, mid, lo, hi, threshold, acc))
    }

    /// Materialize all totals (test / debug convenience).
    pub fn to_vec(&self) -> Vec<u64> {
        (0..self.n).map(|i| self.get(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference model: a plain vector under the same operations.
    struct Naive(Vec<i64>);

    impl Naive {
        fn add(&mut self, lo: usize, hi: usize, d: i64) {
            let hi = hi.min(self.0.len().saturating_sub(1));
            for x in &mut self.0[lo..=hi] {
                *x += d;
            }
        }
        fn max_in(&self, lo: usize, hi: usize) -> Option<u64> {
            self.0.get(lo..=hi)?.iter().max().map(|&m| m as u64)
        }
        fn last_above(&self, lo: usize, hi: usize, t: u64) -> Option<usize> {
            (lo..=hi).rev().find(|&j| self.0[j] > t as i64)
        }
    }

    #[test]
    fn empty_and_singleton() {
        let t = RangeAddMax::from_values(&[]);
        assert!(t.is_empty());
        assert_eq!(t.max_all(), 0);
        let mut t = RangeAddMax::from_values(&[7]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(0), 7);
        t.add(0, 0, 5);
        assert_eq!(t.get(0), 12);
        assert_eq!(t.max_in(0, 0), Some(12));
        assert_eq!(t.last_above(0, 0, 11), Some(0));
        assert_eq!(t.last_above(0, 0, 12), None);
    }

    #[test]
    fn empty_range_is_noop() {
        let mut t = RangeAddMax::from_values(&[1, 2, 3]);
        t.add(2, 1, 100);
        assert_eq!(t.to_vec(), vec![1, 2, 3]);
        assert_eq!(t.max_in(2, 1), None);
        assert_eq!(t.last_above(2, 1, 0), None);
    }

    #[test]
    fn reset_matches_fresh_build() {
        let mut t = RangeAddMax::from_values(&[5, 1, 9, 4]);
        t.add(1, 3, 7);
        // Re-arm over a *different length* and verify byte-identity with a
        // fresh tree under follow-up operations.
        let vals: Vec<u64> = (0..193).map(|i| (i as u64 * 37) % 211 + 3).collect();
        t.reset_from_values(&vals);
        let fresh = RangeAddMax::from_values(&vals);
        assert_eq!(t.to_vec(), fresh.to_vec());
        assert_eq!(t.max_all(), fresh.max_all());
        let mut t2 = t.clone();
        let mut f2 = fresh.clone();
        t2.add(10, 180, -3);
        f2.add(10, 180, -3);
        assert_eq!(t2.to_vec(), f2.to_vec());
        assert_eq!(t2.last_above(0, 192, 100), f2.last_above(0, 192, 100));
        // Shrink back down, including to empty.
        t.reset_from_values(&[2, 2]);
        assert_eq!(t.to_vec(), vec![2, 2]);
        t.reset_from_values(&[]);
        assert!(t.is_empty());
        assert_eq!(t.max_all(), 0);
    }

    #[test]
    fn restore_reverts_to_snapshot() {
        let base = RangeAddMax::from_values(&[10, 20, 30, 40, 50]);
        let mut live = base.clone();
        live.add(0, 4, 100);
        live.add(2, 3, -15);
        assert_ne!(live.to_vec(), base.to_vec());
        live.restore_from(&base);
        assert_eq!(live.to_vec(), base.to_vec());
        // Revert + range patch == mutated fresh build (the planner's
        // range-revert/reuse contract).
        live.restore_from(&base);
        live.add(1, 2, 7);
        let expect = RangeAddMax::from_values(&[10, 27, 37, 40, 50]);
        assert_eq!(live.to_vec(), expect.to_vec());
        assert_eq!(live.max_in(0, 4), expect.max_in(0, 4));
    }

    #[test]
    fn matches_naive_under_random_ops() {
        // Deterministic LCG so the test needs no external RNG.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for n in [1usize, 2, 3, 7, 64, 193] {
            let init: Vec<u64> = (0..n).map(|_| rng() % 1000).collect();
            let mut tree = RangeAddMax::from_values(&init);
            let mut naive = Naive(init.iter().map(|&x| x as i64).collect());
            for _ in 0..300 {
                let a = rng() as usize % n;
                let b = rng() as usize % n;
                let (lo, hi) = (a.min(b), a.max(b));
                match rng() % 4 {
                    0 => {
                        // Keep totals non-negative: subtract at most the
                        // current range minimum-ish (use 0..=min of maxes).
                        let d = (rng() % 500) as i64 - 200;
                        let floor = -(naive.0[lo..=hi].iter().copied().min().unwrap());
                        let d = d.max(floor);
                        tree.add(lo, hi, d);
                        naive.add(lo, hi, d);
                    }
                    1 => assert_eq!(tree.max_in(lo, hi), naive.max_in(lo, hi)),
                    2 => {
                        let t = rng() % 1200;
                        assert_eq!(tree.last_above(lo, hi, t), naive.last_above(lo, hi, t));
                    }
                    _ => {
                        let i = rng() as usize % n;
                        assert_eq!(tree.get(i) as i64, naive.0[i]);
                    }
                }
            }
            assert_eq!(
                tree.max_all() as i64,
                naive.0.iter().copied().max().unwrap()
            );
            assert_eq!(
                tree.to_vec(),
                naive.0.iter().map(|&x| x as u64).collect::<Vec<_>>()
            );
        }
    }
}
