//! The metrics registry: named atomic counters, gauges and fixed-bucket
//! histograms behind a cloneable [`Recorder`] handle, plus the bounded
//! event ring of `events.rs`.
//!
//! # Overhead budget
//!
//! A disabled recorder must be free enough to leave permanently wired
//! through the hot paths (the lock-free updater's per-layer loop, the page
//! allocator's per-page mutations). Every handle — [`Counter`], [`Gauge`],
//! [`Histogram`] — is an `Option<Arc<..>>`: when the recorder is disabled
//! the option is `None` and every operation is a single branch on a
//! pattern match, no atomics touched, no time read. `Recorder::now_ns`
//! likewise returns 0 without consulting the clock when disabled. The
//! `lockfree` bench's acceptance criterion (< 2% overhead with a disabled
//! recorder) pins this down.
//!
//! When enabled, counters and gauges are relaxed `AtomicU64`s (they are
//! diagnostics, not synchronization — the trainer's own `AtomicStats` uses
//! the ordering-instrumented `crate::sync` shim instead because *its*
//! counters carry protocol meaning). Name → handle resolution takes a
//! registry lock once at wiring time; the hot path never does.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use super::events::{EventRing, ObsEvent, ObsEventKind, ObsThread, DEFAULT_RING_CAPACITY};
use super::export::{HistogramSnapshot, MetricsSnapshot};

/// A monotonically increasing counter handle. Cheap to clone; no-op when
/// obtained from a disabled recorder.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A gauge handle: an instantaneous value that can move both ways.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Set the gauge to `v`.
    pub fn set(&self, v: u64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Raise the gauge to `v` if `v` is larger (peak tracking).
    pub fn set_max(&self, v: u64) {
        if let Some(g) = &self.0 {
            g.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Add `n` to the gauge.
    pub fn add(&self, n: u64) {
        if let Some(g) = &self.0 {
            g.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Subtract `n`, saturating at zero (a racing reader may briefly see a
    /// stale value; gauges are diagnostics, not invariants).
    pub fn sub(&self, n: u64) {
        if let Some(g) = &self.0 {
            let mut cur = g.load(Ordering::Relaxed);
            loop {
                let next = cur.saturating_sub(n);
                match g.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
pub(crate) struct HistInner {
    /// Inclusive upper bounds of each bucket; one implicit overflow bucket.
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistInner {
    fn new(bounds: &[u64]) -> Self {
        let mut b: Vec<u64> = bounds.to_vec();
        b.sort_unstable();
        b.dedup();
        let buckets = (0..=b.len()).map(|_| AtomicU64::new(0)).collect();
        HistInner {
            bounds: b,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn observe(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            total: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A fixed-bucket histogram handle (bounds in the unit of the observed
/// value, typically nanoseconds).
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistInner>>);

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.observe(v);
        }
    }

    /// Total number of observations (0 when disabled).
    pub fn total(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |h| h.count.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistInner>>>,
    ring: Mutex<EventRing>,
}

/// The observability handle threaded through the allocator, the lock-free
/// trainer, the engine and the bench binaries. Clones share one registry.
///
/// `Recorder::default()` / [`Recorder::disabled`] is the permanent no-op:
/// every metric operation through it is a single branch.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl Recorder {
    /// A recorder that records nothing at (almost) no cost.
    pub fn disabled() -> Self {
        Recorder::default()
    }

    /// An active recorder with the default event-ring capacity.
    pub fn enabled() -> Self {
        Self::with_ring_capacity(DEFAULT_RING_CAPACITY)
    }

    /// An active recorder with an explicit event-ring capacity.
    pub fn with_ring_capacity(capacity: usize) -> Self {
        Recorder {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                ring: Mutex::new(EventRing::new(capacity)),
            })),
        }
    }

    /// Whether this recorder records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Nanoseconds since the recorder epoch; 0 when disabled (the clock is
    /// never consulted on the disabled path).
    pub fn now_ns(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.epoch.elapsed().as_nanos() as u64)
    }

    /// Resolve (creating on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|i| {
            Arc::clone(
                i.counters
                    .lock()
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0))),
            )
        }))
    }

    /// Resolve (creating on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|i| {
            Arc::clone(
                i.gauges
                    .lock()
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0))),
            )
        }))
    }

    /// Resolve (creating on first use) the histogram named `name` with the
    /// given bucket upper bounds. Bounds are fixed at first registration;
    /// later callers share the existing buckets.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        Histogram(self.inner.as_ref().map(|i| {
            Arc::clone(
                i.histograms
                    .lock()
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(HistInner::new(bounds))),
            )
        }))
    }

    /// Append a raw event to the ring.
    pub fn record(&self, ev: ObsEvent) {
        if let Some(i) = &self.inner {
            i.ring.lock().push(ev);
        }
    }

    /// Record a completed span on `thread` that began at `start_ns`
    /// (a value previously obtained from [`Recorder::now_ns`]).
    pub fn span(&self, thread: ObsThread, name: &'static str, layer: i64, start_ns: u64) {
        if self.inner.is_some() {
            let now = self.now_ns();
            self.record(ObsEvent {
                ts_ns: start_ns,
                dur_ns: now.saturating_sub(start_ns),
                thread,
                kind: ObsEventKind::Span { name, layer },
            });
        }
    }

    /// Record an instant marker on `thread`.
    pub fn instant(&self, thread: ObsThread, name: &'static str, layer: i64) {
        if self.inner.is_some() {
            self.record(ObsEvent {
                ts_ns: self.now_ns(),
                dur_ns: 0,
                thread,
                kind: ObsEventKind::Instant { name, layer },
            });
        }
    }

    /// Record a sampled counter value on `thread` (becomes a Perfetto `C`
    /// track in the merged timeline).
    pub fn counter_sample(&self, thread: ObsThread, name: &'static str, value: u64) {
        if self.inner.is_some() {
            self.record(ObsEvent {
                ts_ns: self.now_ns(),
                dur_ns: 0,
                thread,
                kind: ObsEventKind::Counter { name, value },
            });
        }
    }

    /// Copy of the event ring, oldest first.
    pub fn events(&self) -> Vec<ObsEvent> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.ring.lock().snapshot())
    }

    /// Number of events the bounded ring has had to discard.
    pub fn events_dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.ring.lock().dropped())
    }

    /// Point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        if let Some(i) = &self.inner {
            for (name, c) in i.counters.lock().iter() {
                snap.counters
                    .insert(name.clone(), c.load(Ordering::Relaxed));
            }
            for (name, g) in i.gauges.lock().iter() {
                snap.gauges.insert(name.clone(), g.load(Ordering::Relaxed));
            }
            for (name, h) in i.histograms.lock().iter() {
                snap.histograms.insert(name.clone(), h.snapshot());
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        assert_eq!(rec.now_ns(), 0);
        let c = rec.counter("x");
        c.add(5);
        assert_eq!(c.get(), 0);
        let g = rec.gauge("y");
        g.set(7);
        g.add(1);
        g.sub(100);
        assert_eq!(g.get(), 0);
        let h = rec.histogram("z", &[1, 2]);
        h.observe(3);
        assert_eq!(h.total(), 0);
        rec.instant(ObsThread::Engine, "e", -1);
        assert!(rec.events().is_empty());
        let snap = rec.snapshot();
        assert!(snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty());
    }

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let rec = Recorder::enabled();
        let c = rec.counter("alloc.pages_taken");
        c.inc();
        c.add(2);
        // Same name resolves to the same cell.
        assert_eq!(rec.counter("alloc.pages_taken").get(), 3);

        let g = rec.gauge("depth");
        g.set(10);
        g.sub(3);
        g.add(1);
        g.sub(100); // saturates
        assert_eq!(g.get(), 0);
        g.set_max(5);
        g.set_max(2);
        assert_eq!(g.get(), 5);

        let h = rec.histogram("lat", &[10, 100, 1000]);
        for v in [5, 10, 11, 5000] {
            h.observe(v);
        }
        let snap = rec.snapshot();
        let hs = &snap.histograms["lat"];
        assert_eq!(hs.counts, vec![2, 1, 0, 1]); // ≤10, ≤100, ≤1000, overflow
        assert_eq!(hs.total, 4);
        assert_eq!(hs.sum, 5026);
        assert_eq!(snap.counters["alloc.pages_taken"], 3);
    }

    #[test]
    fn span_durations_are_non_negative() {
        let rec = Recorder::enabled();
        let t0 = rec.now_ns();
        rec.span(ObsThread::Updating, "work", 4, t0);
        // A start in the "future" (e.g. clock skew across handles) must not
        // underflow.
        rec.span(ObsThread::Updating, "skew", -1, u64::MAX);
        for ev in rec.events() {
            assert!(ev.dur_ns < u64::MAX / 2);
        }
        assert_eq!(rec.events().len(), 2);
    }
}
