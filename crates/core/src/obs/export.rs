//! Exports: the serializable [`MetricsSnapshot`] and the *merged* Perfetto
//! timeline.
//!
//! The merged timeline is the PR's visualization centerpiece: process 1
//! holds the simulated hardware tracks (one `tid` per sim resource, the
//! existing `chrome_trace` content, plus per-memory-domain resident-bytes
//! counter tracks replayed from the schedule's `MemEffect`s), and process 2
//! holds the *real* runtime tracks — the lock-free updater's OS threads,
//! the training loop, the engine — rebuilt from the recorder's event ring,
//! plus sampled counter tracks such as `trainer.pending_grads`. Loading the
//! one file in Perfetto shows the paper's Figure 5 overlap story on the
//! simulated side next to what the reproduction's runtime actually did.
//!
//! The vendored `serde` derive is a no-op marker, so JSON is built and
//! parsed explicitly over `serde_json::Value`; `BTreeMap` keys make every
//! serialization deterministic (the basis of the snapshot determinism
//! test).

use std::collections::BTreeMap;

use angel_sim::{ExecutionReport, Simulation};

use super::events::{ObsEvent, ObsEventKind, ObsThread};

/// Perfetto `pid` of the simulated-hardware process track.
pub const SIM_PID: u64 = 1;
/// Perfetto `pid` of the real runtime-threads process track.
pub const RUNTIME_PID: u64 = 2;

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct HistogramSnapshot {
    /// Inclusive bucket upper bounds; `counts` has one extra overflow slot.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Total observations.
    pub total: u64,
    /// Sum of observed values.
    pub sum: u64,
}

/// Point-in-time copy of every registered metric, JSON round-trippable.
///
/// `BTreeMap`s keep key order — and therefore the serialized bytes —
/// deterministic for identical runs.
#[derive(Debug, Clone, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Instantaneous gauges by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

fn u64_list(vals: &[u64]) -> serde_json::Value {
    serde_json::Value::Array(vals.iter().map(|&v| serde_json::Value::from(v)).collect())
}

fn parse_u64(v: &serde_json::Value, what: &str) -> Result<u64, String> {
    v.as_u64().ok_or_else(|| format!("{what}: expected u64"))
}

fn parse_u64_list(v: &serde_json::Value, what: &str) -> Result<Vec<u64>, String> {
    v.as_array()
        .ok_or_else(|| format!("{what}: expected array"))?
        .iter()
        .map(|x| parse_u64(x, what))
        .collect()
}

fn parse_u64_map(v: &serde_json::Value, what: &str) -> Result<BTreeMap<String, u64>, String> {
    match v {
        serde_json::Value::Object(m) => m
            .iter()
            .map(|(k, x)| Ok((k.clone(), parse_u64(x, what)?)))
            .collect(),
        serde_json::Value::Null => Ok(BTreeMap::new()),
        _ => Err(format!("{what}: expected object")),
    }
}

impl MetricsSnapshot {
    /// Build the JSON document (the vendored serde derive is inert, so the
    /// mapping is explicit).
    pub fn to_json(&self) -> serde_json::Value {
        let mut counters = serde_json::Map::new();
        for (k, v) in &self.counters {
            counters.insert(k.clone(), serde_json::Value::from(*v));
        }
        let mut gauges = serde_json::Map::new();
        for (k, v) in &self.gauges {
            gauges.insert(k.clone(), serde_json::Value::from(*v));
        }
        let mut histograms = serde_json::Map::new();
        for (k, h) in &self.histograms {
            histograms.insert(
                k.clone(),
                serde_json::json!({
                    "bounds": u64_list(&h.bounds),
                    "counts": u64_list(&h.counts),
                    "total": h.total,
                    "sum": h.sum,
                }),
            );
        }
        serde_json::json!({
            "counters": serde_json::Value::Object(counters),
            "gauges": serde_json::Value::Object(gauges),
            "histograms": serde_json::Value::Object(histograms),
        })
    }

    /// Pretty-printed JSON document.
    pub fn to_json_string(&self) -> String {
        // `to_json` builds the value from integers and strings only —
        // serialization of such a tree is infallible.
        #[allow(clippy::disallowed_methods)]
        serde_json::to_string_pretty(&self.to_json()).expect("snapshot serializes")
    }

    /// Parse a snapshot back from its JSON document.
    pub fn from_json(v: &serde_json::Value) -> Result<Self, String> {
        let counters = parse_u64_map(&v["counters"], "counters")?;
        let gauges = parse_u64_map(&v["gauges"], "gauges")?;
        let mut histograms = BTreeMap::new();
        match &v["histograms"] {
            serde_json::Value::Object(m) => {
                for (k, h) in m.iter() {
                    let bounds = parse_u64_list(&h["bounds"], "histogram bounds")?;
                    let counts = parse_u64_list(&h["counts"], "histogram counts")?;
                    if counts.len() != bounds.len() + 1 {
                        return Err(format!(
                            "histogram {k}: {} counts for {} bounds",
                            counts.len(),
                            bounds.len()
                        ));
                    }
                    histograms.insert(
                        k.clone(),
                        HistogramSnapshot {
                            bounds,
                            counts,
                            total: parse_u64(&h["total"], "histogram total")?,
                            sum: parse_u64(&h["sum"], "histogram sum")?,
                        },
                    );
                }
            }
            serde_json::Value::Null => {}
            _ => return Err("histograms: expected object".to_string()),
        }
        Ok(MetricsSnapshot {
            counters,
            gauges,
            histograms,
        })
    }

    /// Parse a snapshot from serialized JSON text.
    pub fn from_json_str(s: &str) -> Result<Self, String> {
        let v = serde_json::from_str(s).map_err(|e| e.to_string())?;
        Self::from_json(&v)
    }
}

/// Trace events for the runtime half of the merged timeline: thread-name
/// metadata for each [`ObsThread`] present in `events`, then one trace
/// event per recorded [`ObsEvent`] (spans → `X`, instants → `i`,
/// counter samples → `C`), all under `pid`.
pub fn runtime_trace_events(events: &[ObsEvent], pid: u64) -> Vec<serde_json::Value> {
    let mut out = Vec::new();
    for thread in ObsThread::all() {
        if events.iter().any(|e| e.thread == thread) {
            out.push(serde_json::json!({
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": thread.tid(),
                "args": {"name": thread.name()},
            }));
        }
    }
    for ev in events {
        let ts_us = ev.ts_ns as f64 / 1e3;
        match ev.kind {
            ObsEventKind::Span { name, layer } => {
                let mut e = serde_json::json!({
                    "name": name,
                    "ph": "X",
                    "pid": pid,
                    "tid": ev.thread.tid(),
                    "ts": ts_us,
                    "dur": ev.dur_ns as f64 / 1e3,
                });
                if layer >= 0 {
                    if let serde_json::Value::Object(m) = &mut e {
                        m.insert("args".to_string(), serde_json::json!({ "layer": layer }));
                    }
                }
                out.push(e);
            }
            ObsEventKind::Instant { name, layer } => {
                let mut e = serde_json::json!({
                    "name": name,
                    "ph": "i",
                    "s": "t",
                    "pid": pid,
                    "tid": ev.thread.tid(),
                    "ts": ts_us,
                });
                if layer >= 0 {
                    if let serde_json::Value::Object(m) = &mut e {
                        m.insert("args".to_string(), serde_json::json!({ "layer": layer }));
                    }
                }
                out.push(e);
            }
            ObsEventKind::Counter { name, value } => {
                out.push(serde_json::json!({
                    "name": name,
                    "ph": "C",
                    "pid": pid,
                    "tid": ev.thread.tid(),
                    "ts": ts_us,
                    "args": {"value": value},
                }));
            }
        }
    }
    out
}

/// Serialize the merged Perfetto timeline: simulated hardware under
/// [`SIM_PID`] (resource tracks + per-memory-domain resident-bytes counter
/// tracks), real runtime threads under [`RUNTIME_PID`].
pub fn merged_perfetto(sim: &Simulation, report: &ExecutionReport, events: &[ObsEvent]) -> String {
    let mut all = Vec::new();
    all.push(serde_json::json!({
        "name": "process_name",
        "ph": "M",
        "pid": SIM_PID,
        "args": {"name": "simulated-hardware"},
    }));
    all.extend(angel_sim::trace::trace_events(sim, report, SIM_PID));
    all.extend(angel_sim::trace::counter_events(sim, report, SIM_PID));
    all.push(serde_json::json!({
        "name": "process_name",
        "ph": "M",
        "pid": RUNTIME_PID,
        "args": {"name": "runtime-threads"},
    }));
    all.extend(runtime_trace_events(events, RUNTIME_PID));
    // Trace events are integers and strings only; serialization of such a
    // tree is infallible.
    #[allow(clippy::disallowed_methods)]
    serde_json::to_string_pretty(&serde_json::json!({
        "traceEvents": all,
        "displayTimeUnit": "ms",
    }))
    .expect("merged trace serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_json_round_trips() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("a".into(), 1);
        snap.counters.insert("b".into(), u32::MAX as u64 + 7);
        snap.gauges.insert("g".into(), 42);
        snap.histograms.insert(
            "h".into(),
            HistogramSnapshot {
                bounds: vec![10, 100],
                counts: vec![1, 2, 3],
                total: 6,
                sum: 777,
            },
        );
        let text = snap.to_json_string();
        let back = MetricsSnapshot::from_json_str(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_rejects_malformed_histograms() {
        let bad = r#"{"counters": {}, "gauges": {}, "histograms": {"h": {"bounds": [1], "counts": [1], "total": 1, "sum": 1}}}"#;
        assert!(MetricsSnapshot::from_json_str(bad).is_err());
    }

    #[test]
    fn runtime_events_emit_metadata_only_for_present_threads() {
        let events = vec![
            ObsEvent {
                ts_ns: 1_000,
                dur_ns: 2_000,
                thread: ObsThread::Updating,
                kind: ObsEventKind::Span {
                    name: "update_layer",
                    layer: 3,
                },
            },
            ObsEvent {
                ts_ns: 4_000,
                dur_ns: 0,
                thread: ObsThread::Updating,
                kind: ObsEventKind::Counter {
                    name: "trainer.pending_grads",
                    value: 2,
                },
            },
        ];
        let out = runtime_trace_events(&events, RUNTIME_PID);
        // 1 thread_name + 1 span + 1 counter.
        assert_eq!(out.len(), 3);
        assert_eq!(
            out[0]["args"]["name"].as_str().unwrap(),
            "lockfree-updating"
        );
        assert_eq!(out[1]["ph"].as_str().unwrap(), "X");
        assert_eq!(out[1]["args"]["layer"].as_i64().unwrap(), 3);
        assert_eq!(out[2]["ph"].as_str().unwrap(), "C");
        assert_eq!(out[2]["args"]["value"].as_u64().unwrap(), 2);
        // Same pid, same tid for both payload events.
        assert_eq!(out[1]["tid"], out[0]["tid"]);
    }
}
