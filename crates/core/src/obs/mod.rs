//! Unified observability: metrics registry, runtime event ring, and the
//! merged Perfetto timeline export.
//!
//! Angel-PTM's evaluation is about *seeing* resource overlap (Section 4.2)
//! and hierarchical-memory peaks (Table 4). The simulator has had a
//! chrome-trace export since PR 1; this module gives the *real* runtime —
//! [`PageAllocator`](crate::PageAllocator), the
//! [`LockFreeTrainer`](crate::LockFreeTrainer)'s OS threads, the
//! [`Engine`](crate::Engine) iteration loop — the same visibility, and
//! merges both halves into one Perfetto file.
//!
//! Three pieces:
//!
//! * [`registry`] — [`Recorder`], a cloneable handle to named atomic
//!   [`Counter`]s, [`Gauge`]s and fixed-bucket [`Histogram`]s. Disabled
//!   recorders (the default everywhere) cost one branch per operation.
//! * [`events`] — [`ObsEvent`], wall-clock-timestamped spans / instants /
//!   counter samples in a bounded drop-oldest ring.
//! * [`export`] — [`MetricsSnapshot`] (deterministic JSON round-trip) and
//!   [`merged_perfetto`] (simulated tracks `pid 1`, runtime tracks
//!   `pid 2`).

pub mod events;
pub mod export;
pub mod registry;

pub use events::{ObsEvent, ObsEventKind, ObsThread, DEFAULT_RING_CAPACITY};
pub use export::{
    merged_perfetto, runtime_trace_events, HistogramSnapshot, MetricsSnapshot, RUNTIME_PID, SIM_PID,
};
pub use registry::{Counter, Gauge, Histogram, Recorder};
