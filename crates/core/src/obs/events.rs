//! Structured, timestamped runtime events.
//!
//! The registry's counters and gauges answer "how much"; the event ring
//! answers "when". Every event carries a wall-clock timestamp relative to
//! the [`Recorder`](crate::obs::Recorder) epoch, the *real OS thread* that
//! produced it (the lock-free updater's buffering/updating threads, the
//! training loop, the engine), and a small payload. Events are the raw
//! material for the merged Perfetto timeline (`export.rs`), which places
//! these runtime tracks next to the simulated hardware tracks so the
//! paper's Section 4.2 overlap story is visible across both halves of the
//! reproduction.
//!
//! The ring is bounded: under sustained load it drops the *oldest* events
//! and counts the drops, so instrumentation can never grow memory without
//! bound (the same reasoning as the paper's bounded grad buffers).

use std::collections::VecDeque;

/// Default event-ring capacity; enough for several iterations of a large
/// model at one event per layer-op without measurable memory cost.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// The logical runtime track an event belongs to. Each variant becomes one
/// named thread row (`tid`) in the merged Perfetto export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ObsThread {
    /// The caller's training loop (pushes grads, runs iterations).
    TrainLoop,
    /// The lock-free updater's buffering thread (Algorithm 2, consumer).
    Buffering,
    /// The lock-free updater's updating thread (Algorithm 2, optimizer).
    Updating,
    /// The engine's planning/iteration driver.
    Engine,
    /// The simulated executor (reports lowered-schedule milestones).
    Executor,
    /// The page allocator (compaction passes, reuse-pool trims).
    Allocator,
    /// The multi-job training service's control plane (admissions,
    /// preemptions, splice-driven resizes — `angel-service`).
    Service,
}

impl ObsThread {
    /// Stable thread id used as the Perfetto `tid` within the runtime
    /// process track. Distinct from simulated resource ids, which live in
    /// a different `pid`.
    pub fn tid(self) -> u64 {
        match self {
            ObsThread::TrainLoop => 0,
            ObsThread::Buffering => 1,
            ObsThread::Updating => 2,
            ObsThread::Engine => 3,
            ObsThread::Executor => 4,
            ObsThread::Allocator => 5,
            ObsThread::Service => 6,
        }
    }

    /// Human-readable track name shown in the Perfetto UI.
    pub fn name(self) -> &'static str {
        match self {
            ObsThread::TrainLoop => "train-loop",
            ObsThread::Buffering => "lockfree-buffering",
            ObsThread::Updating => "lockfree-updating",
            ObsThread::Engine => "engine",
            ObsThread::Executor => "sim-executor",
            ObsThread::Allocator => "allocator",
            ObsThread::Service => "service",
        }
    }

    /// All runtime tracks, in `tid` order (used to emit thread-name
    /// metadata deterministically).
    pub fn all() -> [ObsThread; 7] {
        [
            ObsThread::TrainLoop,
            ObsThread::Buffering,
            ObsThread::Updating,
            ObsThread::Engine,
            ObsThread::Executor,
            ObsThread::Allocator,
            ObsThread::Service,
        ]
    }
}

/// Event payload. `&'static str` names keep recording allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsEventKind {
    /// A duration on a runtime track (Perfetto `X` event). `layer < 0`
    /// means "not layer-scoped".
    Span { name: &'static str, layer: i64 },
    /// A point-in-time marker (Perfetto `i` instant event).
    Instant { name: &'static str, layer: i64 },
    /// A sampled counter value (Perfetto `C` event → a plotted track,
    /// e.g. `trainer.pending_grads`).
    Counter { name: &'static str, value: u64 },
}

/// One recorded runtime event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsEvent {
    /// Nanoseconds since the recorder epoch.
    pub ts_ns: u64,
    /// Span duration in nanoseconds (0 for instants and counter samples).
    pub dur_ns: u64,
    /// Which runtime track produced the event.
    pub thread: ObsThread,
    /// Payload.
    pub kind: ObsEventKind,
}

/// Bounded drop-oldest ring of events.
#[derive(Debug)]
pub(crate) struct EventRing {
    capacity: usize,
    events: VecDeque<ObsEvent>,
    dropped: u64,
}

impl EventRing {
    pub(crate) fn new(capacity: usize) -> Self {
        EventRing {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    pub(crate) fn push(&mut self, ev: ObsEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    pub(crate) fn snapshot(&self) -> Vec<ObsEvent> {
        self.events.iter().copied().collect()
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64) -> ObsEvent {
        ObsEvent {
            ts_ns: ts,
            dur_ns: 0,
            thread: ObsThread::TrainLoop,
            kind: ObsEventKind::Instant {
                name: "t",
                layer: -1,
            },
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut ring = EventRing::new(3);
        for t in 0..5 {
            ring.push(ev(t));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].ts_ns, 2);
        assert_eq!(snap[2].ts_ns, 4);
        assert_eq!(ring.dropped(), 2);
    }

    #[test]
    fn thread_tids_are_unique_and_ordered() {
        let all = ObsThread::all();
        for (i, t) in all.iter().enumerate() {
            assert_eq!(t.tid(), i as u64);
            assert!(!t.name().is_empty());
        }
    }
}
