//! The page allocator: pre-allocated per-device page pools and page-level
//! tensor placement.
//!
//! From Section 5 of the paper: "To reduce the overhead of requesting memory
//! space and take advantage of the iterative nature of training, we
//! pre-allocate space from the hierarchical memory of the system, including
//! GPU memory, CPU pinned memory, and SSD memory. To enable fine-grained
//! memory operations, we divide the pre-allocated memory into pages of fixed
//! size, where each page can be allocated, released and moved
//! independently."
//!
//! # Placement rules (Section 4.1)
//!
//! * Tensors **smaller than one page** "occupy an individual page for
//!   simplicity, considering that they only account for a very small
//!   fraction of the overall memory usage".
//! * Larger tensors are laid out bump-style across pages; the partially
//!   filled tail page of one tensor becomes the *open page* where the next
//!   large tensor starts, so every page hosts **at most two tensors** ("by
//!   carefully arranging these tensors, we can ensure that each page is
//!   associated with at most two tensors").
//!
//! Because any free page can serve any allocation (tensors are lists of
//! pages, not contiguous ranges), **external fragmentation is zero by
//! construction**; the only waste is bounded internal fragmentation in
//! partial pages, which [`PoolStats`] reports. This is precisely the
//! advantage over the per-tensor and chunk-based baselines measured by the
//! `motivation_fragmentation` experiment.

use crate::error::{Error, Result};
use crate::obs::{Counter, Gauge, ObsThread, Recorder};
use crate::page::{Page, PageId, PAGE_SIZE_DEFAULT};
use crate::tensor::{DType, PageRange, Tensor, TensorId};
use angel_hw::DeviceId;
use std::collections::{BTreeMap, HashMap};

/// Usage statistics for one device's page pool.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct PoolStats {
    pub capacity_pages: usize,
    pub used_pages: usize,
    /// Bytes actually occupied by tensor data within used pages.
    pub tenant_bytes: u64,
    pub peak_used_pages: usize,
    pub page_size: u64,
    /// Free page frames still holding materialized (reusable) memory.
    pub cached_pages: usize,
    /// Free page frames whose backing memory was trimmed; taking one pays
    /// a fresh materialization.
    pub reclaimed_pages: usize,
}

impl PoolStats {
    /// Unused page frames. Saturating: a stats snapshot taken mid-mutation
    /// (or hand-built over-committed) must report 0, not panic — the
    /// `used_pages ≤ capacity_pages` invariant is asserted at the pool's
    /// mutation sites, not here.
    pub fn free_pages(&self) -> usize {
        self.capacity_pages.saturating_sub(self.used_pages)
    }

    /// Reserved-but-unused fraction of the in-use pages: the page
    /// abstraction's only waste.
    pub fn internal_frag(&self) -> f64 {
        let reserved = self.used_pages as u64 * self.page_size;
        if reserved == 0 {
            0.0
        } else {
            1.0 - self.tenant_bytes as f64 / reserved as f64
        }
    }

    pub fn used_bytes(&self) -> u64 {
        self.used_pages as u64 * self.page_size
    }
}

#[derive(Debug, Clone)]
struct Pool {
    capacity_pages: usize,
    used_pages: usize,
    peak_used_pages: usize,
    tenant_bytes: u64,
    /// The reuse pool: fully-free page objects that kept their backing
    /// memory, in LRU order (oldest first, hottest at the back). Taking
    /// one skips materialization entirely — pages are one uniform size
    /// class, so any cached frame serves any request.
    free_list: Vec<PageId>,
    /// Free frames whose backing memory was trimmed under the reuse
    /// limit. Still counted as capacity, but taking one re-materializes.
    reclaimed: Vec<PageId>,
    /// The page with one tenant and remaining space where the next large
    /// tensor may start.
    open_page: Option<PageId>,
}

impl Pool {
    fn new(capacity_pages: usize) -> Self {
        Self {
            capacity_pages,
            used_pages: 0,
            peak_used_pages: 0,
            tenant_bytes: 0,
            free_list: Vec::new(),
            reclaimed: Vec::new(),
            open_page: None,
        }
    }

    fn free_pages(&self) -> usize {
        self.capacity_pages.saturating_sub(self.used_pages)
    }
}

/// What one [`PageAllocator::compact_device`] pass accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize)]
pub struct CompactionReport {
    /// Pages whose stranded bump-cursor gap was squeezed out in place.
    pub pages_compacted: usize,
    /// Tenant ranges relocated into another partial page.
    pub tenant_moves: usize,
    /// Page frames freed back to the pool by consolidation.
    pub pages_reclaimed: usize,
    /// Tenant bytes physically copied (backed pools) or re-addressed.
    pub bytes_copied: u64,
    /// `alloc.*.frag_ppm` before and after the pass.
    pub frag_ppm_before: u64,
    pub frag_ppm_after: u64,
}

/// Per-device gauges published on every pool mutation.
#[derive(Debug, Clone)]
struct PoolGauges {
    used_pages: Gauge,
    peak_pages: Gauge,
    used_bytes: Gauge,
    frag_ppm: Gauge,
    cached_pages: Gauge,
}

impl PoolGauges {
    fn new(rec: &Recorder, device: DeviceId) -> Self {
        PoolGauges {
            used_pages: rec.gauge(&format!("alloc.{device}.used_pages")),
            peak_pages: rec.gauge(&format!("alloc.{device}.peak_pages")),
            used_bytes: rec.gauge(&format!("alloc.{device}.used_bytes")),
            frag_ppm: rec.gauge(&format!("alloc.{device}.frag_ppm")),
            cached_pages: rec.gauge(&format!("alloc.{device}.cached_pages")),
        }
    }
}

/// Allocator-wide observability handles; present only when a recorder is
/// attached, so the unobserved allocator pays nothing.
#[derive(Debug)]
struct AllocObs {
    recorder: Recorder,
    pages_taken: Counter,
    pages_returned: Counter,
    page_moves: Counter,
    tensors_allocated: Counter,
    tensors_released: Counter,
    failures: Counter,
    pages_reused: Counter,
    pages_materialized: Counter,
    pages_trimmed: Counter,
    compactions: Counter,
    pools: BTreeMap<DeviceId, PoolGauges>,
}

impl AllocObs {
    fn new(recorder: Recorder) -> Self {
        AllocObs {
            pages_taken: recorder.counter("alloc.pages_taken"),
            pages_returned: recorder.counter("alloc.pages_returned"),
            page_moves: recorder.counter("alloc.page_moves"),
            tensors_allocated: recorder.counter("alloc.tensors_allocated"),
            tensors_released: recorder.counter("alloc.tensors_released"),
            failures: recorder.counter("alloc.failures"),
            pages_reused: recorder.counter("alloc.pages_reused"),
            pages_materialized: recorder.counter("alloc.pages_materialized"),
            pages_trimmed: recorder.counter("alloc.pages_trimmed"),
            compactions: recorder.counter("alloc.compactions"),
            pools: BTreeMap::new(),
            recorder,
        }
    }
}

/// The Allocator component of Angel-PTM (Figure 5): owns every page, every
/// tensor's placement, and the per-device pools.
#[derive(Debug)]
pub struct PageAllocator {
    page_size: u64,
    /// Whether new pages carry real backing memory.
    backed: bool,
    pages: Vec<Page>,
    pools: BTreeMap<DeviceId, Pool>,
    tensors: HashMap<TensorId, Tensor>,
    next_tensor_id: usize,
    /// Per-device cap on the reuse pool (materialized free pages).
    /// `None` keeps every released page warm; `Some(0)` disables reuse —
    /// every take pays a fresh materialization (the BENCH_alloc "no-pool"
    /// baseline).
    reuse_limit: Option<usize>,
    /// When `Some(t)`, [`PageAllocator::maybe_compact`] runs a compaction
    /// pass once `alloc.{device}.frag_ppm` exceeds `t`.
    compaction_threshold_ppm: Option<u64>,
    obs: Option<AllocObs>,
}

impl PageAllocator {
    /// An allocator with the paper's default 4 MiB pages, virtual backing.
    pub fn new() -> Self {
        Self::with_page_size(PAGE_SIZE_DEFAULT, false)
    }

    /// Custom page size; `backed` pages own real zeroed memory.
    pub fn with_page_size(page_size: u64, backed: bool) -> Self {
        assert!(page_size > 0);
        Self {
            page_size,
            backed,
            pages: Vec::new(),
            pools: BTreeMap::new(),
            tensors: HashMap::new(),
            next_tensor_id: 0,
            reuse_limit: None,
            compaction_threshold_ppm: None,
            obs: None,
        }
    }

    /// Cap the per-device reuse pool at `limit` cached pages, trimming any
    /// excess immediately. `Some(0)` disables pooled reuse entirely.
    pub fn set_reuse_limit(&mut self, limit: Option<usize>) {
        self.reuse_limit = limit;
        if let Some(keep) = limit {
            let devices: Vec<DeviceId> = self.pools.keys().copied().collect();
            for device in devices {
                self.trim_reuse_pool(device, keep);
            }
        }
    }

    /// Builder-style [`PageAllocator::set_reuse_limit`].
    pub fn with_reuse_limit(mut self, limit: Option<usize>) -> Self {
        self.set_reuse_limit(limit);
        self
    }

    /// Arm [`PageAllocator::maybe_compact`]: compaction fires when a
    /// device's internal fragmentation exceeds `threshold_ppm` parts per
    /// million. `None` (the default) never compacts automatically.
    pub fn set_compaction_threshold_ppm(&mut self, threshold_ppm: Option<u64>) {
        self.compaction_threshold_ppm = threshold_ppm;
    }

    /// Attach an observability recorder: per-device used/peak/frag gauges
    /// and page/tensor operation counters. A disabled recorder detaches.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        if !recorder.is_enabled() {
            self.obs = None;
            return;
        }
        let mut obs = AllocObs::new(recorder);
        for device in self.pools.keys() {
            obs.pools
                .insert(*device, PoolGauges::new(&obs.recorder, *device));
        }
        self.obs = Some(obs);
        let devices: Vec<DeviceId> = self.pools.keys().copied().collect();
        for device in devices {
            self.publish_stats(device);
        }
    }

    /// Push the current [`PoolStats`] of `device` into its gauges.
    fn publish_stats(&self, device: DeviceId) {
        if let Some(obs) = &self.obs {
            if let Some(g) = obs.pools.get(&device) {
                let s = self.stats(device);
                g.used_pages.set(s.used_pages as u64);
                g.peak_pages.set(s.peak_used_pages as u64);
                g.used_bytes.set(s.used_bytes());
                g.frag_ppm.set((s.internal_frag() * 1e6) as u64);
                g.cached_pages.set(s.cached_pages as u64);
            }
        }
    }

    fn note_failure(&self) {
        if let Some(obs) = &self.obs {
            obs.failures.inc();
        }
    }

    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Pre-allocate a pool of `capacity_bytes / page_size` pages on `device`.
    ///
    /// Re-registering a device whose pool still holds live tensors is
    /// rejected with [`Error::PoolInUse`] — silently replacing it would
    /// zero `used_pages`/`tenant_bytes` under the residents and corrupt
    /// every stat afterwards. Resizing an *empty* pool stays legal and
    /// keeps its cached pages (trimming any that no longer fit).
    pub fn add_pool(&mut self, device: DeviceId, capacity_bytes: u64) -> Result<()> {
        let pages = (capacity_bytes / self.page_size) as usize;
        if let Some(existing) = self.pools.get_mut(&device) {
            if existing.used_pages > 0 {
                let used_pages = existing.used_pages;
                self.note_failure();
                return Err(Error::PoolInUse { device, used_pages });
            }
            existing.capacity_pages = pages;
            let cached = existing.free_list.len() + existing.reclaimed.len();
            if cached > pages {
                self.trim_cached_frames(device, cached - pages);
            }
        } else {
            self.pools.insert(device, Pool::new(pages));
        }
        if let Some(obs) = &mut self.obs {
            let gauges = PoolGauges::new(&obs.recorder, device);
            obs.pools.insert(device, gauges);
        }
        self.publish_stats(device);
        Ok(())
    }

    pub fn has_pool(&self, device: DeviceId) -> bool {
        self.pools.contains_key(&device)
    }

    /// Mutable pool lookup for a registered tier. Every public entry point
    /// resolves placements against pools created by `add_pool` during
    /// materialization, so a miss is memory-plan corruption, not a
    /// recoverable condition.
    fn pool_mut(&mut self, device: DeviceId) -> &mut Pool {
        // Invariant: callers only reach here with a device `add_pool`
        // registered (checked by `has_pool` at the planning boundary).
        #[allow(clippy::disallowed_methods)]
        self.pools
            .get_mut(&device)
            .unwrap_or_else(|| panic!("no pool registered for {device}"))
    }

    /// Tensor lookup for a tenant recorded in a live page. Page tenancy and
    /// the tensor table are updated together, so a dangling tenant id means
    /// the allocator's own state is corrupt.
    fn tenant_mut(&mut self, id: TensorId) -> &mut Tensor {
        // Invariant: every page tenant has a row in `tensors` (the two maps
        // change in the same critical sections).
        #[allow(clippy::disallowed_methods)]
        self.tensors
            .get_mut(&id)
            .expect("page tenant has a tensor record")
    }

    pub fn stats(&self, device: DeviceId) -> PoolStats {
        let pool = &self.pools[&device];
        PoolStats {
            capacity_pages: pool.capacity_pages,
            used_pages: pool.used_pages,
            tenant_bytes: pool.tenant_bytes,
            peak_used_pages: pool.peak_used_pages,
            page_size: self.page_size,
            cached_pages: pool.free_list.len(),
            reclaimed_pages: pool.reclaimed.len(),
        }
    }

    pub fn page(&self, id: PageId) -> &Page {
        &self.pages[id.0]
    }

    pub fn tensor(&self, id: TensorId) -> Result<&Tensor> {
        self.tensors.get(&id).ok_or(Error::UnknownTensor(id.0))
    }

    /// Number of pages a tensor of `bytes` occupies exclusively (ignoring
    /// the shared open-page head).
    pub fn pages_for(&self, bytes: u64) -> usize {
        bytes.div_ceil(self.page_size) as usize
    }

    // ----- page-frame management ----------------------------------------

    /// Take a fresh (empty) page on `device` from the free list or by
    /// materializing a new one within pool capacity.
    fn take_page(&mut self, device: DeviceId) -> Result<PageId> {
        let backed = self.backed;
        let page_size = self.page_size;
        let next_index = self.pages.len();
        {
            let pool = self
                .pools
                .get(&device)
                .unwrap_or_else(|| panic!("no pool registered for {device}"));
            if pool.used_pages >= pool.capacity_pages {
                self.note_failure();
                return Err(Error::OutOfPages {
                    device,
                    requested_pages: 1,
                    free_pages: 0,
                });
            }
        }
        let pool = self.pool_mut(device);
        pool.used_pages += 1;
        debug_assert!(
            pool.used_pages <= pool.capacity_pages,
            "pool over-commit on {device}: {}/{} pages",
            pool.used_pages,
            pool.capacity_pages
        );
        pool.peak_used_pages = pool.peak_used_pages.max(pool.used_pages);
        // Reuse order: warm cached page (pool hit, no materialization) →
        // reclaimed frame (re-materialize) → brand-new page.
        let cached = pool.free_list.pop();
        let reclaimed = if cached.is_none() {
            pool.reclaimed.pop()
        } else {
            None
        };
        if let Some(obs) = &self.obs {
            obs.pages_taken.inc();
            if cached.is_some() {
                obs.pages_reused.inc();
            } else {
                obs.pages_materialized.inc();
            }
        }
        self.publish_stats(device);
        if let Some(id) = cached {
            debug_assert!(self.pages[id.0].is_free());
            self.pages[id.0].move_to(device);
            return Ok(id);
        }
        if let Some(id) = reclaimed {
            debug_assert!(self.pages[id.0].is_free());
            self.pages[id.0].rematerialize(backed);
            self.pages[id.0].move_to(device);
            return Ok(id);
        }
        let id = PageId(next_index);
        let page = if backed {
            Page::new_backed(id, page_size, device)
        } else {
            Page::new_virtual(id, page_size, device)
        };
        self.pages.push(page);
        Ok(id)
    }

    /// Return an empty page to its device's reuse pool, trimming the
    /// oldest cached page past the reuse limit.
    fn return_page(&mut self, id: PageId) {
        let device = self.pages[id.0].device();
        let pool = self.pool_mut(device);
        debug_assert!(
            pool.used_pages > 0,
            "returning page {id:?} to an empty pool on {device}"
        );
        pool.used_pages -= 1;
        if pool.open_page == Some(id) {
            pool.open_page = None;
        }
        pool.free_list.push(id);
        if let Some(obs) = &self.obs {
            obs.pages_returned.inc();
        }
        if let Some(limit) = self.reuse_limit {
            let excess = self.pools[&device].free_list.len().saturating_sub(limit);
            if excess > 0 {
                self.trim_cached_frames(device, excess);
            }
        }
        self.publish_stats(device);
    }

    /// Unmaterialize up to `n` of the oldest cached pages on `device`,
    /// moving them to the reclaimed list. Returns how many were trimmed.
    fn trim_cached_frames(&mut self, device: DeviceId, n: usize) -> usize {
        let pool = self.pool_mut(device);
        let n = n.min(pool.free_list.len());
        let trimmed: Vec<PageId> = pool.free_list.drain(..n).collect();
        for id in &trimmed {
            self.pages[id.0].unmaterialize();
        }
        let pool = self.pool_mut(device);
        pool.reclaimed.extend(trimmed);
        if let Some(obs) = &self.obs {
            obs.pages_trimmed.add(n as u64);
        }
        n
    }

    /// Shrink `device`'s reuse pool down to at most `keep` cached pages
    /// (oldest trimmed first), releasing their backing memory. Returns the
    /// number of pages trimmed — the knob for external memory pressure.
    pub fn trim_reuse_pool(&mut self, device: DeviceId, keep: usize) -> usize {
        let cached = self.pools[&device].free_list.len();
        let trimmed = self.trim_cached_frames(device, cached.saturating_sub(keep));
        if trimmed > 0 {
            self.publish_stats(device);
        }
        trimmed
    }

    // ----- tensor allocation ---------------------------------------------

    /// Allocate a tensor of the given shape/dtype on `device`, applying the
    /// Section 4.1 placement rules. Fails with [`Error::OutOfPages`] when the
    /// pool cannot supply the required pages (leaving the pool unchanged).
    pub fn alloc_tensor(
        &mut self,
        shape: Vec<usize>,
        dtype: DType,
        device: DeviceId,
    ) -> Result<TensorId> {
        let id = TensorId(self.next_tensor_id);
        let mut tensor = Tensor::new(id, shape, dtype);
        let bytes = tensor.bytes();
        assert!(bytes > 0, "zero-sized tensor");

        // Feasibility check up front so failure has no side effects.
        let (open_take, fresh_pages) = self.plan(device, bytes);
        let pool = &self.pools[&device];
        if fresh_pages > pool.free_pages() {
            let free_pages = pool.free_pages();
            self.note_failure();
            return Err(Error::OutOfPages {
                device,
                requested_pages: fresh_pages,
                free_pages,
            });
        }

        let mut remaining = bytes;
        let mut ranges = Vec::new();

        // Start in the open page when the rules allow it.
        if open_take > 0 {
            let Some(open_id) = self.pools[&device].open_page else {
                // `plan_allocation` only returns open_take > 0 after
                // selecting an open page; the plan and this executor run
                // under the same &mut self.
                unreachable!("open-page take planned without an open page on {device}");
            };
            let offset = self.pages[open_id.0].allocate(open_take, id)?;
            ranges.push(PageRange {
                page: open_id,
                offset,
                bytes: open_take,
            });
            remaining -= open_take;
            // Two tenants now: the page is closed.
            self.pool_mut(device).open_page = None;
        }

        // Fill fresh pages.
        while remaining > 0 {
            let take = remaining.min(self.page_size);
            let pid = self.take_page(device)?;
            let offset = self.pages[pid.0].allocate(take, id)?;
            debug_assert_eq!(offset, 0);
            ranges.push(PageRange {
                page: pid,
                offset,
                bytes: take,
            });
            remaining -= take;
            // A partially filled tail of a *large* tensor becomes the open
            // page; small tensors keep their page to themselves.
            if remaining == 0 && take < self.page_size && bytes >= self.page_size {
                self.pool_mut(device).open_page = Some(pid);
            }
        }

        self.pool_mut(device).tenant_bytes += bytes;
        tensor.pages = ranges;
        tensor.device = Some(device);
        self.tensors.insert(id, tensor);
        self.next_tensor_id += 1;
        if let Some(obs) = &self.obs {
            obs.tensors_allocated.inc();
        }
        self.publish_stats(device);
        Ok(id)
    }

    /// Allocate an untyped buffer of `bytes` on `device`.
    pub fn alloc_tensor_raw(&mut self, bytes: u64, device: DeviceId) -> Result<TensorId> {
        self.alloc_tensor(vec![bytes as usize], DType::Byte, device)
    }

    /// How an allocation of `bytes` on `device` would be laid out:
    /// `(bytes taken from the open page, fresh pages needed)`.
    fn plan(&self, device: DeviceId, bytes: u64) -> (u64, usize) {
        let pool = &self.pools[&device];
        // Small tensors get their own page.
        if bytes < self.page_size {
            return (0, 1);
        }
        let open_avail = pool
            .open_page
            .map(|p| self.pages[p.0].available_bytes())
            .unwrap_or(0);
        let open_take = open_avail.min(bytes);
        let fresh = (bytes - open_take).div_ceil(self.page_size) as usize;
        (open_take, fresh)
    }

    /// Release a tensor: drop it from every page; pages that become empty
    /// return to their device's free list. Works for split tensors too
    /// (pages on different devices after partial moves): each range's bytes
    /// are returned to the pool of the device its page currently lives on.
    pub fn release_tensor(&mut self, id: TensorId) -> Result<()> {
        let tensor = self.tensors.remove(&id).ok_or(Error::UnknownTensor(id.0))?;
        let mut touched: Vec<DeviceId> = Vec::new();
        for range in &tensor.pages {
            let device = self.pages[range.page.0].device();
            self.pages[range.page.0].release(id)?;
            if self.pages[range.page.0].is_free() {
                self.return_page(range.page);
            }
            let pool = self.pool_mut(device);
            debug_assert!(
                pool.tenant_bytes >= range.bytes,
                "tenant bytes underflow on {device}"
            );
            pool.tenant_bytes -= range.bytes;
            if !touched.contains(&device) {
                touched.push(device);
            }
        }
        if let Some(obs) = &self.obs {
            obs.tensors_released.inc();
        }
        for device in touched {
            self.publish_stats(device);
        }
        Ok(())
    }

    // ----- movement -------------------------------------------------------

    /// Move one page to `target`, consuming a frame there and freeing one on
    /// the source device. All tenants of the page travel with it.
    pub fn move_page(&mut self, id: PageId, target: DeviceId) -> Result<()> {
        let source = self.pages[id.0].device();
        if source == target {
            return Ok(());
        }
        let tenant_bytes: u64 = self.pages[id.0].tenants().map(|t| t.bytes).sum();
        {
            let tpool = self
                .pools
                .get(&target)
                .unwrap_or_else(|| panic!("no pool registered for {target}"));
            if tpool.used_pages >= tpool.capacity_pages {
                self.note_failure();
                return Err(Error::OutOfPages {
                    device: target,
                    requested_pages: 1,
                    free_pages: 0,
                });
            }
        }
        {
            let tpool = self.pool_mut(target);
            tpool.used_pages += 1;
            debug_assert!(
                tpool.used_pages <= tpool.capacity_pages,
                "pool over-commit on {target} during move"
            );
            tpool.peak_used_pages = tpool.peak_used_pages.max(tpool.used_pages);
            tpool.tenant_bytes += tenant_bytes;
        }
        {
            let spool = self.pool_mut(source);
            debug_assert!(
                spool.used_pages > 0 && spool.tenant_bytes >= tenant_bytes,
                "source pool underflow on {source} during move"
            );
            spool.used_pages -= 1;
            spool.tenant_bytes -= tenant_bytes;
            if spool.open_page == Some(id) {
                spool.open_page = None;
            }
        }
        if let Some(obs) = &self.obs {
            obs.page_moves.inc();
        }
        self.publish_stats(source);
        self.publish_stats(target);
        self.pages[id.0].move_to(target);
        // Update the device of tensors fully resident on a single device:
        // after any page of a tensor moves, the tensor is split across
        // devices and not compute-ready (device = None, the paper's −1)
        // until all its pages agree again.
        let tenant_ids: Vec<TensorId> = self.pages[id.0].tenants().map(|t| t.tensor).collect();
        for tid in tenant_ids {
            if let Some(t) = self.tensors.get_mut(&tid) {
                let devices: Vec<DeviceId> = t
                    .pages
                    .iter()
                    .map(|r| self.pages[r.page.0].device())
                    .collect();
                t.device = if devices.windows(2).all(|w| w[0] == w[1]) {
                    devices.first().copied()
                } else {
                    None
                };
            }
        }
        Ok(())
    }

    /// Move a whole tensor to `target`, page by page. Pages shared with
    /// another tensor cannot move wholesale (they would drag the
    /// co-tenant); the moving tensor's slice is reallocated on the target
    /// instead, copying data for backed pages.
    pub fn move_tensor(&mut self, id: TensorId, target: DeviceId) -> Result<()> {
        let tensor = self
            .tensors
            .get(&id)
            .ok_or(Error::UnknownTensor(id.0))?
            .clone();
        if tensor.device == Some(target) {
            return Ok(());
        }
        let shared: Vec<PageRange> = tensor
            .pages
            .iter()
            .copied()
            .filter(|r| self.pages[r.page.0].num_tenants() > 1)
            .collect();
        if shared.is_empty() {
            // Atomicity: pre-check that the target pool can absorb every
            // page before moving any. Each move of an off-target page
            // consumes exactly one target frame (pages already on the
            // target are no-ops, and source-side frees never touch the
            // target pool), so this count is exact and the loop below
            // cannot fail halfway, which would strand the tensor split
            // across devices.
            let needed = tensor
                .pages
                .iter()
                .filter(|r| self.pages[r.page.0].device() != target)
                .count();
            let free = self
                .pools
                .get(&target)
                .unwrap_or_else(|| panic!("no pool registered for {target}"))
                .free_pages();
            if needed > free {
                self.note_failure();
                return Err(Error::OutOfPages {
                    device: target,
                    requested_pages: needed,
                    free_pages: free,
                });
            }
            for r in &tensor.pages {
                self.move_page(r.page, target)?;
            }
            return Ok(());
        }
        // Mixed case: reallocate the whole tensor on the target device.
        // Atomicity: releasing before allocating is what makes the move
        // cheap (the tensor's own frames on the target are recycled), but
        // a naive release-then-alloc destroys the tensor when the target
        // is full. Replay the release's exact effect on the target pool up
        // front, and only proceed when the subsequent allocation is known
        // to succeed.
        let bytes = tensor.bytes();
        {
            let tpool = self
                .pools
                .get(&target)
                .unwrap_or_else(|| panic!("no pool registered for {target}"));
            // Frames the release would hand back to the target pool: this
            // tensor's single-tenant pages already living there. (Shared
            // pages survive the release, and a surviving page's
            // availability never changes — bump allocation.)
            let freed_on_target = tensor
                .pages
                .iter()
                .filter(|r| {
                    self.pages[r.page.0].device() == target
                        && self.pages[r.page.0].num_tenants() == 1
                })
                .count();
            // The open page always has exactly one tenant, so it either
            // survives untouched or is freed wholesale by the release.
            let open_freed = tpool.open_page.is_some_and(|p| {
                self.pages[p.0].num_tenants() == 1 && tensor.pages.iter().any(|r| r.page == p)
            });
            let fresh = if bytes < self.page_size {
                1
            } else {
                let open_avail = if open_freed {
                    0
                } else {
                    tpool
                        .open_page
                        .map(|p| self.pages[p.0].available_bytes())
                        .unwrap_or(0)
                };
                (bytes - open_avail.min(bytes)).div_ceil(self.page_size) as usize
            };
            let free_after_release = tpool.free_pages() + freed_on_target;
            if fresh > free_after_release {
                self.note_failure();
                return Err(Error::OutOfPages {
                    device: target,
                    requested_pages: fresh,
                    free_pages: free_after_release,
                });
            }
        }
        let data = if self.backed {
            Some(self.read_tensor(id)?)
        } else {
            None
        };
        let shape = tensor.shape.clone();
        let dtype = tensor.dtype;
        self.release_tensor(id)?;
        let new_id = match self.alloc_tensor(shape, dtype, target) {
            Ok(nid) => nid,
            Err(e) => {
                debug_assert!(
                    false,
                    "move_tensor pre-check admitted an infeasible move: {e}"
                );
                return Err(e);
            }
        };
        if let Some(bytes) = data {
            self.write_tensor(new_id, &bytes)?;
        }
        // Preserve the public id: re-key the new tensor under the old id.
        let Some(mut t) = self.tensors.remove(&new_id) else {
            unreachable!("tensor allocated above under {new_id:?}");
        };
        t.id = id;
        for r in &t.pages {
            // Retag tenants in the pages.
            self.pages[r.page.0].release(new_id)?;
            let page = &mut self.pages[r.page.0];
            // Re-allocate under the original id at the same spot: since the
            // page was just filled bump-style, releasing the most recent
            // tenant restores available_bytes only if the page emptied;
            // instead, re-insert directly.
            page.allocate_at(id, r.offset, r.bytes)?;
        }
        self.tensors.insert(id, t);
        Ok(())
    }

    /// The paper's `merge()`: re-lay a tensor into exclusively-owned pages
    /// in order (offset 0 in every page) so its data is logically
    /// contiguous for computation.
    pub fn merge_tensor(&mut self, id: TensorId) -> Result<()> {
        let tensor = self
            .tensors
            .get(&id)
            .ok_or(Error::UnknownTensor(id.0))?
            .clone();
        if self.tensor_is_merged(&tensor) {
            return Ok(());
        }
        let device = tensor.device.ok_or(Error::WrongDevice {
            expected: None,
            actual: None,
        })?;
        // Atomicity: merge re-lays the tensor with the open page disabled,
        // so it needs exactly ⌈bytes / page_size⌉ fresh frames. The release
        // frees this tensor's single-tenant pages back to the same pool;
        // check the budget before touching anything so a full pool returns
        // a typed error instead of destroying the tensor.
        {
            let needed = self.pages_for(tensor.bytes());
            let freed = tensor
                .pages
                .iter()
                .filter(|r| self.pages[r.page.0].num_tenants() == 1)
                .count();
            let free_after_release = self.pools[&device].free_pages() + freed;
            if needed > free_after_release {
                self.note_failure();
                return Err(Error::OutOfPages {
                    device,
                    requested_pages: needed,
                    free_pages: free_after_release,
                });
            }
        }
        let data = if self.backed {
            Some(self.read_tensor(id)?)
        } else {
            None
        };
        self.release_tensor(id)?;
        // Re-allocate with sharing disabled by temporarily clearing the open
        // page.
        let saved_open = self.pool_mut(device).open_page.take();
        let new_id = match self.alloc_tensor(tensor.shape.clone(), tensor.dtype, device) {
            Ok(nid) => nid,
            Err(e) => {
                self.pool_mut(device).open_page = saved_open;
                debug_assert!(
                    false,
                    "merge_tensor pre-check admitted an infeasible merge: {e}"
                );
                return Err(e);
            }
        };
        // Merged tensors never leave an open tail for others either.
        self.pool_mut(device).open_page = saved_open;
        if let Some(bytes) = data {
            self.write_tensor(new_id, &bytes)?;
        }
        let Some(mut t) = self.tensors.remove(&new_id) else {
            unreachable!("tensor allocated above under {new_id:?}");
        };
        t.id = id;
        for r in &t.pages {
            self.pages[r.page.0].release(new_id)?;
            self.pages[r.page.0].allocate_at(id, r.offset, r.bytes)?;
        }
        self.tensors.insert(id, t);
        Ok(())
    }

    /// Whether a tensor already satisfies merge's post-condition.
    pub fn tensor_is_merged(&self, tensor: &Tensor) -> bool {
        tensor
            .pages
            .iter()
            .all(|r| r.offset == 0 && self.pages[r.page.0].num_tenants() == 1)
    }

    // ----- compaction -----------------------------------------------------

    /// Defragment `device`'s pool. Two passes:
    ///
    /// 1. **In-place squeeze** — a page whose co-tenant departed keeps a
    ///    stranded gap below its bump cursor; repack its survivors to
    ///    offset 0 ([`Page::compact_tenants`]).
    /// 2. **Consolidation** — greedily best-fit the smallest single-tenant
    ///    partial page's range into another partial page (the same
    ///    machinery as `move_tensor`'s shared path, intra-device), freeing
    ///    whole frames back to the reuse pool.
    ///
    /// Both passes preserve every tensor's bytes (backed data is copied)
    /// and the two-tenants-per-page invariant; compacted tensors may stop
    /// being "merged" (offset ≠ 0) until [`PageAllocator::merge_tensor`]
    /// re-lays them.
    pub fn compact_device(&mut self, device: DeviceId) -> Result<CompactionReport> {
        let before = self.stats(device);
        let mut report = CompactionReport {
            frag_ppm_before: (before.internal_frag() * 1e6) as u64,
            ..Default::default()
        };

        let page_ids: Vec<PageId> = (0..self.pages.len())
            .map(PageId)
            .filter(|id| self.pages[id.0].device() == device && !self.pages[id.0].is_free())
            .collect();

        // Pass 1: squeeze stranded bump-cursor gaps in place.
        for &id in &page_ids {
            let page = &self.pages[id.0];
            let tenant_sum: u64 = page.tenants().map(|t| t.bytes).sum();
            if page.used_bytes() == tenant_sum {
                continue;
            }
            let tenants_before: Vec<(TensorId, u64, u64)> = page
                .tenants()
                .map(|t| (t.tensor, t.offset, t.bytes))
                .collect();
            self.pages[id.0].compact_tenants();
            report.pages_compacted += 1;
            for (tid, old_offset, bytes) in tenants_before {
                let Some(survivor) = self.pages[id.0].tenant_of(tid) else {
                    // compact_tenants slides ranges; it never evicts one.
                    unreachable!("tenant {tid:?} lost by compaction of {id:?}");
                };
                let new_offset = survivor.offset;
                if new_offset != old_offset {
                    report.bytes_copied += bytes;
                    let t = self.tenant_mut(tid);
                    for r in t.pages.iter_mut().filter(|r| r.page == id) {
                        r.offset = new_offset;
                    }
                }
            }
        }

        // Pass 2: consolidate partial single-tenant pages, smallest tenant
        // first — every successful relocation frees one whole frame.
        let mut candidates: Vec<PageId> = page_ids
            .iter()
            .copied()
            .filter(|id| {
                self.pages[id.0].num_tenants() == 1 && self.pages[id.0].available_bytes() > 0
            })
            .collect();
        candidates.sort_by_key(|id| {
            // The filter above kept only single-tenant pages.
            let bytes = self.pages[id.0].tenants().next().map_or(0, |t| t.bytes);
            (bytes, id.0)
        });
        let mut emptied: Vec<PageId> = Vec::new();
        for i in 0..candidates.len() {
            let donor = candidates[i];
            // A candidate that absorbed another range is no longer a donor
            // (relocating one of two tenants frees nothing).
            if emptied.contains(&donor) || self.pages[donor.0].num_tenants() != 1 {
                continue;
            }
            let Some(&tenant) = self.pages[donor.0].tenants().next() else {
                continue; // guarded above: the donor has exactly one tenant
            };
            // Best-fit destination: tightest page that still fits the
            // range, holds at most one (different) tensor, and isn't the
            // donor.
            let mut best: Option<(PageId, u64)> = None;
            for &dest in &candidates {
                if dest == donor || emptied.contains(&dest) {
                    continue;
                }
                let page = &self.pages[dest.0];
                if page.num_tenants() >= 2 || page.tenant_of(tenant.tensor).is_some() {
                    continue;
                }
                let avail = page.available_bytes();
                if avail >= tenant.bytes && best.is_none_or(|(_, b)| avail < b) {
                    best = Some((dest, avail));
                }
            }
            let Some((dest, _)) = best else { continue };
            let payload: Option<Vec<u8>> = if self.backed {
                Some(self.pages[donor.0].read(tenant.tensor)?.to_vec())
            } else {
                None
            };
            self.pages[donor.0].release(tenant.tensor)?;
            let new_offset = self.pages[dest.0].allocate(tenant.bytes, tenant.tensor)?;
            if let Some(bytes) = payload {
                self.pages[dest.0].write(tenant.tensor, 0, &bytes)?;
            }
            let t = self.tenant_mut(tenant.tensor);
            for r in t.pages.iter_mut().filter(|r| r.page == donor) {
                r.page = dest;
                r.offset = new_offset;
            }
            // A destination that filled up can no longer be the open page.
            let dest_full = self.pages[dest.0].num_tenants() == 2;
            let pool = self.pool_mut(device);
            if dest_full && pool.open_page == Some(dest) {
                pool.open_page = None;
            }
            self.return_page(donor);
            emptied.push(donor);
            report.tenant_moves += 1;
            report.pages_reclaimed += 1;
            report.bytes_copied += tenant.bytes;
        }

        let after = self.stats(device);
        report.frag_ppm_after = (after.internal_frag() * 1e6) as u64;
        if let Some(obs) = &self.obs {
            obs.compactions.inc();
            obs.recorder.counter_sample(
                ObsThread::Allocator,
                "alloc.compactions",
                obs.compactions.get(),
            );
            obs.recorder
                .instant(ObsThread::Allocator, "alloc.compact_device", -1);
        }
        self.publish_stats(device);
        Ok(report)
    }

    /// Run [`PageAllocator::compact_device`] iff the device's internal
    /// fragmentation exceeds the configured threshold. Returns the report
    /// when a pass ran. A no-op unless
    /// [`PageAllocator::set_compaction_threshold_ppm`] armed it.
    pub fn maybe_compact(&mut self, device: DeviceId) -> Option<CompactionReport> {
        let threshold = self.compaction_threshold_ppm?;
        let frag_ppm = (self.stats(device).internal_frag() * 1e6) as u64;
        if frag_ppm <= threshold {
            return None;
        }
        self.compact_device(device).ok()
    }

    // ----- state fingerprint ----------------------------------------------

    /// A deterministic digest of the allocator's complete observable state:
    /// pool accounting, every page's placement/tenancy/contents (backed
    /// data is FNV-hashed), and every tensor's layout. Two allocators with
    /// equal fingerprints are behaviorally identical — the regression tests
    /// use this to prove failed operations have *zero* side effects.
    ///
    /// Walks (and for backed pools, hashes) every byte the allocator holds,
    /// so it is compiled only for tests and the opt-in `verify-extras`
    /// feature — production builds cannot accidentally call it in a hot
    /// path.
    #[cfg(any(test, feature = "verify-extras"))]
    pub fn state_fingerprint(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = write!(
            out,
            "ps={} backed={} next_id={}",
            self.page_size, self.backed, self.next_tensor_id
        );
        for (device, pool) in &self.pools {
            let _ = write!(
                out,
                ";pool[{device}]=cap:{},used:{},peak:{},tb:{},open:{:?},free:{:?},recl:{:?}",
                pool.capacity_pages,
                pool.used_pages,
                pool.peak_used_pages,
                pool.tenant_bytes,
                pool.open_page.map(|p| p.0),
                pool.free_list.iter().map(|p| p.0).collect::<Vec<_>>(),
                pool.reclaimed.iter().map(|p| p.0).collect::<Vec<_>>(),
            );
        }
        for page in &self.pages {
            let mut data_hash = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
            let mut backed = false;
            if let Some(bytes) = page.send() {
                backed = true;
                for &b in bytes {
                    data_hash ^= b as u64;
                    data_hash = data_hash.wrapping_mul(0x1000_0000_01b3);
                }
            }
            let _ = write!(
                out,
                ";page[{}]={},avail:{},backed:{},hash:{:016x}",
                page.id().0,
                page.device(),
                page.available_bytes(),
                backed,
                data_hash,
            );
            for t in page.tenants() {
                let _ = write!(out, ",t{}@{}+{}", t.tensor.0, t.offset, t.bytes);
            }
        }
        let mut tensor_ids: Vec<TensorId> = self.tensors.keys().copied().collect();
        tensor_ids.sort();
        for tid in tensor_ids {
            let t = &self.tensors[&tid];
            let _ = write!(
                out,
                ";tensor[{}]=dev:{:?}",
                tid.0,
                t.device.map(|d| d.to_string())
            );
            for r in &t.pages {
                let _ = write!(out, ",p{}@{}+{}", r.page.0, r.offset, r.bytes);
            }
        }
        out
    }

    // ----- backed data access ---------------------------------------------

    /// Write `data` across the tensor's page ranges (backed mode).
    pub fn write_tensor(&mut self, id: TensorId, data: &[u8]) -> Result<()> {
        let ranges = self
            .tensors
            .get(&id)
            .ok_or(Error::UnknownTensor(id.0))?
            .pages
            .clone();
        let total: u64 = ranges.iter().map(|r| r.bytes).sum();
        if data.len() as u64 != total {
            return Err(Error::PageInvariant("write_tensor size mismatch"));
        }
        let mut cursor = 0usize;
        for r in &ranges {
            let end = cursor + r.bytes as usize;
            self.pages[r.page.0].write(id, 0, &data[cursor..end])?;
            cursor = end;
        }
        Ok(())
    }

    /// Read the tensor's bytes across its page ranges (backed mode).
    pub fn read_tensor(&self, id: TensorId) -> Result<Vec<u8>> {
        let tensor = self.tensors.get(&id).ok_or(Error::UnknownTensor(id.0))?;
        let mut out = Vec::with_capacity(tensor.bytes() as usize);
        for r in &tensor.pages {
            out.extend_from_slice(self.pages[r.page.0].read(id)?);
        }
        Ok(out)
    }
}

impl Default for PageAllocator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PS: u64 = 1024; // small pages for tests

    fn alloc_two_pools() -> PageAllocator {
        let mut a = PageAllocator::with_page_size(PS, false);
        a.add_pool(DeviceId::gpu(0), 16 * PS).unwrap();
        a.add_pool(DeviceId::CPU, 64 * PS).unwrap();
        a
    }

    #[test]
    fn small_tensor_gets_own_page() {
        let mut a = alloc_two_pools();
        let t1 = a.alloc_tensor_raw(100, DeviceId::gpu(0)).unwrap();
        let t2 = a.alloc_tensor_raw(100, DeviceId::gpu(0)).unwrap();
        let p1 = a.tensor(t1).unwrap().pages[0].page;
        let p2 = a.tensor(t2).unwrap().pages[0].page;
        assert_ne!(p1, p2);
        assert_eq!(a.page(p1).num_tenants(), 1);
        assert_eq!(a.stats(DeviceId::gpu(0)).used_pages, 2);
    }

    #[test]
    fn large_tensors_share_boundary_pages() {
        let mut a = alloc_two_pools();
        // 2.5 pages, then 2 pages: the second should start in the first's
        // tail page.
        let t1 = a.alloc_tensor_raw(PS * 5 / 2, DeviceId::gpu(0)).unwrap();
        let t2 = a.alloc_tensor_raw(PS * 2, DeviceId::gpu(0)).unwrap();
        let tail = a.tensor(t1).unwrap().pages.last().unwrap().page;
        let head = a.tensor(t2).unwrap().pages.first().unwrap().page;
        assert_eq!(tail, head, "second tensor starts in the open page");
        assert_eq!(a.page(tail).num_tenants(), 2);
        // 2.5 + 2 bytes = 4.5 pages of data in 5 page frames.
        assert_eq!(a.stats(DeviceId::gpu(0)).used_pages, 5);
    }

    #[test]
    fn at_most_two_tenants_ever() {
        let mut a = alloc_two_pools();
        for _ in 0..4 {
            a.alloc_tensor_raw(PS * 3 / 2, DeviceId::gpu(0)).unwrap();
        }
        for p in 0..a.pages.len() {
            assert!(a.page(PageId(p)).num_tenants() <= 2);
        }
    }

    #[test]
    fn release_returns_pages_to_free_list() {
        let mut a = alloc_two_pools();
        let t = a.alloc_tensor_raw(PS * 3, DeviceId::gpu(0)).unwrap();
        assert_eq!(a.stats(DeviceId::gpu(0)).used_pages, 3);
        a.release_tensor(t).unwrap();
        let s = a.stats(DeviceId::gpu(0));
        assert_eq!(s.used_pages, 0);
        assert_eq!(s.tenant_bytes, 0);
        assert_eq!(s.peak_used_pages, 3);
        // Reuse: the same frames serve the next allocation.
        let t2 = a.alloc_tensor_raw(PS * 3, DeviceId::gpu(0)).unwrap();
        assert_eq!(a.stats(DeviceId::gpu(0)).used_pages, 3);
        a.release_tensor(t2).unwrap();
    }

    #[test]
    fn shared_page_survives_one_release() {
        let mut a = alloc_two_pools();
        let t1 = a.alloc_tensor_raw(PS * 3 / 2, DeviceId::gpu(0)).unwrap();
        let t2 = a.alloc_tensor_raw(PS, DeviceId::gpu(0)).unwrap();
        let shared = a.tensor(t2).unwrap().pages[0].page;
        assert_eq!(a.page(shared).num_tenants(), 2);
        a.release_tensor(t1).unwrap();
        assert_eq!(a.page(shared).num_tenants(), 1);
        // One frame freed (t1's exclusive page), shared page still used.
        assert_eq!(a.stats(DeviceId::gpu(0)).used_pages, 2);
        a.release_tensor(t2).unwrap();
        assert_eq!(a.stats(DeviceId::gpu(0)).used_pages, 0);
    }

    #[test]
    fn out_of_pages_is_clean_failure() {
        let mut a = PageAllocator::with_page_size(PS, false);
        a.add_pool(DeviceId::gpu(0), 2 * PS).unwrap();
        let before = a.stats(DeviceId::gpu(0));
        assert!(matches!(
            a.alloc_tensor_raw(PS * 3, DeviceId::gpu(0)),
            Err(Error::OutOfPages { .. })
        ));
        assert_eq!(
            a.stats(DeviceId::gpu(0)),
            before,
            "failed alloc must not leak"
        );
        // But 2 pages still work.
        assert!(a.alloc_tensor_raw(PS * 2, DeviceId::gpu(0)).is_ok());
    }

    #[test]
    fn no_external_fragmentation_by_construction() {
        // Checkerboard-free the pool: page frames are interchangeable, so a
        // full-pool-sized tensor still fits afterwards. This is the property
        // the baselines in angel-memsim lack.
        let mut a = PageAllocator::with_page_size(PS, false);
        a.add_pool(DeviceId::gpu(0), 8 * PS).unwrap();
        let ts: Vec<_> = (0..8)
            .map(|_| a.alloc_tensor_raw(PS, DeviceId::gpu(0)).unwrap())
            .collect();
        for (i, t) in ts.into_iter().enumerate() {
            if i % 2 == 0 {
                a.release_tensor(t).unwrap();
            }
        }
        // 4 free frames: a 4-page tensor fits despite the interleaving.
        assert!(a.alloc_tensor_raw(4 * PS, DeviceId::gpu(0)).is_ok());
    }

    #[test]
    fn move_page_updates_pools_and_tensor_device() {
        let mut a = alloc_two_pools();
        let t = a.alloc_tensor_raw(PS * 2, DeviceId::gpu(0)).unwrap();
        let first = a.tensor(t).unwrap().pages[0].page;
        a.move_page(first, DeviceId::CPU).unwrap();
        // Split across devices: not compute-ready.
        assert_eq!(a.tensor(t).unwrap().device, None);
        assert_eq!(a.tensor(t).unwrap().device_index(), -1);
        assert_eq!(a.stats(DeviceId::gpu(0)).used_pages, 1);
        assert_eq!(a.stats(DeviceId::CPU).used_pages, 1);
        // Move the second page too: ready again, on CPU.
        let second = a.tensor(t).unwrap().pages[1].page;
        a.move_page(second, DeviceId::CPU).unwrap();
        assert_eq!(a.tensor(t).unwrap().device, Some(DeviceId::CPU));
    }

    #[test]
    fn move_tensor_exclusive_pages() {
        let mut a = alloc_two_pools();
        let t = a.alloc_tensor_raw(PS * 3, DeviceId::gpu(0)).unwrap();
        a.move_tensor(t, DeviceId::CPU).unwrap();
        assert_eq!(a.tensor(t).unwrap().device, Some(DeviceId::CPU));
        assert_eq!(a.stats(DeviceId::gpu(0)).used_pages, 0);
        assert_eq!(a.stats(DeviceId::CPU).used_pages, 3);
    }

    #[test]
    fn move_tensor_with_shared_page_reallocates() {
        let mut a = alloc_two_pools();
        let t1 = a.alloc_tensor_raw(PS * 3 / 2, DeviceId::gpu(0)).unwrap();
        let t2 = a.alloc_tensor_raw(PS * 3 / 2, DeviceId::gpu(0)).unwrap(); // shares t1's tail
        a.move_tensor(t2, DeviceId::CPU).unwrap();
        let t2t = a.tensor(t2).unwrap();
        assert_eq!(t2t.device, Some(DeviceId::CPU));
        assert_eq!(t2t.bytes(), PS * 3 / 2);
        // t1 untouched on GPU.
        assert_eq!(a.tensor(t1).unwrap().device, Some(DeviceId::gpu(0)));
        // The formerly shared page now has one tenant.
        let t1_tail = a.tensor(t1).unwrap().pages.last().unwrap().page;
        assert_eq!(a.page(t1_tail).num_tenants(), 1);
    }

    #[test]
    fn move_page_to_full_pool_fails() {
        let mut a = PageAllocator::with_page_size(PS, false);
        a.add_pool(DeviceId::gpu(0), 4 * PS).unwrap();
        a.add_pool(DeviceId::CPU, PS).unwrap();
        let _cpu_t = a.alloc_tensor_raw(PS, DeviceId::CPU).unwrap();
        let t = a.alloc_tensor_raw(PS, DeviceId::gpu(0)).unwrap();
        let p = a.tensor(t).unwrap().pages[0].page;
        assert!(matches!(
            a.move_page(p, DeviceId::CPU),
            Err(Error::OutOfPages { .. })
        ));
        // Source accounting intact.
        assert_eq!(a.stats(DeviceId::gpu(0)).used_pages, 1);
    }

    #[test]
    fn merge_makes_pages_exclusive_and_zero_offset() {
        let mut a = alloc_two_pools();
        let _t1 = a.alloc_tensor_raw(PS * 3 / 2, DeviceId::gpu(0)).unwrap();
        let t2 = a.alloc_tensor_raw(PS * 2, DeviceId::gpu(0)).unwrap();
        assert!(!a.tensor_is_merged(a.tensor(t2).unwrap()));
        a.merge_tensor(t2).unwrap();
        let t2t = a.tensor(t2).unwrap().clone();
        assert!(a.tensor_is_merged(&t2t));
        assert_eq!(t2t.bytes(), PS * 2);
        assert_eq!(t2t.pages.len(), 2);
    }

    #[test]
    fn backed_data_survives_moves_and_merges() {
        let mut a = PageAllocator::with_page_size(64, true);
        a.add_pool(DeviceId::gpu(0), 64 * 16).unwrap();
        a.add_pool(DeviceId::CPU, 64 * 16).unwrap();
        let t1 = a.alloc_tensor_raw(96, DeviceId::gpu(0)).unwrap();
        let t2 = a.alloc_tensor_raw(96, DeviceId::gpu(0)).unwrap(); // shares page
        let payload: Vec<u8> = (0..96).map(|i| i as u8).collect();
        a.write_tensor(t2, &payload).unwrap();
        a.move_tensor(t2, DeviceId::CPU).unwrap(); // forced reallocation path
        assert_eq!(a.read_tensor(t2).unwrap(), payload);
        a.merge_tensor(t2).unwrap();
        assert_eq!(a.read_tensor(t2).unwrap(), payload);
        let _ = t1;
    }

    #[test]
    fn tenant_bytes_accounting_through_page_moves() {
        let mut a = alloc_two_pools();
        let t = a.alloc_tensor_raw(PS * 2, DeviceId::gpu(0)).unwrap();
        assert_eq!(a.stats(DeviceId::gpu(0)).tenant_bytes, PS * 2);
        for r in a.tensor(t).unwrap().pages.clone() {
            a.move_page(r.page, DeviceId::CPU).unwrap();
        }
        assert_eq!(a.stats(DeviceId::gpu(0)).tenant_bytes, 0);
        assert_eq!(a.stats(DeviceId::CPU).tenant_bytes, PS * 2);
        a.release_tensor(t).unwrap();
        assert_eq!(a.stats(DeviceId::CPU).tenant_bytes, 0);
    }

    #[test]
    fn internal_frag_reported() {
        let mut a = alloc_two_pools();
        // A small tensor wastes most of its page.
        a.alloc_tensor_raw(64, DeviceId::gpu(0)).unwrap();
        let s = a.stats(DeviceId::gpu(0));
        assert!((s.internal_frag() - (1.0 - 64.0 / PS as f64)).abs() < 1e-12);
    }

    #[test]
    fn free_pages_saturates_on_overcommitted_stats() {
        // A hand-built (or mid-mutation) over-committed snapshot must not
        // panic in debug builds; the invariant lives at the mutation sites.
        let s = PoolStats {
            capacity_pages: 2,
            used_pages: 5,
            tenant_bytes: 0,
            peak_used_pages: 5,
            page_size: PS,
            cached_pages: 0,
            reclaimed_pages: 0,
        };
        assert_eq!(s.free_pages(), 0);
    }

    #[test]
    fn recorder_tracks_pool_gauges_and_counters() {
        use crate::obs::Recorder;
        let rec = Recorder::enabled();
        let mut a = alloc_two_pools();
        a.set_recorder(rec.clone());
        let gpu = DeviceId::gpu(0);
        let t = a.alloc_tensor_raw(PS * 3, gpu).unwrap();
        let snap = rec.snapshot();
        assert_eq!(snap.counters["alloc.pages_taken"], 3);
        assert_eq!(snap.counters["alloc.tensors_allocated"], 1);
        assert_eq!(snap.gauges[&format!("alloc.{gpu}.used_pages")], 3);
        let p = a.tensor(t).unwrap().pages[0].page;
        a.move_page(p, DeviceId::CPU).unwrap();
        a.release_tensor(t).unwrap();
        let snap = rec.snapshot();
        assert_eq!(snap.counters["alloc.page_moves"], 1);
        assert_eq!(snap.counters["alloc.tensors_released"], 1);
        assert_eq!(snap.gauges[&format!("alloc.{gpu}.used_pages")], 0);
        assert_eq!(snap.gauges[&format!("alloc.{gpu}.peak_pages")], 3);
        // Failures count too.
        assert!(a.alloc_tensor_raw(PS * 1000, gpu).is_err());
        assert_eq!(rec.snapshot().counters["alloc.failures"], 1);
    }

    #[test]
    fn add_pool_rejects_nonempty_reregistration() {
        let mut a = alloc_two_pools();
        let t = a.alloc_tensor_raw(PS, DeviceId::gpu(0)).unwrap();
        let before = a.state_fingerprint();
        let err = a.add_pool(DeviceId::gpu(0), 128 * PS).unwrap_err();
        assert_eq!(
            err,
            Error::PoolInUse {
                device: DeviceId::gpu(0),
                used_pages: 1
            }
        );
        assert_eq!(
            a.state_fingerprint(),
            before,
            "rejected add_pool must not mutate"
        );
        // Draining the pool makes resizing legal again, and the resize
        // keeps history (peak) while adopting the new capacity.
        a.release_tensor(t).unwrap();
        a.add_pool(DeviceId::gpu(0), 128 * PS).unwrap();
        let s = a.stats(DeviceId::gpu(0));
        assert_eq!(s.capacity_pages, 128);
        assert_eq!(s.peak_used_pages, 1);
        assert!(a.alloc_tensor_raw(100 * PS, DeviceId::gpu(0)).is_ok());
    }

    #[test]
    fn failed_exclusive_move_leaves_state_byte_identical() {
        // Regression: a mid-loop move_page failure used to strand the
        // tensor split across devices. The pre-check must reject the move
        // with *zero* side effects.
        let mut a = PageAllocator::with_page_size(PS, true);
        a.add_pool(DeviceId::gpu(0), 4 * PS).unwrap();
        a.add_pool(DeviceId::CPU, 2 * PS).unwrap();
        let _filler = a.alloc_tensor_raw(PS, DeviceId::CPU).unwrap();
        let t = a.alloc_tensor_raw(3 * PS, DeviceId::gpu(0)).unwrap();
        let payload: Vec<u8> = (0..3 * PS).map(|i| (i % 251) as u8).collect();
        a.write_tensor(t, &payload).unwrap();
        let before = a.state_fingerprint();
        // 3 pages needed, 1 frame free on CPU: must fail atomically.
        let err = a.move_tensor(t, DeviceId::CPU).unwrap_err();
        assert_eq!(
            err,
            Error::OutOfPages {
                device: DeviceId::CPU,
                requested_pages: 3,
                free_pages: 1
            }
        );
        assert_eq!(a.state_fingerprint(), before, "failed move must be a no-op");
        assert_eq!(a.tensor(t).unwrap().device, Some(DeviceId::gpu(0)));
        assert_eq!(a.read_tensor(t).unwrap(), payload);
    }

    #[test]
    fn failed_shared_move_leaves_state_byte_identical() {
        // Regression: the shared-page path released the tensor before
        // allocating on the target, so a full target pool destroyed the
        // id and its backed data.
        let mut a = PageAllocator::with_page_size(PS, true);
        a.add_pool(DeviceId::gpu(0), 8 * PS).unwrap();
        a.add_pool(DeviceId::CPU, 2 * PS).unwrap();
        let _filler = a.alloc_tensor_raw(2 * PS, DeviceId::CPU).unwrap();
        let t1 = a.alloc_tensor_raw(PS * 3 / 2, DeviceId::gpu(0)).unwrap();
        let t2 = a.alloc_tensor_raw(PS * 5 / 2, DeviceId::gpu(0)).unwrap(); // shares t1's tail
        let shared = a.tensor(t2).unwrap().pages[0].page;
        assert_eq!(a.page(shared).num_tenants(), 2, "fixture shares a page");
        let payload: Vec<u8> = (0..PS * 5 / 2).map(|i| (i % 249) as u8).collect();
        a.write_tensor(t2, &payload).unwrap();
        let before = a.state_fingerprint();
        let err = a.move_tensor(t2, DeviceId::CPU).unwrap_err();
        assert!(matches!(err, Error::OutOfPages { device, .. } if device == DeviceId::CPU));
        assert_eq!(a.state_fingerprint(), before, "failed move must be a no-op");
        // The tensor survives, resident and intact on the source.
        assert_eq!(a.tensor(t2).unwrap().device, Some(DeviceId::gpu(0)));
        assert_eq!(a.read_tensor(t2).unwrap(), payload);
        let _ = t1;
    }

    #[test]
    fn shared_move_precheck_counts_freed_target_frames() {
        // The move must still succeed when it only fits because the
        // tensor's own single-tenant pages on the target free up: the
        // pre-check replays the release, not the current pool state.
        let mut a = PageAllocator::with_page_size(PS, false);
        a.add_pool(DeviceId::gpu(0), 8 * PS).unwrap();
        a.add_pool(DeviceId::CPU, 3 * PS).unwrap();
        let t1 = a.alloc_tensor_raw(PS * 3 / 2, DeviceId::gpu(0)).unwrap();
        let t2 = a.alloc_tensor_raw(PS * 5 / 2, DeviceId::gpu(0)).unwrap(); // head shares t1's tail
                                                                            // Move t2's exclusive pages to CPU by hand so the CPU pool is full
                                                                            // of t2's own frames (2 exclusive pages) plus one filler.
        let excl: Vec<PageId> = a
            .tensor(t2)
            .unwrap()
            .pages
            .iter()
            .filter(|r| a.page(r.page).num_tenants() == 1)
            .map(|r| r.page)
            .collect();
        for p in excl {
            a.move_page(p, DeviceId::CPU).unwrap();
        }
        let _filler = a.alloc_tensor_raw(PS, DeviceId::CPU).unwrap();
        assert_eq!(a.stats(DeviceId::CPU).free_pages(), 0);
        // 0 frames free, but t2's 2 single-tenant CPU pages free on
        // release and 2.5 pages are needed → 3 fresh ≤ 0 + 2? No: needs 3.
        let err = a.move_tensor(t2, DeviceId::CPU).unwrap_err();
        assert!(matches!(
            err,
            Error::OutOfPages {
                requested_pages: 3,
                free_pages: 2,
                ..
            }
        ));
        // With one more frame the same move goes through.
        a.release_tensor(_filler).unwrap();
        a.move_tensor(t2, DeviceId::CPU).unwrap();
        assert_eq!(a.tensor(t2).unwrap().device, Some(DeviceId::CPU));
        assert_eq!(a.tensor(t1).unwrap().device, Some(DeviceId::gpu(0)));
    }

    #[test]
    fn failed_merge_leaves_state_byte_identical() {
        let mut a = PageAllocator::with_page_size(PS, true);
        a.add_pool(DeviceId::gpu(0), 5 * PS).unwrap();
        // t1 fills 1.5 pages; t2 starts in t1's tail and spills 1.5 more;
        // the filler below consumes the last frame, so the merge (which
        // needs 2 exclusive frames but frees only t2's single exclusive
        // page) must fail.
        let t1 = a.alloc_tensor_raw(PS * 3 / 2, DeviceId::gpu(0)).unwrap();
        let t2 = a.alloc_tensor_raw(PS * 2, DeviceId::gpu(0)).unwrap();
        let payload: Vec<u8> = (0..PS * 2).map(|i| (i % 253) as u8).collect();
        a.write_tensor(t2, &payload).unwrap();
        assert!(!a.tensor_is_merged(a.tensor(t2).unwrap()));
        let before = a.state_fingerprint();
        // Merge needs 2 exclusive frames; releasing t2 frees only its
        // 2 single-tenant pages... which is enough — so fill the pool
        // first to force failure.
        let _filler = a.alloc_tensor_raw(PS, DeviceId::gpu(0)).unwrap();
        let before_full = a.state_fingerprint();
        assert_ne!(before, before_full);
        match a.merge_tensor(t2) {
            Err(Error::OutOfPages { .. }) => {
                assert_eq!(
                    a.state_fingerprint(),
                    before_full,
                    "failed merge must be a no-op"
                );
                assert_eq!(a.read_tensor(t2).unwrap(), payload);
            }
            other => {
                // If the budget happens to fit, merging must succeed cleanly.
                other.unwrap();
                assert!(a.tensor_is_merged(a.tensor(t2).unwrap()));
                assert_eq!(a.read_tensor(t2).unwrap(), payload);
            }
        }
        let _ = t1;
    }

    #[test]
    fn reuse_pool_caches_and_trims() {
        let mut a = PageAllocator::with_page_size(PS, true);
        a.add_pool(DeviceId::gpu(0), 8 * PS).unwrap();
        let rec = crate::obs::Recorder::enabled();
        a.set_recorder(rec.clone());
        let t = a.alloc_tensor_raw(4 * PS, DeviceId::gpu(0)).unwrap();
        a.release_tensor(t).unwrap();
        let s = a.stats(DeviceId::gpu(0));
        assert_eq!(s.cached_pages, 4, "released pages stay warm");
        // The next allocation is served from the cache: no materialization.
        let before = rec.snapshot().counters["alloc.pages_materialized"];
        let t2 = a.alloc_tensor_raw(4 * PS, DeviceId::gpu(0)).unwrap();
        let snap = rec.snapshot();
        assert_eq!(snap.counters["alloc.pages_materialized"], before);
        assert_eq!(snap.counters["alloc.pages_reused"], 4);
        a.release_tensor(t2).unwrap();
        // Trim under pressure: keep 1, reclaim 3.
        assert_eq!(a.trim_reuse_pool(DeviceId::gpu(0), 1), 3);
        let s = a.stats(DeviceId::gpu(0));
        assert_eq!((s.cached_pages, s.reclaimed_pages), (1, 3));
        assert_eq!(rec.snapshot().counters["alloc.pages_trimmed"], 3);
        // Reclaimed frames still serve allocations (re-materialized,
        // zeroed like fresh pages).
        let t3 = a.alloc_tensor_raw(4 * PS, DeviceId::gpu(0)).unwrap();
        assert_eq!(a.read_tensor(t3).unwrap(), vec![0u8; 4 * PS as usize]);
        assert_eq!(rec.snapshot().gauges["alloc.GPU0.cached_pages"], 0);
    }

    #[test]
    fn reuse_limit_zero_disables_pooling() {
        let mut a = PageAllocator::with_page_size(PS, true).with_reuse_limit(Some(0));
        a.add_pool(DeviceId::gpu(0), 8 * PS).unwrap();
        let rec = crate::obs::Recorder::enabled();
        a.set_recorder(rec.clone());
        for _ in 0..3 {
            let t = a.alloc_tensor_raw(2 * PS, DeviceId::gpu(0)).unwrap();
            a.release_tensor(t).unwrap();
        }
        let snap = rec.snapshot();
        assert_eq!(
            snap.counters["alloc.pages_reused"], 0,
            "no pooled reuse at limit 0"
        );
        assert_eq!(snap.counters["alloc.pages_materialized"], 6);
        let s = a.stats(DeviceId::gpu(0));
        assert_eq!(s.cached_pages, 0);
        assert_eq!(s.reclaimed_pages, 2);
    }

    #[test]
    fn compaction_squeezes_gaps_and_consolidates() {
        let mut a = PageAllocator::with_page_size(PS, true);
        a.add_pool(DeviceId::gpu(0), 8 * PS).unwrap();
        let rec = crate::obs::Recorder::enabled();
        a.set_recorder(rec.clone());
        // Build fragmentation: four small tensors, each alone in a page.
        let keep: Vec<TensorId> = (0..4)
            .map(|i| {
                let t = a.alloc_tensor_raw(PS / 4 + i, DeviceId::gpu(0)).unwrap();
                let payload: Vec<u8> = (0..PS / 4 + i).map(|j| (j + 7 * i) as u8).collect();
                a.write_tensor(t, &payload).unwrap();
                t
            })
            .collect();
        let s = a.stats(DeviceId::gpu(0));
        assert_eq!(s.used_pages, 4);
        assert!(s.internal_frag() > 0.5);
        let report = a.compact_device(DeviceId::gpu(0)).unwrap();
        assert!(
            report.pages_reclaimed >= 2,
            "four quarter-pages pack into one"
        );
        assert!(report.frag_ppm_after < report.frag_ppm_before);
        let s = a.stats(DeviceId::gpu(0));
        assert_eq!(s.used_pages, 4 - report.pages_reclaimed);
        // Every tensor still reads back intact.
        for (i, t) in keep.iter().enumerate() {
            let expected: Vec<u8> = (0..PS / 4 + i as u64)
                .map(|j| (j + 7 * i as u64) as u8)
                .collect();
            assert_eq!(a.read_tensor(*t).unwrap(), expected);
        }
        // Observability: the pass is counted and lands on the allocator track.
        assert_eq!(rec.snapshot().counters["alloc.compactions"], 1);
        assert!(rec.events().iter().any(|e| matches!(
            e.kind,
            crate::obs::ObsEventKind::Counter {
                name: "alloc.compactions",
                ..
            }
        ) && e.thread == ObsThread::Allocator));
    }

    #[test]
    fn compaction_squeezes_departed_cotenant_gap() {
        let mut a = PageAllocator::with_page_size(PS, true);
        a.add_pool(DeviceId::gpu(0), 8 * PS).unwrap();
        // t1 (1.5 pages) then t2 starting in t1's tail; release t1 →
        // t2's head range sits stranded at offset PS/2 of its page.
        let t1 = a.alloc_tensor_raw(PS * 3 / 2, DeviceId::gpu(0)).unwrap();
        let t2 = a.alloc_tensor_raw(PS * 3 / 2, DeviceId::gpu(0)).unwrap();
        let payload: Vec<u8> = (0..PS * 3 / 2).map(|i| (i % 241) as u8).collect();
        a.write_tensor(t2, &payload).unwrap();
        a.release_tensor(t1).unwrap();
        let head = a.tensor(t2).unwrap().pages[0];
        assert!(head.offset > 0, "fixture: head range stranded mid-page");
        let report = a.compact_device(DeviceId::gpu(0)).unwrap();
        assert!(report.pages_compacted >= 1);
        let head_after = a.tensor(t2).unwrap().pages[0];
        assert_eq!(head_after.offset, 0, "gap squeezed out");
        assert_eq!(
            a.read_tensor(t2).unwrap(),
            payload,
            "data moved with the range"
        );
    }

    #[test]
    fn maybe_compact_respects_threshold() {
        let mut a = alloc_two_pools();
        // Unarmed: never compacts.
        let t = a.alloc_tensor_raw(10, DeviceId::gpu(0)).unwrap();
        assert!(a.maybe_compact(DeviceId::gpu(0)).is_none());
        // Armed with a high threshold: small frag stays untouched.
        a.set_compaction_threshold_ppm(Some(999_999));
        a.release_tensor(t).unwrap();
        let _t1 = a.alloc_tensor_raw(PS, DeviceId::gpu(0)).unwrap();
        assert!(
            a.maybe_compact(DeviceId::gpu(0)).is_none(),
            "full pages have no frag"
        );
        // Low threshold + two fragmented pages: fires and reports.
        let _a1 = a.alloc_tensor_raw(PS / 4, DeviceId::gpu(0)).unwrap();
        let _a2 = a.alloc_tensor_raw(PS / 4, DeviceId::gpu(0)).unwrap();
        a.set_compaction_threshold_ppm(Some(100_000));
        let report = a
            .maybe_compact(DeviceId::gpu(0))
            .expect("threshold crossed");
        assert_eq!(report.pages_reclaimed, 1);
    }

    #[test]
    fn typed_allocation() {
        let mut a = alloc_two_pools();
        let t = a
            .alloc_tensor(vec![16, 16], DType::Single, DeviceId::CPU)
            .unwrap();
        assert_eq!(a.tensor(t).unwrap().bytes(), 1024);
        assert_eq!(a.tensor(t).unwrap().shape, vec![16, 16]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Random operation against the allocator.
    #[derive(Debug, Clone)]
    enum Op {
        Alloc {
            bytes: u64,
            gpu: bool,
        },
        Release {
            pick: usize,
        },
        MoveTensor {
            pick: usize,
            to_gpu: bool,
        },
        /// Move a *shared-page* tensor specifically (exercises the
        /// release-then-realloc path, which was the headline bug).
        MoveShared {
            pick: usize,
            to_gpu: bool,
        },
        MovePage {
            pick: usize,
            to_gpu: bool,
        },
        Merge {
            pick: usize,
        },
        Compact {
            gpu: bool,
        },
        Trim {
            keep: usize,
            gpu: bool,
        },
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            // Bias sizes toward multi-page tensors so open-page sharing
            // (and with the small GPU pool, full-pool failures) are common.
            (1u64..5_000, any::<bool>()).prop_map(|(bytes, gpu)| Op::Alloc { bytes, gpu }),
            (any::<usize>()).prop_map(|pick| Op::Release { pick }),
            (any::<usize>(), any::<bool>())
                .prop_map(|(pick, to_gpu)| Op::MoveTensor { pick, to_gpu }),
            (any::<usize>(), any::<bool>())
                .prop_map(|(pick, to_gpu)| Op::MoveShared { pick, to_gpu }),
            (any::<usize>(), any::<bool>())
                .prop_map(|(pick, to_gpu)| Op::MovePage { pick, to_gpu }),
            (any::<usize>()).prop_map(|pick| Op::Merge { pick }),
            (any::<bool>()).prop_map(|gpu| Op::Compact { gpu }),
            (0usize..4, any::<bool>()).prop_map(|(keep, gpu)| Op::Trim { keep, gpu }),
        ]
    }

    /// Global invariants after any operation sequence:
    /// * every page holds ≤ 2 tenants;
    /// * per-pool used_pages never exceeds capacity, and tenant bytes never
    ///   exceed used_pages × page_size;
    /// * every live tensor's ranges sum to its byte size, and its
    ///   device/None state is consistent with its pages' devices.
    fn check_invariants(a: &PageAllocator, live: &[TensorId]) {
        for d in [DeviceId::gpu(0), DeviceId::CPU] {
            let s = a.stats(d);
            assert!(s.used_pages <= s.capacity_pages);
            assert!(s.tenant_bytes <= s.used_pages as u64 * s.page_size);
            assert!(s.peak_used_pages >= s.used_pages);
            // Reuse-pool hygiene: cached and reclaimed frames are free
            // (no tenants), reclaimed ones carry no backing memory, and
            // no frame sits on both lists.
            let pool = &a.pools[&d];
            for id in &pool.free_list {
                assert!(a.page(*id).is_free(), "cached page with tenants");
                assert!(!pool.reclaimed.contains(id), "frame on both lists");
            }
            for id in &pool.reclaimed {
                assert!(a.page(*id).is_free(), "reclaimed page with tenants");
                assert!(!a.page(*id).is_backed(), "reclaimed page kept memory");
            }
        }
        for &t in live {
            let tensor = a.tensor(t).expect("live tensor resolvable");
            assert_eq!(tensor.allocated_bytes(), tensor.bytes());
            let devices: Vec<DeviceId> = tensor
                .pages
                .iter()
                .map(|r| a.page(r.page).device())
                .collect();
            for r in &tensor.pages {
                assert!(a.page(r.page).num_tenants() <= 2);
                assert!(a.page(r.page).tenant_of(t).is_some());
            }
            let uniform = devices.windows(2).all(|w| w[0] == w[1]);
            match tensor.device {
                Some(dev) => {
                    assert!(uniform && devices.first() == Some(&dev), "device mismatch")
                }
                None => assert!(!uniform, "split tensor must report not-ready"),
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn allocator_invariants_hold_under_random_ops(
            ops in proptest::collection::vec(op_strategy(), 1..80)
        ) {
            const PS: u64 = 1024;
            let mut a = PageAllocator::with_page_size(PS, false);
            // A deliberately tight GPU pool (~1.6 max-sized tensors) so
            // moves and allocations routinely target a full pool, plus a
            // reuse limit low enough that trims happen under churn.
            a.add_pool(DeviceId::gpu(0), 8 * PS).unwrap();
            a.add_pool(DeviceId::CPU, 48 * PS).unwrap();
            a.set_reuse_limit(Some(6));
            let mut live: Vec<TensorId> = Vec::new();

            // Every fallible operation must be all-or-nothing: on `Err`
            // the allocator is byte-identical to before the call.
            macro_rules! atomic {
                ($call:expr) => {{
                    let fp = a.state_fingerprint();
                    let result = $call;
                    if result.is_err() {
                        prop_assert!(
                            a.state_fingerprint() == fp,
                            "failed op left side effects"
                        );
                    }
                    result
                }};
            }

            for op in ops {
                match op {
                    Op::Alloc { bytes, gpu } => {
                        let dev = if gpu { DeviceId::gpu(0) } else { DeviceId::CPU };
                        if let Ok(t) = atomic!(a.alloc_tensor_raw(bytes, dev)) {
                            live.push(t);
                        }
                    }
                    Op::Release { pick } if !live.is_empty() => {
                        let t = live.swap_remove(pick % live.len());
                        a.release_tensor(t).unwrap();
                    }
                    Op::MoveTensor { pick, to_gpu } if !live.is_empty() => {
                        let t = live[pick % live.len()];
                        let dev = if to_gpu { DeviceId::gpu(0) } else { DeviceId::CPU };
                        // May fail when the target pool is full: must be clean.
                        let _ = atomic!(a.move_tensor(t, dev));
                    }
                    Op::MoveShared { pick, to_gpu } if !live.is_empty() => {
                        // Target specifically tensors with a shared page —
                        // the release-then-realloc path.
                        let shared: Vec<TensorId> = live
                            .iter()
                            .copied()
                            .filter(|t| {
                                a.tensor(*t).unwrap().pages.iter().any(|r| {
                                    a.page(r.page).num_tenants() > 1
                                })
                            })
                            .collect();
                        if !shared.is_empty() {
                            let t = shared[pick % shared.len()];
                            let dev = if to_gpu { DeviceId::gpu(0) } else { DeviceId::CPU };
                            let _ = atomic!(a.move_tensor(t, dev));
                        }
                    }
                    Op::MovePage { pick, to_gpu } if !live.is_empty() => {
                        let t = live[pick % live.len()];
                        let dev = if to_gpu { DeviceId::gpu(0) } else { DeviceId::CPU };
                        let page = a.tensor(t).unwrap().pages[0].page;
                        let _ = atomic!(a.move_page(page, dev));
                    }
                    Op::Merge { pick } if !live.is_empty() => {
                        let t = live[pick % live.len()];
                        // Merge requires a compute-ready (single-device) tensor.
                        if a.tensor(t).unwrap().device.is_some()
                            && atomic!(a.merge_tensor(t)).is_ok()
                        {
                            prop_assert!(a.tensor_is_merged(a.tensor(t).unwrap()));
                        }
                    }
                    Op::Compact { gpu } => {
                        let dev = if gpu { DeviceId::gpu(0) } else { DeviceId::CPU };
                        let report = a.compact_device(dev).unwrap();
                        prop_assert!(report.frag_ppm_after <= report.frag_ppm_before);
                    }
                    Op::Trim { keep, gpu } => {
                        let dev = if gpu { DeviceId::gpu(0) } else { DeviceId::CPU };
                        a.trim_reuse_pool(dev, keep);
                        prop_assert!(a.stats(dev).cached_pages <= keep);
                    }
                    _ => {}
                }
                check_invariants(&a, &live);
            }

            // Drain: everything releases and both pools return to empty.
            for t in live.drain(..) {
                a.release_tensor(t).unwrap();
            }
            for d in [DeviceId::gpu(0), DeviceId::CPU] {
                prop_assert_eq!(a.stats(d).used_pages, 0);
                prop_assert_eq!(a.stats(d).tenant_bytes, 0);
            }
        }

        #[test]
        fn backed_data_integrity_under_churn(
            seeds in proptest::collection::vec((1u64..300, any::<bool>()), 1..24)
        ) {
            const PS: u64 = 64;
            let mut a = PageAllocator::with_page_size(PS, true);
            a.add_pool(DeviceId::gpu(0), 64 * PS).unwrap();
            a.add_pool(DeviceId::CPU, 64 * PS).unwrap();
            let mut live: Vec<(TensorId, Vec<u8>)> = Vec::new();
            for (i, (bytes, mv)) in seeds.into_iter().enumerate() {
                if let Ok(t) = a.alloc_tensor_raw(bytes, DeviceId::gpu(0)) {
                    let payload: Vec<u8> =
                        (0..bytes).map(|j| (i as u64 * 37 + j) as u8).collect();
                    a.write_tensor(t, &payload).unwrap();
                    live.push((t, payload));
                }
                if mv && !live.is_empty() {
                    let (t, _) = live[i % live.len()];
                    let _ = a.move_tensor(t, DeviceId::CPU);
                }
                // All payloads intact after every step.
                for (t, expected) in &live {
                    prop_assert_eq!(&a.read_tensor(*t).unwrap(), expected);
                }
            }
        }
    }
}
