//! Incremental replanning — the delta fast path over Algorithm 1.
//!
//! A full [`UnifiedScheduler::schedule`] call at GPT-3-1T scale is dominated
//! by the two O(pages) / O(tasks) passes: materializing the 10⁵-entry
//! movement stack and emitting the ~10⁵-task trigger-sorted list. The
//! *decisions* — which page runs evict, where they re-add, how far each
//! all-gather advances — cost only O(steps · log steps), because PR 4's
//! segment-tree timeline made every decision a range query.
//!
//! The [`Planner`] exploits that split. It keeps the previous plan's
//! decision state in **run form** (one `[lo, hi)` page range per same-layer
//! batch, exactly the batches the full planner's stack loops drain), so a
//! [`ReplanDelta`] — layers touched, steps removed/added, capacity changed —
//! replans by:
//!
//! 1. reverting the segment-tree timeline to its pre-decision baseline with
//!    one memcpy ([`crate::seqtree::RangeAddMax::restore_from`]) and
//!    patching only the touched layers' byte deltas as O(log steps) range
//!    adds ([`TimelineState::reset_reverting`]);
//! 2. re-running the decision phases over runs (binary searches on cached
//!    per-layer page-prefix sums replace the per-page stack loops);
//! 3. diffing the new decisions against the previous ones to find the
//!    *dirty triggers*, and re-emitting only those slots of the
//!    trigger-sorted task list — untouched layers' evict/re-add/prefetch
//!    decisions and their task slots are preserved verbatim (`memcpy` of
//!    clean regions, or pure in-place patching when the offsets are
//!    unchanged).
//!
//! The from-scratch planner remains the oracle: every incremental result is
//! proven byte-identical (tasks, offsets, stats) to
//! `UnifiedScheduler::schedule` on the mutated input by the unit tests and
//! a proptest over random mutation sequences below. DESIGN.md §14 gives the
//! delta model and the splice-soundness argument built on this identity.

use crate::error::{Error, Result};
use crate::scheduler::{
    LayerPatch, LayerPlan, PlannedPage, Schedule, ScheduleStats, ScheduleTask, SchedulerInput,
    StepKind, TaskOp, TimelineState, UnifiedScheduler,
};
use serde::{Deserialize, Serialize};

/// A mutation of the scheduler input between plans. Empty fields mean
/// "unchanged"; [`ReplanDelta::diff`] computes the minimal delta between two
/// inputs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReplanDelta {
    /// Replaced layer plans at existing indices (each index at most once).
    pub layers: Vec<(usize, LayerPlan)>,
    /// Wholesale layer-list replacement (elastic resize reshaping every
    /// shard). Mutually exclusive with `layers`; a layer-*count* change
    /// additionally requires `steps`.
    pub replace_layers: Option<Vec<LayerPlan>>,
    /// New GPU byte budget (degraded headroom / elastic capacity change).
    pub gpu_budget: Option<u64>,
    /// Replacement compute-step list (steps removed/added).
    pub steps: Option<Vec<StepKind>>,
    /// Replacement per-step base load.
    pub step_base_load: Option<Vec<u64>>,
    /// New page size (carried through to consumers; no scheduling effect).
    pub page_size: Option<u64>,
}

impl ReplanDelta {
    /// A single-layer replacement.
    pub fn layer(idx: usize, plan: LayerPlan) -> Self {
        Self {
            layers: vec![(idx, plan)],
            ..Self::default()
        }
    }

    /// A capacity-only change (outage headroom, elastic budget).
    pub fn capacity(gpu_budget: u64) -> Self {
        Self {
            gpu_budget: Some(gpu_budget),
            ..Self::default()
        }
    }

    /// The minimal delta turning `old` into `new`.
    pub fn diff(old: &SchedulerInput, new: &SchedulerInput) -> Self {
        let mut d = Self::default();
        if old.gpu_budget != new.gpu_budget {
            d.gpu_budget = Some(new.gpu_budget);
        }
        if old.page_size != new.page_size {
            d.page_size = Some(new.page_size);
        }
        if old.steps != new.steps {
            d.steps = Some(new.steps.clone());
        }
        if old.step_base_load != new.step_base_load {
            d.step_base_load = Some(new.step_base_load.clone());
        }
        if old.layers.len() != new.layers.len() {
            d.replace_layers = Some(new.layers.clone());
            if d.steps.is_none() {
                d.steps = Some(new.steps.clone());
            }
        } else {
            for (i, (a, b)) in old.layers.iter().zip(&new.layers).enumerate() {
                if a.layer != b.layer
                    || a.full_param_bytes != b.full_param_bytes
                    || a.working_set != b.working_set
                    || a.shard_pages != b.shard_pages
                {
                    d.layers.push((i, b.clone()));
                }
            }
        }
        d
    }

    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }
}

/// What an incremental replan reused versus recomputed — the observability
/// payload behind the `plan.layers_reused` counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplanOutcome {
    /// Layers whose `LayerPlan` the delta replaced.
    pub layers_touched: usize,
    /// Layers whose decisions *and* task slots carried over verbatim.
    pub layers_reused: usize,
    /// Trigger slots that were re-emitted.
    pub triggers_patched: usize,
    /// Total trigger slots in the schedule.
    pub triggers_total: usize,
    /// Whether the task buffer was patched in place (offsets unchanged)
    /// rather than rebuilt with clean-region memcpys.
    pub patched_in_place: bool,
}

/// A contiguous run of pages `[lo, hi)` of one layer — the unit the decision
/// phases batch over (the full planner's maximal same-layer stack runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Run {
    layer: usize,
    lo: usize,
    hi: usize,
}

/// A committed re-add: pages `[lo, hi)` of `layer` re-enter at `trigger`.
/// Events are stored in the full planner's `rescheduled` push order
/// (triggers nondecreasing, pages ascending within an event).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ReaddEvent {
    layer: usize,
    lo: usize,
    hi: usize,
    trigger: usize,
}

/// The incremental replanner: a persistent [`UnifiedScheduler`] session that
/// keeps its input, timeline, decision runs and emitted schedule alive
/// across [`Planner::replan`] calls, so each delta pays only for what it
/// touches. `Planner::new` runs the same Algorithm 1 as
/// [`UnifiedScheduler::schedule`]; every subsequent state is byte-identical
/// to a from-scratch plan of the current input.
pub struct Planner {
    sched: UnifiedScheduler,
    input: SchedulerInput,
    timeline: TimelineState,
    /// `page_prefix[l][i]` = bytes of layer `l`'s first `i` pages — the
    /// cache that turns per-page stack loops into binary searches. Rebuilt
    /// only for layers whose page list changed.
    page_prefix: Vec<Vec<u64>>,
    // Current decisions.
    moves: Vec<Run>,
    readds: Vec<ReaddEvent>,
    gather: Vec<usize>,
    gathers_advanced: usize,
    // Previous decisions (diff source).
    prev_moves: Vec<Run>,
    prev_readds: Vec<ReaddEvent>,
    prev_gather: Vec<usize>,
    // The live schedule, byte-identical to a full plan of `input`.
    schedule: Schedule,
    // Scratch buffers reused across replans.
    wait: Vec<Run>,
    scratch_tasks: Vec<ScheduleTask>,
    tmp_tasks: Vec<ScheduleTask>,
    trig_off: Vec<usize>,
    trig_cur: Vec<usize>,
    trig_steps: Vec<usize>,
    new_off: Vec<usize>,
    dirty: Vec<bool>,
    changed_layers: Vec<bool>,
    last_outcome: ReplanOutcome,
    // Decision-margin evidence recorded by the last full `plan_decisions`
    // pass, consumed by the slack fast path (see `try_slack_fast_path`).
    /// Per step: how many extra bytes the step can absorb before its phase-1
    /// eviction check flips. `0` where an eviction committed; `u64::MAX`
    /// where the step is unconstrained.
    slack: Vec<u64>,
    /// Phase-2 spans `(lo, hi, margin)`: each fired gather advance and the
    /// minimum margin by which its stop point held over `[lo, hi]`.
    p2_spans: Vec<(usize, usize, u64)>,
    /// Re-add commits `(layer, trigger, last_use)`: the capacity query
    /// behind each committed re-add read the range `[trigger, last_use]`
    /// minus the layer's own steps, so a byte change to any step in there
    /// could have changed the committed batch.
    poisoned: Vec<(usize, usize, usize)>,
}

impl Planner {
    /// Plan `input` from scratch and open an incremental session.
    pub fn new(sched: UnifiedScheduler, input: SchedulerInput) -> Result<Self> {
        validate_input(&input)?;
        let timeline = TimelineState::new(&input);
        let mut planner = Self {
            sched,
            timeline,
            page_prefix: input.layers.iter().map(prefix_of).collect(),
            input,
            moves: Vec::new(),
            readds: Vec::new(),
            gather: Vec::new(),
            gathers_advanced: 0,
            prev_moves: Vec::new(),
            prev_readds: Vec::new(),
            prev_gather: Vec::new(),
            schedule: Schedule {
                tasks: Vec::new(),
                stats: ScheduleStats {
                    pages_resident: 0,
                    pages_cpu_bound: 0,
                    peak_gpu_bytes: 0,
                    resident_fraction: 0.0,
                    gathers_advanced: 0,
                },
                num_steps: 0,
                trigger_offsets: Vec::new(),
            },
            wait: Vec::new(),
            scratch_tasks: Vec::new(),
            tmp_tasks: Vec::new(),
            trig_off: Vec::new(),
            trig_cur: Vec::new(),
            trig_steps: Vec::new(),
            new_off: Vec::new(),
            dirty: Vec::new(),
            changed_layers: Vec::new(),
            last_outcome: ReplanOutcome::default(),
            slack: Vec::new(),
            p2_spans: Vec::new(),
            poisoned: Vec::new(),
        };
        planner.plan_decisions();
        planner.emit(false);
        planner.last_outcome = ReplanOutcome {
            layers_touched: planner.input.layers.len(),
            layers_reused: 0,
            triggers_patched: planner.input.steps.len(),
            triggers_total: planner.input.steps.len(),
            patched_in_place: false,
        };
        Ok(planner)
    }

    /// The current schedule — byte-identical to
    /// `UnifiedScheduler::schedule(&self.input())`.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The current (post-delta) scheduler input.
    pub fn input(&self) -> &SchedulerInput {
        &self.input
    }

    /// The scheduler configuration this session plans with.
    pub fn scheduler(&self) -> &UnifiedScheduler {
        &self.sched
    }

    /// What the most recent plan/replan reused.
    pub fn last_outcome(&self) -> ReplanOutcome {
        self.last_outcome
    }

    /// Apply `delta` and replan incrementally. On `Err` the planner is
    /// untouched (validation and feasibility run before any mutation) and
    /// the previous schedule stays live.
    pub fn replan(&mut self, delta: &ReplanDelta) -> Result<ReplanOutcome> {
        // ---- Validate against the prospective input; mutate nothing. ----
        let n_old = self.input.layers.len();
        let n_new = delta.replace_layers.as_ref().map_or(n_old, Vec::len);
        if let Some(rl) = &delta.replace_layers {
            if !delta.layers.is_empty() {
                return Err(Error::BadReplanDelta(
                    "replace_layers and per-index layers are mutually exclusive",
                ));
            }
            if rl.is_empty() {
                return Err(Error::BadReplanDelta("replace_layers with empty model"));
            }
            if rl.len() != n_old && delta.steps.is_none() {
                return Err(Error::BadReplanDelta(
                    "layer-count change requires a replacement step list",
                ));
            }
        }
        let mut replaced_at: Vec<Option<usize>> = vec![None; n_old];
        for (k, (idx, _)) in delta.layers.iter().enumerate() {
            if *idx >= n_old {
                return Err(Error::BadReplanDelta("layer index out of range"));
            }
            if replaced_at[*idx].is_some() {
                return Err(Error::BadReplanDelta("duplicate layer index"));
            }
            replaced_at[*idx] = Some(k);
        }
        let steps: &[StepKind] = delta.steps.as_deref().unwrap_or(&self.input.steps);
        let base: &[u64] = delta
            .step_base_load
            .as_deref()
            .unwrap_or(&self.input.step_base_load);
        let budget = delta.gpu_budget.unwrap_or(self.input.gpu_budget);
        let mut covered = vec![false; n_new];
        let look = |l: usize| -> &LayerPlan {
            if let Some(rl) = &delta.replace_layers {
                &rl[l]
            } else if let Some(k) = replaced_at[l] {
                &delta.layers[k].1
            } else {
                &self.input.layers[l]
            }
        };
        for (j, s) in steps.iter().enumerate() {
            let l = s.layer();
            if l >= n_new {
                return Err(Error::BadReplanDelta("step references a missing layer"));
            }
            covered[l] = true;
            let lp = look(l);
            let need = lp.full_param_bytes + lp.working_set + base.get(j).copied().unwrap_or(0);
            if need > budget {
                return Err(Error::WorkingSetTooLarge {
                    layer_bytes: need,
                    gpu_bytes: budget,
                });
            }
        }
        if covered.iter().any(|&c| !c) {
            return Err(Error::BadReplanDelta("a layer has no compute step"));
        }

        // ---- Slack fast path. ----
        // A working-set-only increase that fits inside every recorded
        // decision margin provably flips no greedy choice, so the whole
        // decision replay — and the emission behind it — can be skipped:
        // the replan is a handful of O(log steps) point patches.
        if delta.steps.is_none()
            && delta.step_base_load.is_none()
            && delta.replace_layers.is_none()
            && delta.gpu_budget.is_none()
            && delta.page_size.is_none()
            && !delta.layers.is_empty()
        {
            if let Some(outcome) = self.try_slack_fast_path(&delta.layers) {
                self.last_outcome = outcome;
                return Ok(outcome);
            }
        }

        // ---- Apply the delta. ----
        let full_reset = delta.steps.is_some()
            || delta.step_base_load.is_some()
            || delta.replace_layers.is_some();
        // (layer, old totals, new totals) patches for the revert path.
        let mut patches: Vec<LayerPatch> = Vec::new();
        let mut layers_touched = 0usize;
        self.changed_layers.clear();
        self.changed_layers.resize(n_new, false);
        if let Some(rl) = &delta.replace_layers {
            self.input.layers.clone_from(rl);
            self.page_prefix.clear();
            self.page_prefix
                .extend(self.input.layers.iter().map(prefix_of));
            layers_touched = n_new;
            for c in &mut self.changed_layers {
                *c = true;
            }
        } else {
            for (idx, lp) in &delta.layers {
                let old = &self.input.layers[*idx];
                let old_tot = (
                    self.page_prefix[*idx].last().copied().unwrap_or(0),
                    old.full_param_bytes,
                    old.working_set,
                );
                let pages_changed = old.shard_pages != lp.shard_pages;
                self.input.layers[*idx] = lp.clone();
                if pages_changed {
                    self.page_prefix[*idx] = prefix_of(lp);
                }
                let new_tot = (
                    self.page_prefix[*idx].last().copied().unwrap_or(0),
                    lp.full_param_bytes,
                    lp.working_set,
                );
                patches.push((*idx, old_tot, new_tot));
                self.changed_layers[*idx] = pages_changed;
                layers_touched += 1;
            }
        }
        if let Some(s) = &delta.steps {
            self.input.steps.clone_from(s);
        }
        if let Some(b) = &delta.step_base_load {
            self.input.step_base_load.clone_from(b);
        }
        if let Some(b) = delta.gpu_budget {
            self.input.gpu_budget = b;
        }
        if let Some(p) = delta.page_size {
            self.input.page_size = p;
        }

        // ---- Re-arm the timeline and redo the decision phases. ----
        std::mem::swap(&mut self.moves, &mut self.prev_moves);
        std::mem::swap(&mut self.readds, &mut self.prev_readds);
        std::mem::swap(&mut self.gather, &mut self.prev_gather);
        if full_reset {
            self.timeline.reset(&self.input, true);
        } else {
            self.timeline.reset_reverting(&self.input, &patches);
        }
        self.plan_decisions();

        // ---- Diff decisions → dirty triggers → patch the emission. ----
        let n_steps = self.input.steps.len();
        let diffable = !full_reset;
        if diffable {
            // `changed_layers` marks layers whose *emitted pages* changed;
            // widen it with decision changes during the dirty walk, then
            // derive `layers_reused` (untouched + unchanged decisions).
            self.compute_dirty();
        }
        let (patched, in_place) = self.emit(diffable);
        let mut reused = 0usize;
        if diffable {
            for (l, &changed) in self.changed_layers.iter().enumerate() {
                let touched = if delta.replace_layers.is_some() {
                    true
                } else {
                    replaced_at[l].is_some()
                };
                if !changed && !touched {
                    reused += 1;
                }
            }
        }
        let outcome = ReplanOutcome {
            layers_touched,
            layers_reused: reused,
            triggers_patched: patched,
            triggers_total: n_steps,
            patched_in_place: in_place,
        };
        self.last_outcome = outcome;
        Ok(outcome)
    }

    /// The delta fast path: commit a pure working-set *increase* without
    /// re-running any decision phase, or return `None` for the slow path.
    ///
    /// Soundness (DESIGN.md §14): with steps, base load, budget, page size,
    /// shard pages and full bytes all unchanged, the only timeline values
    /// that differ from the previous plan's are the touched layers' own
    /// compute steps, each higher by its layer's increase `d` — every
    /// decision mutation is a value-independent range-add, so the shift
    /// persists through an identical decision replay by induction. The
    /// replay *is* identical when every value the greedy pass branches on
    /// keeps its branch:
    ///
    /// - phase-1 fit checks read only their own step; `d ≤ slack[s]` keeps
    ///   the break (and a step whose eviction loop emptied the stack while
    ///   over budget stays over budget — increases preserve it for free);
    /// - committed re-adds chose their batch from a capacity query over
    ///   `[trigger, last_use]` minus the re-added layer's own steps — a
    ///   touched step inside such a range (`poisoned`) rejects the fast
    ///   path, while *failed* queries are increase-monotone: a shrunken
    ///   capacity still fails;
    /// - a fired phase-2 advance stopped at the last step above its
    ///   threshold; `d ≤ margin` for every touched step inside the advanced
    ///   span keeps that stop point, and non-fired advances stay non-fired
    ///   because increases only move the blocking step later.
    ///
    /// Decisions, task buffer, trigger layout and diff baselines are then
    /// reused verbatim; only the live/baseline trees, the consumed margins
    /// and the timeline-derived peak statistic are patched.
    fn try_slack_fast_path(&mut self, layers: &[(usize, LayerPlan)]) -> Option<ReplanOutcome> {
        // Certify every touched step before mutating anything.
        for (idx, lp) in layers {
            let old = &self.input.layers[*idx];
            if lp.layer != old.layer
                || lp.full_param_bytes != old.full_param_bytes
                || lp.shard_pages != old.shard_pages
            {
                return None;
            }
            // Decreases take the slow path: margins only certify increases.
            let d = lp.working_set.checked_sub(old.working_set)?;
            if d == 0 {
                continue;
            }
            for &s in self.timeline.steps_of(*idx) {
                if d > self.slack[s] {
                    return None;
                }
                if self
                    .p2_spans
                    .iter()
                    .any(|&(lo, hi, margin)| lo <= s && s <= hi && d > margin)
                {
                    return None;
                }
                if self
                    .poisoned
                    .iter()
                    .any(|&(l, t, lu)| t <= s && s <= lu && !self.timeline.is_own_step(l, s))
                {
                    return None;
                }
            }
        }
        // Commit: point-patch the trees, consume the margins, refresh the
        // one statistic that reads timeline values.
        for (idx, lp) in layers {
            let d = lp.working_set - self.input.layers[*idx].working_set;
            if d > 0 {
                for &s in self.timeline.steps_of(*idx) {
                    self.slack[s] = self.slack[s].saturating_sub(d);
                    for (lo, hi, margin) in &mut self.p2_spans {
                        if *lo <= s && s <= *hi {
                            // Saturating: a span holding several touched
                            // steps shrinks once per step, which can
                            // overshoot the true (per-step) margin loss.
                            *margin = margin.saturating_sub(d);
                        }
                    }
                }
                self.timeline.nudge_own_steps(*idx, d);
            }
            self.input.layers[*idx] = lp.clone();
        }
        self.schedule.stats.peak_gpu_bytes = self.timeline.peak();
        Some(ReplanOutcome {
            layers_touched: layers.len(),
            layers_reused: self.input.layers.len() - layers.len(),
            triggers_patched: 0,
            triggers_total: self.input.steps.len(),
            patched_in_place: true,
        })
    }

    /// Phase 1 + phase 2 over runs: the same greedy decisions as the full
    /// planner's stack loops, with each maximal same-layer batch found by a
    /// binary search on the page-prefix sums instead of a per-page walk.
    fn plan_decisions(&mut self) {
        let Self {
            input,
            timeline,
            page_prefix,
            moves,
            readds,
            gather,
            gathers_advanced,
            sched,
            wait,
            slack,
            p2_spans,
            poisoned,
            ..
        } = self;
        let input = &*input;
        let n_steps = input.steps.len();
        // Fresh margin evidence for the slack fast path: every decision this
        // pass makes records how far it was from flipping.
        slack.clear();
        slack.resize(n_steps, u64::MAX);
        p2_spans.clear();
        poisoned.clear();
        moves.clear();
        for (li, layer) in input.layers.iter().enumerate() {
            if !layer.shard_pages.is_empty() {
                moves.push(Run {
                    layer: li,
                    lo: 0,
                    hi: layer.shard_pages.len(),
                });
            }
        }
        readds.clear();
        wait.clear();
        // `i` indexes the timeline, the wait stacks and `slack` alike.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n_steps {
            // Eviction: pop the minimal top batch that brings step `i` under
            // budget (whole run when net-zero at `i` or insufficient).
            let mut evicted_here = false;
            loop {
                let current = timeline.step_total(i);
                if current <= input.gpu_budget {
                    // The margin before this fit check flips. A committed
                    // eviction's batch size also read step `i`, so any
                    // increase there changes the cut: no slack.
                    slack[i] = if evicted_here {
                        0
                    } else {
                        input.gpu_budget - current
                    };
                    break;
                }
                let Some(&top) = moves.last() else {
                    if evicted_here {
                        slack[i] = 0;
                    }
                    break;
                };
                evicted_here = true;
                let l = top.layer;
                let p = &page_prefix[l];
                let len = top.hi - top.lo;
                let net_zero = i > timeline.last_use(l) || timeline.is_own_step(l, i);
                let need = current - input.gpu_budget;
                let total = p[top.hi] - p[top.lo];
                let k = if net_zero || total < need {
                    len
                } else {
                    // Minimal k with suffix-sum(k) >= need (monotone).
                    let (mut lo_k, mut hi_k) = (1usize, len);
                    while lo_k < hi_k {
                        let mid = lo_k + (hi_k - lo_k) / 2;
                        if p[top.hi] - p[top.hi - mid] >= need {
                            hi_k = mid;
                        } else {
                            lo_k = mid + 1;
                        }
                    }
                    lo_k
                };
                let cut = top.hi - k;
                let batch = p[top.hi] - p[cut];
                timeline.evict(l, batch);
                if k == len {
                    moves.pop();
                } else if let Some(tr) = moves.last_mut() {
                    tr.hi = cut;
                }
                // Evicted pages [cut, top.hi) reach the wait stack with the
                // lowest index on top; merge when adjacent to the previous
                // eviction of the same layer (no re-add in between).
                match wait.last_mut() {
                    Some(w) if w.layer == l && w.lo == top.hi => w.lo = cut,
                    _ => wait.push(Run {
                        layer: l,
                        lo: cut,
                        hi: top.hi,
                    }),
                }
            }
            // Re-add backfill: drain the maximal prefix of the same-layer
            // top group that fits the batched capacity.
            'readd: while let Some(&top) = wait.last() {
                let l = top.layer;
                let t = i + 1;
                let Some(cap) = timeline.readd_capacity(input, l, t) else {
                    break;
                };
                let mut gstart = wait.len();
                while gstart > 0 && wait[gstart - 1].layer == l {
                    gstart -= 1;
                }
                let p = &page_prefix[l];
                let mut batch = 0u64;
                let mut drained_runs = 0usize;
                let mut partial = 0usize;
                let mut group_done = true;
                for r in wait[gstart..].iter().rev() {
                    let left = cap - batch;
                    let rlen = r.hi - r.lo;
                    // Maximal m with prefix-sum(m) <= left (monotone).
                    let (mut lo_m, mut hi_m) = (0usize, rlen);
                    while lo_m < hi_m {
                        let mid = lo_m + (hi_m - lo_m).div_ceil(2);
                        if p[r.lo + mid] - p[r.lo] <= left {
                            lo_m = mid;
                        } else {
                            hi_m = mid - 1;
                        }
                    }
                    let m = lo_m;
                    batch += p[r.lo + m] - p[r.lo];
                    if m > 0 {
                        readds.push(ReaddEvent {
                            layer: l,
                            lo: r.lo,
                            hi: r.lo + m,
                            trigger: t,
                        });
                    }
                    if m < rlen {
                        partial = m;
                        group_done = false;
                        break;
                    }
                    drained_runs += 1;
                }
                if drained_runs == 0 && partial == 0 {
                    break; // head of the group does not fit
                }
                timeline.readd(l, batch, t);
                // The committed batch came from a capacity query over
                // `[t, last_use(l)]` minus `l`'s own steps: increases inside
                // that range invalidate the batch choice.
                poisoned.push((l, t, timeline.last_use(l)));
                wait.truncate(wait.len() - drained_runs);
                if !group_done {
                    if partial > 0 {
                        if let Some(w) = wait.last_mut() {
                            w.lo += partial;
                        }
                    }
                    break 'readd;
                }
            }
        }
        *gathers_advanced = 0;
        if sched.phase2 {
            for i in 0..n_steps {
                if timeline.advance_gather_recording(input, i, sched.prefetch_horizon, p2_spans) {
                    *gathers_advanced += 1;
                }
            }
        }
        gather.clear();
        gather.extend_from_slice(timeline.gather_triggers());
    }

    /// Mark the triggers whose task slots differ from the previous plan and
    /// widen `changed_layers` with every layer whose decisions moved.
    fn compute_dirty(&mut self) {
        let n_steps = self.input.steps.len();
        self.dirty.clear();
        self.dirty.resize(n_steps, false);
        // Moves (all at trigger 0): merge-walk by layer.
        {
            let (mut a, mut b) = (0usize, 0usize);
            while a < self.prev_moves.len() || b < self.moves.len() {
                match (self.prev_moves.get(a), self.moves.get(b)) {
                    (Some(x), Some(y)) if x.layer == y.layer => {
                        if x != y || self.changed_layers[y.layer] {
                            self.dirty[0] = true;
                            self.changed_layers[y.layer] = true;
                        }
                        a += 1;
                        b += 1;
                    }
                    (Some(x), Some(y)) => {
                        self.dirty[0] = true;
                        let l = if x.layer < y.layer {
                            a += 1;
                            x.layer
                        } else {
                            b += 1;
                            y.layer
                        };
                        self.changed_layers[l] = true;
                    }
                    (Some(x), None) => {
                        self.dirty[0] = true;
                        self.changed_layers[x.layer] = true;
                        a += 1;
                    }
                    (None, Some(y)) => {
                        self.dirty[0] = true;
                        self.changed_layers[y.layer] = true;
                        b += 1;
                    }
                    (None, None) => break,
                }
            }
        }
        // Re-adds: group-compare by trigger (both lists trigger-sorted).
        {
            let (mut a, mut b) = (0usize, 0usize);
            while a < self.prev_readds.len() || b < self.readds.len() {
                let ta = self.prev_readds.get(a).map(|e| e.trigger);
                let tb = self.readds.get(b).map(|e| e.trigger);
                let t = match (ta, tb) {
                    (Some(x), Some(y)) => x.min(y),
                    (Some(x), None) => x,
                    (None, Some(y)) => y,
                    (None, None) => break,
                };
                let a2 = a + self.prev_readds[a..]
                    .iter()
                    .take_while(|e| e.trigger == t)
                    .count();
                let b2 = b + self.readds[b..]
                    .iter()
                    .take_while(|e| e.trigger == t)
                    .count();
                let (ga, gb) = (&self.prev_readds[a..a2], &self.readds[b..b2]);
                if ga != gb {
                    self.dirty[t] = true;
                    for e in ga.iter().chain(gb) {
                        self.changed_layers[e.layer] = true;
                    }
                } else if gb.iter().any(|e| self.changed_layers[e.layer]) {
                    self.dirty[t] = true;
                }
                a = a2;
                b = b2;
            }
        }
        // Gathers: a moved trigger dirties both its old and new slot; an
        // unmoved one only if the layer's page content changed.
        for i in 0..n_steps {
            let (g, pg) = (self.gather[i], self.prev_gather[i]);
            if g != pg {
                self.dirty[g] = true;
                self.dirty[pg] = true;
                self.changed_layers[self.input.steps[i].layer()] = true;
            } else if self.changed_layers[self.input.steps[i].layer()] {
                self.dirty[g] = true;
            }
        }
    }

    /// (Re)build the trigger-sorted task list and stats. With `diffed` the
    /// dirty-trigger set drives a minimal re-emission: in-place slot patches
    /// when the offset table is unchanged, otherwise a rebuild that memcpys
    /// every clean slot from the previous task buffer. Returns
    /// `(triggers re-emitted, patched in place)`.
    fn emit(&mut self, diffed: bool) -> (usize, bool) {
        let Self {
            input,
            page_prefix,
            moves,
            readds,
            gather,
            timeline,
            schedule,
            scratch_tasks,
            tmp_tasks,
            trig_off,
            trig_cur,
            trig_steps,
            new_off,
            dirty,
            gathers_advanced,
            ..
        } = self;
        let input = &*input;
        let n_steps = input.steps.len();
        // Counting sort of steps by gather trigger (ascending step within
        // each trigger — the emission interleave needs it).
        trig_off.clear();
        trig_off.resize(n_steps + 1, 0);
        for &g in gather.iter() {
            trig_off[g + 1] += 1;
        }
        for i in 1..=n_steps {
            trig_off[i] += trig_off[i - 1];
        }
        trig_steps.clear();
        trig_steps.resize(n_steps, 0);
        trig_cur.clone_from(trig_off);
        for (i, &g) in gather.iter().enumerate() {
            trig_steps[trig_cur[g]] = i;
            trig_cur[g] += 1;
        }
        // New offsets + byte/page stats in one O(runs + events + steps) pass.
        new_off.clear();
        new_off.resize(n_steps + 1, 0);
        let mut resident_pages = 0usize;
        let mut resident_bytes = 0u64;
        for r in moves.iter() {
            new_off[1] += r.hi - r.lo;
            resident_pages += r.hi - r.lo;
            resident_bytes += page_prefix[r.layer][r.hi] - page_prefix[r.layer][r.lo];
        }
        for e in readds.iter() {
            new_off[e.trigger + 1] += e.hi - e.lo;
            resident_pages += e.hi - e.lo;
            resident_bytes += page_prefix[e.layer][e.hi] - page_prefix[e.layer][e.lo];
        }
        for (i, step) in input.steps.iter().enumerate() {
            new_off[gather[i] + 1] += input.layers[step.layer()].shard_pages.len();
            new_off[i + 1] += 1;
        }
        for i in 1..=n_steps {
            new_off[i] += new_off[i - 1];
        }
        let total_pages: usize = page_prefix.iter().map(|p| p.len() - 1).sum();
        let shard_bytes: u64 = page_prefix
            .iter()
            .map(|p| p.last().copied().unwrap_or(0))
            .sum();

        let mut patched = 0usize;
        let in_place = diffed && *new_off == schedule.trigger_offsets;
        if in_place {
            for t in 0..n_steps {
                if !dirty[t] {
                    continue;
                }
                patched += 1;
                tmp_tasks.clear();
                emit_trigger(input, moves, readds, trig_off, trig_steps, t, tmp_tasks);
                let range = new_off[t]..new_off[t + 1];
                debug_assert_eq!(tmp_tasks.len(), range.len());
                schedule.tasks[range].copy_from_slice(tmp_tasks);
            }
        } else {
            scratch_tasks.clear();
            scratch_tasks.reserve(new_off[n_steps]);
            // `t` indexes `dirty`, both offset tables and the task buffer.
            #[allow(clippy::needless_range_loop)]
            for t in 0..n_steps {
                if diffed && !dirty[t] {
                    // Clean slot: verbatim from the previous buffer.
                    let old = schedule.trigger_offsets[t]..schedule.trigger_offsets[t + 1];
                    scratch_tasks.extend_from_slice(&schedule.tasks[old]);
                } else {
                    patched += 1;
                    emit_trigger(input, moves, readds, trig_off, trig_steps, t, scratch_tasks);
                }
            }
            std::mem::swap(&mut schedule.tasks, scratch_tasks);
            schedule.trigger_offsets.clone_from(new_off);
        }
        schedule.num_steps = n_steps;
        schedule.stats = ScheduleStats {
            pages_resident: resident_pages,
            pages_cpu_bound: total_pages - resident_pages,
            peak_gpu_bytes: timeline.peak(),
            resident_fraction: if shard_bytes == 0 {
                0.0
            } else {
                resident_bytes as f64 / shard_bytes as f64
            },
            gathers_advanced: *gathers_advanced,
        };
        (patched, in_place)
    }
}

/// Per-layer page prefix sums: `prefix[i]` = bytes of the first `i` pages.
fn prefix_of(layer: &LayerPlan) -> Vec<u64> {
    let mut p = Vec::with_capacity(layer.shard_pages.len() + 1);
    p.push(0);
    let mut acc = 0u64;
    for &b in &layer.shard_pages {
        acc += b;
        p.push(acc);
    }
    p
}

/// The same input preconditions [`UnifiedScheduler::schedule`] enforces (or
/// panics on), surfaced as errors so a bad session start cannot poison the
/// incremental state.
fn validate_input(input: &SchedulerInput) -> Result<()> {
    if input.layers.is_empty() {
        return Err(Error::BadReplanDelta("empty model"));
    }
    let mut covered = vec![false; input.layers.len()];
    for s in &input.steps {
        if s.layer() >= input.layers.len() {
            return Err(Error::BadReplanDelta("step references a missing layer"));
        }
        covered[s.layer()] = true;
    }
    if covered.iter().any(|&c| !c) {
        return Err(Error::BadReplanDelta("a layer has no compute step"));
    }
    for (j, s) in input.steps.iter().enumerate() {
        let l = &input.layers[s.layer()];
        let base = input.step_base_load.get(j).copied().unwrap_or(0);
        let need = l.full_param_bytes + l.working_set + base;
        if need > input.gpu_budget {
            return Err(Error::WorkingSetTooLarge {
                layer_bytes: need,
                gpu_bytes: input.gpu_budget,
            });
        }
    }
    Ok(())
}

/// Emit one trigger slot in the full planner's within-trigger order:
/// trigger-0 moves, re-add movements, then — walking the per-step loop order
/// — step `t`'s own gather bundle (if not advanced away), step `t`'s
/// compute, and the advanced gather bundles of later steps.
fn emit_trigger(
    input: &SchedulerInput,
    moves: &[Run],
    readds: &[ReaddEvent],
    trig_off: &[usize],
    trig_steps: &[usize],
    t: usize,
    out: &mut Vec<ScheduleTask>,
) {
    if t == 0 {
        for r in moves {
            let pages = &input.layers[r.layer].shard_pages;
            for (off, &bytes) in pages[r.lo..r.hi].iter().enumerate() {
                out.push(ScheduleTask {
                    op: TaskOp::MoveToGpu(PlannedPage {
                        layer: r.layer,
                        index: r.lo + off,
                        bytes,
                    }),
                    trigger_id: 0,
                });
            }
        }
    }
    let lo = readds.partition_point(|e| e.trigger < t);
    let hi = readds.partition_point(|e| e.trigger <= t);
    for e in &readds[lo..hi] {
        let pages = &input.layers[e.layer].shard_pages;
        for (off, &bytes) in pages[e.lo..e.hi].iter().enumerate() {
            out.push(ScheduleTask {
                op: TaskOp::MoveToGpu(PlannedPage {
                    layer: e.layer,
                    index: e.lo + off,
                    bytes,
                }),
                trigger_id: t,
            });
        }
    }
    let slot = &trig_steps[trig_off[t]..trig_off[t + 1]];
    let mut rest = slot;
    if let Some((&first, tail)) = slot.split_first() {
        if first == t {
            gather_bundle(input, first, t, out);
            rest = tail;
        }
    }
    out.push(ScheduleTask {
        op: TaskOp::Compute(input.steps[t]),
        trigger_id: t,
    });
    for &i in rest {
        gather_bundle(input, i, t, out);
    }
}

fn gather_bundle(input: &SchedulerInput, step: usize, t: usize, out: &mut Vec<ScheduleTask>) {
    let l = input.steps[step].layer();
    for (pi, &bytes) in input.layers[l].shard_pages.iter().enumerate() {
        out.push(ScheduleTask {
            op: TaskOp::AllGather {
                page: PlannedPage {
                    layer: l,
                    index: pi,
                    bytes,
                },
                step,
            },
            trigger_id: t,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A jagged toy model: per-layer page lists of different shapes so the
    /// delta machinery sees non-uniform runs.
    fn jagged(budget: u64) -> SchedulerInput {
        let shapes: &[&[u64]] = &[&[10, 10, 10], &[25], &[5, 5, 5, 5], &[0, 12, 8]];
        let layers = shapes
            .iter()
            .enumerate()
            .map(|(l, pages)| LayerPlan {
                layer: l,
                shard_pages: pages.to_vec(),
                full_param_bytes: pages.iter().sum::<u64>() * 2,
                working_set: 7,
            })
            .collect();
        SchedulerInput {
            layers,
            steps: SchedulerInput::default_steps(shapes.len()),
            gpu_budget: budget,
            page_size: 16,
            step_base_load: Vec::new(),
        }
    }

    fn assert_matches(p: &Planner) {
        let full = match p.scheduler().schedule(p.input()) {
            Ok(s) => s,
            Err(e) => panic!("full planner rejected a planner-accepted input: {e}"),
        };
        assert_eq!(p.schedule().tasks, full.tasks);
        assert_eq!(p.schedule().stats, full.stats);
        assert_eq!(p.schedule().trigger_offsets, full.trigger_offsets);
        assert_eq!(p.schedule().num_steps, full.num_steps);
    }

    #[test]
    fn fresh_session_matches_full_planner() {
        for budget in [90, 120, 200, 1000] {
            let p = Planner::new(UnifiedScheduler::default(), jagged(budget)).unwrap();
            assert_matches(&p);
        }
    }

    #[test]
    fn empty_delta_is_identity_and_patches_nothing() {
        let mut p = Planner::new(UnifiedScheduler::default(), jagged(120)).unwrap();
        let before = p.schedule().clone();
        let out = p.replan(&ReplanDelta::default()).unwrap();
        assert_eq!(out.triggers_patched, 0);
        assert!(out.patched_in_place);
        assert_eq!(out.layers_reused, p.input().layers.len());
        assert_eq!(p.schedule(), &before);
        assert_matches(&p);
    }

    #[test]
    fn single_layer_delta_matches_full_replan() {
        let mut p = Planner::new(UnifiedScheduler::default(), jagged(120)).unwrap();
        let mut lp = p.input().layers[2].clone();
        lp.working_set = 40;
        lp.shard_pages = vec![9, 9, 9, 9, 9];
        lp.full_param_bytes = 45;
        p.replan(&ReplanDelta::layer(2, lp)).unwrap();
        assert_matches(&p);
    }

    #[test]
    fn ws_increase_fast_path_stays_identical_and_session_coherent() {
        let mut p = Planner::new(UnifiedScheduler::default(), jagged(200)).unwrap();
        // A small pure working-set increase: the slack fast path's shape.
        let mut lp = p.input().layers[1].clone();
        lp.working_set += 3;
        let out = p.replan(&ReplanDelta::layer(1, lp)).unwrap();
        assert!(out.patched_in_place);
        assert_eq!(out.triggers_patched, 0);
        assert_eq!(out.layers_reused, 3);
        assert_matches(&p);
        // The patched trees must agree with the baseline across a following
        // slow-path replan (reset_reverting diffs against the new input) …
        p.replan(&ReplanDelta::capacity(120)).unwrap();
        assert_matches(&p);
        // … and a decrease (slow path by construction) still matches.
        let mut lp = p.input().layers[1].clone();
        lp.working_set -= 2;
        p.replan(&ReplanDelta::layer(1, lp)).unwrap();
        assert_matches(&p);
        // A bump past any plausible margin falls back and still matches
        // (layer 0 then needs 107 of the 120-byte budget at its steps).
        let mut lp = p.input().layers[0].clone();
        lp.working_set += 40;
        p.replan(&ReplanDelta::layer(0, lp)).unwrap();
        assert_matches(&p);
    }

    #[test]
    fn outage_capacity_delta_matches_full_replan() {
        let mut p = Planner::new(UnifiedScheduler::default(), jagged(200)).unwrap();
        // Degraded headroom: shrink, then elastic recovery: grow back.
        p.replan(&ReplanDelta::capacity(95)).unwrap();
        assert_matches(&p);
        let out = p.replan(&ReplanDelta::capacity(400)).unwrap();
        assert_matches(&p);
        assert!(out.triggers_total > 0);
    }

    #[test]
    fn resize_delta_reshaping_every_shard_matches_full_replan() {
        let mut p = Planner::new(UnifiedScheduler::default(), jagged(150)).unwrap();
        // dp 2x: every shard halves (pages shrink), like an elastic grow.
        let halved: Vec<LayerPlan> = p
            .input()
            .layers
            .iter()
            .map(|l| LayerPlan {
                layer: l.layer,
                shard_pages: l.shard_pages.iter().map(|b| b / 2).collect(),
                full_param_bytes: l.full_param_bytes,
                working_set: l.working_set,
            })
            .collect();
        p.replan(&ReplanDelta {
            replace_layers: Some(halved),
            ..ReplanDelta::default()
        })
        .unwrap();
        assert_matches(&p);
    }

    #[test]
    fn layer_count_change_requires_steps_and_works_with_them() {
        let mut p = Planner::new(UnifiedScheduler::default(), jagged(150)).unwrap();
        let three: Vec<LayerPlan> = p.input().layers[..3].to_vec();
        let err = p
            .replan(&ReplanDelta {
                replace_layers: Some(three.clone()),
                ..ReplanDelta::default()
            })
            .unwrap_err();
        assert!(matches!(err, Error::BadReplanDelta(_)));
        assert_matches(&p); // rejected delta left the session intact
        p.replan(&ReplanDelta {
            replace_layers: Some(three),
            steps: Some(SchedulerInput::default_steps(3)),
            ..ReplanDelta::default()
        })
        .unwrap();
        assert_matches(&p);
    }

    #[test]
    fn step_list_delta_matches_full_replan() {
        let mut p = Planner::new(UnifiedScheduler::default(), jagged(150)).unwrap();
        // A degraded iteration: layer 1 recomputed twice in the backward.
        let mut steps = SchedulerInput::default_steps(4);
        steps.push(StepKind::Backward(1));
        steps.insert(2, StepKind::Forward(1));
        p.replan(&ReplanDelta {
            steps: Some(steps),
            ..ReplanDelta::default()
        })
        .unwrap();
        assert_matches(&p);
    }

    #[test]
    fn infeasible_delta_leaves_previous_plan_live() {
        let mut p = Planner::new(UnifiedScheduler::default(), jagged(150)).unwrap();
        let before = p.schedule().clone();
        let err = p.replan(&ReplanDelta::capacity(10)).unwrap_err();
        assert!(matches!(err, Error::WorkingSetTooLarge { .. }));
        assert_eq!(p.schedule(), &before);
        assert_eq!(p.input().gpu_budget, 150);
        assert_matches(&p);
        // And the session still replans fine afterwards.
        p.replan(&ReplanDelta::capacity(120)).unwrap();
        assert_matches(&p);
    }

    #[test]
    fn diff_reconstructs_target_input() {
        let old = jagged(150);
        let mut new = jagged(95);
        new.layers[0].shard_pages = vec![4; 7];
        new.layers[3].working_set = 11;
        new.step_base_load = (0..new.steps.len() as u64).map(|j| j % 5).collect();
        let d = ReplanDelta::diff(&old, &new);
        assert_eq!(d.layers.len(), 2);
        let mut p = Planner::new(UnifiedScheduler::default(), old).unwrap();
        p.replan(&d).unwrap();
        let full = UnifiedScheduler::default().schedule(&new).unwrap();
        assert_eq!(p.schedule().tasks, full.tasks);
        assert_eq!(p.schedule().stats, full.stats);
        assert_eq!(p.schedule().trigger_offsets, full.trigger_offsets);
    }

    #[test]
    fn long_replan_sequence_stays_identical() {
        // Exercise buffer reuse: many deltas through one session.
        let mut p = Planner::new(UnifiedScheduler::default(), jagged(130)).unwrap();
        for round in 0u64..24 {
            let d = match round % 4 {
                0 => ReplanDelta::capacity(95 + (round * 13) % 200),
                1 => {
                    let idx = (round as usize / 4) % 4;
                    let mut lp = p.input().layers[idx].clone();
                    lp.working_set = (round * 7) % 30;
                    lp.shard_pages = (0..(round % 5)).map(|k| 3 + k * 4).collect();
                    ReplanDelta::layer(idx, lp)
                }
                2 => {
                    let mut steps = SchedulerInput::default_steps(4);
                    if round % 8 == 2 {
                        steps.push(StepKind::Forward((round as usize) % 4));
                    }
                    ReplanDelta {
                        steps: Some(steps),
                        ..ReplanDelta::default()
                    }
                }
                _ => ReplanDelta::default(),
            };
            match p.replan(&d) {
                Ok(out) => {
                    assert!(out.triggers_patched <= out.triggers_total);
                    assert_matches(&p);
                }
                Err(Error::WorkingSetTooLarge { .. }) => assert_matches(&p),
                Err(e) => panic!("unexpected replan error: {e}"),
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Abstract mutations, resolved against the *current* input at apply
    /// time (indices mod the live layer count, steps covering every layer).
    #[derive(Debug, Clone)]
    enum Mutation {
        /// Touch one layer: new pages / full / working set (a permanent
        /// layer failure is the empty-pages case).
        Layer {
            raw: usize,
            pages: Vec<u64>,
            full: u64,
            ws: u64,
        },
        /// Capacity change (an outage shrinks, an elastic grow raises).
        Budget(u64),
        /// Step list change: default steps plus extra inserted recomputes.
        Steps { extra: Vec<(usize, usize, bool)> },
        /// Base-load change (None clears it).
        Base(Option<u64>),
        /// Pure working-set increase on one layer — the shape the slack
        /// fast path certifies; falls back to the slow path when the
        /// recorded margins are too tight, so both paths get hit.
        WsBump { raw: usize, d: u64 },
        /// Elastic resize: wholesale layer replacement, possibly changing
        /// the layer count.
        Resize(Vec<(Vec<u64>, u64, u64)>),
    }

    fn mutation_strategy() -> impl Strategy<Value = Mutation> {
        prop_oneof![
            (
                any::<usize>(),
                proptest::collection::vec(0u64..40, 0..6),
                0u64..120,
                0u64..60,
            )
                .prop_map(|(raw, pages, full, ws)| Mutation::Layer {
                    raw,
                    pages,
                    full,
                    ws
                }),
            (1u64..400).prop_map(Mutation::Budget),
            proptest::collection::vec((any::<usize>(), any::<usize>(), any::<bool>()), 0..4)
                .prop_map(|extra| Mutation::Steps { extra }),
            (any::<bool>(), 1u64..20).prop_map(|(some, k)| Mutation::Base(some.then_some(k))),
            (any::<usize>(), 0u64..50).prop_map(|(raw, d)| Mutation::WsBump { raw, d }),
            proptest::collection::vec(
                (
                    proptest::collection::vec(0u64..40, 0..6),
                    0u64..120,
                    0u64..60
                ),
                1..6,
            )
            .prop_map(Mutation::Resize),
        ]
    }

    fn to_delta(m: &Mutation, cur: &SchedulerInput) -> ReplanDelta {
        let n = cur.layers.len();
        match m {
            Mutation::Layer {
                raw,
                pages,
                full,
                ws,
            } => {
                let idx = raw % n;
                ReplanDelta::layer(
                    idx,
                    LayerPlan {
                        layer: idx,
                        shard_pages: pages.clone(),
                        full_param_bytes: *full,
                        working_set: *ws,
                    },
                )
            }
            Mutation::Budget(b) => ReplanDelta::capacity(*b),
            Mutation::Steps { extra } => {
                let mut steps = SchedulerInput::default_steps(n);
                for (pos, l, fwd) in extra {
                    let s = if *fwd {
                        StepKind::Forward(l % n)
                    } else {
                        StepKind::Backward(l % n)
                    };
                    steps.insert(pos % (steps.len() + 1), s);
                }
                ReplanDelta {
                    steps: Some(steps),
                    ..ReplanDelta::default()
                }
            }
            Mutation::WsBump { raw, d } => {
                let idx = raw % n;
                let mut lp = cur.layers[idx].clone();
                lp.working_set += d;
                ReplanDelta::layer(idx, lp)
            }
            Mutation::Base(seed) => ReplanDelta {
                step_base_load: Some(match seed {
                    Some(k) => (0..cur.steps.len() as u64).map(|j| (j * k) % 31).collect(),
                    None => Vec::new(),
                }),
                ..ReplanDelta::default()
            },
            Mutation::Resize(shapes) => {
                let layers: Vec<LayerPlan> = shapes
                    .iter()
                    .enumerate()
                    .map(|(l, (pages, full, ws))| LayerPlan {
                        layer: l,
                        shard_pages: pages.clone(),
                        full_param_bytes: *full,
                        working_set: *ws,
                    })
                    .collect();
                let steps = SchedulerInput::default_steps(layers.len());
                ReplanDelta {
                    replace_layers: Some(layers),
                    steps: Some(steps),
                    ..ReplanDelta::default()
                }
            }
        }
    }

    /// Mirror of the planner's delta application, kept independent so the
    /// test's expected input cannot share planner bugs.
    fn apply(input: &mut SchedulerInput, d: &ReplanDelta) {
        if let Some(rl) = &d.replace_layers {
            input.layers = rl.clone();
        }
        for (i, lp) in &d.layers {
            input.layers[*i] = lp.clone();
        }
        if let Some(s) = &d.steps {
            input.steps = s.clone();
        }
        if let Some(b) = &d.step_base_load {
            input.step_base_load = b.clone();
        }
        if let Some(b) = d.gpu_budget {
            input.gpu_budget = b;
        }
        if let Some(p) = d.page_size {
            input.page_size = p;
        }
    }

    fn base_input_strategy() -> impl Strategy<Value = (SchedulerInput, UnifiedScheduler)> {
        (
            proptest::collection::vec(
                (
                    proptest::collection::vec(0u64..40, 0..6),
                    0u64..120,
                    0u64..60,
                ),
                1..7,
            ),
            1u64..400,
            any::<bool>(),
            0usize..8,
            any::<bool>(),
        )
            .prop_map(|(layers, budget, with_base, horizon, phase2)| {
                let n = layers.len();
                let layers: Vec<LayerPlan> = layers
                    .into_iter()
                    .enumerate()
                    .map(|(l, (pages, full, ws))| LayerPlan {
                        layer: l,
                        shard_pages: pages,
                        full_param_bytes: full,
                        working_set: ws,
                    })
                    .collect();
                let steps = SchedulerInput::default_steps(n);
                let step_base_load = if with_base {
                    (0..steps.len()).map(|j| (j as u64 * 7) % 23).collect()
                } else {
                    Vec::new()
                };
                (
                    SchedulerInput {
                        layers,
                        steps,
                        gpu_budget: budget,
                        page_size: 16,
                        step_base_load,
                    },
                    UnifiedScheduler {
                        phase2,
                        prefetch_horizon: horizon,
                    },
                )
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        /// Random mutation sequences (outage / permanent / resize deltas):
        /// after every accepted delta the incremental schedule is
        /// byte-identical to a from-scratch plan of the mutated input, and
        /// a rejected delta leaves the session byte-identical to the
        /// previous input's plan.
        #[test]
        fn incremental_replan_matches_from_scratch(
            (mut input, sched) in base_input_strategy(),
            muts in proptest::collection::vec(mutation_strategy(), 1..6)
        ) {
            let planner = Planner::new(sched.clone(), input.clone());
            let mut planner = match planner {
                Ok(p) => p,
                Err(_) => {
                    // Infeasible seed: the full planner must agree.
                    prop_assert!(sched.schedule(&input).is_err());
                    return Ok(());
                }
            };
            for m in &muts {
                let d = to_delta(m, planner.input());
                let mut cand = input.clone();
                apply(&mut cand, &d);
                match planner.replan(&d) {
                    Ok(_) => {
                        input = cand;
                        let full = sched.schedule(&input);
                        let full = match full {
                            Ok(s) => s,
                            Err(e) => {
                                return Err(TestCaseError::Fail(
                                    format!("planner accepted what schedule() rejects: {e}")));
                            }
                        };
                        prop_assert_eq!(&planner.schedule().tasks, &full.tasks);
                        prop_assert_eq!(planner.schedule().stats, full.stats);
                        prop_assert_eq!(
                            &planner.schedule().trigger_offsets,
                            &full.trigger_offsets
                        );
                        prop_assert_eq!(planner.schedule().num_steps, full.num_steps);
                    }
                    Err(Error::WorkingSetTooLarge { .. }) => {
                        // The mutated input must genuinely be infeasible,
                        // and the session must still match the old input.
                        prop_assert!(sched.schedule(&cand).is_err());
                        let full = match sched.schedule(&input) {
                            Ok(s) => s,
                            Err(e) => {
                                return Err(TestCaseError::Fail(
                                    format!("previous input became infeasible: {e}")));
                            }
                        };
                        prop_assert_eq!(&planner.schedule().tasks, &full.tasks);
                    }
                    Err(e) => {
                        return Err(TestCaseError::Fail(format!("unexpected error: {e}")));
                    }
                }
            }
        }
    }
}
