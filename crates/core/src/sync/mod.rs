//! Synchronization shim for the lock-free updating mechanism.
//!
//! All atomics and thread primitives used by [`crate::lockfree`] go through
//! this module instead of `std::sync` directly. In normal builds the shim
//! re-exports the real `std` types with zero overhead. Under
//! `--cfg angel_model_check` the atomics are replaced by instrumented
//! wrappers that
//!
//! * count every atomic operation (so tests can assert the protocol's
//!   synchronization footprint stays where the audit documented it), and
//! * inject a deterministic `yield_now` before every Nth operation, widening
//!   the set of thread interleavings the stress tests observe without
//!   giving up reproducibility.
//!
//! The instrumented atomics are still real `std` atomics underneath — they
//! are schedule perturbers, not a memory-model emulator. Exhaustive
//! interleaving exploration lives in [`crate::verify::model`], which model
//! checks the protocol state machine extracted from `lockfree.rs` under
//! sequentially-consistent interleaving semantics; the orderings themselves
//! are justified site by site in the audit table at the top of
//! `lockfree.rs` and re-validated by the Miri CI job.

/// Atomic integers and the memory-ordering enum.
///
/// Normal builds: the `std::sync::atomic` types, verbatim.
#[cfg(not(angel_model_check))]
pub mod atomic {
    pub use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
}

/// Instrumented atomics for `--cfg angel_model_check` builds.
#[cfg(angel_model_check)]
pub mod atomic {
    pub use std::sync::atomic::Ordering;
    use std::sync::atomic::{AtomicBool as StdBool, AtomicU64 as StdU64};

    /// Global operation counter; also drives deterministic yield injection.
    static OPS: StdU64 = StdU64::new(0);

    /// Yield before every `YIELD_EVERY`th atomic op. A small prime so the
    /// preemption points drift relative to the protocol's own periodicity.
    const YIELD_EVERY: u64 = 3;

    fn instrument() {
        // Relaxed: the counter is diagnostic, not synchronizing.
        let n = OPS.fetch_add(1, Ordering::Relaxed);
        if n % YIELD_EVERY == 0 {
            std::thread::yield_now();
        }
    }

    /// Total atomic operations observed since process start.
    pub fn ops_recorded() -> u64 {
        OPS.load(Ordering::Relaxed)
    }

    #[derive(Debug, Default)]
    pub struct AtomicU64 {
        inner: StdU64,
    }

    impl AtomicU64 {
        pub const fn new(v: u64) -> Self {
            Self {
                inner: StdU64::new(v),
            }
        }
        pub fn load(&self, order: Ordering) -> u64 {
            instrument();
            self.inner.load(order)
        }
        pub fn store(&self, v: u64, order: Ordering) {
            instrument();
            self.inner.store(v, order);
        }
        pub fn fetch_add(&self, v: u64, order: Ordering) -> u64 {
            instrument();
            self.inner.fetch_add(v, order)
        }
    }

    #[derive(Debug, Default)]
    pub struct AtomicBool {
        inner: StdBool,
    }

    impl AtomicBool {
        pub const fn new(v: bool) -> Self {
            Self {
                inner: StdBool::new(v),
            }
        }
        pub fn load(&self, order: Ordering) -> bool {
            instrument();
            self.inner.load(order)
        }
        pub fn store(&self, v: bool, order: Ordering) {
            instrument();
            self.inner.store(v, order);
        }
    }
}

/// Thread spawn/park primitives used by the trainer. One indirection point
/// so a future scheduler-controlled implementation only changes this module.
pub mod thread {
    pub use std::thread::{sleep, yield_now, Builder, JoinHandle};
}

pub use atomic::{AtomicBool, AtomicU64, Ordering};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shim_atomics_behave_like_std() {
        let n = AtomicU64::new(5);
        assert_eq!(n.fetch_add(2, Ordering::Relaxed), 5);
        assert_eq!(n.load(Ordering::Acquire), 7);
        n.store(1, Ordering::Release);
        assert_eq!(n.load(Ordering::Relaxed), 1);

        let b = AtomicBool::new(true);
        assert!(b.load(Ordering::Acquire));
        b.store(false, Ordering::Release);
        assert!(!b.load(Ordering::Relaxed));
    }

    #[cfg(angel_model_check)]
    #[test]
    fn instrumented_atomics_count_operations() {
        let before = atomic::ops_recorded();
        let n = AtomicU64::new(0);
        n.fetch_add(1, Ordering::Relaxed);
        n.load(Ordering::Relaxed);
        assert!(atomic::ops_recorded() >= before + 2);
    }

    #[test]
    fn shim_is_shared_across_threads() {
        let flag = std::sync::Arc::new(AtomicBool::new(false));
        let f2 = flag.clone();
        let h = thread::Builder::new()
            .name("sync-shim-test".into())
            .spawn(move || f2.store(true, Ordering::Release))
            .expect("spawn");
        h.join().expect("join");
        assert!(flag.load(Ordering::Acquire));
    }
}
