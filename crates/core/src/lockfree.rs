//! The Lock-Free Updating Mechanism — Section 4.3 and Algorithm 2 of the
//! paper, implemented with real OS threads moving real bytes.
//!
//! "We design a novel Lock-Free Updating Mechanism, which decouples the GPU
//! computation from the CPU optimizer operations through a novel
//! asynchronous consistency control protocol. The essential idea is to
//! employ two buffers in CPU memory to store the FP16 parameters and
//! gradients respectively, and leverage an auxiliary buffering thread to
//! maintain the buffers."
//!
//! Three roles, exactly as in Algorithm 2:
//!
//! * the **training loop** (the paper's GPU): fetches buffered parameters
//!   `p'₁₆(l)` with [`LockFreeTrainer::read_params`], computes, and offloads
//!   gradients `g₁₆(l)` with [`LockFreeTrainer::push_grads`] (lines 18–24);
//! * the **buffering thread**: accumulates arriving gradients into the
//!   gradient buffer (line 15) and, when updated parameters arrive from the
//!   updating thread, clears the gradient buffer and casts the FP32
//!   parameters into the parameter buffer (lines 11–13);
//! * the **updating thread**: while uncleared gradients exist, walks layers
//!   in reverse, fetches the FP32 parameters and Adam moments from the
//!   [`StateStore`] (the SSD), updates them with the buffered gradients,
//!   passes the new parameters to the buffering thread, and offloads the
//!   state back (lines 2–7).
//!
//! The decoupling means GPU iterations never wait for the SSD-bound update
//! cycle; the cost is **staleness** (parameters lag the pushed gradients)
//! and — in the paper's protocol, where the gradient buffer is cleared only
//! when the *completed* update's parameters arrive — gradients that land
//! during an update window are **dropped with the clear**. Both effects are
//! measured ([`LockFreeStats`]); Section 6.5's convergence experiment
//! (reproduced in `angel-train`) shows they do not harm model quality.
//! [`ClearPolicy::TakeAtSnapshot`] additionally provides a lossless variant
//! that consumes the buffer atomically at snapshot time, for the ablation.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// FP32 master state of one layer: parameters plus Adam moments — the
/// `p₃₂, m₃₂, v₃₂` of Algorithm 2.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerState {
    pub p32: Vec<f32>,
    pub m32: Vec<f32>,
    pub v32: Vec<f32>,
}

impl LayerState {
    /// Fresh state with zero moments.
    pub fn new(p32: Vec<f32>) -> Self {
        let n = p32.len();
        Self {
            p32,
            m32: vec![0.0; n],
            v32: vec![0.0; n],
        }
    }
}

/// Where FP32 states live between updates — the SSD in Section 6.5. The
/// store is owned by the updating thread; implementations may inject real
/// I/O latency to emulate SSD bandwidth.
pub trait StateStore: Send {
    fn fetch(&mut self, layer: usize) -> LayerState;
    fn offload(&mut self, layer: usize, state: LayerState);
}

/// In-memory store, optionally throttled to an SSD-like bandwidth by
/// sleeping proportionally to the bytes moved.
pub struct MemoryStore {
    states: Vec<Option<LayerState>>,
    /// Simulated bandwidth in bytes/second; `None` = unthrottled.
    pub throttle_bytes_per_sec: Option<u64>,
}

impl MemoryStore {
    pub fn new(initial: Vec<LayerState>) -> Self {
        Self {
            states: initial.into_iter().map(Some).collect(),
            throttle_bytes_per_sec: None,
        }
    }

    pub fn throttled(initial: Vec<LayerState>, bytes_per_sec: u64) -> Self {
        let mut s = Self::new(initial);
        s.throttle_bytes_per_sec = Some(bytes_per_sec);
        s
    }

    fn delay(&self, bytes: usize) {
        if let Some(bw) = self.throttle_bytes_per_sec {
            let ns = bytes as u64 * 1_000_000_000 / bw.max(1);
            std::thread::sleep(std::time::Duration::from_nanos(ns));
        }
    }
}

impl StateStore for MemoryStore {
    fn fetch(&mut self, layer: usize) -> LayerState {
        let state = self.states[layer]
            .take()
            .expect("state fetched twice without offload");
        self.delay(state.p32.len() * 12);
        state
    }

    fn offload(&mut self, layer: usize, state: LayerState) {
        self.delay(state.p32.len() * 12);
        self.states[layer] = Some(state);
    }
}

/// The optimizer applied by the updating thread (line 5 of Algorithm 2).
/// `micro_batches` is how many gradient micro-batches were accumulated into
/// `grads` (for averaging).
pub trait Optimizer: Send {
    fn update(&mut self, layer: usize, state: &mut LayerState, grads: &[f32], micro_batches: u32);
}

/// Plain averaged-SGD, used by unit tests; `angel-train` provides
/// mixed-precision Adam.
pub struct SgdOptimizer {
    pub lr: f32,
}

impl Optimizer for SgdOptimizer {
    fn update(&mut self, _layer: usize, state: &mut LayerState, grads: &[f32], micro: u32) {
        let scale = self.lr / micro.max(1) as f32;
        for (p, g) in state.p32.iter_mut().zip(grads) {
            *p -= scale * g;
        }
    }
}

/// When the gradient buffer is consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClearPolicy {
    /// The paper's protocol: the buffering thread clears the buffer when the
    /// updated parameters arrive (Algorithm 2 line 12). Gradients landing
    /// between the updating thread's read and the clear are dropped (and
    /// counted).
    OnUpdateReceipt,
    /// Lossless variant: the updating thread takes-and-clears the buffer
    /// atomically at snapshot time.
    TakeAtSnapshot,
}

/// Casting function applied when buffering parameters (`cast(p₃₂, FP16)` in
/// line 13). `angel-train` passes BF16 truncation; tests may use identity.
pub type CastFn = fn(f32) -> f32;

/// Shared per-layer gradient buffer (`g'₁₆` of Algorithm 2).
struct GradBuf {
    g: Vec<f32>,
    micro: u32,
    /// Bumped on every clear; used by the updating thread to keep at most
    /// one in-flight update per layer (preventing double application).
    version: u64,
}

/// Shared per-layer parameter buffer (`p'₁₆` of Algorithm 2).
struct ParamBuf {
    p: Vec<f32>,
    version: u64,
}

/// Counters exposing the mechanism's behaviour.
#[derive(Debug, Clone, Default)]
pub struct LockFreeStats {
    /// Gradient micro-batches pushed by the training loop.
    pub grads_pushed: u64,
    /// Micro-batches consumed by an optimizer update.
    pub grads_applied: u64,
    /// Micro-batches cleared without being applied (the OnUpdateReceipt race
    /// window).
    pub grads_dropped: u64,
    /// Completed per-layer optimizer updates.
    pub updates_applied: u64,
}

#[derive(Default)]
struct AtomicStats {
    grads_pushed: AtomicU64,
    grads_applied: AtomicU64,
    grads_dropped: AtomicU64,
    updates_applied: AtomicU64,
    grads_settled: AtomicU64, // applied-or-dropped, for quiescence
}

enum BufMsg {
    /// Gradients offloaded from the training loop (line 24).
    Grads { layer: usize, g: Vec<f32> },
    /// Updated parameters from the updating thread (line 6), tagged with how
    /// many micro-batches the update consumed.
    Updated {
        layer: usize,
        p32: Vec<f32>,
        applied_micro: u32,
    },
}

struct Shared {
    grad_bufs: Vec<Mutex<GradBuf>>,
    param_bufs: Vec<RwLock<ParamBuf>>,
    stats: AtomicStats,
    running: AtomicBool,
    cast: CastFn,
    clear_policy: ClearPolicy,
}

/// The running mechanism: owns the buffering and updating threads.
pub struct LockFreeTrainer {
    shared: Arc<Shared>,
    to_buffering: Sender<BufMsg>,
    buffering: Option<JoinHandle<()>>,
    updating: Option<JoinHandle<Box<dyn StateStore>>>,
}

impl LockFreeTrainer {
    /// Spawn the mechanism over `initial` per-layer parameters. The `store`
    /// is pre-populated with `LayerState::new(initial[l])` and owned by the
    /// updating thread.
    pub fn spawn(
        initial: Vec<Vec<f32>>,
        mut store: Box<dyn StateStore>,
        mut optimizer: Box<dyn Optimizer>,
        cast: CastFn,
        clear_policy: ClearPolicy,
    ) -> Self {
        let layers = initial.len();
        let shared = Arc::new(Shared {
            grad_bufs: initial
                .iter()
                .map(|p| {
                    Mutex::new(GradBuf {
                        g: vec![0.0; p.len()],
                        micro: 0,
                        version: 0,
                    })
                })
                .collect(),
            param_bufs: initial
                .iter()
                .map(|p| {
                    RwLock::new(ParamBuf {
                        p: p.iter().map(|&x| cast(x)).collect(),
                        version: 0,
                    })
                })
                .collect(),
            stats: AtomicStats::default(),
            running: AtomicBool::new(true),
            cast,
            clear_policy,
        });

        let (tx, rx): (Sender<BufMsg>, Receiver<BufMsg>) = unbounded();

        // ---- Buffering thread (Algorithm 2 lines 9–15) -------------------
        let buf_shared = Arc::clone(&shared);
        let buffering = std::thread::Builder::new()
            .name("angel-buffering".into())
            .spawn(move || buffering_loop(buf_shared, rx))
            .expect("spawn buffering thread");

        // ---- Updating thread (Algorithm 2 lines 1–7) ----------------------
        let upd_shared = Arc::clone(&shared);
        let upd_tx = tx.clone();
        let updating = std::thread::Builder::new()
            .name("angel-updating".into())
            .spawn(move || {
                updating_loop(upd_shared, upd_tx, &mut store, optimizer.as_mut(), layers);
                store
            })
            .expect("spawn updating thread");

        Self {
            shared,
            to_buffering: tx,
            buffering: Some(buffering),
            updating: Some(updating),
        }
    }

    /// Line 20: fetch the buffered FP16 parameters of a layer (plus their
    /// version, monotonically increasing with each completed update).
    pub fn read_params(&self, layer: usize) -> (Vec<f32>, u64) {
        let buf = self.shared.param_bufs[layer].read();
        (buf.p.clone(), buf.version)
    }

    /// Line 24: offload a layer's gradients toward the buffering thread.
    pub fn push_grads(&self, layer: usize, g: Vec<f32>) {
        self.shared
            .stats
            .grads_pushed
            .fetch_add(1, Ordering::SeqCst);
        self.to_buffering
            .send(BufMsg::Grads { layer, g })
            .expect("buffering thread alive");
    }

    pub fn stats(&self) -> LockFreeStats {
        let s = &self.shared.stats;
        LockFreeStats {
            grads_pushed: s.grads_pushed.load(Ordering::SeqCst),
            grads_applied: s.grads_applied.load(Ordering::SeqCst),
            grads_dropped: s.grads_dropped.load(Ordering::SeqCst),
            updates_applied: s.updates_applied.load(Ordering::SeqCst),
        }
    }

    /// Staleness proxy: pushed-but-not-yet-settled gradient micro-batches.
    pub fn pending_grads(&self) -> u64 {
        let s = &self.shared.stats;
        s.grads_pushed.load(Ordering::SeqCst) - s.grads_settled.load(Ordering::SeqCst)
    }

    /// Block until every pushed gradient has been applied or dropped (test
    /// helper; the production loop never waits — that is the whole point).
    pub fn wait_quiescent(&self) {
        while self.pending_grads() > 0 {
            std::thread::yield_now();
        }
    }

    /// Stop both threads and return the final FP32 states from the store.
    pub fn shutdown(mut self, layers: usize) -> Vec<LayerState> {
        let mut store = self.stop_threads().expect("threads already stopped");
        (0..layers).map(|l| store.fetch(l)).collect()
    }

    /// Stop the updating thread, close the channel, join the buffering
    /// thread. Returns the store from the updating thread (None if already
    /// stopped).
    fn stop_threads(&mut self) -> Option<Box<dyn StateStore>> {
        self.shared.running.store(false, Ordering::SeqCst);
        let store = self
            .updating
            .take()
            .map(|h| h.join().expect("updating thread panicked"));
        // Drop every sender so the buffering thread's recv() ends after
        // draining (the updating thread's clone died with its join above).
        let (dummy, _rx) = unbounded();
        drop(std::mem::replace(&mut self.to_buffering, dummy));
        if let Some(b) = self.buffering.take() {
            b.join().expect("buffering thread panicked");
        }
        store
    }
}

impl Drop for LockFreeTrainer {
    fn drop(&mut self) {
        // Tolerate users who never call shutdown(): stop cleanly anyway.
        let _ = self.stop_threads();
    }
}

fn buffering_loop(shared: Arc<Shared>, rx: Receiver<BufMsg>) {
    // The loop exits when all senders are dropped (shutdown) after draining.
    while let Ok(msg) = rx.recv() {
        match msg {
            BufMsg::Grads { layer, g } => {
                // Line 15: g'₁₆(l) ← g'₁₆(l) + g₁₆(l).
                let mut buf = shared.grad_bufs[layer].lock();
                for (acc, x) in buf.g.iter_mut().zip(&g) {
                    *acc += x;
                }
                buf.micro += 1;
            }
            BufMsg::Updated {
                layer,
                p32,
                applied_micro,
            } => {
                // Lines 12–13: clear buffered gradients, cast parameters.
                if shared.clear_policy == ClearPolicy::OnUpdateReceipt {
                    let mut buf = shared.grad_bufs[layer].lock();
                    let dropped = buf.micro.saturating_sub(0); // everything present is cleared
                                                               // Of the cleared micro-batches, `applied_micro` were
                                                               // consumed by the update; the rest arrived during the
                                                               // update window and are dropped.
                    let late = dropped.saturating_sub(applied_micro);
                    shared
                        .stats
                        .grads_dropped
                        .fetch_add(late as u64, Ordering::SeqCst);
                    shared
                        .stats
                        .grads_settled
                        .fetch_add(dropped as u64, Ordering::SeqCst);
                    buf.g.iter_mut().for_each(|x| *x = 0.0);
                    buf.micro = 0;
                    buf.version += 1;
                }
                let mut pbuf = shared.param_bufs[layer].write();
                pbuf.p.clear();
                pbuf.p.extend(p32.iter().map(|&x| (shared.cast)(x)));
                pbuf.version += 1;
            }
        }
    }
}

fn updating_loop(
    shared: Arc<Shared>,
    tx: Sender<BufMsg>,
    store: &mut Box<dyn StateStore>,
    optimizer: &mut dyn Optimizer,
    layers: usize,
) {
    // Version of the buffer at our last snapshot per layer; a second update
    // of the same layer waits until the buffering thread has cleared the
    // previous one (version bump), so gradients are never applied twice.
    let mut last_snapshot_version: Vec<Option<u64>> = vec![None; layers];
    // Line 2: while there are uncleared buffered gradients (we poll until
    // shutdown, idling when nothing is pending).
    while shared.running.load(Ordering::SeqCst) {
        let mut did_work = false;
        // Line 3: for l_i ∈ reverse(model) — gradients appear in reverse
        // layer order during backward, so reverse iteration updates the
        // layers whose gradients arrived first.
        for layer in (0..layers).rev() {
            let snapshot = {
                let buf = shared.grad_bufs[layer].lock();
                if buf.micro == 0 {
                    continue;
                }
                match shared.clear_policy {
                    ClearPolicy::OnUpdateReceipt => {
                        if last_snapshot_version[layer] == Some(buf.version) {
                            // Previous update's clear hasn't landed yet.
                            continue;
                        }
                        last_snapshot_version[layer] = Some(buf.version);
                        (buf.g.clone(), buf.micro)
                    }
                    ClearPolicy::TakeAtSnapshot => {
                        let mut buf = buf;
                        let g = buf.g.clone();
                        let micro = buf.micro;
                        buf.g.iter_mut().for_each(|x| *x = 0.0);
                        buf.micro = 0;
                        buf.version += 1;
                        shared
                            .stats
                            .grads_settled
                            .fetch_add(micro as u64, Ordering::SeqCst);
                        (g, micro)
                    }
                }
            };
            let (grads, micro) = snapshot;
            // Line 4: fetch p₃₂, m₃₂, v₃₂ from SSD storage.
            let mut state = store.fetch(layer);
            // Line 5: update via g'₁₆.
            optimizer.update(layer, &mut state, &grads, micro);
            shared
                .stats
                .grads_applied
                .fetch_add(micro as u64, Ordering::SeqCst);
            shared.stats.updates_applied.fetch_add(1, Ordering::SeqCst);
            // Line 6: pass p₃₂ to the buffering thread.
            let _ = tx.send(BufMsg::Updated {
                layer,
                p32: state.p32.clone(),
                applied_micro: micro,
            });
            // Line 7: offload back to SSD (overlapped with the buffering
            // thread's work — it is already processing the message).
            store.offload(layer, state);
            did_work = true;
        }
        if !did_work {
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity(x: f32) -> f32 {
        x
    }

    fn trainer(layers: usize, n: usize, policy: ClearPolicy) -> (LockFreeTrainer, Vec<Vec<f32>>) {
        let initial: Vec<Vec<f32>> = (0..layers)
            .map(|l| (0..n).map(|i| (l * n + i) as f32 * 0.01).collect())
            .collect();
        let store = MemoryStore::new(initial.iter().cloned().map(LayerState::new).collect());
        let t = LockFreeTrainer::spawn(
            initial.clone(),
            Box::new(store),
            Box::new(SgdOptimizer { lr: 0.1 }),
            identity,
            policy,
        );
        (t, initial)
    }

    #[test]
    fn initial_params_readable() {
        let (t, initial) = trainer(3, 8, ClearPolicy::OnUpdateReceipt);
        for (l, expected) in initial.iter().enumerate() {
            let (p, v) = t.read_params(l);
            assert_eq!(&p, expected);
            assert_eq!(v, 0);
        }
        t.shutdown(3);
    }

    #[test]
    fn single_gradient_applied() {
        let (t, initial) = trainer(1, 4, ClearPolicy::OnUpdateReceipt);
        t.push_grads(0, vec![1.0; 4]);
        t.wait_quiescent();
        let states = t.shutdown(1);
        // SGD with lr 0.1, one micro-batch: p -= 0.1 * 1.0.
        for (p, p0) in states[0].p32.iter().zip(&initial[0]) {
            assert!((p - (p0 - 0.1)).abs() < 1e-6, "{p} vs {p0}");
        }
    }

    #[test]
    fn buffered_params_eventually_refresh() {
        let (t, _) = trainer(1, 4, ClearPolicy::OnUpdateReceipt);
        let (_, v0) = t.read_params(0);
        t.push_grads(0, vec![1.0; 4]);
        // Wait for the parameter buffer version to advance.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let (_, v) = t.read_params(0);
            if v > v0 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "param buffer never refreshed"
            );
            std::thread::yield_now();
        }
        t.shutdown(1);
    }

    #[test]
    fn gradients_accumulate_across_microbatches() {
        // TakeAtSnapshot is lossless: pushing k micro-batches applies the
        // averaged sum exactly once each.
        let (t, initial) = trainer(1, 2, ClearPolicy::TakeAtSnapshot);
        for _ in 0..10 {
            t.push_grads(0, vec![2.0, 4.0]);
        }
        t.wait_quiescent();
        let stats = t.stats();
        assert_eq!(stats.grads_pushed, 10);
        assert_eq!(stats.grads_applied + stats.grads_dropped, 10);
        assert_eq!(stats.grads_dropped, 0);
        let states = t.shutdown(1);
        // Every update applies lr * mean(grad); the mean is 2.0 / 4.0
        // regardless of how micro-batches were grouped into updates, so the
        // total displacement is stats.updates * lr * mean — with grouping
        // unknown, check direction and bound.
        let d0 = initial[0][0] - states[0].p32[0];
        let d1 = initial[0][1] - states[0].p32[1];
        assert!(d0 > 0.0 && d1 > 0.0);
        assert!(
            (d1 / d0 - 2.0).abs() < 1e-4,
            "proportional to gradient: {d1}/{d0}"
        );
    }

    #[test]
    fn multi_layer_updates_all_layers() {
        let (t, initial) = trainer(4, 4, ClearPolicy::OnUpdateReceipt);
        for l in 0..4 {
            t.push_grads(l, vec![1.0; 4]);
        }
        t.wait_quiescent();
        let states = t.shutdown(4);
        for l in 0..4 {
            assert!(
                states[l].p32[0] < initial[l][0],
                "layer {l} parameters must move"
            );
        }
    }

    #[test]
    fn paper_policy_accounts_for_every_gradient() {
        let (t, _) = trainer(2, 16, ClearPolicy::OnUpdateReceipt);
        for i in 0..200 {
            t.push_grads(i % 2, vec![0.01; 16]);
        }
        t.wait_quiescent();
        let s = t.stats();
        assert_eq!(s.grads_pushed, 200);
        assert_eq!(s.grads_applied + s.grads_dropped, 200);
        assert!(s.updates_applied > 0);
        t.shutdown(2);
    }

    #[test]
    fn training_never_blocks_on_slow_store() {
        // A severely throttled store: pushes must return immediately anyway
        // — the decoupling property the mechanism exists for.
        let initial = vec![vec![0.0f32; 256]; 2];
        let store = MemoryStore::throttled(
            initial.iter().cloned().map(LayerState::new).collect(),
            200_000, // 200 KB/s: each fetch/offload takes ~15 ms
        );
        let t = LockFreeTrainer::spawn(
            initial,
            Box::new(store),
            Box::new(SgdOptimizer { lr: 0.1 }),
            identity,
            ClearPolicy::OnUpdateReceipt,
        );
        let start = std::time::Instant::now();
        for i in 0..50 {
            t.push_grads(i % 2, vec![1.0; 256]);
            let _ = t.read_params(i % 2);
        }
        let elapsed = start.elapsed();
        // 50 pushes against a store where one update round takes ~30 ms:
        // synchronous coupling would need > 700 ms; decoupled must be fast.
        assert!(elapsed.as_millis() < 300, "pushes blocked: {elapsed:?}");
        t.wait_quiescent();
        let s = t.stats();
        assert_eq!(s.grads_applied + s.grads_dropped, 50);
        // The slow store forces accumulation: far fewer updates than pushes.
        assert!(s.updates_applied < 50, "updates = {}", s.updates_applied);
        t.shutdown(2);
    }

    #[test]
    fn stale_reads_are_consistent_snapshots() {
        // read_params must never observe a torn write. Use identical
        // initial elements so lockstep SGD keeps them equal at every
        // consistent snapshot.
        let initial = vec![vec![0.5f32; 64]];
        let store = MemoryStore::new(initial.iter().cloned().map(LayerState::new).collect());
        let t = LockFreeTrainer::spawn(
            initial,
            Box::new(store),
            Box::new(SgdOptimizer { lr: 0.1 }),
            identity,
            ClearPolicy::TakeAtSnapshot,
        );
        for _ in 0..20 {
            t.push_grads(0, vec![1.0; 64]);
            let (p, _) = t.read_params(0);
            // All elements updated in lockstep by SGD: they must be equal.
            assert!(p.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9));
        }
        t.wait_quiescent();
        t.shutdown(1);
    }
}
