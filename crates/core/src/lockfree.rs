//! The Lock-Free Updating Mechanism — Section 4.3 and Algorithm 2 of the
//! paper, implemented with real OS threads moving real bytes.
//!
//! "We design a novel Lock-Free Updating Mechanism, which decouples the GPU
//! computation from the CPU optimizer operations through a novel
//! asynchronous consistency control protocol. The essential idea is to
//! employ two buffers in CPU memory to store the FP16 parameters and
//! gradients respectively, and leverage an auxiliary buffering thread to
//! maintain the buffers."
//!
//! Three roles, exactly as in Algorithm 2:
//!
//! * the **training loop** (the paper's GPU): fetches buffered parameters
//!   `p'₁₆(l)` with [`LockFreeTrainer::read_params`], computes, and offloads
//!   gradients `g₁₆(l)` with [`LockFreeTrainer::push_grads`] (lines 18–24);
//! * the **buffering thread**: accumulates arriving gradients into the
//!   gradient buffer (line 15) and, when updated parameters arrive from the
//!   updating thread, clears the gradient buffer and casts the FP32
//!   parameters into the parameter buffer (lines 11–13);
//! * the **updating thread**: while uncleared gradients exist, walks layers
//!   in reverse, fetches the FP32 parameters and Adam moments from the
//!   [`StateStore`] (the SSD), updates them with the buffered gradients,
//!   passes the new parameters to the buffering thread, and offloads the
//!   state back (lines 2–7).
//!
//! The decoupling means GPU iterations never wait for the SSD-bound update
//! cycle; the cost is **staleness** (parameters lag the pushed gradients)
//! and — in the paper's protocol, where the gradient buffer is cleared only
//! when the *completed* update's parameters arrive — gradients that land
//! during an update window are **dropped with the clear**. Both effects are
//! measured ([`LockFreeStats`]); Section 6.5's convergence experiment
//! (reproduced in `angel-train`) shows they do not harm model quality.
//! [`ClearPolicy::TakeAtSnapshot`] additionally provides a lossless variant
//! that consumes the buffer atomically at snapshot time, for the ablation.
//!
//! # Fault tolerance
//!
//! The store is SSD-backed in production and storage hiccups are routine at
//! Tencent's fleet sizes (Section 3.1), so the update path must survive I/O
//! faults without stalling the GPUs:
//!
//! * [`StateStore`] operations are fallible ([`StoreError`]); transient
//!   errors are retried with exponential backoff ([`RetryPolicy`]);
//! * a layer whose store fails permanently (or keeps failing past the retry
//!   budget) is **parked**: its buffered gradients are dropped-and-counted,
//!   further pushes to it settle immediately, the rest of the model keeps
//!   training, and a typed [`TrainerEvent::LayerParked`] is emitted on the
//!   status channel instead of a panic;
//! * shutdown and `Drop` are panic-free even when a worker thread died: join
//!   errors surface as [`TrainerError::WorkerPanicked`], never as a
//!   double-panic abort.
//!
//! Every fault is accounted: `grads_pushed == grads_applied + grads_dropped`
//! holds across retries, parking and worker death (tested with the seeded
//! [`crate::fault::FaultyStore`] injector).
//!
//! # Memory-ordering audit
//!
//! All atomics go through [`crate::sync`] and carry the *weakest* ordering
//! the protocol needs; every site cites one of the invariants below. The
//! claims are validated three ways: the bounded model checker in
//! [`crate::verify::model`] exhaustively explores the protocol's
//! interleavings, the `--cfg angel_model_check` build perturbs thread
//! schedules at every atomic op, and the Miri CI job checks the relaxed
//! orderings against the real memory model.
//!
//! * **I1 (counters are diagnostics)** — the seven stat counters are
//!   monotonic event tallies. No control decision inside the protocol reads
//!   them except quiescence (I2); exact-accounting tests read them after
//!   `join()`, which synchronizes-with the worker's entire history, so
//!   `Relaxed` increments are exact there. Snapshot reads while threads run
//!   are documented as approximate.
//! * **I2 (quiescence never over-reports settled)** — `pending_grads` must
//!   not transiently report 0 while a pushed micro-batch is unsettled.
//!   Every `grads_settled` increment is `Release` and the quiescence read
//!   is `Acquire`, *and* `settled` is loaded before `pushed`: the `Acquire`
//!   load anchors a snapshot in which every settle's matching push (which
//!   happens-before the settle through the channel send and the grad-buf
//!   mutex) is already visible, so `pushed ≥ settled` holds in the
//!   snapshot and the subtraction never under-reports pending work.
//! * **I3 (shutdown signal)** — `running` is a plain termination flag:
//!   `Release` store in `stop_threads`, `Acquire` load in the updating
//!   loop. No protocol data is published *through* the flag (the channel
//!   and mutexes carry all data), but Release/Acquire keeps the flag's
//!   semantics independent of that argument.
//!
//! Data-carrying synchronization is entirely on the crossbeam channel and
//! the `parking_lot` mutexes; the version protocol that prevents double
//! application (`GradBuf::version` / `last_snapshot_version`) runs wholly
//! under the grad-buf mutex and needs no atomics at all.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use std::sync::Arc;
use std::time::Duration;

use crate::obs::{Counter, Gauge, ObsThread, Recorder};
use crate::sync::thread::JoinHandle;
use crate::sync::{thread, AtomicBool, AtomicU64, Ordering};

pub use crate::error::{StoreError, StoreErrorKind, StoreOp, TrainerError};

/// FP32 master state of one layer: parameters plus Adam moments — the
/// `p₃₂, m₃₂, v₃₂` of Algorithm 2.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerState {
    pub p32: Vec<f32>,
    pub m32: Vec<f32>,
    pub v32: Vec<f32>,
}

impl LayerState {
    /// Fresh state with zero moments.
    pub fn new(p32: Vec<f32>) -> Self {
        let n = p32.len();
        Self {
            p32,
            m32: vec![0.0; n],
            v32: vec![0.0; n],
        }
    }
}

/// Where FP32 states live between updates — the SSD in Section 6.5. The
/// store is owned by the updating thread; implementations may inject real
/// I/O latency to emulate SSD bandwidth, and real I/O *faults* to emulate
/// production storage ([`crate::fault::FaultyStore`]).
pub trait StateStore: Send {
    fn fetch(&mut self, layer: usize) -> Result<LayerState, StoreError>;
    fn offload(&mut self, layer: usize, state: LayerState) -> Result<(), StoreError>;
}

/// In-memory store, optionally throttled to an SSD-like bandwidth by
/// sleeping proportionally to the bytes moved.
pub struct MemoryStore {
    states: Vec<Option<LayerState>>,
    /// Simulated bandwidth in bytes/second; `None` = unthrottled.
    pub throttle_bytes_per_sec: Option<u64>,
}

impl MemoryStore {
    pub fn new(initial: Vec<LayerState>) -> Self {
        Self {
            states: initial.into_iter().map(Some).collect(),
            throttle_bytes_per_sec: None,
        }
    }

    pub fn throttled(initial: Vec<LayerState>, bytes_per_sec: u64) -> Self {
        let mut s = Self::new(initial);
        s.throttle_bytes_per_sec = Some(bytes_per_sec);
        s
    }

    fn delay(&self, bytes: usize) {
        if let Some(bw) = self.throttle_bytes_per_sec {
            let ns = bytes as u64 * 1_000_000_000 / bw.max(1);
            thread::sleep(std::time::Duration::from_nanos(ns));
        }
    }
}

impl StateStore for MemoryStore {
    fn fetch(&mut self, layer: usize) -> Result<LayerState, StoreError> {
        let state = self
            .states
            .get_mut(layer)
            .ok_or_else(|| StoreError::permanent(layer, StoreOp::Fetch, "layer out of range"))?
            .take()
            .ok_or_else(|| {
                StoreError::permanent(layer, StoreOp::Fetch, "state fetched twice without offload")
            })?;
        self.delay(state.p32.len() * 12);
        Ok(state)
    }

    fn offload(&mut self, layer: usize, state: LayerState) -> Result<(), StoreError> {
        if layer >= self.states.len() {
            return Err(StoreError::permanent(
                layer,
                StoreOp::Offload,
                "layer out of range",
            ));
        }
        self.delay(state.p32.len() * 12);
        self.states[layer] = Some(state);
        Ok(())
    }
}

/// The optimizer applied by the updating thread (line 5 of Algorithm 2).
/// `micro_batches` is how many gradient micro-batches were accumulated into
/// `grads` (for averaging).
pub trait Optimizer: Send {
    fn update(&mut self, layer: usize, state: &mut LayerState, grads: &[f32], micro_batches: u32);
}

/// Plain averaged-SGD, used by unit tests; `angel-train` provides
/// mixed-precision Adam.
pub struct SgdOptimizer {
    pub lr: f32,
}

impl Optimizer for SgdOptimizer {
    fn update(&mut self, _layer: usize, state: &mut LayerState, grads: &[f32], micro: u32) {
        let scale = self.lr / micro.max(1) as f32;
        for (p, g) in state.p32.iter_mut().zip(grads) {
            *p -= scale * g;
        }
    }
}

/// When the gradient buffer is consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClearPolicy {
    /// The paper's protocol: the buffering thread clears the buffer when the
    /// updated parameters arrive (Algorithm 2 line 12). Gradients landing
    /// between the updating thread's read and the clear are dropped (and
    /// counted).
    OnUpdateReceipt,
    /// Lossless variant: the updating thread takes-and-clears the buffer
    /// atomically at snapshot time.
    TakeAtSnapshot,
}

/// Retry discipline for transient [`StateStore`] faults on the update path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per operation (first try included); at least 1.
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Backoff ceiling, so a long retry burst cannot stall shutdown.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff: Duration::from_micros(500),
            max_backoff: Duration::from_millis(20),
        }
    }
}

impl RetryPolicy {
    fn backoff(&self, retry: u32) -> Duration {
        // retry = 1 for the first retry; exponential, saturating at the cap.
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << retry.min(16).saturating_sub(1));
        exp.min(self.max_backoff)
    }
}

/// Retry `op` under `policy`, invoking `on_retry(retry_number, error)` before
/// each backoff sleep. Returns the first permanent error or the last
/// transient one once attempts are exhausted.
fn with_retry<T>(
    policy: &RetryPolicy,
    mut op: impl FnMut() -> Result<T, StoreError>,
    mut on_retry: impl FnMut(u32, &StoreError),
) -> Result<T, StoreError> {
    let attempts = policy.max_attempts.max(1);
    let mut attempt = 1;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() && attempt < attempts => {
                on_retry(attempt, &e);
                thread::sleep(policy.backoff(attempt));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Casting function applied when buffering parameters (`cast(p₃₂, FP16)` in
/// line 13). `angel-train` passes BF16 truncation; tests may use identity.
pub type CastFn = fn(f32) -> f32;

/// Shared per-layer gradient buffer (`g'₁₆` of Algorithm 2).
struct GradBuf {
    g: Vec<f32>,
    micro: u32,
    /// Bumped on every clear; used by the updating thread to keep at most
    /// one in-flight update per layer (preventing double application).
    version: u64,
    /// Set (under this mutex) when the layer is parked after unrecoverable
    /// store faults: arriving gradients are dropped-and-settled instead of
    /// accumulated, so quiescence accounting stays exact.
    parked: bool,
}

/// Shared per-layer parameter buffer (`p'₁₆` of Algorithm 2).
struct ParamBuf {
    p: Vec<f32>,
    version: u64,
}

/// Counters exposing the mechanism's behaviour.
#[derive(Debug, Clone, Default)]
pub struct LockFreeStats {
    /// Gradient micro-batches pushed by the training loop.
    pub grads_pushed: u64,
    /// Micro-batches consumed by an optimizer update.
    pub grads_applied: u64,
    /// Micro-batches cleared without being applied (the OnUpdateReceipt race
    /// window, parked layers, or a dead buffering thread).
    pub grads_dropped: u64,
    /// Completed per-layer optimizer updates.
    pub updates_applied: u64,
    /// Store operations that returned an error (before retry accounting).
    pub store_faults: u64,
    /// Retries performed after transient store errors.
    pub store_retries: u64,
    /// Layers parked in degraded mode after unrecoverable store faults.
    pub layers_parked: u64,
}

#[derive(Default)]
struct AtomicStats {
    grads_pushed: AtomicU64,
    grads_applied: AtomicU64,
    grads_dropped: AtomicU64,
    updates_applied: AtomicU64,
    store_faults: AtomicU64,
    store_retries: AtomicU64,
    layers_parked: AtomicU64,
    grads_settled: AtomicU64, // applied-or-dropped, for quiescence
}

/// Typed status events surfaced by the worker threads — the panic-free
/// replacement for `expect()` on the hot update path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainerEvent {
    /// A transient store fault was retried.
    StoreRetry {
        layer: usize,
        op: StoreOp,
        /// 1-based retry number (1 = first retry after the initial failure).
        retry: u32,
    },
    /// A layer was parked: its store failed permanently or exhausted the
    /// retry budget; training continues without it.
    LayerParked { layer: usize, error: StoreError },
}

enum BufMsg {
    /// Gradients offloaded from the training loop (line 24).
    Grads { layer: usize, g: Vec<f32> },
    /// Updated parameters from the updating thread (line 6), tagged with how
    /// many micro-batches the update consumed.
    Updated {
        layer: usize,
        p32: Vec<f32>,
        applied_micro: u32,
    },
}

/// Observability handles for the trainer's hot paths. All fields are no-op
/// when built from a disabled recorder (the default), so the per-layer
/// update loop pays one branch per operation — the `lockfree` bench's
/// < 2% disabled-overhead budget.
struct TrainerObs {
    rec: Recorder,
    /// `BufMsg`s in flight toward the buffering thread.
    queue_depth: Gauge,
    grads_pushed: Counter,
    grads_applied: Counter,
    grads_dropped: Counter,
    updates_applied: Counter,
    store_retries: Counter,
    layers_parked: Counter,
}

impl TrainerObs {
    fn new(rec: Recorder) -> Self {
        TrainerObs {
            queue_depth: rec.gauge("trainer.queue_depth"),
            grads_pushed: rec.counter("trainer.grads_pushed"),
            grads_applied: rec.counter("trainer.grads_applied"),
            grads_dropped: rec.counter("trainer.grads_dropped"),
            updates_applied: rec.counter("trainer.updates_applied"),
            store_retries: rec.counter("trainer.store_retries"),
            layers_parked: rec.counter("trainer.layers_parked"),
            rec,
        }
    }
}

struct Shared {
    grad_bufs: Vec<Mutex<GradBuf>>,
    param_bufs: Vec<RwLock<ParamBuf>>,
    stats: AtomicStats,
    running: AtomicBool,
    cast: CastFn,
    clear_policy: ClearPolicy,
    retry: RetryPolicy,
    events: Sender<TrainerEvent>,
    /// Receiver end of `events`, owned by the shared state (not the
    /// trainer) so terminal events are never stranded when the trainer is
    /// dropped: [`StatsHandle::drain_events`] reads them post-join.
    events_rx: Mutex<Receiver<TrainerEvent>>,
    /// Events pumped out of `events_rx` but not yet handed to a caller.
    event_stash: Mutex<Vec<TrainerEvent>>,
    obs: TrainerObs,
}

impl Shared {
    /// Pushed-but-not-yet-settled micro-batches (see
    /// [`LockFreeTrainer::pending_grads`] for the ordering argument).
    fn pending_now(&self) -> u64 {
        let settled = self.stats.grads_settled.load(Ordering::Acquire);
        let pushed = self.stats.grads_pushed.load(Ordering::Relaxed);
        pushed.saturating_sub(settled)
    }

    /// Move everything currently queued on the event channel into the
    /// stash. Called from `drain`/`take` sites and at shutdown (after the
    /// worker joins) so no terminal event is ever lost with the channel.
    fn pump_events(&self) {
        let rx = self.events_rx.lock();
        let mut stash = self.event_stash.lock();
        while let Ok(e) = rx.try_recv() {
            stash.push(e);
        }
    }

    /// Pump and take all accumulated events.
    fn take_events(&self) -> Vec<TrainerEvent> {
        self.pump_events();
        std::mem::take(&mut *self.event_stash.lock())
    }

    fn degraded_layers(&self) -> Vec<usize> {
        self.grad_bufs
            .iter()
            .enumerate()
            .filter(|(_, b)| b.lock().parked)
            .map(|(l, _)| l)
            .collect()
    }

    fn snapshot_stats(&self) -> LockFreeStats {
        // I1: an approximate snapshot while threads run; exact once the
        // workers have joined (join synchronizes-with their whole history).
        let s = &self.stats;
        LockFreeStats {
            grads_pushed: s.grads_pushed.load(Ordering::Relaxed),
            grads_applied: s.grads_applied.load(Ordering::Relaxed),
            grads_dropped: s.grads_dropped.load(Ordering::Relaxed),
            updates_applied: s.updates_applied.load(Ordering::Relaxed),
            store_faults: s.store_faults.load(Ordering::Relaxed),
            store_retries: s.store_retries.load(Ordering::Relaxed),
            layers_parked: s.layers_parked.load(Ordering::Relaxed),
        }
    }

    /// Mark `layer` parked so later gradient arrivals settle immediately.
    /// Serialized with the buffering thread by the grad-buf mutex.
    ///
    /// `drop` decides who settles the micro-batches currently in the
    /// buffer: [`protocol::ParkDrop::Always`] (fetch failed, no update in
    /// flight) drops them here; on the offload-failure path an `Updated`
    /// message was sent *before* the park, and whether its receipt still
    /// settles the buffer depends on a race with the buffering thread —
    /// [`protocol::ParkDrop::UnlessReceiptInFlight`] resolves it under the
    /// grad mutex via the buffer version. (The bounded model checker found
    /// the interleaving where the unconditional keep strands a micro-batch:
    /// receipt processed, new gradient buffered, then the park — see
    /// `verify::model` and DESIGN.md §8.)
    fn park_layer(&self, layer: usize, error: StoreError, drop: protocol::ParkDrop) {
        let newly_parked = {
            let mut buf = self.grad_bufs[layer].lock();
            let newly = !buf.parked;
            buf.parked = true;
            let stranded = buf.micro;
            if protocol::park_should_drop(drop, buf.version) && stranded > 0 {
                // I1: diagnostic tally.
                self.stats
                    .grads_dropped
                    .fetch_add(stranded as u64, Ordering::Relaxed);
                // I2: settles must be Release so the quiescence Acquire load
                // observes the pushes that produced these micro-batches.
                self.stats
                    .grads_settled
                    .fetch_add(stranded as u64, Ordering::Release);
                buf.g.iter_mut().for_each(|x| *x = 0.0);
                buf.micro = 0;
                buf.version += 1;
            }
            newly
        };
        if newly_parked {
            // I1: diagnostic tally.
            self.stats.layers_parked.fetch_add(1, Ordering::Relaxed);
            self.obs.layers_parked.inc();
            self.obs
                .rec
                .instant(ObsThread::Updating, "layer_parked", layer as i64);
            let _ = self.events.send(TrainerEvent::LayerParked { layer, error });
        }
    }
}

/// Cloneable view onto a trainer's counters that outlives the trainer —
/// obtained from [`LockFreeTrainer::stats_handle`]; read it after
/// [`LockFreeTrainer::shutdown`] for final, stable statistics.
#[derive(Clone)]
pub struct StatsHandle {
    shared: Arc<Shared>,
}

impl StatsHandle {
    pub fn stats(&self) -> LockFreeStats {
        self.shared.snapshot_stats()
    }

    /// Layers parked in degraded mode (stable once the trainer is shut down).
    pub fn degraded_layers(&self) -> Vec<usize> {
        self.shared.degraded_layers()
    }

    /// Drain status events, including terminal events emitted right before
    /// shutdown: `stop_threads` pumps the channel after the workers join,
    /// so events survive the trainer being dropped and stay readable here.
    pub fn drain_events(&self) -> Vec<TrainerEvent> {
        self.shared.take_events()
    }
}

/// What the updating thread hands back at join time.
struct UpdaterFinal {
    store: Box<dyn StateStore>,
    /// States orphaned by permanent offload failures, kept so shutdown can
    /// still return the freshest parameters for parked layers.
    orphaned: Vec<Option<LayerState>>,
}

/// The running mechanism: owns the buffering and updating threads.
pub struct LockFreeTrainer {
    shared: Arc<Shared>,
    to_buffering: Sender<BufMsg>,
    buffering: Option<JoinHandle<()>>,
    updating: Option<JoinHandle<UpdaterFinal>>,
}

impl LockFreeTrainer {
    /// Spawn the mechanism over `initial` per-layer parameters with the
    /// default [`RetryPolicy`]. The `store` is pre-populated with
    /// `LayerState::new(initial[l])` and owned by the updating thread.
    pub fn spawn(
        initial: Vec<Vec<f32>>,
        store: Box<dyn StateStore>,
        optimizer: Box<dyn Optimizer>,
        cast: CastFn,
        clear_policy: ClearPolicy,
    ) -> Self {
        Self::spawn_with(
            initial,
            store,
            optimizer,
            cast,
            clear_policy,
            RetryPolicy::default(),
        )
    }

    /// [`LockFreeTrainer::spawn`] with an explicit retry discipline.
    pub fn spawn_with(
        initial: Vec<Vec<f32>>,
        store: Box<dyn StateStore>,
        optimizer: Box<dyn Optimizer>,
        cast: CastFn,
        clear_policy: ClearPolicy,
        retry: RetryPolicy,
    ) -> Self {
        Self::spawn_observed(
            initial,
            store,
            optimizer,
            cast,
            clear_policy,
            retry,
            Recorder::disabled(),
        )
    }

    /// [`LockFreeTrainer::spawn_with`] plus an observability recorder: the
    /// worker threads emit queue-depth gauges, push/apply/park/retry
    /// counters and wall-clock-timestamped events into it (see
    /// [`crate::obs`]). Pass [`Recorder::disabled`] for the permanent
    /// near-zero-cost no-op.
    pub fn spawn_observed(
        initial: Vec<Vec<f32>>,
        mut store: Box<dyn StateStore>,
        mut optimizer: Box<dyn Optimizer>,
        cast: CastFn,
        clear_policy: ClearPolicy,
        retry: RetryPolicy,
        recorder: Recorder,
    ) -> Self {
        let layers = initial.len();
        let (events_tx, events_rx) = unbounded();
        let shared = Arc::new(Shared {
            grad_bufs: initial
                .iter()
                .map(|p| {
                    Mutex::new(GradBuf {
                        g: vec![0.0; p.len()],
                        micro: 0,
                        version: 0,
                        parked: false,
                    })
                })
                .collect(),
            param_bufs: initial
                .iter()
                .map(|p| {
                    RwLock::new(ParamBuf {
                        p: p.iter().map(|&x| cast(x)).collect(),
                        version: 0,
                    })
                })
                .collect(),
            stats: AtomicStats::default(),
            running: AtomicBool::new(true),
            cast,
            clear_policy,
            retry,
            events: events_tx,
            events_rx: Mutex::new(events_rx),
            event_stash: Mutex::new(Vec::new()),
            obs: TrainerObs::new(recorder),
        });

        let (tx, rx): (Sender<BufMsg>, Receiver<BufMsg>) = unbounded();

        // ---- Buffering thread (Algorithm 2 lines 9–15) -------------------
        let buf_shared = Arc::clone(&shared);
        // Thread spawn only fails on OS resource exhaustion; the trainer
        // has no degraded single-threaded mode to fall back to.
        #[allow(clippy::disallowed_methods)]
        let buffering = thread::Builder::new()
            .name("angel-buffering".into())
            .spawn(move || buffering_loop(buf_shared, rx))
            .expect("spawn buffering thread");

        // ---- Updating thread (Algorithm 2 lines 1–7) ----------------------
        let upd_shared = Arc::clone(&shared);
        let upd_tx = tx.clone();
        // Same justification as the buffering thread above.
        #[allow(clippy::disallowed_methods)]
        let updating = thread::Builder::new()
            .name("angel-updating".into())
            .spawn(move || {
                let orphaned =
                    updating_loop(upd_shared, upd_tx, &mut store, optimizer.as_mut(), layers);
                UpdaterFinal { store, orphaned }
            })
            .expect("spawn updating thread");

        Self {
            shared,
            to_buffering: tx,
            buffering: Some(buffering),
            updating: Some(updating),
        }
    }

    /// Line 20: fetch the buffered FP16 parameters of a layer (plus their
    /// version, monotonically increasing with each completed update).
    pub fn read_params(&self, layer: usize) -> (Vec<f32>, u64) {
        let buf = self.shared.param_bufs[layer].read();
        (buf.p.clone(), buf.version)
    }

    /// Line 24: offload a layer's gradients toward the buffering thread.
    ///
    /// Never panics: if the buffering thread is gone the micro-batch is
    /// counted as dropped-and-settled so accounting and quiescence hold.
    pub fn push_grads(&self, layer: usize, g: Vec<f32>) {
        // I2: the increment is sequenced before the channel send, and the
        // send/recv pair orders it before the receiver's eventual settle
        // (whose Release publishes it to the quiescence reader) — Relaxed
        // suffices on the push side.
        self.shared
            .stats
            .grads_pushed
            .fetch_add(1, Ordering::Relaxed);
        let obs = &self.shared.obs;
        obs.grads_pushed.inc();
        obs.queue_depth.add(1);
        if obs.rec.is_enabled() {
            obs.rec
                .instant(ObsThread::TrainLoop, "push_grads", layer as i64);
            obs.rec.counter_sample(
                ObsThread::TrainLoop,
                "trainer.pending_grads",
                self.shared.pending_now(),
            );
        }
        if self.to_buffering.send(BufMsg::Grads { layer, g }).is_err() {
            obs.queue_depth.sub(1);
            obs.grads_dropped.inc();
            // I1: diagnostic tally.
            self.shared
                .stats
                .grads_dropped
                .fetch_add(1, Ordering::Relaxed);
            // I2: settle on the push-failure path; Release pairs with the
            // quiescence Acquire (same thread as the push, so the snapshot
            // argument is trivial here, but the invariant is per-site).
            self.shared
                .stats
                .grads_settled
                .fetch_add(1, Ordering::Release);
        }
    }

    pub fn stats(&self) -> LockFreeStats {
        self.shared.snapshot_stats()
    }

    /// A cloneable handle onto the live counters that survives
    /// [`Self::shutdown`]. Counters only stop moving once the worker
    /// threads have joined, so exact-accounting assertions (conservation,
    /// fault counts) should read through a handle *after* shutdown.
    pub fn stats_handle(&self) -> StatsHandle {
        StatsHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Drain all pending status events (non-blocking).
    pub fn drain_events(&self) -> Vec<TrainerEvent> {
        self.shared.take_events()
    }

    /// Layers currently parked in degraded mode.
    pub fn degraded_layers(&self) -> Vec<usize> {
        self.shared.degraded_layers()
    }

    /// Staleness proxy: pushed-but-not-yet-settled gradient micro-batches.
    ///
    /// I2: [`Shared::pending_now`] loads `settled` FIRST, with Acquire.
    /// Every settle is a Release increment that happens-after the matching
    /// push (channel + mutex), so the later Relaxed `pushed` load sees at
    /// least the pushes of everything settled in the snapshot:
    /// `pushed ≥ settled`, and the difference can only over-report pending
    /// work, never hide it. (Loading `pushed` first could miss concurrent
    /// settles *and* their pushes in a way that transiently under-counts
    /// pending.)
    pub fn pending_grads(&self) -> u64 {
        self.shared.pending_now()
    }

    /// Block until every pushed gradient has been applied or dropped (test
    /// helper; the production loop never waits — that is the whole point).
    ///
    /// Returns `true` if quiescence was reached, `false` if a worker thread
    /// died first (in which case the remaining gradients can never settle).
    pub fn wait_quiescent(&self) -> bool {
        loop {
            if self.pending_grads() == 0 {
                return true;
            }
            #[allow(clippy::unnecessary_map_or)] // is_none_or needs Rust 1.82 (MSRV 1.75)
            let worker_dead = self.buffering.as_ref().map_or(true, |h| h.is_finished())
                || self.updating.as_ref().map_or(true, |h| h.is_finished());
            if worker_dead {
                return self.pending_grads() == 0;
            }
            thread::yield_now();
        }
    }

    /// Stop both threads and return the final FP32 states from the store
    /// (orphaned states of parked layers are returned from the updating
    /// thread's stash). Panic-free: worker deaths and store failures surface
    /// as [`TrainerError`].
    pub fn shutdown(mut self, layers: usize) -> Result<Vec<LayerState>, TrainerError> {
        let (fin, err) = self.stop_threads();
        if let Some(e) = err {
            return Err(e);
        }
        let mut fin = fin.ok_or(TrainerError::WorkerPanicked {
            thread: "angel-updating",
        })?;
        // Shutdown is not latency-sensitive: retry transient faults much
        // harder than the hot path does before giving up on a layer.
        let retry = RetryPolicy {
            max_attempts: self.shared.retry.max_attempts.max(12),
            ..self.shared.retry
        };
        let stats = &self.shared.stats;
        (0..layers)
            .map(|l| {
                if let Some(state) = fin.orphaned.get_mut(l).and_then(Option::take) {
                    return Ok(state);
                }
                // Shutdown fetches go through the same store, so they feed
                // the same fault/retry counters as the hot path.
                with_retry(
                    &retry,
                    || match fin.store.fetch(l) {
                        Ok(s) => Ok(s),
                        Err(e) => {
                            // I1: diagnostic tally.
                            stats.store_faults.fetch_add(1, Ordering::Relaxed);
                            Err(e)
                        }
                    },
                    |_, _| {
                        // I1: diagnostic tally.
                        stats.store_retries.fetch_add(1, Ordering::Relaxed);
                    },
                )
                .map_err(TrainerError::from)
            })
            .collect()
    }

    /// Stop the updating thread, close the channel, join the buffering
    /// thread. Swallows nothing silently: a panicked worker is reported as
    /// an error value (second slot), never re-panicked — so the `Drop` path
    /// cannot double-panic and abort the process.
    fn stop_threads(&mut self) -> (Option<UpdaterFinal>, Option<TrainerError>) {
        // I3: termination flag; Release pairs with the updating loop's
        // Acquire load.
        self.shared.running.store(false, Ordering::Release);
        let mut error = None;
        let fin = match self.updating.take() {
            Some(h) => match h.join() {
                Ok(f) => Some(f),
                Err(_) => {
                    error = Some(TrainerError::WorkerPanicked {
                        thread: "angel-updating",
                    });
                    None
                }
            },
            None => None,
        };
        // Drop every sender so the buffering thread's recv() ends after
        // draining (the updating thread's clone died with its join above).
        let (dummy, _rx) = unbounded();
        drop(std::mem::replace(&mut self.to_buffering, dummy));
        if let Some(b) = self.buffering.take() {
            if b.join().is_err() && error.is_none() {
                error = Some(TrainerError::WorkerPanicked {
                    thread: "angel-buffering",
                });
            }
        }
        // Both workers are gone: everything they ever sent is now queued on
        // the event channel. Pump it into the stash so terminal events
        // (e.g. a park during the final offload) survive the trainer and
        // remain readable through [`StatsHandle::drain_events`].
        self.shared.pump_events();
        (fin, error)
    }
}

impl Drop for LockFreeTrainer {
    fn drop(&mut self) {
        // Tolerate users who never call shutdown(): stop cleanly anyway.
        // Join errors are discarded — Drop may already be running during an
        // unwind, where a second panic would abort the process.
        let _ = self.stop_threads();
    }
}

fn buffering_loop(shared: Arc<Shared>, rx: Receiver<BufMsg>) {
    // The loop exits when all senders are dropped (shutdown) after draining.
    while let Ok(msg) = rx.recv() {
        shared.obs.queue_depth.sub(1);
        match msg {
            BufMsg::Grads { layer, g } => {
                shared
                    .obs
                    .rec
                    .instant(ObsThread::Buffering, "grad_buffered", layer as i64);
                let mut buf = shared.grad_bufs[layer].lock();
                if buf.parked {
                    // Degraded mode: the layer's store is gone; settle the
                    // micro-batch as dropped instead of stranding it.
                    // I1 (dropped) / I2 (settled: Release, pairs with the
                    // quiescence Acquire; the push happens-before via the
                    // channel recv).
                    shared.stats.grads_dropped.fetch_add(1, Ordering::Relaxed);
                    shared.stats.grads_settled.fetch_add(1, Ordering::Release);
                    shared.obs.grads_dropped.inc();
                    shared.obs.rec.instant(
                        ObsThread::Buffering,
                        "grad_dropped_parked",
                        layer as i64,
                    );
                    continue;
                }
                // Line 15: g'₁₆(l) ← g'₁₆(l) + g₁₆(l).
                for (acc, x) in buf.g.iter_mut().zip(&g) {
                    *acc += x;
                }
                buf.micro += 1;
            }
            BufMsg::Updated {
                layer,
                p32,
                applied_micro,
            } => {
                let t0 = shared.obs.rec.now_ns();
                // Lines 12–13: clear buffered gradients, cast parameters.
                if shared.clear_policy == ClearPolicy::OnUpdateReceipt {
                    let mut buf = shared.grad_bufs[layer].lock();
                    // Everything present is cleared with the receipt. Of the
                    // cleared micro-batches, `applied_micro` were consumed by
                    // the update; the rest arrived during the update window
                    // and are dropped. The arithmetic is shared with the
                    // model checker (`verify::model`) via `protocol`.
                    let s = protocol::settle_receipt(buf.micro, applied_micro);
                    // I1 (dropped) / I2 (settled: Release; the cleared
                    // micro-batches' pushes happen-before through the grad
                    // mutex and the channel).
                    shared
                        .stats
                        .grads_dropped
                        .fetch_add(s.late as u64, Ordering::Relaxed);
                    shared
                        .stats
                        .grads_settled
                        .fetch_add(s.cleared as u64, Ordering::Release);
                    buf.g.iter_mut().for_each(|x| *x = 0.0);
                    buf.micro = 0;
                    buf.version += 1;
                }
                {
                    let mut pbuf = shared.param_bufs[layer].write();
                    pbuf.p.clear();
                    pbuf.p.extend(p32.iter().map(|&x| (shared.cast)(x)));
                    pbuf.version += 1;
                }
                if shared.obs.rec.is_enabled() {
                    shared
                        .obs
                        .rec
                        .span(ObsThread::Buffering, "apply_receipt", layer as i64, t0);
                    shared.obs.rec.counter_sample(
                        ObsThread::Buffering,
                        "trainer.pending_grads",
                        shared.pending_now(),
                    );
                }
            }
        }
    }
}

fn updating_loop(
    shared: Arc<Shared>,
    tx: Sender<BufMsg>,
    store: &mut Box<dyn StateStore>,
    optimizer: &mut dyn Optimizer,
    layers: usize,
) -> Vec<Option<LayerState>> {
    // Version of the buffer at our last snapshot per layer; a second update
    // of the same layer waits until the buffering thread has cleared the
    // previous one (version bump), so gradients are never applied twice.
    let mut last_snapshot_version: Vec<Option<u64>> = vec![None; layers];
    // States that could not be offloaded back after a permanent store
    // failure; kept so shutdown can still return them.
    let mut orphaned: Vec<Option<LayerState>> = (0..layers).map(|_| None).collect();
    let retry = shared.retry;
    let count_retry = |layer: usize, op: StoreOp| {
        let shared = &shared;
        move |r: u32, _e: &StoreError| {
            // I1: diagnostic tally.
            shared.stats.store_retries.fetch_add(1, Ordering::Relaxed);
            shared.obs.store_retries.inc();
            shared
                .obs
                .rec
                .instant(ObsThread::Updating, "store_retry", layer as i64);
            let _ = shared.events.send(TrainerEvent::StoreRetry {
                layer,
                op,
                retry: r,
            });
        }
    };
    // Line 2: while there are uncleared buffered gradients (we poll until
    // shutdown, idling when nothing is pending).
    // I3: Acquire pairs with the Release store in stop_threads.
    while shared.running.load(Ordering::Acquire) {
        let mut did_work = false;
        // Line 3: for l_i ∈ reverse(model) — gradients appear in reverse
        // layer order during backward, so reverse iteration updates the
        // layers whose gradients arrived first.
        for layer in (0..layers).rev() {
            let t0 = shared.obs.rec.now_ns();
            let snapshot = {
                let buf = shared.grad_bufs[layer].lock();
                // Snapshot gate shared with the model checker: under
                // OnUpdateReceipt the version protocol keeps at most one
                // update per layer in flight so gradients are never applied
                // twice.
                if !protocol::may_snapshot(
                    shared.clear_policy,
                    buf.micro,
                    buf.parked,
                    last_snapshot_version[layer],
                    buf.version,
                ) {
                    continue;
                }
                match shared.clear_policy {
                    ClearPolicy::OnUpdateReceipt => {
                        last_snapshot_version[layer] = Some(buf.version);
                        (buf.g.clone(), buf.micro)
                    }
                    ClearPolicy::TakeAtSnapshot => {
                        let mut buf = buf;
                        let g = buf.g.clone();
                        let micro = buf.micro;
                        buf.g.iter_mut().for_each(|x| *x = 0.0);
                        buf.micro = 0;
                        buf.version += 1;
                        // I2: settled Release; the snapshot consumed these
                        // micro-batches under the grad mutex, so their
                        // pushes happen-before this increment.
                        shared
                            .stats
                            .grads_settled
                            .fetch_add(micro as u64, Ordering::Release);
                        (g, micro)
                    }
                }
            };
            let (grads, micro) = snapshot;
            // Line 4: fetch p₃₂, m₃₂, v₃₂ from SSD storage — with retries;
            // an unrecoverable fault parks the layer instead of panicking.
            let fetched = with_retry(
                &retry,
                || match store.fetch(layer) {
                    Ok(s) => Ok(s),
                    Err(e) => {
                        // I1: diagnostic tally.
                        shared.stats.store_faults.fetch_add(1, Ordering::Relaxed);
                        Err(e)
                    }
                },
                count_retry(layer, StoreOp::Fetch),
            );
            let mut state = match fetched {
                Ok(state) => state,
                Err(e) => {
                    if shared.clear_policy == ClearPolicy::TakeAtSnapshot {
                        // The snapshot already settled these micro-batches;
                        // they will never be applied, so they are dropped.
                        // I1: diagnostic tally.
                        shared
                            .stats
                            .grads_dropped
                            .fetch_add(micro as u64, Ordering::Relaxed);
                        shared.obs.grads_dropped.add(micro as u64);
                    }
                    // (OnUpdateReceipt: the micro-batches are still in the
                    // buffer and no `Updated` receipt is in flight — the
                    // version protocol guarantees the previous clear landed
                    // before this snapshot — so park drops-and-settles them.)
                    shared.park_layer(layer, e, protocol::ParkDrop::Always);
                    did_work = true;
                    continue;
                }
            };
            // Line 5: update via g'₁₆.
            optimizer.update(layer, &mut state, &grads, micro);
            // I1: diagnostic tallies; conservation is asserted post-join.
            shared
                .stats
                .grads_applied
                .fetch_add(micro as u64, Ordering::Relaxed);
            shared.stats.updates_applied.fetch_add(1, Ordering::Relaxed);
            shared.obs.grads_applied.add(micro as u64);
            shared.obs.updates_applied.inc();
            // Line 6: pass p₃₂ to the buffering thread.
            shared.obs.queue_depth.add(1);
            let _ = tx.send(BufMsg::Updated {
                layer,
                p32: state.p32.clone(),
                applied_micro: micro,
            });
            // Line 7: offload back to SSD (overlapped with the buffering
            // thread's work — it is already processing the message). The
            // store consumes the state by value, so each attempt offloads a
            // clone and the original survives for retries / the orphan
            // stash.
            let offloaded = with_retry(
                &retry,
                || match store.offload(layer, state.clone()) {
                    Ok(()) => Ok(()),
                    Err(e) => {
                        // I1: diagnostic tally.
                        shared.stats.store_faults.fetch_add(1, Ordering::Relaxed);
                        Err(e)
                    }
                },
                count_retry(layer, StoreOp::Offload),
            );
            if let Err(e) = offloaded {
                // The update was applied and its parameters are buffered,
                // but the store lost the layer: park it and stash the state
                // so shutdown can still return the freshest masters. Under
                // OnUpdateReceipt the `Updated` message sent above may still
                // be in flight; if so its receipt settles everything
                // buffered and the park must NOT drop (double-count) — but
                // if the buffering thread already processed it (buffer
                // version advanced past our snapshot), anything buffered
                // since would be stranded forever, so the park must drop.
                // Under TakeAtSnapshot the receipt does not touch the grad
                // buffer, so arrivals since the snapshot are always dropped
                // by the park itself.
                orphaned[layer] = Some(state);
                let drop = match shared.clear_policy {
                    ClearPolicy::TakeAtSnapshot => protocol::ParkDrop::Always,
                    // Protocol invariant (Algorithm 2): an update under
                    // OnUpdateReceipt is always preceded by the snapshot
                    // that produced it, which recorded its version here.
                    #[allow(clippy::disallowed_methods)]
                    ClearPolicy::OnUpdateReceipt => protocol::ParkDrop::UnlessReceiptInFlight {
                        snapshot_version: last_snapshot_version[layer]
                            .expect("OnUpdateReceipt update implies a recorded snapshot"),
                    },
                };
                shared.park_layer(layer, e, drop);
            }
            if shared.obs.rec.is_enabled() {
                shared
                    .obs
                    .rec
                    .span(ObsThread::Updating, "update_layer", layer as i64, t0);
                shared.obs.rec.counter_sample(
                    ObsThread::Updating,
                    "trainer.pending_grads",
                    shared.pending_now(),
                );
            }
            did_work = true;
        }
        if !did_work {
            thread::yield_now();
        }
    }
    orphaned
}

/// The pure arithmetic of the consistency-control protocol, extracted so
/// the production threads ([`buffering_loop`], [`updating_loop`]) and the
/// bounded model checker ([`crate::verify::model`]) execute the *same*
/// decision logic — a checker over a diverged copy would prove nothing.
pub mod protocol {
    use super::ClearPolicy;

    /// Accounting outcome of clearing the gradient buffer when an
    /// `Updated` receipt arrives (Algorithm 2 lines 12–13).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ReceiptSettlement {
        /// Micro-batches removed from the buffer (all of them).
        pub cleared: u32,
        /// Of those, how many arrived during the update window and were
        /// never applied — the paper protocol's intentional loss.
        pub late: u32,
    }

    /// Settle a receipt: everything buffered clears; `applied_micro` of it
    /// was consumed by the update, the rest is dropped. Saturating because
    /// a park may already have drained the buffer under the receipt.
    pub fn settle_receipt(buffered_micro: u32, applied_micro: u32) -> ReceiptSettlement {
        ReceiptSettlement {
            cleared: buffered_micro,
            late: buffered_micro.saturating_sub(applied_micro),
        }
    }

    /// May the updating thread take a new snapshot of a layer's gradient
    /// buffer? Under [`ClearPolicy::OnUpdateReceipt`] the version gate
    /// keeps at most one update per layer in flight: a second snapshot of
    /// the same buffer version would apply the same gradients twice.
    pub fn may_snapshot(
        policy: ClearPolicy,
        buffered_micro: u32,
        parked: bool,
        last_snapshot: Option<u64>,
        version: u64,
    ) -> bool {
        if buffered_micro == 0 || parked {
            return false;
        }
        match policy {
            ClearPolicy::OnUpdateReceipt => last_snapshot != Some(version),
            ClearPolicy::TakeAtSnapshot => true,
        }
    }

    /// Who settles the micro-batches buffered at park time.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum ParkDrop {
        /// No receipt can be in flight for this layer (fetch failure, or
        /// [`ClearPolicy::TakeAtSnapshot`] where receipts never touch the
        /// grad buffer): the park drops-and-settles the buffer.
        Always,
        /// An `Updated` receipt was sent before the park
        /// ([`ClearPolicy::OnUpdateReceipt`] offload failure). If it has
        /// not been processed yet it will settle everything buffered, so
        /// dropping here would double-count; if it *has* been processed,
        /// anything buffered since would be stranded forever, so the park
        /// must drop. The buffer version, read under the grad mutex,
        /// distinguishes the two: the receipt's clear bumps it past
        /// `snapshot_version`.
        ///
        /// The bounded model checker ([`crate::verify::model`]) found the
        /// stranding interleaving when this was an unconditional "never
        /// drop": receipt processed → new gradient buffered → park; the
        /// stranded micro-batch kept `pending_grads() > 0` forever.
        UnlessReceiptInFlight { snapshot_version: u64 },
    }

    /// Resolve a [`ParkDrop`] against the buffer version observed under
    /// the grad mutex at park time.
    pub fn park_should_drop(drop: ParkDrop, current_version: u64) -> bool {
        match drop {
            ParkDrop::Always => true,
            ParkDrop::UnlessReceiptInFlight { snapshot_version } => {
                current_version != snapshot_version
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultyStore};

    fn identity(x: f32) -> f32 {
        x
    }

    fn trainer(layers: usize, n: usize, policy: ClearPolicy) -> (LockFreeTrainer, Vec<Vec<f32>>) {
        let initial: Vec<Vec<f32>> = (0..layers)
            .map(|l| (0..n).map(|i| (l * n + i) as f32 * 0.01).collect())
            .collect();
        let store = MemoryStore::new(initial.iter().cloned().map(LayerState::new).collect());
        let t = LockFreeTrainer::spawn(
            initial.clone(),
            Box::new(store),
            Box::new(SgdOptimizer { lr: 0.1 }),
            identity,
            policy,
        );
        (t, initial)
    }

    /// A quick retry discipline so fault tests don't sleep for real.
    fn fast_retry() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_micros(10),
            max_backoff: Duration::from_micros(100),
        }
    }

    #[test]
    fn initial_params_readable() {
        let (t, initial) = trainer(3, 8, ClearPolicy::OnUpdateReceipt);
        for (l, expected) in initial.iter().enumerate() {
            let (p, v) = t.read_params(l);
            assert_eq!(&p, expected);
            assert_eq!(v, 0);
        }
        t.shutdown(3).unwrap();
    }

    #[test]
    fn single_gradient_applied() {
        let (t, initial) = trainer(1, 4, ClearPolicy::OnUpdateReceipt);
        t.push_grads(0, vec![1.0; 4]);
        t.wait_quiescent();
        let states = t.shutdown(1).unwrap();
        // SGD with lr 0.1, one micro-batch: p -= 0.1 * 1.0.
        for (p, p0) in states[0].p32.iter().zip(&initial[0]) {
            assert!((p - (p0 - 0.1)).abs() < 1e-6, "{p} vs {p0}");
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "timing-sensitive / too slow under Miri")]
    fn buffered_params_eventually_refresh() {
        let (t, _) = trainer(1, 4, ClearPolicy::OnUpdateReceipt);
        let (_, v0) = t.read_params(0);
        t.push_grads(0, vec![1.0; 4]);
        // Wait for the parameter buffer version to advance.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let (_, v) = t.read_params(0);
            if v > v0 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "param buffer never refreshed"
            );
            std::thread::yield_now();
        }
        t.shutdown(1).unwrap();
    }

    #[test]
    fn gradients_accumulate_across_microbatches() {
        // TakeAtSnapshot is lossless: pushing k micro-batches applies the
        // averaged sum exactly once each.
        let (t, initial) = trainer(1, 2, ClearPolicy::TakeAtSnapshot);
        for _ in 0..10 {
            t.push_grads(0, vec![2.0, 4.0]);
        }
        t.wait_quiescent();
        let stats = t.stats();
        assert_eq!(stats.grads_pushed, 10);
        assert_eq!(stats.grads_applied + stats.grads_dropped, 10);
        assert_eq!(stats.grads_dropped, 0);
        let states = t.shutdown(1).unwrap();
        // Every update applies lr * mean(grad); the mean is 2.0 / 4.0
        // regardless of how micro-batches were grouped into updates, so the
        // total displacement is stats.updates * lr * mean — with grouping
        // unknown, check direction and bound.
        let d0 = initial[0][0] - states[0].p32[0];
        let d1 = initial[0][1] - states[0].p32[1];
        assert!(d0 > 0.0 && d1 > 0.0);
        assert!(
            (d1 / d0 - 2.0).abs() < 1e-4,
            "proportional to gradient: {d1}/{d0}"
        );
    }

    #[test]
    fn multi_layer_updates_all_layers() {
        let (t, initial) = trainer(4, 4, ClearPolicy::OnUpdateReceipt);
        for l in 0..4 {
            t.push_grads(l, vec![1.0; 4]);
        }
        t.wait_quiescent();
        let states = t.shutdown(4).unwrap();
        for l in 0..4 {
            assert!(
                states[l].p32[0] < initial[l][0],
                "layer {l} parameters must move"
            );
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "timing-sensitive / too slow under Miri")]
    fn paper_policy_accounts_for_every_gradient() {
        let (t, _) = trainer(2, 16, ClearPolicy::OnUpdateReceipt);
        for i in 0..200 {
            t.push_grads(i % 2, vec![0.01; 16]);
        }
        t.wait_quiescent();
        let s = t.stats();
        assert_eq!(s.grads_pushed, 200);
        assert_eq!(s.grads_applied + s.grads_dropped, 200);
        assert!(s.updates_applied > 0);
        t.shutdown(2).unwrap();
    }

    #[test]
    #[cfg_attr(miri, ignore = "timing-sensitive / too slow under Miri")]
    fn training_never_blocks_on_slow_store() {
        // A severely throttled store: pushes must return immediately anyway
        // — the decoupling property the mechanism exists for. The bound is
        // *relative*: we first measure what synchronous coupling costs on an
        // identical store on this very machine, so a loaded CI runner slows
        // both measurements alike instead of tripping an absolute constant.
        let initial = vec![vec![0.0f32; 256]; 2];
        let bw = 200_000; // 200 KB/s: each fetch/offload takes ~15 ms
        let sync_rounds = 4u32;
        let mut probe =
            MemoryStore::throttled(initial.iter().cloned().map(LayerState::new).collect(), bw);
        let sync_start = std::time::Instant::now();
        for i in 0..sync_rounds as usize {
            let state = probe.fetch(i % 2).unwrap();
            probe.offload(i % 2, state).unwrap();
        }
        // What 50 synchronously-coupled pushes would cost at measured speed.
        let sync_50 = sync_start.elapsed() * 50 / sync_rounds;

        let store =
            MemoryStore::throttled(initial.iter().cloned().map(LayerState::new).collect(), bw);
        let t = LockFreeTrainer::spawn(
            initial,
            Box::new(store),
            Box::new(SgdOptimizer { lr: 0.1 }),
            identity,
            ClearPolicy::OnUpdateReceipt,
        );
        let start = std::time::Instant::now();
        for i in 0..50 {
            t.push_grads(i % 2, vec![1.0; 256]);
            let _ = t.read_params(i % 2);
        }
        let elapsed = start.elapsed();
        // Decoupled pushes must beat synchronous coupling by a wide margin
        // (4× here; the real gap is orders of magnitude).
        assert!(
            elapsed < sync_50 / 4,
            "pushes blocked: {elapsed:?} vs synchronous estimate {sync_50:?}"
        );
        t.wait_quiescent();
        let s = t.stats();
        assert_eq!(s.grads_applied + s.grads_dropped, 50);
        // The slow store forces accumulation: far fewer updates than pushes.
        assert!(s.updates_applied < 50, "updates = {}", s.updates_applied);
        t.shutdown(2).unwrap();
    }

    #[test]
    fn stale_reads_are_consistent_snapshots() {
        // read_params must never observe a torn write. Use identical
        // initial elements so lockstep SGD keeps them equal at every
        // consistent snapshot.
        let initial = vec![vec![0.5f32; 64]];
        let store = MemoryStore::new(initial.iter().cloned().map(LayerState::new).collect());
        let t = LockFreeTrainer::spawn(
            initial,
            Box::new(store),
            Box::new(SgdOptimizer { lr: 0.1 }),
            identity,
            ClearPolicy::TakeAtSnapshot,
        );
        for _ in 0..20 {
            t.push_grads(0, vec![1.0; 64]);
            let (p, _) = t.read_params(0);
            // All elements updated in lockstep by SGD: they must be equal.
            assert!(p.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9));
        }
        t.wait_quiescent();
        t.shutdown(1).unwrap();
    }

    // ---- Fault-path tests ------------------------------------------------

    /// A store whose fetch panics — simulating a bug in a store
    /// implementation, the worst case the Drop path must survive.
    struct PanickyStore;

    impl StateStore for PanickyStore {
        fn fetch(&mut self, _layer: usize) -> Result<LayerState, StoreError> {
            panic!("store bug");
        }
        fn offload(&mut self, _layer: usize, _state: LayerState) -> Result<(), StoreError> {
            Ok(())
        }
    }

    #[test]
    fn drop_survives_worker_panic() {
        // A panicked updating thread must not abort the process when the
        // trainer is dropped (the old join().expect() double-panicked).
        let t = LockFreeTrainer::spawn(
            vec![vec![0.0f32; 4]],
            Box::new(PanickyStore),
            Box::new(SgdOptimizer { lr: 0.1 }),
            identity,
            ClearPolicy::OnUpdateReceipt,
        );
        t.push_grads(0, vec![1.0; 4]);
        // Give the updating thread time to hit the panic.
        while !t.updating.as_ref().unwrap().is_finished() {
            std::thread::yield_now();
        }
        drop(t); // must not abort
    }

    #[test]
    fn shutdown_reports_worker_panic_as_error() {
        let t = LockFreeTrainer::spawn(
            vec![vec![0.0f32; 4]],
            Box::new(PanickyStore),
            Box::new(SgdOptimizer { lr: 0.1 }),
            identity,
            ClearPolicy::OnUpdateReceipt,
        );
        t.push_grads(0, vec![1.0; 4]);
        while !t.updating.as_ref().unwrap().is_finished() {
            std::thread::yield_now();
        }
        let err = t.shutdown(1).unwrap_err();
        assert_eq!(
            err,
            TrainerError::WorkerPanicked {
                thread: "angel-updating"
            }
        );
    }

    #[test]
    fn wait_quiescent_returns_false_when_worker_died() {
        let t = LockFreeTrainer::spawn(
            vec![vec![0.0f32; 4]],
            Box::new(PanickyStore),
            Box::new(SgdOptimizer { lr: 0.1 }),
            identity,
            ClearPolicy::OnUpdateReceipt,
        );
        t.push_grads(0, vec![1.0; 4]);
        while !t.updating.as_ref().unwrap().is_finished() {
            std::thread::yield_now();
        }
        // The worker died with the gradient possibly unsettled; the waiter
        // must not spin forever.
        let _ = t.wait_quiescent();
    }

    /// Terminal events must not be stranded when the trainer is dropped
    /// before `drain_events`: shutdown pumps the channel post-join and the
    /// stash stays readable through the [`StatsHandle`].
    #[test]
    #[cfg_attr(miri, ignore = "timing-sensitive / too slow under Miri")]
    fn terminal_events_survive_drop_via_stats_handle() {
        let initial = vec![vec![0.5f32; 8]; 2];
        let inner = MemoryStore::new(initial.iter().cloned().map(LayerState::new).collect());
        let plan = FaultPlan::seeded(3).with_dead_layer(1, StoreOp::Fetch);
        let store = FaultyStore::new(inner, plan);
        let t = LockFreeTrainer::spawn_with(
            initial,
            Box::new(store),
            Box::new(SgdOptimizer { lr: 0.1 }),
            identity,
            ClearPolicy::OnUpdateReceipt,
            fast_retry(),
        );
        for l in 0..2 {
            t.push_grads(l, vec![1.0; 8]);
        }
        assert!(t.wait_quiescent());
        let handle = t.stats_handle();
        // Drop without ever draining: the park event is still queued.
        drop(t);
        let events = handle.drain_events();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, TrainerEvent::LayerParked { layer: 1, .. })),
            "park event stranded at shutdown: {events:?}"
        );
        // Drained means drained: a second call returns nothing.
        assert!(handle.drain_events().is_empty());
    }

    /// `spawn_observed` threads a live recorder through both worker
    /// threads: mirror counters match the protocol stats and the event
    /// ring holds wall-clock-stamped spans from the updating thread.
    #[test]
    #[cfg_attr(miri, ignore = "timing-sensitive / too slow under Miri")]
    fn observed_trainer_records_metrics_and_events() {
        use crate::obs::{ObsEventKind, Recorder};
        let rec = Recorder::enabled();
        let initial = vec![vec![0.5f32; 8]; 2];
        let store = MemoryStore::new(initial.iter().cloned().map(LayerState::new).collect());
        let t = LockFreeTrainer::spawn_observed(
            initial,
            Box::new(store),
            Box::new(SgdOptimizer { lr: 0.1 }),
            identity,
            ClearPolicy::TakeAtSnapshot,
            RetryPolicy::default(),
            rec.clone(),
        );
        for i in 0..20 {
            t.push_grads(i % 2, vec![1.0; 8]);
        }
        assert!(t.wait_quiescent());
        let handle = t.stats_handle();
        t.shutdown(2).unwrap();
        let stats = handle.stats();
        let snap = rec.snapshot();
        assert_eq!(snap.counters["trainer.grads_pushed"], 20);
        assert_eq!(snap.counters["trainer.grads_applied"], stats.grads_applied);
        assert_eq!(
            snap.counters["trainer.updates_applied"],
            stats.updates_applied
        );
        // Queue fully drained at shutdown.
        assert_eq!(snap.gauges["trainer.queue_depth"], 0);
        let events = rec.events();
        assert!(events.iter().any(|e| {
            e.thread == ObsThread::Updating
                && matches!(
                    e.kind,
                    ObsEventKind::Span {
                        name: "update_layer",
                        ..
                    }
                )
        }));
        assert!(events.iter().any(|e| {
            e.thread == ObsThread::TrainLoop
                && matches!(
                    e.kind,
                    ObsEventKind::Instant {
                        name: "push_grads",
                        ..
                    }
                )
        }));
        assert!(events.iter().any(|e| {
            matches!(
                e.kind,
                ObsEventKind::Counter {
                    name: "trainer.pending_grads",
                    ..
                }
            )
        }));
        // Wall-clock timestamps: at least one event strictly after epoch.
        assert!(events.iter().any(|e| e.ts_ns > 0));
    }

    #[test]
    #[cfg_attr(miri, ignore = "timing-sensitive / too slow under Miri")]
    fn transient_faults_are_retried_and_counted() {
        let initial = vec![vec![0.5f32; 8]; 2];
        let inner = MemoryStore::new(initial.iter().cloned().map(LayerState::new).collect());
        let plan = FaultPlan::seeded(7).with_transient_prob(0.3, 0.3);
        let store = FaultyStore::new(inner, plan);
        let counters = store.counters();
        let t = LockFreeTrainer::spawn_with(
            initial,
            Box::new(store),
            Box::new(SgdOptimizer { lr: 0.1 }),
            identity,
            ClearPolicy::TakeAtSnapshot,
            fast_retry(),
        );
        for i in 0..100 {
            t.push_grads(i % 2, vec![1.0; 8]);
        }
        assert!(t.wait_quiescent());
        // Counters only stop moving once the workers have joined (an offload
        // retry can still be in flight at quiescence), so the exact
        // accounting is asserted post-shutdown through the handle.
        let handle = t.stats_handle();
        t.shutdown(2).unwrap();
        let s = handle.stats();
        assert_eq!(s.grads_pushed, 100);
        assert_eq!(s.grads_applied + s.grads_dropped, 100);
        let injected = counters.injected();
        // With p=0.3 over hundreds of ops, faults certainly fired; every
        // observed fault is counted, and retries happened.
        assert!(injected > 0, "no faults injected");
        assert_eq!(s.store_faults, injected);
        assert!(s.store_retries > 0);
    }

    #[test]
    #[cfg_attr(miri, ignore = "timing-sensitive / too slow under Miri")]
    fn permanent_fetch_failure_parks_layer_and_training_continues() {
        let initial = vec![vec![0.5f32; 8]; 3];
        let inner = MemoryStore::new(initial.iter().cloned().map(LayerState::new).collect());
        // Layer 1's backing storage dies on its first fetch.
        let plan = FaultPlan::seeded(11).with_dead_layer(1, StoreOp::Fetch);
        let store = FaultyStore::new(inner, plan);
        let t = LockFreeTrainer::spawn_with(
            initial.clone(),
            Box::new(store),
            Box::new(SgdOptimizer { lr: 0.1 }),
            identity,
            ClearPolicy::OnUpdateReceipt,
            fast_retry(),
        );
        for round in 0..30 {
            for l in 0..3 {
                t.push_grads(l, vec![1.0; 8]);
            }
            // Let some updates land between pushes.
            if round % 10 == 9 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        assert!(t.wait_quiescent(), "must quiesce despite the parked layer");
        let s = t.stats();
        assert_eq!(s.grads_pushed, 90);
        assert_eq!(s.grads_applied + s.grads_dropped, 90);
        assert_eq!(s.layers_parked, 1);
        assert_eq!(t.degraded_layers(), vec![1]);
        let events = t.drain_events();
        assert!(
            events.iter().any(|e| matches!(
                e,
                TrainerEvent::LayerParked { layer: 1, error }
                    if error.kind == StoreErrorKind::Permanent
            )),
            "park event must surface: {events:?}"
        );
        // Healthy layers kept learning.
        let (p0, _) = t.read_params(0);
        let (p2, _) = t.read_params(2);
        assert!(p0[0] < initial[0][0]);
        assert!(p2[0] < initial[2][0]);
        // The parked layer's state is unreachable (its storage died), so
        // shutdown reports the typed error instead of panicking.
        let err = t.shutdown(3).unwrap_err();
        assert!(matches!(
            err,
            TrainerError::Store(StoreError {
                layer: 1,
                kind: StoreErrorKind::Permanent,
                ..
            })
        ));
    }

    #[test]
    fn permanent_offload_failure_orphans_state_into_shutdown() {
        let initial = vec![vec![0.5f32; 8]; 2];
        let inner = MemoryStore::new(initial.iter().cloned().map(LayerState::new).collect());
        // Layer 0 dies on offload: the fetched+updated state would be lost
        // without the orphan stash.
        let plan = FaultPlan::seeded(13).with_dead_layer(0, StoreOp::Offload);
        let store = FaultyStore::new(inner, plan);
        let t = LockFreeTrainer::spawn_with(
            initial.clone(),
            Box::new(store),
            Box::new(SgdOptimizer { lr: 0.1 }),
            identity,
            ClearPolicy::OnUpdateReceipt,
            fast_retry(),
        );
        t.push_grads(0, vec![1.0; 8]);
        t.push_grads(1, vec![1.0; 8]);
        assert!(t.wait_quiescent());
        // The park lands only after the offload failure, which can trail
        // quiescence (the receipt settles first) — check post-shutdown.
        let handle = t.stats_handle();
        // Shutdown returns both layers: layer 0 from the orphan stash (with
        // its one applied update), layer 1 from the store.
        let states = t.shutdown(2).unwrap();
        assert_eq!(handle.degraded_layers(), vec![0]);
        assert!((states[0].p32[0] - (0.5 - 0.1)).abs() < 1e-6);
        assert!(states[1].p32[0] < 0.5);
    }

    #[test]
    #[cfg_attr(miri, ignore = "timing-sensitive / too slow under Miri")]
    fn seeded_fault_stress_accounting_invariant() {
        // The satellite stress test: across many seeds, injected transient
        // faults, retries and degraded-mode parking, the conservation law
        // grads_pushed == grads_applied + grads_dropped always holds, the
        // parameter buffers stay readable and un-torn, and nothing panics.
        for seed in 0..8u64 {
            let layers = 4;
            let n = 16;
            let initial: Vec<Vec<f32>> = (0..layers).map(|_| vec![0.25f32; n]).collect();
            let inner = MemoryStore::new(initial.iter().cloned().map(LayerState::new).collect());
            let mut plan = FaultPlan::seeded(seed).with_transient_prob(0.25, 0.25);
            // Half the seeds also kill one layer permanently mid-run.
            if seed % 2 == 0 {
                plan = plan.with_dead_layer_after((seed as usize) % layers, StoreOp::Fetch, 5);
            }
            let store = FaultyStore::new(inner, plan);
            let counters = store.counters();
            let t = LockFreeTrainer::spawn_with(
                initial,
                Box::new(store),
                Box::new(SgdOptimizer { lr: 0.05 }),
                identity,
                if seed % 3 == 0 {
                    ClearPolicy::TakeAtSnapshot
                } else {
                    ClearPolicy::OnUpdateReceipt
                },
                fast_retry(),
            );
            for i in 0..200 {
                t.push_grads(i % layers, vec![0.5; n]);
                if i % 32 == 0 {
                    // Reads interleaved with faults must stay consistent:
                    // lockstep SGD keeps equal elements equal.
                    let (p, _) = t.read_params((i + 1) % layers);
                    assert_eq!(p.len(), n);
                    assert!(
                        p.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9),
                        "torn read under faults (seed {seed})"
                    );
                }
            }
            assert!(t.wait_quiescent(), "seed {seed} failed to quiesce");
            let handle = t.stats_handle();
            // Shutdown is panic-free; it may legitimately fail typed if the
            // dead layer's state is unreachable.
            match t.shutdown(layers) {
                Ok(states) => assert_eq!(states.len(), layers),
                Err(TrainerError::Store(e)) => assert_eq!(e.kind, StoreErrorKind::Permanent),
                Err(other) => panic!("unexpected shutdown error at seed {seed}: {other}"),
            }
            // Post-join the counters are final: exact accounting holds.
            let s = handle.stats();
            assert_eq!(s.grads_pushed, 200, "seed {seed}");
            assert_eq!(
                s.grads_applied + s.grads_dropped,
                200,
                "conservation violated at seed {seed}: {s:?}"
            );
            assert_eq!(s.store_faults, counters.injected(), "seed {seed}");
            assert_eq!(s.layers_parked as usize, handle.degraded_layers().len());
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "timing-sensitive / too slow under Miri")]
    fn latency_spikes_do_not_block_pushes() {
        // Spikes on the store only slow the updating thread; pushes stay
        // non-blocking and all gradients settle.
        let initial = vec![vec![0.5f32; 8]; 2];
        let inner = MemoryStore::new(initial.iter().cloned().map(LayerState::new).collect());
        let plan = FaultPlan::seeded(23).with_latency_spikes(0.5, Duration::from_millis(2));
        let store = FaultyStore::new(inner, plan);
        let counters = store.counters();
        let t = LockFreeTrainer::spawn(
            initial,
            Box::new(store),
            Box::new(SgdOptimizer { lr: 0.1 }),
            identity,
            ClearPolicy::OnUpdateReceipt,
        );
        for i in 0..40 {
            t.push_grads(i % 2, vec![1.0; 8]);
        }
        assert!(t.wait_quiescent());
        let s = t.stats();
        assert_eq!(s.grads_applied + s.grads_dropped, 40);
        assert!(counters.spikes() > 0, "spikes must have fired");
        t.shutdown(2).unwrap();
    }
}
