//! SPMD collective-matching verification over a device mesh.
//!
//! A `LoweredIteration` is built from one rank's perspective, but the plan
//! it encodes runs SPMD on every rank of the [`DeviceMesh`]. The canonical
//! SPMD failure class — ranks issuing collectives in mismatched order and
//! deadlocking the whole job — is invisible to the single-rank plan-graph
//! verifier, so this module certifies the *cross-rank* story:
//!
//! 1. **Projection** ([`SpmdTrace::project_full`]): replay the
//!    Communicator's journal ([`CommRecord`]) as the per-rank communication
//!    program of every mesh rank. dp/tp collectives map onto the rank's own
//!    concrete group instances; the journal's single pp send/recv pair
//!    unfolds into the stage-asymmetric boundary handshake (stage 0 only
//!    sends forward, the last stage only receives, interior stages do
//!    both).
//! 2. **Matching**: all members of each concrete [`CommGroup`] instance
//!    must observe the same sequence of collectives with equal ops, byte
//!    counts and group arities, and the two halves of every point-to-point
//!    pair must agree — the NCCL contract whose violation hangs a job.
//! 3. **Deadlock detection**: an operational matching simulation advances
//!    per-rank program counters over the per-group FIFO channels (a group
//!    fires when every member's head is on it; p2p halves rendezvous). If
//!    the simulation stalls, the cross-rank wait-for graph is built and
//!    searched for a cycle with the same detector the plan-graph verifier
//!    uses ([`super::plan`]).
//!
//! **Symmetry reduction** ([`SpmdTrace::project_reduced`]): under the
//! dp-outer/pp-middle/tp-inner layout, a rank's projected program depends
//! only on its pipeline stage ([`DeviceMesh::symmetry_class`]), and dp/tp
//! groups never span stages. Members of one class therefore carry
//! *identical* programs, and a lockstep execution of each class is a valid
//! completion of every within-class collective — so within-class
//! operations can neither mismatch nor deadlock among themselves, and it
//! suffices to verify the representative pipeline column
//! ([`DeviceMesh::representative_column`]): `pp` ranks instead of
//! `dp × pp × tp`. That is what lets a 1024-GPU plan certify in
//! milliseconds (see `figure9_cluster --verify`).

use crate::communicator::{CommGroup, CommKind, CommRecord};
use crate::verify::plan::find_cycle;
use angel_hw::DeviceMesh;
use std::collections::HashMap;

/// Where one projected communication event synchronizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventSite {
    /// A collective on concrete group instance `index` of `group`'s axis
    /// (see [`DeviceMesh::group_index`]).
    Group { group: CommGroup, index: usize },
    /// The sending half of a p2p transfer to mesh rank `to`.
    Send { to: usize },
    /// The receiving half of a p2p transfer from mesh rank `from`.
    Recv { from: usize },
}

/// One event of a rank's projected communication program.
#[derive(Debug, Clone)]
pub struct SpmdEvent {
    /// Synchronization site (concrete group or p2p partner).
    pub site: EventSite,
    /// Operation kind (collective op, or p2p half).
    pub kind: CommKind,
    /// Payload bytes.
    pub bytes: u64,
    /// Expected participant count: the group's arity, or 2 for p2p.
    pub peers: usize,
    /// Human label carried from the lowering (cited in reports).
    pub label: String,
}

impl SpmdEvent {
    fn render(&self) -> String {
        let site = match self.site {
            EventSite::Group { group, index } => format!("{} group {index}", group.short()),
            EventSite::Send { to } => format!("send→{to}"),
            EventSite::Recv { from } => format!("recv←{from}"),
        };
        format!(
            "{} {}B x{} on {site} [{}]",
            self.kind.describe(),
            self.bytes,
            self.peers,
            self.label
        )
    }

    /// Content equality for matching: everything but the label. On a p2p
    /// site the two halves carry complementary kinds (one send, one recv)
    /// by construction of the site key, so only payload is compared there.
    fn matches(&self, other: &Self, key: SiteKey) -> bool {
        let kind_ok = match key {
            SiteKey::Group(..) => self.kind == other.kind,
            SiteKey::P2p(..) => true,
        };
        kind_ok && self.bytes == other.bytes && self.peers == other.peers
    }
}

/// Global key of a synchronization site: concrete group instance, or the
/// ordered (sender, receiver) pair of a p2p channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum SiteKey {
    Group(CommGroup, usize),
    P2p(usize, usize),
}

impl SiteKey {
    fn render(self) -> String {
        match self {
            SiteKey::Group(g, i) => format!("{} group {i}", g.short()),
            SiteKey::P2p(a, b) => format!("p2p {a}→{b}"),
        }
    }
}

fn site_key(rank: usize, site: EventSite) -> SiteKey {
    match site {
        EventSite::Group { group, index } => SiteKey::Group(group, index),
        EventSite::Send { to } => SiteKey::P2p(rank, to),
        EventSite::Recv { from } => SiteKey::P2p(from, rank),
    }
}

/// One rank's position in a stall or deadlock cycle.
#[derive(Debug, Clone)]
pub struct WaitPoint {
    /// Mesh rank.
    pub rank: usize,
    /// Index of the blocked event in the rank's program.
    pub event: usize,
    /// Rendered blocked event.
    pub label: String,
}

/// A certified-impossible execution: either a genuine wait-for cycle, or a
/// stall with no cycle (an orphaned operation — some rank ran out of
/// matching partners, e.g. after a dropped group member).
#[derive(Debug, Clone)]
pub struct SpmdDeadlock {
    /// The wait-for cycle, when one exists (each entry waits on the next,
    /// the last on the first). Empty for an orphaned-op stall.
    pub cycle: Vec<WaitPoint>,
    /// Every stalled rank's blocked head event.
    pub stalled: Vec<WaitPoint>,
}

/// Two ranks disagreeing about one synchronization site's sequence.
#[derive(Debug, Clone)]
pub struct SpmdMismatch {
    /// Rendered site ("dp group 3", "p2p 4→12").
    pub site: String,
    /// The reference rank and the divergent rank.
    pub ranks: (usize, usize),
    /// First divergent position in the per-site sequences.
    pub position: usize,
    /// What diverged (length vs. content).
    pub reason: String,
    /// The two ranks' rendered per-site sequences (divergence excerpts).
    pub traces: (Vec<String>, Vec<String>),
}

/// The SPMD verifier's verdict over one projected trace.
#[derive(Debug, Clone)]
pub struct SpmdReport {
    /// Per-site sequence disagreements (empty when matching holds).
    pub mismatches: Vec<SpmdMismatch>,
    /// Stall/deadlock evidence (None when the matching simulation
    /// completed every rank's program).
    pub deadlock: Option<SpmdDeadlock>,
    /// Ranks the underlying mesh runs (full fleet, even when reduced).
    pub ranks: usize,
    /// Ranks actually enumerated by this verification.
    pub ranks_checked: usize,
    /// Symmetry classes (pipeline stages) covered.
    pub classes: usize,
    /// Total projected events examined.
    pub events_checked: usize,
    /// Whether symmetry reduction was applied.
    pub reduced: bool,
}

impl SpmdReport {
    /// A certified plan: no sequence mismatches and no stall.
    pub fn is_certified(&self) -> bool {
        self.mismatches.is_empty() && self.deadlock.is_none()
    }

    /// Multi-line human rendering of every finding.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for m in &self.mismatches {
            out.push_str(&format!(
                "mismatch at {} (ranks {} vs {}, position {}): {}\n",
                m.site, m.ranks.0, m.ranks.1, m.position, m.reason
            ));
            out.push_str(&format!("  rank {} trace:\n", m.ranks.0));
            for t in &m.traces.0 {
                out.push_str(&format!("    {t}\n"));
            }
            out.push_str(&format!("  rank {} trace:\n", m.ranks.1));
            for t in &m.traces.1 {
                out.push_str(&format!("    {t}\n"));
            }
        }
        if let Some(d) = &self.deadlock {
            if d.cycle.is_empty() {
                out.push_str("stall without cycle (orphaned operations):\n");
            } else {
                out.push_str("deadlock cycle:\n");
                for w in &d.cycle {
                    out.push_str(&format!(
                        "  rank {} waits at #{}: {}\n",
                        w.rank, w.event, w.label
                    ));
                }
                out.push_str("stalled ranks:\n");
            }
            for w in &d.stalled {
                out.push_str(&format!(
                    "  rank {} blocked at #{}: {}\n",
                    w.rank, w.event, w.label
                ));
            }
        }
        if out.is_empty() {
            out = format!(
                "certified: {} ranks ({} checked, {} classes, reduced={}), {} events\n",
                self.ranks, self.ranks_checked, self.classes, self.reduced, self.events_checked
            );
        }
        out
    }

    /// Panic with the full report unless certified — the debug self-verify
    /// surface ([`crate::Engine`]) and tests call this.
    pub fn assert_certified(&self, what: &str) {
        assert!(
            self.is_certified(),
            "SPMD verification failed for {what}:\n{}",
            self.describe()
        );
    }
}

/// The projected per-rank communication programs of one lowered iteration,
/// plus the mesh structure the verifier needs (group membership within the
/// verified universe).
#[derive(Debug, Clone)]
pub struct SpmdTrace {
    /// Mesh ranks in the verified universe (all ranks, or the
    /// representative column).
    ranks: Vec<usize>,
    /// Universe index per mesh rank.
    rank_index: HashMap<usize, usize>,
    /// Symmetry class of each universe rank.
    classes: Vec<usize>,
    /// Per-universe-rank event program.
    programs: Vec<Vec<SpmdEvent>>,
    /// Universe members of every concrete group instance.
    site_members: HashMap<SiteKey, Vec<usize>>,
    /// Full fleet size.
    total_ranks: usize,
    /// Number of symmetry classes (pipeline stages).
    num_classes: usize,
    reduced: bool,
}

impl SpmdTrace {
    /// Project the journal onto every mesh rank (exhaustive enumeration —
    /// the mode mutation tests run, and the ground truth the reduction is
    /// checked against).
    pub fn project_full(log: &[CommRecord], mesh: &DeviceMesh) -> Self {
        Self::project(log, mesh, false)
    }

    /// Project the journal onto one representative rank per symmetry
    /// class (the dp=0/tp=0 pipeline column). Sound because within-class
    /// programs are identical and dp/tp groups never span classes — see
    /// the module docs and DESIGN.md §13.
    pub fn project_reduced(log: &[CommRecord], mesh: &DeviceMesh) -> Self {
        Self::project(log, mesh, true)
    }

    fn project(log: &[CommRecord], mesh: &DeviceMesh, reduced: bool) -> Self {
        // Split the single-rank journal at the pipeline boundary pair.
        let mut forward: Vec<&CommRecord> = Vec::new();
        let mut backward: Vec<&CommRecord> = Vec::new();
        let mut boundary_bytes: Option<u64> = None;
        let mut seen_send = false;
        for rec in log {
            match rec.kind {
                CommKind::P2pSend => {
                    seen_send = true;
                    boundary_bytes = Some(rec.bytes);
                }
                CommKind::P2pRecv => {
                    debug_assert_eq!(
                        boundary_bytes,
                        Some(rec.bytes),
                        "pp send/recv halves carry equal bytes"
                    );
                }
                CommKind::Collective(_) => {
                    if seen_send {
                        backward.push(rec);
                    } else {
                        forward.push(rec);
                    }
                }
            }
        }

        let ranks: Vec<usize> = if reduced {
            mesh.representative_column()
        } else {
            (0..mesh.num_ranks()).collect()
        };
        let rank_index: HashMap<usize, usize> =
            ranks.iter().enumerate().map(|(u, &r)| (r, u)).collect();
        let classes: Vec<usize> = ranks.iter().map(|&r| mesh.symmetry_class(r)).collect();

        // Group membership restricted to the verified universe. In reduced
        // mode dp/tp groups become singletons — the reduction's soundness
        // rests on dp/tp groups never spanning symmetry classes, which the
        // dp-outer/pp-middle/tp-inner layout guarantees structurally.
        let mut site_members: HashMap<SiteKey, Vec<usize>> = HashMap::new();
        for (u, &r) in ranks.iter().enumerate() {
            for group in [CommGroup::Dp, CommGroup::Tp] {
                let key = SiteKey::Group(group, mesh.group_index(group.axis(), r));
                site_members.entry(key).or_default().push(u);
            }
        }
        if cfg!(debug_assertions) {
            for (key, members) in &site_members {
                let class_of = |&u: &usize| classes[u];
                debug_assert!(
                    members
                        .windows(2)
                        .all(|w| class_of(&w[0]) == class_of(&w[1])),
                    "{:?} spans symmetry classes — layout invariant broken",
                    key
                );
            }
        }

        let pp = mesh.pp();
        let programs: Vec<Vec<SpmdEvent>> = ranks
            .iter()
            .map(|&r| {
                let (_, p, _) = mesh.coords_of(r);
                let (prev, next) = mesh.pp_neighbors(r);
                let bb = boundary_bytes.unwrap_or(0);
                let mut prog = Vec::with_capacity(forward.len() + backward.len() + 4);
                let group_event = |rec: &CommRecord| SpmdEvent {
                    site: EventSite::Group {
                        group: rec.group,
                        index: mesh.group_index(rec.group.axis(), r),
                    },
                    kind: rec.kind,
                    bytes: rec.bytes,
                    peers: mesh.axis_size(rec.group.axis()),
                    label: rec.label.clone(),
                };
                let p2p = |site: EventSite, kind: CommKind, label: &str| SpmdEvent {
                    site,
                    kind,
                    bytes: bb,
                    peers: 2,
                    label: label.to_string(),
                };
                // Stage-asymmetric pipeline handshake: interior stages
                // receive activations, compute forward, send them on, wait
                // for gradients from downstream, compute backward, send
                // gradients back upstream. The ends drop the missing half.
                if pp > 1 {
                    if let Some(prev) = prev {
                        prog.push(p2p(
                            EventSite::Recv { from: prev },
                            CommKind::P2pRecv,
                            &format!("pp_recv_act s{p}"),
                        ));
                    }
                }
                prog.extend(forward.iter().map(|rec| group_event(rec)));
                if pp > 1 {
                    if let Some(next) = next {
                        prog.push(p2p(
                            EventSite::Send { to: next },
                            CommKind::P2pSend,
                            &format!("pp_send_act s{p}"),
                        ));
                        prog.push(p2p(
                            EventSite::Recv { from: next },
                            CommKind::P2pRecv,
                            &format!("pp_recv_grad s{p}"),
                        ));
                    }
                }
                prog.extend(backward.iter().map(|rec| group_event(rec)));
                if pp > 1 {
                    if let Some(prev) = prev {
                        prog.push(p2p(
                            EventSite::Send { to: prev },
                            CommKind::P2pSend,
                            &format!("pp_send_grad s{p}"),
                        ));
                    }
                }
                prog
            })
            .collect();

        Self {
            rank_index,
            classes,
            programs,
            site_members,
            total_ranks: mesh.num_ranks(),
            num_classes: pp,
            reduced,
            ranks,
        }
    }

    /// Ranks in the verified universe.
    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// The projected program of mesh rank `rank` (panics when the rank is
    /// outside the verified universe).
    pub fn program(&self, rank: usize) -> &[SpmdEvent] {
        &self.programs[self.rank_index[&rank]]
    }

    /// The symmetry class (pipeline stage) of mesh rank `rank`.
    pub fn class_of(&self, rank: usize) -> usize {
        self.classes[self.rank_index[&rank]]
    }

    fn universe_index(&self, rank: usize) -> usize {
        match self.rank_index.get(&rank) {
            Some(&u) => u,
            None => panic!("rank {rank} is outside the verified universe"),
        }
    }

    // ---- Mutation hooks (planted-fault testing) -------------------------

    /// Swap two events of one rank's program — models a rank issuing its
    /// collectives in a different order than its peers (the canonical SPMD
    /// deadlock) or, within one channel, a reordered pair.
    pub fn swap_events(&mut self, rank: usize, i: usize, j: usize) {
        let u = self.universe_index(rank);
        self.programs[u].swap(i, j);
    }

    /// Delete one event of one rank's program — models a rank dropping out
    /// of a collective its group peers still wait on.
    pub fn remove_event(&mut self, rank: usize, i: usize) {
        let u = self.universe_index(rank);
        self.programs[u].remove(i);
    }

    /// Rewrite one event's byte count — models mismatched buffer sizes
    /// (e.g. a dp collective priced with pp-boundary bytes).
    pub fn set_bytes(&mut self, rank: usize, i: usize, bytes: u64) {
        let u = self.universe_index(rank);
        self.programs[u][i].bytes = bytes;
    }

    // ---- Verification ----------------------------------------------------

    /// Run matching + deadlock detection and produce the typed report.
    pub fn verify(&self) -> SpmdReport {
        let mismatches = self.match_sites();
        let deadlock = self.simulate();
        SpmdReport {
            mismatches,
            deadlock,
            ranks: self.total_ranks,
            ranks_checked: self.ranks.len(),
            classes: self.num_classes,
            events_checked: self.programs.iter().map(Vec::len).sum(),
            reduced: self.reduced,
        }
    }

    /// Phase 1 — per-site sequence matching: every member of a concrete
    /// group must issue the identical sequence of operations on it, and
    /// the two halves of each p2p channel must agree one-to-one.
    fn match_sites(&self) -> Vec<SpmdMismatch> {
        // Per-site, per-universe-rank event index sequences.
        let mut by_site: HashMap<SiteKey, HashMap<usize, Vec<usize>>> = HashMap::new();
        for (u, prog) in self.programs.iter().enumerate() {
            for (i, e) in prog.iter().enumerate() {
                by_site
                    .entry(site_key(self.ranks[u], e.site))
                    .or_default()
                    .entry(u)
                    .or_default()
                    .push(i);
            }
        }
        // Group sites where a member issued nothing still owe an (empty)
        // sequence — a fully dropped member is a length mismatch, not an
        // invisible one.
        for (key, members) in &self.site_members {
            if let Some(seqs) = by_site.get_mut(key) {
                for &m in members {
                    seqs.entry(m).or_default();
                }
            }
        }

        let mut keys: Vec<SiteKey> = by_site.keys().copied().collect();
        keys.sort_unstable();
        let mut out = Vec::new();
        for key in keys {
            let seqs = &by_site[&key];
            let mut members: Vec<usize> = seqs.keys().copied().collect();
            members.sort_unstable();
            let reference = members[0];
            for &other in &members[1..] {
                if let Some(m) = self.diverge(key, reference, other, seqs) {
                    out.push(m);
                    if out.len() >= 32 {
                        return out;
                    }
                }
            }
        }
        out
    }

    /// First divergence between two ranks' sequences on one site, if any.
    fn diverge(
        &self,
        key: SiteKey,
        a: usize,
        b: usize,
        seqs: &HashMap<usize, Vec<usize>>,
    ) -> Option<SpmdMismatch> {
        let (sa, sb) = (&seqs[&a], &seqs[&b]);
        let (pa, pb) = (&self.programs[a], &self.programs[b]);
        let mut position = None;
        let mut reason = String::new();
        for i in 0..sa.len().min(sb.len()) {
            let (ea, eb) = (&pa[sa[i]], &pb[sb[i]]);
            if !ea.matches(eb, key) {
                position = Some(i);
                reason = format!("'{}' vs '{}'", ea.render(), eb.render());
                break;
            }
        }
        if position.is_none() && sa.len() != sb.len() {
            position = Some(sa.len().min(sb.len()));
            reason = format!("{} operations vs {}", sa.len(), sb.len());
        }
        let position = position?;
        // Excerpt a window around the divergence so gigantic programs
        // still report readably.
        let window = |seq: &[usize], prog: &[SpmdEvent]| -> Vec<String> {
            let lo = position.saturating_sub(2);
            seq.iter()
                .skip(lo)
                .take(5)
                .map(|&i| prog[i].render())
                .collect()
        };
        Some(SpmdMismatch {
            site: key.render(),
            ranks: (self.ranks[a], self.ranks[b]),
            position,
            reason,
            traces: (window(sa, pa), window(sb, pb)),
        })
    }

    /// Phase 2 — operational matching simulation over the per-group FIFO
    /// channels. Sites fire when fully attended; a drained worklist with
    /// unfinished programs is a stall, reported as the wait-for cycle when
    /// one exists.
    fn simulate(&self) -> Option<SpmdDeadlock> {
        let n = self.programs.len();
        let required = |key: &SiteKey| match key {
            SiteKey::Group(..) => self.site_members.get(key).map_or(usize::MAX, Vec::len),
            SiteKey::P2p(..) => 2,
        };
        let mut pc = vec![0usize; n];
        let mut parked: HashMap<SiteKey, Vec<usize>> = HashMap::new();
        let mut ready: Vec<SiteKey> = Vec::new();

        // Park `u` at its head event's site; collect newly complete sites.
        let arrive = |u: usize,
                      pc: &[usize],
                      parked: &mut HashMap<SiteKey, Vec<usize>>,
                      ready: &mut Vec<SiteKey>| {
            if let Some(e) = self.programs[u].get(pc[u]) {
                let key = site_key(self.ranks[u], e.site);
                let slot = parked.entry(key).or_default();
                slot.push(u);
                if slot.len() >= required(&key) {
                    ready.push(key);
                }
            }
        };
        for u in 0..n {
            arrive(u, &pc, &mut parked, &mut ready);
        }
        while let Some(key) = ready.pop() {
            let complete = parked.get(&key).is_some_and(|w| w.len() >= required(&key));
            if !complete {
                continue;
            }
            let waiters = parked.remove(&key).unwrap_or_default();
            for &u in &waiters {
                pc[u] += 1;
            }
            for &u in &waiters {
                arrive(u, &pc, &mut parked, &mut ready);
            }
        }

        let stalled: Vec<usize> = (0..n).filter(|&u| pc[u] < self.programs[u].len()).collect();
        if stalled.is_empty() {
            return None;
        }
        // Wait-for graph: each stalled rank waits on the peers that have
        // not arrived at its head site.
        let mut waits_on: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &u in &stalled {
            let key = site_key(self.ranks[u], self.programs[u][pc[u]].site);
            match key {
                SiteKey::Group(..) => {
                    let here = parked.get(&key);
                    for &m in self.site_members.get(&key).map_or(&[][..], |v| v) {
                        let arrived = here.is_some_and(|w| w.contains(&m));
                        if m != u && !arrived {
                            waits_on[u].push(m);
                        }
                    }
                }
                SiteKey::P2p(a, b) => {
                    let partner = if self.ranks[u] == a { b } else { a };
                    if let Some(&p) = self.rank_index.get(&partner) {
                        if !parked.get(&key).is_some_and(|w| w.contains(&p)) {
                            waits_on[u].push(p);
                        }
                    }
                }
            }
        }
        let wait_point = |u: usize| WaitPoint {
            rank: self.ranks[u],
            event: pc[u],
            label: self.programs[u][pc[u]].render(),
        };
        let cycle = find_cycle(&waits_on)
            .map(|c| c.into_iter().map(wait_point).collect())
            .unwrap_or_default();
        Some(SpmdDeadlock {
            cycle,
            stalled: stalled.into_iter().map(wait_point).collect(),
        })
    }
}

/// Project and verify in one call: exhaustive below `FULL_THRESHOLD`
/// ranks, symmetry-reduced above (where exhaustive enumeration would cost
/// rank-count multiples for provably redundant work).
pub fn certify(log: &[CommRecord], mesh: &DeviceMesh) -> SpmdReport {
    const FULL_THRESHOLD: usize = 64;
    if mesh.num_ranks() <= FULL_THRESHOLD {
        SpmdTrace::project_full(log, mesh).verify()
    } else {
        SpmdTrace::project_reduced(log, mesh).verify()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use angel_hw::ClusterSpec;
    use angel_sim::collectives::Collective;

    /// A hand-written journal: two dp gathers, one tp all-reduce, the pp
    /// boundary pair, one backward dp reduce-scatter.
    fn journal() -> Vec<CommRecord> {
        let rec = |group, kind, bytes, label: &str| CommRecord {
            group,
            kind,
            bytes,
            task: 0,
            label: label.to_string(),
        };
        vec![
            rec(
                CommGroup::Dp,
                CommKind::Collective(Collective::AllGather),
                1024,
                "all_gather s0",
            ),
            rec(
                CommGroup::Tp,
                CommKind::Collective(Collective::AllReduce),
                512,
                "tp_all_reduce s0",
            ),
            rec(CommGroup::Pp, CommKind::P2pSend, 256, "pp_send"),
            rec(CommGroup::Pp, CommKind::P2pRecv, 256, "pp_recv"),
            rec(
                CommGroup::Dp,
                CommKind::Collective(Collective::ReduceScatter),
                1024,
                "reduce_scatter l0",
            ),
        ]
    }

    fn mesh() -> DeviceMesh {
        // 1 server, 8 GPUs: dp=2 × pp=2 × tp=2.
        match DeviceMesh::new(ClusterSpec::single_a100(), 2, 2, 2) {
            Ok(m) => m,
            Err(e) => panic!("mesh: {e:?}"),
        }
    }

    #[test]
    fn honest_projection_certifies() {
        let mesh = mesh();
        let report = SpmdTrace::project_full(&journal(), &mesh).verify();
        report.assert_certified("full");
        assert_eq!(report.ranks_checked, 8);
        let reduced = SpmdTrace::project_reduced(&journal(), &mesh).verify();
        reduced.assert_certified("reduced");
        assert_eq!(reduced.ranks_checked, 2);
        assert_eq!(reduced.classes, 2);
        assert!(reduced.reduced);
    }

    #[test]
    fn stage_roles_are_asymmetric() {
        let mesh = mesh();
        let trace = SpmdTrace::project_full(&journal(), &mesh);
        // Rank 0 is stage 0: sends activations forward, never receives
        // them; the last stage is the mirror image.
        let first = trace.program(0);
        assert!(matches!(first[0].site, EventSite::Group { .. }));
        assert!(first
            .iter()
            .any(|e| matches!(e.site, EventSite::Send { .. })));
        let last_rank = mesh.rank_of(0, mesh.pp() - 1, 0);
        let last = trace.program(last_rank);
        assert!(matches!(last[0].site, EventSite::Recv { .. }));
        assert!(matches!(last[last.len() - 1].site, EventSite::Send { .. }));
    }

    #[test]
    fn mismatched_bytes_are_caught() {
        let mesh = mesh();
        let mut trace = SpmdTrace::project_full(&journal(), &mesh);
        trace.set_bytes(3, 0, 999);
        let report = trace.verify();
        assert!(!report.is_certified());
        assert!(!report.mismatches.is_empty());
        assert!(report.describe().contains("999"));
    }

    #[test]
    fn reordered_collective_on_one_channel_is_a_mismatch() {
        let mesh = mesh();
        let mut trace = SpmdTrace::project_full(&journal(), &mesh);
        // Rank 0's program: [ag, tp_ar, send, recv, rs]. Swapping the two
        // dp-channel collectives makes rank 0's dp-group sequence
        // [rs, ag] while every peer still runs [ag, rs].
        trace.swap_events(0, 0, 4);
        let report = trace.verify();
        assert!(!report.is_certified());
        assert!(
            report.mismatches.iter().any(|m| m.site.starts_with("dp")),
            "dp sequence mismatch expected:\n{}",
            report.describe()
        );
    }

    #[test]
    fn pp_recv_hoisted_above_tp_allreduce_deadlocks() {
        let mesh = mesh();
        let mut trace = SpmdTrace::project_full(&journal(), &mesh);
        // Rank 0's program: [ag, tp_ar, send→2, recv←2, rs]. Hoisting the
        // gradient recv above the tp all-reduce (and its own send) makes
        // rank 0 wait for rank 2's last event while rank 2's first event
        // waits for rank 0's send — a genuine cross-rank wait-for cycle,
        // with rank 1 stalled behind it at the tp all-reduce.
        trace.swap_events(0, 1, 3);
        let report = trace.verify();
        let deadlock = match &report.deadlock {
            Some(d) => d,
            None => panic!("expected deadlock:\n{}", report.describe()),
        };
        assert!(
            !deadlock.cycle.is_empty(),
            "hoisted recv is a true cycle:\n{}",
            report.describe()
        );
        let in_cycle: Vec<usize> = deadlock.cycle.iter().map(|w| w.rank).collect();
        assert!(in_cycle.contains(&0) && in_cycle.contains(&2));
    }

    #[test]
    fn dropped_member_stalls_the_group() {
        let mesh = mesh();
        let mut trace = SpmdTrace::project_full(&journal(), &mesh);
        // Remove rank 5's first dp gather: its dp peers wait forever.
        trace.remove_event(5, 1);
        let report = trace.verify();
        assert!(!report.is_certified());
        assert!(
            !report.mismatches.is_empty(),
            "length mismatch must be reported"
        );
    }
}
