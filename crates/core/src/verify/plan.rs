//! Race/lifetime verifier and provable peak-memory bound for lowered task
//! graphs.
//!
//! # The happens-before relation
//!
//! The executor in `angel-sim` guarantees exactly two ordering mechanisms
//! (see its module docs): a task starts after all its **dependencies**
//! complete, and tasks on the **same resource** start in submission order,
//! back to back (CUDA-stream semantics, which also implies completion
//! order on a FIFO resource). The verifier's happens-before relation `≺` is
//! the transitive closure of those two edge families. Two accesses to the
//! same [`ObjectId`] *conflict* unless both are reads; a **race** is a
//! conflicting pair with neither `a ≺ b` nor `b ≺ a` — the executor may
//! legally run them concurrently, so the plan's result depends on timing.
//!
//! # Lifetimes
//!
//! Objects with an [`AccessMode::Alloc`] or [`AccessMode::Free`] access are
//! *managed*: their accesses, walked in happens-before order, must form
//! `Alloc → (Read|Write)* → Free`. Anything else — use before alloc, use
//! after free, double free, double alloc, or a missing free (leak) — is
//! reported. Objects never allocated or freed in the graph are *external*
//! (they outlive the plan, e.g. persistent parameter shards) and only get
//! race checking.
//!
//! # The peak-memory bound
//!
//! For each memory domain the verifier computes a **sound static upper
//! bound** on the executor's peak:
//!
//! ```text
//! UB(d) = max over tasks t with acquire(t,d) > 0 of
//!         Σ acquire(u,d) over u with ¬(t ≺ u)        (everything that may
//!                                                      already hold memory
//!                                                      when t acquires)
//!       − Σ release(u,d) over u ∈ drained(t)          (provably released
//!                                                      before t acquires)
//! ```
//!
//! where `drained(t) = { u : u ⪯ x for some dependency x of t }`. The
//! acquire sum is sound because any task `u` with `t ≺ u` must *start* —
//! and therefore acquire — strictly after `t`'s acquire. The release set is
//! deliberately conservative: a release may only be subtracted along paths
//! that end in a *dependency* edge, because the executor drains the
//! completion (and release) of a dependency before starting its dependents,
//! but a zero-duration same-resource predecessor can still have its release
//! undrained when its stream successor starts within the same scheduling
//! pass. Every `ExecutionReport` the simulator produces must satisfy
//! `peak_mem[d] ≤ UB(d)`; [`PlanReport::covers`] asserts exactly that.

use angel_sim::{AccessMode, ExecutionReport, ObjectId, Simulation};
use std::collections::BTreeMap;

/// A conflicting, unordered pair of accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    pub object: ObjectId,
    /// Submission indices of the two tasks (first < second).
    pub first: usize,
    pub second: usize,
    pub first_label: String,
    pub second_label: String,
}

/// What went wrong in a managed object's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifetimeIssue {
    UseBeforeAlloc,
    UseAfterFree,
    DoubleAlloc,
    DoubleFree,
    FreeBeforeAlloc,
    /// Allocated but never freed within the graph.
    Leak,
}

/// One lifetime diagnostic, anchored at the offending task (for `Leak`,
/// the allocating task).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LifetimeViolation {
    pub object: ObjectId,
    pub task: usize,
    pub label: String,
    pub issue: LifetimeIssue,
}

/// The verifier's verdict over one plan graph.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanReport {
    pub races: Vec<Race>,
    pub lifetime: Vec<LifetimeViolation>,
    /// A dependency/stream cycle, as a task-index loop, if one exists. A
    /// cyclic graph deadlocks the executor; race/lifetime/bound analyses
    /// are skipped (happens-before is undefined).
    pub cycle: Option<Vec<usize>>,
    /// Provable peak-memory upper bound per domain (`MemDomainId.0`-indexed).
    pub peak_bounds: Vec<u64>,
    /// Domain capacities, for over-capacity reporting.
    pub capacities: Vec<u64>,
    pub task_count: usize,
}

impl PlanReport {
    /// No races, no lifetime violations, no cycle.
    pub fn is_clean(&self) -> bool {
        self.races.is_empty() && self.lifetime.is_empty() && self.cycle.is_none()
    }

    /// Does the static bound dominate an empirical report from the same
    /// graph? (False for cyclic graphs — there is no sound bound.)
    pub fn covers(&self, report: &ExecutionReport) -> bool {
        self.cycle.is_none()
            && report
                .peak_mem
                .iter()
                .zip(&self.peak_bounds)
                .all(|(&peak, &bound)| peak <= bound)
    }

    /// Panic with a readable diagnosis if the plan is not clean.
    pub fn assert_clean(&self, what: &str) {
        assert!(
            self.is_clean(),
            "plan verification failed for {what}: {} races {:?}, {} lifetime violations {:?}, cycle {:?}",
            self.races.len(),
            self.races.first(),
            self.lifetime.len(),
            self.lifetime.first(),
            self.cycle,
        );
    }

    /// Panic if the simulator observed a peak above the static bound.
    pub fn assert_covers(&self, report: &ExecutionReport, what: &str) {
        assert!(
            self.covers(report),
            "static peak bound violated for {what}: bounds {:?} vs simulated peaks {:?}",
            self.peak_bounds,
            report.peak_mem,
        );
    }
}

#[derive(Debug, Clone)]
struct TaskNode {
    resource: usize,
    deps: Vec<usize>,
    accesses: Vec<(ObjectId, AccessMode)>,
    /// (domain, acquire, release) triples.
    mem: Vec<(usize, u64, u64)>,
    label: String,
}

/// An analyzable copy of a lowered task graph. Mutable so tests can plant
/// bugs ([`Self::remove_dep`], [`Self::add_dep`]) and prove the verifier
/// catches them.
#[derive(Debug, Clone)]
pub struct PlanGraph {
    tasks: Vec<TaskNode>,
    num_domains: usize,
    capacities: Vec<u64>,
}

/// Fixed-width bitset over task indices.
#[derive(Clone)]
struct BitMatrix {
    words: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    fn new(n: usize) -> Self {
        let words = n.div_ceil(64);
        Self {
            words,
            bits: vec![0; words * n],
        }
    }
    fn row(&self, i: usize) -> &[u64] {
        &self.bits[i * self.words..(i + 1) * self.words]
    }
    fn set(&mut self, i: usize, j: usize) {
        self.bits[i * self.words + j / 64] |= 1 << (j % 64);
    }
    fn get(&self, i: usize, j: usize) -> bool {
        self.bits[i * self.words + j / 64] >> (j % 64) & 1 == 1
    }
    /// row(i) |= row(j). Split at the row boundary to satisfy the borrow
    /// checker without cloning.
    fn or_row(&mut self, i: usize, j: usize) {
        debug_assert_ne!(i, j);
        let w = self.words;
        let (a, b) = if i < j {
            let (lo, hi) = self.bits.split_at_mut(j * w);
            (&mut lo[i * w..i * w + w], &hi[..w])
        } else {
            let (lo, hi) = self.bits.split_at_mut(i * w);
            (&mut hi[..w], &lo[j * w..j * w + w])
        };
        for (x, y) in a.iter_mut().zip(b) {
            *x |= *y;
        }
    }
}

impl PlanGraph {
    /// Snapshot a submitted simulation's task graph for analysis.
    pub fn from_sim(sim: &Simulation) -> Self {
        let tasks = sim
            .tasks()
            .map(|t| TaskNode {
                resource: t.resource.0,
                deps: t.deps.clone(),
                accesses: t.accesses.iter().map(|a| (a.object, a.mode)).collect(),
                mem: t
                    .mem
                    .iter()
                    .map(|e| (e.domain.0, e.acquire, e.release))
                    .collect(),
                label: t.label.clone(),
            })
            .collect();
        let num_domains = sim.resources().num_mem_domains();
        let capacities = (0..num_domains)
            .map(|d| sim.resources().mem_capacity(angel_sim::MemDomainId(d)))
            .collect();
        Self {
            tasks,
            num_domains,
            capacities,
        }
    }

    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Find a task index by label (panics if absent) — test convenience.
    pub fn task_by_label(&self, label: &str) -> usize {
        self.tasks
            .iter()
            .position(|t| t.label == label)
            .unwrap_or_else(|| panic!("no task labelled {label:?}"))
    }

    /// Mutation hook: delete the dependency edge `dep → task` if present.
    /// Returns whether an edge was removed.
    pub fn remove_dep(&mut self, task: usize, dep: usize) -> bool {
        let deps = &mut self.tasks[task].deps;
        let before = deps.len();
        deps.retain(|&d| d != dep);
        deps.len() != before
    }

    /// Mutation hook: add an arbitrary dependency edge (may create a cycle —
    /// that is the point; the simulator's `submit` cannot).
    pub fn add_dep(&mut self, task: usize, dep: usize) {
        self.tasks[task].deps.push(dep);
    }

    /// Run all analyses.
    pub fn verify(&self) -> PlanReport {
        let n = self.tasks.len();

        // Edge set: dependency edges (d → i) plus same-resource stream
        // edges (consecutive submissions on a resource).
        let mut preds: Vec<Vec<usize>> = self.tasks.iter().map(|t| t.deps.clone()).collect();
        let mut last_on_resource: BTreeMap<usize, usize> = BTreeMap::new();
        for (i, t) in self.tasks.iter().enumerate() {
            if let Some(&prev) = last_on_resource.get(&t.resource) {
                preds[i].push(prev);
            }
            last_on_resource.insert(t.resource, i);
        }

        if let Some(cycle) = find_cycle(&preds) {
            return PlanReport {
                races: Vec::new(),
                lifetime: Vec::new(),
                cycle: Some(cycle),
                peak_bounds: Vec::new(),
                capacities: self.capacities.clone(),
                task_count: n,
            };
        }

        // Topological order (indices are already one: deps point backward
        // and stream edges follow submission order — but `add_dep` can
        // introduce forward edges, so sort properly).
        let topo = toposort(&preds);

        // anc[i] = strict ancestors of i (over deps ∪ stream edges);
        // desc[i] = strict descendants.
        let mut anc = BitMatrix::new(n);
        for &i in &topo {
            // Clone the (small) pred list to appease the borrow checker.
            for p in preds[i].clone() {
                anc.or_row(i, p);
                anc.set(i, p);
            }
        }
        let mut desc = BitMatrix::new(n);
        for &i in topo.iter().rev() {
            for p in preds[i].clone() {
                desc.or_row(p, i);
                desc.set(p, i);
            }
        }
        // or_row only propagated direct edges; fold transitively: process
        // in reverse topo for desc (descendants of my successors are mine).
        // The loop above already visits in reverse topological order, so
        // desc rows of successors were complete when merged. Same argument
        // for anc in forward order. (Nothing further to do — kept as a note
        // because the ordering is what makes the single pass sufficient.)

        let ordered = |a: usize, b: usize| desc.get(a, b) || desc.get(b, a);

        // ---- Races -------------------------------------------------------
        let mut by_object: BTreeMap<ObjectId, Vec<(usize, AccessMode)>> = BTreeMap::new();
        for (i, t) in self.tasks.iter().enumerate() {
            for &(obj, mode) in &t.accesses {
                by_object.entry(obj).or_default().push((i, mode));
            }
        }
        let mut races = Vec::new();
        for (&obj, accs) in &by_object {
            for (k, &(a, ma)) in accs.iter().enumerate() {
                for &(b, mb) in accs.iter().skip(k + 1) {
                    if a == b {
                        continue; // one task's accesses are sequential
                    }
                    let conflict = !(ma == AccessMode::Read && mb == AccessMode::Read);
                    if conflict && !ordered(a, b) {
                        let (first, second) = if a < b { (a, b) } else { (b, a) };
                        races.push(Race {
                            object: obj,
                            first,
                            second,
                            first_label: self.tasks[first].label.clone(),
                            second_label: self.tasks[second].label.clone(),
                        });
                    }
                }
            }
        }

        // ---- Lifetimes ---------------------------------------------------
        // Walk each managed object's accesses in happens-before order (topo
        // position is a linear extension of ≺; exact when race-free).
        let mut topo_pos = vec![0usize; n];
        for (pos, &i) in topo.iter().enumerate() {
            topo_pos[i] = pos;
        }
        let mut lifetime = Vec::new();
        for (&obj, accs) in &by_object {
            let managed = accs
                .iter()
                .any(|&(_, m)| matches!(m, AccessMode::Alloc | AccessMode::Free));
            if !managed {
                continue;
            }
            let mut seq = accs.clone();
            seq.sort_by_key(|&(i, _)| topo_pos[i]);
            #[derive(PartialEq)]
            enum LState {
                Unallocated,
                Live,
                Freed,
            }
            let mut st = LState::Unallocated;
            let mut alloc_task = None;
            let mut violation = |task: usize, issue, label: &str| {
                lifetime.push(LifetimeViolation {
                    object: obj,
                    task,
                    label: label.to_string(),
                    issue,
                });
            };
            for &(i, mode) in &seq {
                let label = &self.tasks[i].label;
                match (mode, &st) {
                    (AccessMode::Alloc, LState::Unallocated) => {
                        st = LState::Live;
                        alloc_task = Some(i);
                    }
                    (AccessMode::Alloc, LState::Freed) => {
                        // Reuse after a free is a fresh lifetime.
                        st = LState::Live;
                        alloc_task = Some(i);
                    }
                    (AccessMode::Alloc, LState::Live) => {
                        violation(i, LifetimeIssue::DoubleAlloc, label)
                    }
                    (AccessMode::Free, LState::Live) => st = LState::Freed,
                    (AccessMode::Free, LState::Freed) => {
                        violation(i, LifetimeIssue::DoubleFree, label)
                    }
                    (AccessMode::Free, LState::Unallocated) => {
                        violation(i, LifetimeIssue::FreeBeforeAlloc, label)
                    }
                    (_, LState::Unallocated) => violation(i, LifetimeIssue::UseBeforeAlloc, label),
                    (_, LState::Freed) => violation(i, LifetimeIssue::UseAfterFree, label),
                    (_, LState::Live) => {}
                }
            }
            if st == LState::Live {
                let Some(at) = alloc_task else {
                    // The state machine only enters Live on an alloc, which
                    // records its task index.
                    unreachable!("Live lifetime state without an alloc task");
                };
                lifetime.push(LifetimeViolation {
                    object: obj,
                    task: at,
                    label: self.tasks[at].label.clone(),
                    issue: LifetimeIssue::Leak,
                });
            }
        }

        // ---- Peak-memory bound ------------------------------------------
        let nd = self.num_domains;
        let mut acq = vec![vec![0u64; n]; nd];
        let mut rel = vec![vec![0u64; n]; nd];
        for (i, t) in self.tasks.iter().enumerate() {
            for &(d, a, r) in &t.mem {
                acq[d][i] += a;
                rel[d][i] += r;
            }
        }
        let mut peak_bounds = vec![0u64; nd];
        let mut drained = vec![0u64; anc.words.max(1)];
        for d in 0..nd {
            let total_acq: u64 = acq[d].iter().sum();
            let mut best = 0u64;
            for t in 0..n {
                if acq[d][t] == 0 {
                    continue; // peaks occur immediately after an acquire
                }
                // Everything not provably after t may already hold memory.
                let mut ub = total_acq;
                for (w, &word) in desc.row(t).iter().enumerate() {
                    let mut word = word;
                    while word != 0 {
                        let j = w * 64 + word.trailing_zeros() as usize;
                        ub -= acq[d][j];
                        word &= word - 1;
                    }
                }
                // drained(t): ancestors (reflexive) of t's dependencies.
                drained.iter_mut().for_each(|w| *w = 0);
                for &x in &self.tasks[t].deps {
                    for (w, &word) in anc.row(x).iter().enumerate() {
                        drained[w] |= word;
                    }
                    drained[x / 64] |= 1 << (x % 64);
                }
                for (w, &word) in drained.iter().enumerate() {
                    let mut word = word;
                    while word != 0 {
                        let j = w * 64 + word.trailing_zeros() as usize;
                        ub = ub.saturating_sub(rel[d][j]);
                        word &= word - 1;
                    }
                }
                best = best.max(ub);
            }
            peak_bounds[d] = best;
        }

        PlanReport {
            races,
            lifetime,
            cycle: None,
            peak_bounds,
            capacities: self.capacities.clone(),
            task_count: n,
        }
    }
}

/// Kahn toposort over predecessor lists; panics if cyclic (callers check
/// with [`find_cycle`] first).
fn toposort(preds: &[Vec<usize>]) -> Vec<usize> {
    let n = preds.len();
    let mut indeg = vec![0usize; n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, ps) in preds.iter().enumerate() {
        for &p in ps {
            succs[p].push(i);
            indeg[i] += 1;
        }
    }
    let mut queue: std::collections::VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = queue.pop_front() {
        order.push(i);
        for &s in &succs[i] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                queue.push_back(s);
            }
        }
    }
    assert_eq!(order.len(), n, "toposort on cyclic graph");
    order
}

/// Return a cycle (as a task loop) if the edge relation has one. Shared
/// with the SPMD verifier, whose cross-rank wait-for graph reuses the same
/// predecessor-list representation (see [`crate::verify::spmd`]).
pub(crate) fn find_cycle(preds: &[Vec<usize>]) -> Option<Vec<usize>> {
    let n = preds.len();
    // 0 = unvisited, 1 = on stack, 2 = done.
    let mut state = vec![0u8; n];
    let mut parent = vec![usize::MAX; n];
    for start in 0..n {
        if state[start] != 0 {
            continue;
        }
        // Iterative DFS over predecessor edges.
        let mut stack = vec![(start, 0usize)];
        state[start] = 1;
        while let Some(&mut (v, ref mut idx)) = stack.last_mut() {
            if *idx < preds[v].len() {
                let p = preds[v][*idx];
                *idx += 1;
                match state[p] {
                    0 => {
                        state[p] = 1;
                        parent[p] = v;
                        stack.push((p, 0));
                    }
                    1 => {
                        // Found a back edge v → p: reconstruct the loop.
                        let mut cycle = vec![p];
                        let mut cur = v;
                        while cur != p && cur != usize::MAX {
                            cycle.push(cur);
                            cur = parent[cur];
                        }
                        cycle.reverse();
                        return Some(cycle);
                    }
                    _ => {}
                }
            } else {
                state[v] = 2;
                stack.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use angel_sim::{Access, MemEffect, Resources, SimTask, Work};

    fn two_stream_sim() -> (Simulation, angel_sim::ResourceId, angel_sim::ResourceId) {
        let mut r = Resources::new();
        let s1 = r.add_compute("s1");
        let s2 = r.add_compute("s2");
        (Simulation::new(r), s1, s2)
    }

    #[test]
    fn ordered_conflicting_accesses_are_not_races() {
        let (mut sim, s1, s2) = two_stream_sim();
        let obj = ObjectId(1);
        let w = sim.submit(
            SimTask::new(s1, Work::Duration(10))
                .with_access(Access::write(obj))
                .with_label("writer"),
        );
        sim.submit(
            SimTask::new(s2, Work::Duration(10))
                .with_deps([w])
                .with_access(Access::read(obj))
                .with_label("reader"),
        );
        let report = PlanGraph::from_sim(&sim).verify();
        report.assert_clean("ordered write→read");
    }

    #[test]
    fn unordered_write_read_is_a_race() {
        let (mut sim, s1, s2) = two_stream_sim();
        let obj = ObjectId(1);
        sim.submit(
            SimTask::new(s1, Work::Duration(10))
                .with_access(Access::write(obj))
                .with_label("writer"),
        );
        sim.submit(
            SimTask::new(s2, Work::Duration(10))
                .with_access(Access::read(obj))
                .with_label("reader"),
        );
        let report = PlanGraph::from_sim(&sim).verify();
        assert_eq!(report.races.len(), 1);
        let race = &report.races[0];
        assert_eq!((race.first, race.second), (0, 1));
        assert_eq!(race.object, obj);
    }

    #[test]
    fn unordered_reads_do_not_conflict() {
        let (mut sim, s1, s2) = two_stream_sim();
        let obj = ObjectId(1);
        sim.submit(SimTask::new(s1, Work::Duration(10)).with_access(Access::read(obj)));
        sim.submit(SimTask::new(s2, Work::Duration(10)).with_access(Access::read(obj)));
        PlanGraph::from_sim(&sim).verify().assert_clean("two reads");
    }

    #[test]
    fn stream_order_counts_as_happens_before() {
        // Same resource, no dep edge: FIFO order still orders the accesses.
        let (mut sim, s1, _) = two_stream_sim();
        let obj = ObjectId(1);
        sim.submit(SimTask::new(s1, Work::Duration(10)).with_access(Access::write(obj)));
        sim.submit(SimTask::new(s1, Work::Duration(10)).with_access(Access::write(obj)));
        PlanGraph::from_sim(&sim)
            .verify()
            .assert_clean("stream-ordered writes");
    }

    #[test]
    fn removing_the_dep_edge_plants_a_race() {
        let (mut sim, s1, s2) = two_stream_sim();
        let obj = ObjectId(1);
        let w = sim.submit(
            SimTask::new(s1, Work::Duration(10))
                .with_access(Access::write(obj))
                .with_label("writer"),
        );
        sim.submit(
            SimTask::new(s2, Work::Duration(10))
                .with_deps([w])
                .with_access(Access::read(obj)),
        );
        let mut graph = PlanGraph::from_sim(&sim);
        assert!(graph.verify().is_clean());
        assert!(graph.remove_dep(1, w));
        assert_eq!(graph.verify().races.len(), 1, "mutation must be flagged");
    }

    #[test]
    fn lifetime_alloc_use_free_is_clean_and_leak_is_flagged() {
        let (mut sim, s1, _) = two_stream_sim();
        let obj = ObjectId(9);
        let a = sim.submit(SimTask::new(s1, Work::Duration(1)).with_access(Access::alloc(obj)));
        let u = sim.submit(
            SimTask::new(s1, Work::Duration(1))
                .with_deps([a])
                .with_access(Access::read(obj)),
        );
        let mut graph = PlanGraph::from_sim(&sim);
        // Without a free: leak.
        let report = graph.verify();
        assert_eq!(report.lifetime.len(), 1);
        assert_eq!(report.lifetime[0].issue, LifetimeIssue::Leak);
        // Add the free on a fresh sim: clean.
        sim.submit(
            SimTask::new(s1, Work::Duration(1))
                .with_deps([u])
                .with_access(Access::free(obj)),
        );
        graph = PlanGraph::from_sim(&sim);
        graph.verify().assert_clean("alloc-use-free");
    }

    #[test]
    fn use_after_free_and_double_free_are_flagged() {
        let (mut sim, s1, _) = two_stream_sim();
        let obj = ObjectId(9);
        let a = sim.submit(SimTask::new(s1, Work::Duration(1)).with_access(Access::alloc(obj)));
        let f = sim.submit(
            SimTask::new(s1, Work::Duration(1))
                .with_deps([a])
                .with_access(Access::free(obj)),
        );
        sim.submit(
            SimTask::new(s1, Work::Duration(1))
                .with_deps([f])
                .with_access(Access::write(obj)),
        );
        sim.submit(
            SimTask::new(s1, Work::Duration(1))
                .with_deps([f])
                .with_access(Access::free(obj)),
        );
        let issues: Vec<_> = PlanGraph::from_sim(&sim)
            .verify()
            .lifetime
            .iter()
            .map(|v| v.issue)
            .collect();
        assert!(issues.contains(&LifetimeIssue::UseAfterFree), "{issues:?}");
        assert!(issues.contains(&LifetimeIssue::DoubleFree), "{issues:?}");
    }

    #[test]
    fn planted_cycle_is_detected() {
        let (mut sim, s1, s2) = two_stream_sim();
        let a = sim.submit(SimTask::new(s1, Work::Duration(1)));
        sim.submit(SimTask::new(s2, Work::Duration(1)).with_deps([a]));
        let mut graph = PlanGraph::from_sim(&sim);
        graph.add_dep(a, 1); // a depends on its own dependent
        let report = graph.verify();
        assert!(!report.is_clean());
        let cycle = report.cycle.expect("cycle must be found");
        assert!(cycle.contains(&0) && cycle.contains(&1), "{cycle:?}");
    }

    #[test]
    fn peak_bound_dominates_simulated_peak() {
        let mut r = Resources::new();
        let s1 = r.add_compute("s1");
        let s2 = r.add_compute("s2");
        let dom = r.add_mem_domain("mem", 0);
        let mut sim = Simulation::new(r);
        let a = sim.submit(SimTask::new(s1, Work::Duration(100)).with_mem(MemEffect {
            domain: dom,
            acquire: 600,
            release: 600,
        }));
        sim.submit(SimTask::new(s2, Work::Duration(100)).with_mem(MemEffect {
            domain: dom,
            acquire: 500,
            release: 500,
        }));
        sim.submit(
            SimTask::new(s1, Work::Duration(10))
                .with_deps([a])
                .with_mem(MemEffect {
                    domain: dom,
                    acquire: 300,
                    release: 300,
                }),
        );
        let report = sim.run();
        let verdict = PlanGraph::from_sim(&sim).verify();
        verdict.assert_covers(&report, "3-task overlap");
        // Concurrent 600+500 must be in the bound; the dependent 300 may
        // reuse a's released 600.
        assert!(verdict.peak_bounds[dom.0] >= 1100);
    }

    #[test]
    fn bound_subtracts_releases_only_through_dependency_edges() {
        // Zero-duration stream successor: the executor may start it before
        // draining its stream-predecessor's release, so the bound must NOT
        // subtract that release. Regression guard for the soundness
        // argument in the module docs.
        let mut r = Resources::new();
        let s1 = r.add_compute("s1");
        let dom = r.add_mem_domain("mem", 0);
        let mut sim = Simulation::new(r);
        sim.submit(SimTask::new(s1, Work::Duration(0)).with_mem(MemEffect {
            domain: dom,
            acquire: 100,
            release: 100,
        }));
        sim.submit(SimTask::new(s1, Work::Duration(0)).with_mem(MemEffect {
            domain: dom,
            acquire: 100,
            release: 100,
        }));
        let report = sim.run();
        let verdict = PlanGraph::from_sim(&sim).verify();
        verdict.assert_covers(&report, "zero-duration stream pair");
        assert_eq!(
            verdict.peak_bounds[dom.0], 200,
            "stream release not drained"
        );
    }

    #[test]
    fn empty_graph_verifies() {
        let (sim, _, _) = two_stream_sim();
        let report = PlanGraph::from_sim(&sim).verify();
        report.assert_clean("empty");
        report.assert_covers(&sim.run(), "empty");
    }
}
