//! Static analysis of Angel-PTM's two correctness-critical artifacts.
//!
//! The planning pipeline ends in a lowered task graph and the lock-free
//! updating mechanism runs an asynchronous consistency protocol; both were
//! previously checked only *empirically* — one simulated execution, one
//! thread schedule per test run. This module proves their properties over
//! **all** executions the abstractions admit:
//!
//! * [`plan`] — a race/lifetime verifier over [`crate::plan::Lowering`]
//!   task graphs: conflicting accesses to the same logical object must be
//!   ordered by the dependency/stream happens-before relation; object
//!   lifetimes (alloc → uses → free) must be well-formed (no
//!   use-after-free, double-free or leak); the graph must be acyclic; and a
//!   provable peak-memory upper bound per domain is computed that the
//!   simulator's empirical `peak_mem` can never exceed;
//! * [`model`] — a bounded model checker that exhaustively explores the
//!   interleavings of the lock-free trainer's three roles (push / apply /
//!   offload, Algorithm 2) on a protocol state machine that calls the same
//!   [`crate::lockfree::protocol`] arithmetic as the production threads,
//!   checking gradient conservation, absence of double-application /
//!   double-settle, and abort-safe shutdown;
//! * [`spmd`] — a cross-rank collective-matching verifier over device-mesh
//!   plans: every member of each dp/tp/pp communication group must observe
//!   the same sequence of collectives (ops, bytes, arities), and the
//!   cross-rank wait-for graph over the per-group FIFO channels must be
//!   acyclic — with a symmetry reduction that certifies a 1024-GPU plan by
//!   checking one representative rank per pipeline stage.
//!
//! Both engines must demonstrate *teeth*: deleting a dependency edge from a
//! real lowered graph is flagged as a race, and skipping an update receipt
//! (or the version gate, or park accounting) is flagged by the model
//! checker. Those seeded mutations run in the regular test suite — a
//! verifier that cannot catch a planted bug is not evidence of anything.

pub mod model;
pub mod plan;
pub mod spmd;

pub use model::{check_lockfree, Exploration, ModelConfig, Mutation, ShutdownMode, Violation};
pub use plan::{LifetimeIssue, PlanGraph, PlanReport, Race};
pub use spmd::{SpmdDeadlock, SpmdMismatch, SpmdReport, SpmdTrace};

/// Tagged [`angel_sim::ObjectId`] encodings used by the engine and baseline
/// lowerings. The tag occupies the top byte so the families can never
/// collide; the payload encodes layer/page indices.
pub mod objects {
    use angel_sim::ObjectId;

    const SHIFT: u64 = 56;
    const TAG_PAGE: u64 = 1 << SHIFT;
    const TAG_LAYER_PARAMS: u64 = 2 << SHIFT;
    const TAG_LAYER_GRADS: u64 = 3 << SHIFT;
    const TAG_GRAD_SHARD: u64 = 4 << SHIFT;
    const TAG_LAYER_STATE: u64 = 5 << SHIFT;
    const TAG_GATHERED: u64 = 6 << SHIFT;
    const TAG_REPLICA: u64 = 7 << SHIFT;
    const TAG_GPU_CACHED: u64 = 8 << SHIFT;

    /// One pool page staged in for `layer` (pool residency, distinct from
    /// the layer's logical tensors: prefetch may overlap with compute on
    /// earlier pages of the same layer by design).
    pub fn page(layer: usize, index: usize) -> ObjectId {
        ObjectId(TAG_PAGE | ((layer as u64) << 24) | index as u64)
    }

    /// This rank's persistent FP16 parameter shard of `layer` (host side).
    pub fn layer_params(layer: usize) -> ObjectId {
        ObjectId(TAG_LAYER_PARAMS | layer as u64)
    }

    /// The full gradients of `layer` produced by its backward compute and
    /// consumed by the reduce-scatter.
    pub fn layer_grads(layer: usize) -> ObjectId {
        ObjectId(TAG_LAYER_GRADS | layer as u64)
    }

    /// This rank's reduced gradient shard of `layer` (reduce-scatter output,
    /// optimizer input).
    pub fn grad_shard(layer: usize) -> ObjectId {
        ObjectId(TAG_GRAD_SHARD | layer as u64)
    }

    /// The FP32 master state (params + Adam moments) of `layer`.
    pub fn layer_state(layer: usize) -> ObjectId {
        ObjectId(TAG_LAYER_STATE | layer as u64)
    }

    /// The gathered full-parameter working buffer of one schedule step —
    /// per *step*, not per layer: each gather materializes into a fresh
    /// buffer, which is what lets advanced prefetch overlap safely.
    pub fn gathered(step: usize) -> ObjectId {
        ObjectId(TAG_GATHERED | step as u64)
    }

    /// A Megatron-style replicated model state on one pipeline stage.
    pub fn replica(stage: usize) -> ObjectId {
        ObjectId(TAG_REPLICA | stage as u64)
    }

    /// The GPU-cached hot optimizer states updated on-device (Section 4.2).
    pub fn gpu_cached_states() -> ObjectId {
        ObjectId(TAG_GPU_CACHED)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn encodings_do_not_collide() {
            let ids = [
                page(0, 0),
                page(0, 1),
                page(1, 0),
                layer_params(0),
                layer_grads(0),
                grad_shard(0),
                layer_state(0),
                gathered(0),
                replica(0),
                gpu_cached_states(),
            ];
            for (i, a) in ids.iter().enumerate() {
                for b in ids.iter().skip(i + 1) {
                    assert_ne!(a, b);
                }
            }
        }
    }
}
