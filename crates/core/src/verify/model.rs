//! Bounded model checker for the lock-free updating mechanism.
//!
//! The production implementation in [`crate::lockfree`] runs three roles —
//! the **training** loop pushing gradients, the **buffering** thread
//! accumulating them and clearing on update receipts, and the **updating**
//! thread snapshotting, applying the optimizer, and offloading state — over
//! channels, mutexes and atomics. A test run observes *one* interleaving.
//! This module explores *all* interleavings of a finite abstraction:
//!
//! * each mutex-protected critical section or channel operation of the real
//!   code is one atomic transition of the model (the protocol's observable
//!   events), and
//! * the decision arithmetic — receipt settlement and the snapshot version
//!   gate — is **not** re-implemented here: the model calls the same
//!   [`crate::lockfree::protocol`] functions as the production threads, so
//!   a bug in that logic is visible to both.
//!
//! Checked invariants:
//!
//! * **per state**: `settled ≤ pushed` (no micro-batch settles twice) and
//!   `applied ≤ pushed` (no gradient applies twice);
//! * **at termination**: `applied + dropped == settled` and
//!   `pushed == settled + Σ buffered` — every pushed micro-batch is
//!   accounted exactly once (the paper's conservation property,
//!   `grads_pushed == grads_applied + grads_dropped` once quiescent);
//! * **no deadlock**: every non-terminal state has an enabled transition —
//!   under [`ShutdownMode::Quiescent`] this proves `wait_quiescent`
//!   terminates on every schedule.
//!
//! [`Mutation`] seeds the bugs the checker must catch (skipped receipt,
//! skipped version gate, park without settling, clear without counting);
//! tests assert each is flagged and that the unmutated protocol is clean.
//! Bounds (`pushes`, `layers`, `max_faults`) keep the state space finite;
//! the checker is exhaustive *within* them (`Exploration::complete`).

use crate::lockfree::{protocol, ClearPolicy};
use std::collections::HashSet;

/// How the run ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShutdownMode {
    /// Shutdown only after every pushed gradient settled (the
    /// `wait_quiescent` discipline of the accounting tests).
    Quiescent,
    /// Shutdown as soon as the trainer stops pushing, regardless of
    /// in-flight work — models abortive teardown. Conservation must still
    /// hold for everything that drained.
    Abort,
}

/// Seeded protocol bugs. The checker must flag every one of these (under
/// the policies noted) — a checker that cannot catch a planted bug is not
/// evidence of anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    None,
    /// The updating thread never sends the `Updated` receipt. Fatal under
    /// [`ClearPolicy::OnUpdateReceipt`] (the buffer never clears, gradients
    /// never settle); harmless under [`ClearPolicy::TakeAtSnapshot`], which
    /// settles at snapshot time — the checker documents that asymmetry.
    SkipReceipt,
    /// The snapshot gate ignores the version protocol, so the same
    /// buffered gradients can be applied twice.
    SkipVersionCheck,
    /// Parking a layer discards its buffered micro-batches without
    /// settling them.
    ParkWithoutSettle,
    /// The receipt clear empties the buffer without counting
    /// applied-vs-dropped.
    ClearWithoutCount,
}

/// Model bounds and knobs.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    pub layers: usize,
    /// Total gradient micro-batches the trainer pushes (round-robin over
    /// layers).
    pub pushes: u32,
    pub policy: ClearPolicy,
    pub shutdown: ShutdownMode,
    /// Store-fault budget: each fetch or offload may nondeterministically
    /// fail (and park the layer) while the budget lasts.
    pub max_faults: u32,
    pub mutation: Mutation,
    /// Safety valve: stop exploring (with `complete = false`) past this
    /// many distinct states.
    pub max_states: usize,
}

impl ModelConfig {
    pub fn new(policy: ClearPolicy, shutdown: ShutdownMode) -> Self {
        Self {
            layers: 1,
            pushes: 3,
            policy,
            shutdown,
            max_faults: 0,
            mutation: Mutation::None,
            max_states: 1_000_000,
        }
    }
}

/// What the checker found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A reachable non-terminal state with no enabled transition.
    Deadlock,
    /// More settles than pushes — some micro-batch was counted twice.
    DoubleSettle { settled: u32, pushed: u32 },
    /// More applications than pushes — some gradient was applied twice.
    DoubleApply { applied: u32, pushed: u32 },
    /// Terminal accounting does not balance.
    Conservation {
        pushed: u32,
        applied: u32,
        dropped: u32,
        settled: u32,
        buffered: u32,
    },
}

/// Result of one exploration.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Distinct states visited.
    pub states: usize,
    /// True iff the full bounded state space was explored (no
    /// `max_states` cut-off and no violation short-circuit).
    pub complete: bool,
    pub violation: Option<Violation>,
    /// Transition labels from the initial state to the violation (empty
    /// when clean) — a counterexample schedule.
    pub trace: Vec<String>,
}

/// A message in flight from trainer/updater to the buffering thread.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Msg {
    Grads { layer: u8 },
    Updated { layer: u8, applied: u32 },
}

/// Where the (single) updating thread is in its per-layer cycle. Snapshot
/// and fetch collapse into one transition (both outcomes branch); apply and
/// offload are separate so receipts and parks interleave with pushes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Phase {
    Idle,
    /// Snapshot taken and FP32 state fetched; optimizer not yet run.
    /// `snap_version` is the buffer version at snapshot time — the
    /// offload-failure park needs it to tell whether its receipt is still
    /// in flight.
    Fetched {
        layer: u8,
        micro: u32,
        snap_version: u64,
    },
    /// Optimizer ran and the receipt (if any) was sent; offload pending.
    Applied {
        layer: u8,
        snap_version: u64,
    },
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    buf_micro: Vec<u32>,
    buf_version: Vec<u64>,
    parked: Vec<bool>,
    last_snapshot: Vec<Option<u64>>,
    /// FIFO trainer/updater → buffering channel.
    queue: Vec<Msg>,
    phase: Phase,
    pushed: u32,
    applied: u32,
    dropped: u32,
    settled: u32,
    to_push: u32,
    running: bool,
    faults_left: u32,
    updater_done: bool,
    buffering_done: bool,
}

impl State {
    fn initial(cfg: &ModelConfig) -> Self {
        Self {
            buf_micro: vec![0; cfg.layers],
            buf_version: vec![0; cfg.layers],
            parked: vec![false; cfg.layers],
            last_snapshot: vec![None; cfg.layers],
            queue: Vec::new(),
            phase: Phase::Idle,
            pushed: 0,
            applied: 0,
            dropped: 0,
            settled: 0,
            to_push: cfg.pushes,
            running: true,
            faults_left: cfg.max_faults,
            updater_done: false,
            buffering_done: false,
        }
    }

    fn buffered(&self) -> u32 {
        self.buf_micro.iter().sum()
    }

    fn is_terminal(&self) -> bool {
        !self.running && self.updater_done && self.buffering_done
    }

    /// Mirror of `Shared::park_layer` (and the mutated variant).
    fn park(&mut self, layer: usize, drop_buffered: bool, mutation: Mutation) {
        self.parked[layer] = true;
        let stranded = self.buf_micro[layer];
        if drop_buffered && stranded > 0 {
            if mutation != Mutation::ParkWithoutSettle {
                self.dropped += stranded;
                self.settled += stranded;
            }
            self.buf_micro[layer] = 0;
            self.buf_version[layer] += 1;
        }
    }

    /// Invariants that must hold in *every* reachable state.
    fn local_violation(&self) -> Option<Violation> {
        if self.settled > self.pushed {
            return Some(Violation::DoubleSettle {
                settled: self.settled,
                pushed: self.pushed,
            });
        }
        if self.applied > self.pushed {
            return Some(Violation::DoubleApply {
                applied: self.applied,
                pushed: self.pushed,
            });
        }
        None
    }

    /// Invariants that must hold once everything has drained.
    fn terminal_violation(&self) -> Option<Violation> {
        let balanced = self.applied + self.dropped == self.settled
            && self.pushed == self.settled + self.buffered();
        if balanced {
            None
        } else {
            Some(Violation::Conservation {
                pushed: self.pushed,
                applied: self.applied,
                dropped: self.dropped,
                settled: self.settled,
                buffered: self.buffered(),
            })
        }
    }

    /// Every enabled transition, as (label, successor) pairs.
    fn transitions(&self, cfg: &ModelConfig) -> Vec<(String, State)> {
        let mut out = Vec::new();

        // Trainer: push the next micro-batch, round-robin over layers.
        if self.running && self.to_push > 0 {
            let layer = (self.pushed as usize % cfg.layers) as u8;
            let mut s = self.clone();
            s.pushed += 1;
            s.to_push -= 1;
            s.queue.push(Msg::Grads { layer });
            out.push((format!("push L{layer}"), s));
        }

        // Buffering thread: pop the channel head.
        if !self.buffering_done {
            if let Some(msg) = self.queue.first().cloned() {
                let mut s = self.clone();
                s.queue.remove(0);
                let label = match msg {
                    Msg::Grads { layer } => {
                        let l = layer as usize;
                        if s.parked[l] {
                            // Degraded mode: settle as dropped immediately.
                            s.dropped += 1;
                            s.settled += 1;
                        } else {
                            s.buf_micro[l] += 1;
                        }
                        format!("buffer grads L{layer}")
                    }
                    Msg::Updated { layer, applied } => {
                        let l = layer as usize;
                        if cfg.policy == ClearPolicy::OnUpdateReceipt {
                            if cfg.mutation == Mutation::ClearWithoutCount {
                                self::clear_unaccounted(&mut s, l);
                            } else {
                                // The shared production arithmetic.
                                let r = protocol::settle_receipt(s.buf_micro[l], applied);
                                s.dropped += r.late;
                                s.settled += r.cleared;
                                self::clear_unaccounted(&mut s, l);
                            }
                        }
                        format!("receipt L{layer} applied={applied}")
                    }
                };
                out.push((label, s));
            }
        }

        // Updating thread.
        match self.phase {
            Phase::Idle if self.running => {
                for l in 0..cfg.layers {
                    let gate_last = if cfg.mutation == Mutation::SkipVersionCheck {
                        None // the seeded bug: pretend no snapshot is in flight
                    } else {
                        self.last_snapshot[l]
                    };
                    // The shared production gate.
                    if !protocol::may_snapshot(
                        cfg.policy,
                        self.buf_micro[l],
                        self.parked[l],
                        gate_last,
                        self.buf_version[l],
                    ) {
                        continue;
                    }
                    // Branch 1: fetch succeeds.
                    let mut ok = self.clone();
                    let (micro, snap_version) = ok.snapshot(l, cfg.policy);
                    ok.phase = Phase::Fetched {
                        layer: l as u8,
                        micro,
                        snap_version,
                    };
                    out.push((format!("snapshot+fetch L{l} micro={micro}"), ok));
                    // Branch 2: fetch fails permanently (budget allowing):
                    // the snapshot still happened first, then the park
                    // drops-and-settles whatever is in the buffer.
                    if self.faults_left > 0 {
                        let mut fail = self.clone();
                        fail.faults_left -= 1;
                        let (micro, _) = fail.snapshot(l, cfg.policy);
                        if cfg.policy == ClearPolicy::TakeAtSnapshot {
                            // Snapshot already settled these; they will
                            // never be applied.
                            if cfg.mutation != Mutation::ParkWithoutSettle {
                                fail.dropped += micro;
                            }
                        }
                        fail.park(l, true, cfg.mutation);
                        out.push((format!("fetch-fail park L{l}"), fail));
                    }
                }
            }
            Phase::Idle => {}
            Phase::Fetched {
                layer,
                micro,
                snap_version,
            } => {
                // Apply the optimizer and send the receipt.
                let mut s = self.clone();
                s.applied += micro;
                if cfg.mutation != Mutation::SkipReceipt {
                    s.queue.push(Msg::Updated {
                        layer,
                        applied: micro,
                    });
                }
                s.phase = Phase::Applied {
                    layer,
                    snap_version,
                };
                out.push((format!("apply L{layer} micro={micro}"), s));
            }
            Phase::Applied {
                layer,
                snap_version,
            } => {
                // Branch 1: offload succeeds.
                let mut ok = self.clone();
                ok.phase = Phase::Idle;
                out.push((format!("offload L{layer} ok"), ok));
                // Branch 2: offload fails permanently: park, with the
                // production drop decision — under OnUpdateReceipt the
                // buffer version decides whether the receipt is still in
                // flight (settles the buffer, must not double-drop) or
                // already processed (arrivals since must drop or strand).
                if self.faults_left > 0 {
                    let mut fail = self.clone();
                    fail.faults_left -= 1;
                    let l = layer as usize;
                    let drop = match cfg.policy {
                        ClearPolicy::TakeAtSnapshot => protocol::ParkDrop::Always,
                        ClearPolicy::OnUpdateReceipt => protocol::ParkDrop::UnlessReceiptInFlight {
                            snapshot_version: snap_version,
                        },
                    };
                    let do_drop = protocol::park_should_drop(drop, fail.buf_version[l]);
                    fail.park(l, do_drop, cfg.mutation);
                    fail.phase = Phase::Idle;
                    out.push((format!("offload-fail park L{layer}"), fail));
                }
            }
        }

        // Shutdown: Quiescent waits for full settlement (wait_quiescent),
        // Abort stops as soon as the trainer is done pushing.
        if self.running
            && self.to_push == 0
            && match cfg.shutdown {
                ShutdownMode::Quiescent => self.settled == self.pushed,
                ShutdownMode::Abort => true,
            }
        {
            let mut s = self.clone();
            s.running = false;
            out.push(("stop".into(), s));
        }

        // The updating thread exits at the top of its loop once `running`
        // drops (it never abandons an in-flight update).
        if !self.running && !self.updater_done && self.phase == Phase::Idle {
            let mut s = self.clone();
            s.updater_done = true;
            out.push(("updater exits".into(), s));
        }

        // The buffering thread exits when all senders are gone (trainer
        // stopped, updater joined) and the channel has drained.
        if !self.running && self.updater_done && !self.buffering_done && self.queue.is_empty() {
            let mut s = self.clone();
            s.buffering_done = true;
            out.push(("buffering exits".into(), s));
        }

        out
    }

    /// Take a snapshot of `layer`'s buffer (the production `match` on the
    /// clear policy inside the grad mutex). Returns the snapshot size and
    /// the buffer version the snapshot observed.
    fn snapshot(&mut self, layer: usize, policy: ClearPolicy) -> (u32, u64) {
        let micro = self.buf_micro[layer];
        let version = self.buf_version[layer];
        match policy {
            ClearPolicy::OnUpdateReceipt => {
                self.last_snapshot[layer] = Some(version);
            }
            ClearPolicy::TakeAtSnapshot => {
                self.settled += micro;
                self.buf_micro[layer] = 0;
                self.buf_version[layer] += 1;
            }
        }
        (micro, version)
    }
}

/// Clear a layer's buffer without touching the counters (shared tail of the
/// receipt paths; on its own it is the `ClearWithoutCount` bug).
fn clear_unaccounted(s: &mut State, layer: usize) {
    s.buf_micro[layer] = 0;
    s.buf_version[layer] += 1;
}

/// Exhaustively explore the bounded protocol state space.
pub fn check_lockfree(cfg: &ModelConfig) -> Exploration {
    let mut visited: HashSet<State> = HashSet::new();
    let mut states = 0usize;
    let mut capped = false;
    let mut trace = Vec::new();
    let violation = dfs(
        cfg,
        State::initial(cfg),
        &mut visited,
        &mut states,
        &mut capped,
        &mut trace,
    );
    trace.reverse();
    Exploration {
        states,
        complete: !capped && violation.is_none(),
        violation,
        trace,
    }
}

fn dfs(
    cfg: &ModelConfig,
    state: State,
    visited: &mut HashSet<State>,
    states: &mut usize,
    capped: &mut bool,
    trace: &mut Vec<String>,
) -> Option<Violation> {
    if let Some(v) = state.local_violation() {
        return Some(v);
    }
    let succs = state.transitions(cfg);
    if succs.is_empty() {
        return if state.is_terminal() {
            state.terminal_violation()
        } else {
            Some(Violation::Deadlock)
        };
    }
    if !visited.insert(state) {
        return None;
    }
    *states += 1;
    if *states >= cfg.max_states {
        *capped = true;
        return None;
    }
    for (label, succ) in succs {
        if let Some(v) = dfs(cfg, succ, visited, states, capped, trace) {
            trace.push(label);
            return Some(v);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_policies() -> [ClearPolicy; 2] {
        [ClearPolicy::OnUpdateReceipt, ClearPolicy::TakeAtSnapshot]
    }

    #[test]
    fn clean_protocol_verifies_under_both_policies_and_shutdown_modes() {
        for policy in all_policies() {
            for shutdown in [ShutdownMode::Quiescent, ShutdownMode::Abort] {
                let e = check_lockfree(&ModelConfig::new(policy, shutdown));
                assert!(
                    e.violation.is_none(),
                    "{policy:?}/{shutdown:?}: {:?}\ntrace: {:#?}",
                    e.violation,
                    e.trace
                );
                assert!(e.complete, "{policy:?}/{shutdown:?} hit the state cap");
                assert!(e.states > 10, "exploration trivially small: {}", e.states);
            }
        }
    }

    #[test]
    fn clean_protocol_survives_store_faults() {
        for policy in all_policies() {
            for shutdown in [ShutdownMode::Quiescent, ShutdownMode::Abort] {
                let mut cfg = ModelConfig::new(policy, shutdown);
                cfg.layers = 2;
                cfg.max_faults = 2;
                let e = check_lockfree(&cfg);
                assert!(
                    e.violation.is_none(),
                    "{policy:?}/{shutdown:?} with faults: {:?}\ntrace: {:#?}",
                    e.violation,
                    e.trace
                );
                assert!(e.complete);
            }
        }
    }

    #[test]
    fn skipped_receipt_deadlocks_the_paper_policy() {
        // Without the Updated receipt the buffer never clears, the
        // gradients never settle, and wait_quiescent spins forever.
        let mut cfg = ModelConfig::new(ClearPolicy::OnUpdateReceipt, ShutdownMode::Quiescent);
        cfg.mutation = Mutation::SkipReceipt;
        let e = check_lockfree(&cfg);
        assert_eq!(
            e.violation,
            Some(Violation::Deadlock),
            "trace: {:#?}",
            e.trace
        );
        assert!(!e.trace.is_empty(), "counterexample schedule expected");
    }

    #[test]
    fn skipped_receipt_is_harmless_under_take_at_snapshot() {
        // TakeAtSnapshot settles at snapshot time; the receipt only
        // refreshes FP16 parameters. The checker documents the asymmetry.
        for shutdown in [ShutdownMode::Quiescent, ShutdownMode::Abort] {
            let mut cfg = ModelConfig::new(ClearPolicy::TakeAtSnapshot, shutdown);
            cfg.mutation = Mutation::SkipReceipt;
            let e = check_lockfree(&cfg);
            assert!(e.violation.is_none(), "{shutdown:?}: {:?}", e.violation);
        }
    }

    #[test]
    fn skipped_version_gate_applies_gradients_twice() {
        let mut cfg = ModelConfig::new(ClearPolicy::OnUpdateReceipt, ShutdownMode::Quiescent);
        cfg.mutation = Mutation::SkipVersionCheck;
        let e = check_lockfree(&cfg);
        match e.violation {
            Some(Violation::DoubleApply { applied, pushed }) => {
                assert!(applied > pushed, "{applied} vs {pushed}")
            }
            other => panic!("expected DoubleApply, got {other:?}\ntrace: {:#?}", e.trace),
        }
    }

    #[test]
    fn version_gate_is_not_needed_when_snapshots_clear() {
        // Under TakeAtSnapshot the snapshot itself empties the buffer, so
        // the version gate is redundant — skipping it must be clean.
        let mut cfg = ModelConfig::new(ClearPolicy::TakeAtSnapshot, ShutdownMode::Quiescent);
        cfg.mutation = Mutation::SkipVersionCheck;
        let e = check_lockfree(&cfg);
        assert!(e.violation.is_none(), "{:?}", e.violation);
    }

    #[test]
    fn park_without_settle_is_flagged() {
        // Quiescent: the stranded micro-batches never settle → deadlock.
        let mut cfg = ModelConfig::new(ClearPolicy::OnUpdateReceipt, ShutdownMode::Quiescent);
        cfg.max_faults = 1;
        cfg.mutation = Mutation::ParkWithoutSettle;
        let e = check_lockfree(&cfg);
        assert_eq!(
            e.violation,
            Some(Violation::Deadlock),
            "trace: {:#?}",
            e.trace
        );

        // Abort: the run terminates but pushed gradients vanished without
        // being buffered, applied, or dropped.
        let mut cfg = ModelConfig::new(ClearPolicy::TakeAtSnapshot, ShutdownMode::Abort);
        cfg.max_faults = 1;
        cfg.mutation = Mutation::ParkWithoutSettle;
        let e = check_lockfree(&cfg);
        assert!(
            matches!(e.violation, Some(Violation::Conservation { .. })),
            "{:?}",
            e.violation
        );
    }

    #[test]
    fn clear_without_count_is_flagged() {
        let mut cfg = ModelConfig::new(ClearPolicy::OnUpdateReceipt, ShutdownMode::Quiescent);
        cfg.mutation = Mutation::ClearWithoutCount;
        let e = check_lockfree(&cfg);
        assert_eq!(
            e.violation,
            Some(Violation::Deadlock),
            "trace: {:#?}",
            e.trace
        );

        let mut cfg = ModelConfig::new(ClearPolicy::OnUpdateReceipt, ShutdownMode::Abort);
        cfg.mutation = Mutation::ClearWithoutCount;
        let e = check_lockfree(&cfg);
        assert!(
            matches!(e.violation, Some(Violation::Conservation { .. })),
            "{:?}",
            e.violation
        );
    }

    #[test]
    fn exploration_is_deterministic() {
        let cfg = ModelConfig::new(ClearPolicy::OnUpdateReceipt, ShutdownMode::Quiescent);
        let a = check_lockfree(&cfg);
        let b = check_lockfree(&cfg);
        assert_eq!(a.states, b.states);
        assert_eq!(a.violation, b.violation);
    }

    /// Deeper bounds for the dedicated CI verify job
    /// (`RUSTFLAGS="--cfg angel_model_check"`): more layers, pushes and
    /// faults than the default suite explores.
    #[cfg(angel_model_check)]
    #[test]
    fn deep_bounded_exploration_is_clean() {
        for policy in all_policies() {
            let mut cfg = ModelConfig::new(policy, ShutdownMode::Abort);
            cfg.layers = 2;
            cfg.pushes = 6;
            cfg.max_faults = 3;
            cfg.max_states = 5_000_000;
            let e = check_lockfree(&cfg);
            assert!(e.violation.is_none(), "{policy:?}: {:?}", e.violation);
            assert!(e.complete, "{policy:?} hit the state cap at {}", e.states);
        }
    }
}
