//! The Engine — Angel-PTM's user-facing API (Figure 6 of the paper) wired to
//! the simulated A100 hardware.
//!
//! ```python
//! model = angelptm.initialize(model, optimizer, config)
//! for batch in batches:
//!     loss = model(batch); model.backward(loss); model.step()
//! ```
//!
//! [`Engine::initialize`] composes the staged planning pipeline in
//! [`crate::plan`] — Trace → Shard → Place → Schedule → Lower:
//!
//! 1. [`TracePlan`]: run the [`crate::Tracer`] over one symbolic iteration;
//! 2. [`ShardPlan`]: ZeRO/expert-parallel byte accounting → scheduler input;
//! 3. [`MemoryPlan`]: tier budgets, the Section 4.1/4.2 placement heuristic
//!    (forward/backward on GPU, optimizer updates on CPU, FP32 states
//!    spilling to SSD when enabled), and materialization in a real
//!    [`crate::PageAllocator`] so every page-accounting invariant is
//!    enforced, not assumed;
//! 4. [`SchedulePlan`]: the Unified Scheduler (Algorithm 1) plans page
//!    movements, all-gathers and computes, and the dynamic GPU cache is
//!    sized from the schedule's lifetime-accurate peak;
//! 5. [`crate::plan::lower_schedule`]: the schedule is lowered onto the
//!    `angel-sim` discrete-event hardware.
//!
//! [`Engine::train_iteration`] runs the lowered iteration and reports the
//! quantities the paper's evaluation tables measure: iteration time →
//! samples/s, per-resource utilization, peak GPU memory, residency,
//! staleness under the lock-free mechanism.

use crate::allocator::PageAllocator;
use crate::cache::CachePlan;
use crate::communicator::CommGroup;
use crate::config::EngineConfig;
use crate::error::{Error, Result};
use crate::obs::{ObsThread, Recorder};
use crate::plan::{
    lower_schedule, FaultTarget, LoweredIteration, MemoryPlan, ScheduleLowering, SchedulePlan,
    ShardPlan, TracePlan,
};
use crate::replan::{Planner, ReplanOutcome};
use crate::scheduler::Schedule;
use crate::tracer::Trace;
use crate::zero::ZeroPartition;
use angel_hw::DeviceId;
use angel_model::TransformerConfig;
use angel_sim::{FaultEvent, FaultKind};
use serde::{Deserialize, Serialize};

pub use crate::plan::memory::Placement;

/// Per-iteration statistics — the measurement vocabulary of Section 6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterStats {
    /// End-to-end iteration time.
    pub iter_time_ns: u64,
    /// Global throughput: global batch ÷ iteration time.
    pub samples_per_sec: f64,
    /// GPU compute-stream utilization (1 − the paper's idle fraction).
    pub gpu_utilization: f64,
    /// PCIe (H2D+D2H average) utilization.
    pub pcie_utilization: f64,
    /// Collective-communication channel utilization.
    pub comm_utilization: f64,
    /// Average number of busy resources (overlap quality).
    pub overlap_ratio: f64,
    /// Planned peak GPU bytes (scheduler, lifetime-accurate).
    pub peak_gpu_bytes: u64,
    /// Fraction of the parameter shard resident on GPU.
    pub resident_fraction: f64,
    /// Time of one full optimizer update cycle (CPU/SSD path).
    pub update_cycle_ns: u64,
    /// Update staleness in iterations (lock-free mode; 0.0 when synchronous).
    pub staleness_iters: f64,
    /// Lowered tasks that did not complete (0 on fault-free runs; > 0 when
    /// an injected [`ClusterEvent`] killed in-flight work).
    pub tasks_failed: u64,
}

/// Multi-iteration aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    pub iters: usize,
    pub total_time_ns: u64,
    pub samples_per_sec: f64,
    pub per_iter: IterStats,
}

/// A mid-run cluster change the online-replanning loop reacts to. Events
/// are anchored to an iteration index: faults fire *inside* iteration
/// `at_iter` (injected into that iteration's simulation), and the engine
/// replans and splices at the `at_iter → at_iter + 1` boundary — no task of
/// the abandoned tail ever executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterEvent {
    /// A transient resource outage during iteration `at_iter`. The topology
    /// is unchanged, but the engine treats the fault as a degraded-headroom
    /// signal: the splice replans with a tightened GPU budget (capacity
    /// delta) so subsequent iterations keep slack for re-executed work.
    Outage {
        at_iter: usize,
        target: FaultTarget,
        /// Simulation time within the iteration at which the fault fires.
        at_ns: u64,
        duration_ns: u64,
    },
    /// Permanent loss of `servers` servers detected during iteration
    /// `at_iter` (sim-side: the collective channel dies at `at_ns`). The
    /// splice replans onto the surviving fleet.
    ServerLoss {
        at_iter: usize,
        servers: usize,
        at_ns: u64,
    },
    /// Elastic resize to `servers` total servers, effective at the
    /// `at_iter → at_iter + 1` boundary (no in-iteration fault).
    Resize { at_iter: usize, servers: usize },
}

impl ClusterEvent {
    /// The iteration this event is anchored to.
    pub fn at_iter(&self) -> usize {
        match *self {
            ClusterEvent::Outage { at_iter, .. }
            | ClusterEvent::ServerLoss { at_iter, .. }
            | ClusterEvent::Resize { at_iter, .. } => at_iter,
        }
    }
}

/// One plan splice performed by [`Engine::run_online`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpliceReport {
    /// The splice happened at the `at_iter → at_iter + 1` boundary.
    pub at_iter: usize,
    /// Cluster size (servers) after the splice.
    pub servers: usize,
    /// Wall-clock nanoseconds of the full replan (trace → shard → place →
    /// incremental schedule → materialize).
    pub replan_ns: u64,
    /// What the incremental planner reused versus recomputed.
    pub outcome: ReplanOutcome,
    /// Whether the spliced lowering was re-verified (plan graph + SPMD) —
    /// debug builds only, subject to the task-count gate.
    pub verified: bool,
}

/// Result of an online-replanning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineReport {
    pub iters: usize,
    /// Per-iteration stats: iterations before a splice ran the old plan
    /// (possibly degraded by injected faults), iterations after it run the
    /// replanned one.
    pub per_iter: Vec<IterStats>,
    /// One entry per replan, in boundary order.
    pub splices: Vec<SpliceReport>,
    /// Sum of the per-iteration times.
    pub total_time_ns: u64,
    /// Samples completed ÷ total time (each iteration's global batch is
    /// counted under the config it actually ran with; iterations with
    /// failed tasks contribute time but no samples).
    pub samples_per_sec: f64,
}

/// Millisecond-decade histogram bucket edges for `engine.iter_time_ns`:
/// 1 ms … 100 s of simulated time. Integer constants, so every bucket
/// boundary is exact and lossless on all targets — float-literal edges
/// (`1e6 as u64`-style) are exact only while the edge happens to be
/// representable, and the cast hides it when one stops being.
const ITER_TIME_BUCKETS_NS: [u64; 6] = [
    1_000_000,       // 1 ms
    10_000_000,      // 10 ms
    100_000_000,     // 100 ms
    1_000_000_000,   // 1 s
    10_000_000_000,  // 10 s
    100_000_000_000, // 100 s
];

/// Checked parts-per-million conversion for ratio gauges (clippy
/// `cast_possible_truncation` audit): NaN and negative inputs clamp to 0,
/// overlarge inputs saturate at `u64::MAX`, and the final cast is in-range
/// by construction instead of relying on `as`-cast saturation semantics.
pub(crate) fn ppm_u64(ratio: f64) -> u64 {
    let scaled = ratio * 1e6;
    if scaled.is_nan() || scaled <= 0.0 {
        return 0;
    }
    if scaled >= u64::MAX as f64 {
        return u64::MAX;
    }
    scaled as u64
}

/// Saturating `u128 → u64` narrowing for wall-clock nanosecond readings
/// (`Instant::elapsed().as_nanos()` is `u128`; 2⁶⁴ ns ≈ 584 years, so
/// saturation is unreachable in practice but stated rather than assumed).
pub(crate) fn saturating_ns(ns: u128) -> u64 {
    u64::try_from(ns).unwrap_or(u64::MAX)
}

/// The initialized training engine for one model on one cluster.
pub struct Engine {
    model: TransformerConfig,
    config: EngineConfig,
    trace: Trace,
    schedule: Schedule,
    placement: Placement,
    cache_plan: CachePlan,
    /// Real page-accounting of the representative rank's three tiers.
    allocator: PageAllocator,
    zero: ZeroPartition,
    /// Per-layer FP16 parameter bytes that cross the collective fabric
    /// (all layers for dense models; non-expert parameters only under
    /// expert parallelism — local experts never travel).
    layer_comm_bytes: Vec<u64>,
    /// Observability handle; disabled (free) unless attached via
    /// [`Engine::set_recorder`] / [`Engine::with_recorder`].
    recorder: Recorder,
    /// The persistent incremental-planner session behind this engine's
    /// schedule. [`Engine::run_online`] replans through it, so a cluster
    /// change pays only for the layers it touches.
    planner: Option<Planner>,
    /// The healthy-fleet GPU reservation from the config this engine was
    /// initialized with. Outage splices *tighten* `config.gpu_reserved`
    /// (degraded headroom accumulates across outages); an elastic
    /// [`ClusterEvent::Resize`] recovery restores this baseline, so
    /// degradation is never permanent across recoveries.
    baseline_gpu_reserved: u64,
}

impl Engine {
    /// Initialize training: Trace → Shard → Place → Schedule, then
    /// materialize the placement.
    pub fn initialize(model: &TransformerConfig, config: &EngineConfig) -> Result<Self> {
        let traced = TracePlan::build(model, config)?;
        let shard = ShardPlan::build(model, config, &traced);
        let mem = MemoryPlan::build(config, &shard)?;
        let mut planner = None;
        let planned =
            SchedulePlan::build_with_planner(config, &shard, &mem, &traced.zero, &mut planner)?;
        let placed = mem.place(config, &shard, &planned)?;
        let allocator = mem.materialize(config, model.layers, &placed)?;

        Ok(Self {
            model: model.clone(),
            config: config.clone(),
            trace: traced.trace,
            schedule: planned.schedule,
            placement: placed.placement,
            cache_plan: planned.cache_plan,
            allocator,
            zero: traced.zero,
            layer_comm_bytes: shard.layer_comm_bytes,
            recorder: Recorder::disabled(),
            planner,
            baseline_gpu_reserved: config.gpu_reserved,
        })
    }

    /// Attach an observability recorder to the engine *and* its page
    /// allocator: iteration counters/histograms, per-resource busy and
    /// per-domain peak-memory gauges, and timeline events all flow into it.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.allocator.set_recorder(recorder.clone());
        self.recorder = recorder;
    }

    /// Builder-style [`Engine::set_recorder`].
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.set_recorder(recorder);
        self
    }

    /// The engine's recorder (disabled unless one was attached).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The configuration currently in force — updated by splices
    /// ([`Engine::run_online`]) when the cluster resizes or degrades.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The healthy-fleet GPU reservation this engine was initialized with.
    /// `config().gpu_reserved` drifts above it while outage-degraded and
    /// returns to it on elastic recovery.
    pub fn baseline_gpu_reserved(&self) -> u64 {
        self.baseline_gpu_reserved
    }

    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    pub fn placement(&self) -> Placement {
        self.placement
    }

    pub fn cache_plan(&self) -> CachePlan {
        self.cache_plan
    }

    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    pub fn allocator(&self) -> &PageAllocator {
        &self.allocator
    }

    /// Mutable allocator access — for arming compaction
    /// ([`PageAllocator::set_compaction_threshold_ppm`]) or trimming reuse
    /// pools under external memory pressure.
    pub fn allocator_mut(&mut self) -> &mut PageAllocator {
        &mut self.allocator
    }

    /// One optimizer update cycle over this rank's CPU/SSD states — SSD
    /// read, CPU update, SSD write — with the CPU/SSD bandwidth shared by
    /// the server's ranks.
    pub fn update_cycle_ns(&self) -> u64 {
        let gpus_per_server = self.config.cluster.server.num_gpus();
        // Traffic = 28 bytes/param over the non-GPU-cached parameters.
        let cpu_params = self.cache_plan.cpu_update_bytes / 12;
        let cpu_traffic = cpu_params * 28;
        let cpu_time = self
            .config
            .cpu_update
            .time_ns_sharded(cpu_traffic, gpus_per_server);
        let ssd_time = if self.config.use_ssd {
            let link = &self.config.cluster.server.ssd_link;
            // Read + write the SSD-resident FP32 states, bandwidth shared
            // across the server's ranks.
            let bytes = 2 * self.placement.ssd_bytes;
            link.transfer_ns(bytes * gpus_per_server as u64)
        } else {
            0
        };
        cpu_time + ssd_time
    }

    /// Lower this engine's schedule onto the simulated hardware without
    /// running it — the graph the verifier checks and `train_iteration`
    /// executes.
    pub fn lower_iteration(&self) -> LoweredIteration {
        self.build_iteration_sim()
    }

    /// Cross-rank SPMD certification of this engine's lowered iteration:
    /// project the Communicator's journal onto every rank of the configured
    /// device mesh and run the collective-matching / deadlock verifier
    /// ([`crate::verify::spmd`]) — exhaustively on small fleets, symmetry-
    /// reduced at cluster scale. Errors when the parallelism plan does not
    /// factor the fleet (same contract as [`EngineConfig::device_mesh`]).
    pub fn verify_spmd(&self) -> Result<crate::verify::SpmdReport> {
        let mesh = self.config.device_mesh()?;
        let lowered = self.build_iteration_sim();
        Ok(crate::verify::spmd::certify(&lowered.comm_log, &mesh))
    }

    /// Lower this engine's schedule onto the simulated hardware.
    fn build_iteration_sim(&self) -> LoweredIteration {
        lower_schedule(&ScheduleLowering {
            model: &self.model,
            config: &self.config,
            schedule: &self.schedule,
            placement: self.placement,
            cache_plan: self.cache_plan,
            zero: &self.zero,
            layer_comm_bytes: &self.layer_comm_bytes,
        })
    }

    /// Execute one training iteration on the simulated hardware.
    pub fn train_iteration(&mut self) -> IterStats {
        let lowered = self.build_iteration_sim();
        self.run_lowered(lowered)
    }

    /// Execute one already-lowered iteration (possibly with injected
    /// [`FaultEvent`]s) and report its stats.
    fn run_lowered(&mut self, lowered: LoweredIteration) -> IterStats {
        let wall_start = self.recorder.now_ns();
        let report = lowered.sim.run();
        // Debug builds statically verify the lowered iteration: no
        // unordered conflicting accesses, well-formed object lifetimes, and
        // a provable peak-memory bound that the executed report respects.
        // The verifier's happens-before closure is O(V²·E/64), so large
        // lowerings are skipped past `debug_verify_task_limit` — see
        // `should_debug_verify` for the `ANGEL_DEBUG_VERIFY` override.
        // Fault-injected runs are exempt: killed/deferred tasks violate the
        // coverage bound by design.
        #[cfg(debug_assertions)]
        if lowered.sim.faults().is_empty()
            && should_debug_verify(lowered.sim.num_tasks(), self.config.debug_verify_task_limit)
        {
            let verdict = crate::verify::PlanGraph::from_sim(&lowered.sim).verify();
            verdict.assert_clean("engine iteration lowering");
            verdict.assert_covers(&report, "engine iteration lowering");
            // Cross-rank story: the same lowering, projected onto every
            // mesh rank, must certify deadlock-free with matched
            // collectives (symmetry-reduced, so this stays cheap even for
            // cluster-sized meshes).
            if let Ok(mesh) = self.config.device_mesh() {
                crate::verify::spmd::certify(&lowered.comm_log, &mesh)
                    .assert_certified("engine iteration lowering (spmd)");
            }
        }
        // The lowered graph covers one pipeline slot (one micro-batch through
        // this rank's stage). A 1F1B pipeline drains `micro_batches + pp − 1`
        // such slots per iteration; the degenerate plan (1 micro-batch, no
        // pipeline) keeps the slot makespan as the iteration time unchanged.
        let slots = self.config.micro_batches + self.config.parallelism.pp as u64 - 1;
        let iter = (report.makespan * slots).max(1);
        let update_cycle = self.update_cycle_ns();
        // Lock-free: GPU iterations proceed at pipeline speed; updates cycle
        // in the background. Staleness = update cycle ÷ iteration time.
        let staleness = if self.config.lock_free {
            update_cycle as f64 / iter as f64
        } else {
            0.0
        };

        let stats = IterStats {
            iter_time_ns: iter,
            samples_per_sec: self.config.global_batch() as f64 / (iter as f64 / 1e9),
            gpu_utilization: report.utilization(lowered.gpu),
            pcie_utilization: (report.utilization(lowered.h2d) + report.utilization(lowered.d2h))
                / 2.0,
            comm_utilization: report.utilization(lowered.comm),
            overlap_ratio: report.overlap_ratio(),
            peak_gpu_bytes: self.schedule.stats.peak_gpu_bytes,
            resident_fraction: self.schedule.stats.resident_fraction,
            update_cycle_ns: update_cycle,
            staleness_iters: staleness,
            tasks_failed: report.failed_tasks.len() as u64,
        };
        if self.recorder.is_enabled() {
            self.record_iteration(&lowered, &report, &stats, wall_start);
            // Allocator health per iteration: the CPU pool holds the bulk
            // of the model states, so its fragmentation is the one worth a
            // timeline track (and the compaction trigger, when armed).
            let frag_ppm = ppm_u64(self.allocator.stats(DeviceId::CPU).internal_frag());
            self.recorder
                .counter_sample(ObsThread::Allocator, "alloc.cpu_frag_ppm", frag_ppm);
        }
        self.allocator.maybe_compact(DeviceId::CPU);
        stats
    }

    /// Publish one iteration's metrics into the attached recorder.
    ///
    /// Every value here is derived from the *simulated* execution (or from
    /// the deterministic plan), never from the wall clock — so two identical
    /// engines produce byte-identical [`crate::MetricsSnapshot`]s. Wall-clock
    /// time appears only in the event ring (the `engine` timeline track).
    fn record_iteration(
        &self,
        lowered: &LoweredIteration,
        report: &angel_sim::ExecutionReport,
        stats: &IterStats,
        wall_start: u64,
    ) {
        let rec = &self.recorder;
        let ppm = ppm_u64;
        rec.counter("engine.iterations").inc();
        rec.histogram("engine.iter_time_ns", &ITER_TIME_BUCKETS_NS)
            .observe(stats.iter_time_ns);
        rec.gauge("engine.peak_gpu_bytes").set(stats.peak_gpu_bytes);
        rec.gauge("engine.update_cycle_ns")
            .set(stats.update_cycle_ns);
        rec.gauge("engine.gpu_utilization_ppm")
            .set(ppm(stats.gpu_utilization));
        rec.gauge("engine.overlap_ratio_ppm")
            .set(ppm(stats.overlap_ratio));
        rec.gauge("engine.staleness_ppm")
            .set(ppm(stats.staleness_iters));

        // Simulated-executor metrics: per-resource busy time and per-domain
        // memory peaks, exactly as the `ExecutionReport` accounts them.
        let executed = lowered.sim.num_tasks() - report.failed_tasks.len();
        rec.counter("sim.tasks_executed").add(executed as u64);
        rec.counter("sim.tasks_failed")
            .add(report.failed_tasks.len() as u64);
        rec.gauge("sim.makespan_ns").set(report.makespan);
        for (id, name) in lowered.sim.resources().iter() {
            rec.gauge(&format!("sim.busy_ns.{name}"))
                .set(report.busy[id.0]);
            // Per-group communicator channels additionally surface as
            // counter tracks in the merged timeline, so a mesh run shows
            // its dp/tp/pp traffic side by side.
            for group in [CommGroup::Dp, CommGroup::Tp, CommGroup::Pp] {
                if name == group.channel_name() {
                    rec.counter_sample(ObsThread::Engine, group.channel_name(), report.busy[id.0]);
                }
            }
        }
        for (dom, name) in lowered.sim.resources().mem_domains() {
            rec.gauge(&format!("sim.peak_bytes.{name}"))
                .set(report.peak_mem[dom.0]);
        }

        // Timeline: one span per iteration on the engine track (wall clock),
        // plus the simulated makespan as a counter sample.
        rec.span(ObsThread::Engine, "train_iteration", -1, wall_start);
        rec.counter_sample(ObsThread::Engine, "engine.sim_makespan_ns", report.makespan);
    }

    /// Export one iteration's timeline as Chrome trace-event JSON
    /// (`chrome://tracing` / Perfetto) — computes, movements, collectives
    /// and updates on their own tracks, making the overlap visible.
    pub fn export_chrome_trace(&self) -> String {
        let lowered = self.build_iteration_sim();
        let report = lowered.sim.run();
        angel_sim::chrome_trace(&lowered.sim, &report)
    }

    /// Export the *merged* Perfetto timeline: one process for the simulated
    /// hardware (per-resource task tracks + per-domain resident-bytes
    /// counters) and one for the runtime threads recorded in this engine's
    /// [`Recorder`] event ring — lock-free updater threads, allocator and
    /// engine spans — side by side in a single JSON.
    pub fn export_merged_trace(&self) -> String {
        let lowered = self.build_iteration_sim();
        let report = lowered.sim.run();
        crate::obs::merged_perfetto(&lowered.sim, &report, &self.recorder.events())
    }

    /// Run `iters` iterations (deterministic steady state).
    pub fn run(&mut self, iters: usize) -> RunReport {
        assert!(iters >= 1);
        let per_iter = self.train_iteration();
        RunReport {
            iters,
            total_time_ns: per_iter.iter_time_ns * iters as u64,
            samples_per_sec: per_iter.samples_per_sec,
            per_iter,
        }
    }

    /// Run `iters` iterations under a stream of [`ClusterEvent`]s — the
    /// online-replanning loop. Each event's faults are injected into the
    /// simulation of iteration `at_iter`; at the `at_iter → at_iter + 1`
    /// boundary the engine replans the remaining iterations against the
    /// changed topology through its persistent incremental [`Planner`] and
    /// splices the new lowered schedule in. The abandoned tail of the old
    /// plan never executes: every post-splice iteration lowers the new
    /// schedule, byte-identical to a fresh engine initialized at the new
    /// configuration. Debug builds re-verify each spliced lowering (plan
    /// graph + symmetry-reduced SPMD certification).
    ///
    /// Errors when a replan is infeasible (e.g. the surviving fleet cannot
    /// hold the model, or the model-parallel block does not divide it) —
    /// the engine is left on its last good plan.
    pub fn run_online(&mut self, iters: usize, events: &[ClusterEvent]) -> Result<OnlineReport> {
        assert!(iters >= 1);
        let mut per_iter = Vec::with_capacity(iters);
        let mut splices = Vec::new();
        let mut total_ns = 0u64;
        let mut samples = 0f64;
        for k in 0..iters {
            let mut lowered = self.build_iteration_sim();
            for ev in events.iter().filter(|e| e.at_iter() == k) {
                match *ev {
                    ClusterEvent::Outage {
                        target,
                        at_ns,
                        duration_ns,
                        ..
                    } => lowered.sim.inject_fault(FaultEvent {
                        resource: lowered.fault_resource(target),
                        at: at_ns,
                        kind: FaultKind::Outage {
                            duration: duration_ns,
                        },
                    }),
                    ClusterEvent::ServerLoss { at_ns, .. } => {
                        lowered.sim.inject_fault(FaultEvent {
                            resource: lowered.comm,
                            at: at_ns,
                            kind: FaultKind::Permanent,
                        })
                    }
                    ClusterEvent::Resize { .. } => {} // boundary-only
                }
            }
            let mut stats = self.run_lowered(lowered);
            total_ns += stats.iter_time_ns;
            if stats.tasks_failed == 0 {
                samples += self.config.global_batch() as f64;
            } else {
                // A permanent fault strands the iteration: whatever the sim
                // completed before dying produced no usable batch, so the
                // iteration contributes time but no samples.
                stats.samples_per_sec = 0.0;
            }
            per_iter.push(stats);

            // Splice at the boundary: replan against the new topology so
            // iterations k+1.. run the new schedule. Total fleet loss is
            // checked even after the final iteration — a dead cluster must
            // never be reported as a completed run.
            for ev in events.iter().filter(|e| e.at_iter() == k) {
                if let ClusterEvent::ServerLoss { servers, .. } = *ev {
                    let had = self.config.cluster.num_servers;
                    if servers >= had {
                        return Err(Error::ClusterExhausted {
                            had_servers: had,
                            lost_servers: servers,
                        });
                    }
                }
                if k + 1 >= iters {
                    continue; // no further iteration to replan for
                }
                let splice = match *ev {
                    // Degraded headroom: tighten the budget by 1/16 of
                    // the current GPU budget (accumulates across
                    // outages) — a pure capacity delta for the planner.
                    ClusterEvent::Outage { .. } => {
                        let tightened = self.config.gpu_reserved + self.config.gpu_budget() / 16;
                        self.resplice(k, self.config.cluster.num_servers, tightened)?
                    }
                    ClusterEvent::ServerLoss { servers, .. } => {
                        let survivors = self.config.cluster.num_servers - servers;
                        self.resplice(k, survivors, self.config.gpu_reserved)?
                    }
                    // An elastic resize is a *recovery*: the replacement
                    // fleet is healthy, so the outage-tightened reservation
                    // (if any) is restored to the initialization baseline
                    // rather than carried over forever.
                    ClusterEvent::Resize { servers, .. } => {
                        self.resplice(k, servers, self.baseline_gpu_reserved)?
                    }
                };
                splices.push(splice);
            }
        }
        Ok(OnlineReport {
            iters,
            per_iter,
            splices,
            total_time_ns: total_ns,
            samples_per_sec: samples / (total_ns.max(1) as f64 / 1e9),
        })
    }

    /// Elastically grow or shrink this engine onto `servers` servers at an
    /// iteration boundary — the resumable-session primitive the multi-job
    /// training service (`angel-service`) builds on. The engine *is* the
    /// session: a scheduler may park it (simply stop calling
    /// [`Engine::train_iteration`]), later resize it onto whatever slice of
    /// the cluster is free, and resume stepping — the persistent incremental
    /// planner makes the resize pay only for what changed, and the spliced
    /// plan is byte-identical to a fresh engine initialized at the new size.
    ///
    /// The resized fleet is healthy capacity, so any outage-tightened GPU
    /// reservation is restored to the initialization baseline (same recovery
    /// semantics as [`ClusterEvent::Resize`]). `at_iter` only labels the
    /// returned [`SpliceReport`] (the caller's iteration clock). On error
    /// (e.g. the model cannot fit the new slice, or the model-parallel
    /// block does not divide it) the engine keeps its current plan and
    /// remains runnable at its current size.
    pub fn splice_resize(&mut self, at_iter: usize, servers: usize) -> Result<SpliceReport> {
        self.resplice(at_iter, servers, self.baseline_gpu_reserved)
    }

    /// Replan the engine onto `servers` servers with `gpu_reserved` bytes
    /// held back, through the persistent incremental planner, and splice
    /// the new plan in. On error the engine keeps its previous plan.
    fn resplice(
        &mut self,
        at_iter: usize,
        servers: usize,
        gpu_reserved: u64,
    ) -> Result<SpliceReport> {
        if servers == 0 {
            return Err(Error::InvalidParallelism(
                "cannot replan onto 0 servers".to_string(),
            ));
        }
        let wall_start = self.recorder.now_ns();
        let t0 = std::time::Instant::now();
        let mut config = self.config.clone();
        config.cluster = config.cluster.resized(servers);
        config.gpu_reserved = gpu_reserved;
        config.parallelism = config.parallelism.refit(config.cluster.total_gpus())?;
        let traced = TracePlan::build(&self.model, &config)?;
        let shard = ShardPlan::build(&self.model, &config, &traced);
        let mem = MemoryPlan::build(&config, &shard)?;
        let planned = SchedulePlan::build_with_planner(
            &config,
            &shard,
            &mem,
            &traced.zero,
            &mut self.planner,
        )?;
        let placed = mem.place(&config, &shard, &planned)?;
        let allocator = mem.materialize(&config, self.model.layers, &placed)?;
        let replan_ns = saturating_ns(t0.elapsed().as_nanos()).max(1);

        // Commit the spliced plan.
        self.config = config;
        self.trace = traced.trace;
        self.schedule = planned.schedule;
        self.placement = placed.placement;
        self.cache_plan = planned.cache_plan;
        self.allocator = allocator;
        self.zero = traced.zero;
        self.layer_comm_bytes = shard.layer_comm_bytes;
        if self.recorder.is_enabled() {
            self.allocator.set_recorder(self.recorder.clone());
        }
        let outcome = self
            .planner
            .as_ref()
            .map(|p| p.last_outcome())
            .unwrap_or_default();
        let verified = self.debug_verify_splice();

        let rec = &self.recorder;
        rec.counter("plan.replans").inc();
        rec.counter("plan.replan_ns").add(replan_ns);
        rec.counter("plan.layers_reused")
            .add(outcome.layers_reused as u64);
        rec.span(ObsThread::Engine, "replan", -1, wall_start);
        rec.counter_sample(ObsThread::Engine, "plan.replan_ns", replan_ns);
        Ok(SpliceReport {
            at_iter,
            servers,
            replan_ns,
            outcome,
            verified,
        })
    }

    /// Debug-build verification of a freshly spliced plan: lower it and run
    /// the plan-graph verifier plus the symmetry-reduced SPMD certifier.
    /// Returns whether verification actually ran (false in release builds
    /// and past the task-count gate).
    fn debug_verify_splice(&self) -> bool {
        #[cfg(debug_assertions)]
        {
            let lowered = self.build_iteration_sim();
            if should_debug_verify(lowered.sim.num_tasks(), self.config.debug_verify_task_limit) {
                let verdict = crate::verify::PlanGraph::from_sim(&lowered.sim).verify();
                verdict.assert_clean("spliced iteration lowering");
                if let Ok(mesh) = self.config.device_mesh() {
                    crate::verify::spmd::certify(&lowered.comm_log, &mesh)
                        .assert_certified("spliced iteration lowering (spmd)");
                }
                return true;
            }
        }
        false
    }

    /// The largest layer count of `base` that [`Engine::initialize`] accepts
    /// under `config` — the Section 6.2 capacity experiment ("we increase
    /// the number of transformer blocks and fix other model settings").
    pub fn max_layers(base: &TransformerConfig, config: &EngineConfig) -> usize {
        let fits = |layers: usize| {
            layers >= 1 && Engine::initialize(&base.clone().with_layers(layers), config).is_ok()
        };
        if !fits(1) {
            return 0;
        }
        let mut lo = 1usize; // known good
        let mut hi = 2usize;
        while fits(hi) {
            lo = hi;
            hi *= 2;
            if hi > 4096 {
                return lo;
            }
        }
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if fits(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

/// Whether a debug build should self-verify an iteration of `num_tasks`
/// lowered tasks: unconditional below `limit`, skipped above it, with the
/// `ANGEL_DEBUG_VERIFY` environment variable forcing either way
/// (`always`/`1` = verify regardless of size, `off`/`0` = never).
pub fn should_debug_verify(num_tasks: usize, limit: usize) -> bool {
    match std::env::var("ANGEL_DEBUG_VERIFY").as_deref() {
        Ok("always") | Ok("1") => true,
        Ok("off") | Ok("0") => false,
        _ => num_tasks <= limit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;

    fn tiny_model() -> TransformerConfig {
        TransformerConfig::gpt3_1_7b()
            .with_layers(4)
            .with_seq_len(256)
    }

    #[test]
    fn initialize_small_model() {
        let e = Engine::initialize(&tiny_model(), &EngineConfig::single_server()).unwrap();
        assert!(e.schedule().stats.peak_gpu_bytes <= EngineConfig::single_server().gpu_budget());
        // Small model: everything resident, full cache.
        assert!((e.schedule().stats.resident_fraction - 1.0).abs() < 1e-9);
        assert!(e.cache_plan().cached_fraction > 0.99);
    }

    #[test]
    fn iteration_produces_sane_stats() {
        let mut e = Engine::initialize(
            &tiny_model(),
            &EngineConfig::single_server().with_batch_size(8),
        )
        .unwrap();
        let s = e.train_iteration();
        assert!(s.iter_time_ns > 0);
        assert!(s.samples_per_sec > 0.0);
        assert!(s.gpu_utilization > 0.0 && s.gpu_utilization <= 1.0);
        assert!(s.overlap_ratio >= s.gpu_utilization);
        assert_eq!(s.staleness_iters, 0.0);
    }

    #[test]
    fn larger_batch_raises_throughput() {
        let m = tiny_model();
        let s1 = Engine::initialize(&m, &EngineConfig::single_server().with_batch_size(1))
            .unwrap()
            .train_iteration();
        let s8 = Engine::initialize(&m, &EngineConfig::single_server().with_batch_size(8))
            .unwrap()
            .train_iteration();
        assert!(s8.samples_per_sec > s1.samples_per_sec);
    }

    #[test]
    fn oversized_model_rejected() {
        // ~3000 layers of GPT-28B geometry ≈ 2.4T params ≈ 39 TB of states:
        // too much for one server without SSD.
        let big = TransformerConfig::gpt3_28b().with_layers(3000);
        match Engine::initialize(&big, &EngineConfig::single_server()) {
            Err(Error::ModelTooLarge { .. }) | Err(Error::OutOfPages { .. }) => {}
            other => panic!("expected capacity failure, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn ssd_extends_capacity() {
        let base = TransformerConfig::gpt3_28b();
        let without = Engine::max_layers(&base, &EngineConfig::single_server());
        let with = Engine::max_layers(&base, &EngineConfig::single_server().with_ssd(true));
        assert!(
            with > without,
            "SSD must extend capacity: {with} vs {without}"
        );
    }

    #[test]
    fn lock_free_reports_staleness() {
        let mut e = Engine::initialize(
            &tiny_model(),
            &EngineConfig::single_server()
                .with_ssd(true)
                .with_lock_free(true),
        )
        .unwrap();
        let s = e.train_iteration();
        assert!(s.update_cycle_ns > 0);
        assert!(s.staleness_iters >= 0.0);
    }

    #[test]
    fn run_aggregates() {
        let mut e = Engine::initialize(&tiny_model(), &EngineConfig::single_server()).unwrap();
        let r = e.run(10);
        assert_eq!(r.iters, 10);
        assert_eq!(r.total_time_ns, r.per_iter.iter_time_ns * 10);
    }

    #[test]
    fn run_online_without_events_matches_run() {
        let mut e = Engine::initialize(&tiny_model(), &EngineConfig::single_server()).unwrap();
        let baseline = e.train_iteration();
        let r = e.run_online(3, &[]).unwrap();
        assert_eq!(r.iters, 3);
        assert!(r.splices.is_empty());
        for s in &r.per_iter {
            assert_eq!(*s, baseline);
        }
        assert_eq!(r.total_time_ns, baseline.iter_time_ns * 3);
    }

    #[test]
    fn outage_defers_tasks_and_splices_a_tighter_budget() {
        let mut e = Engine::initialize(&tiny_model(), &EngineConfig::single_server()).unwrap();
        let reserved_before = e.config().gpu_reserved;
        let r = e
            .run_online(
                2,
                &[ClusterEvent::Outage {
                    at_iter: 0,
                    target: FaultTarget::Comm,
                    at_ns: 0,
                    duration_ns: 2_000_000,
                }],
            )
            .unwrap();
        // An outage defers work rather than killing it: the degraded
        // iteration is slower but complete.
        assert_eq!(r.per_iter[0].tasks_failed, 0);
        assert!(r.per_iter[0].iter_time_ns > r.per_iter[1].iter_time_ns);
        // The splice replanned under a tightened budget.
        assert_eq!(r.splices.len(), 1);
        assert_eq!(r.splices[0].at_iter, 0);
        assert!(e.config().gpu_reserved > reserved_before);
        if cfg!(debug_assertions) {
            assert!(r.splices[0].verified);
        }
    }

    #[test]
    fn server_loss_fails_tasks_then_replans_onto_survivors() {
        let mut e = Engine::initialize(&tiny_model(), &EngineConfig::servers(2)).unwrap();
        let r = e
            .run_online(
                2,
                &[ClusterEvent::ServerLoss {
                    at_iter: 0,
                    servers: 1,
                    at_ns: 0,
                }],
            )
            .unwrap();
        // A permanent comm fault strands the collective chain.
        assert!(r.per_iter[0].tasks_failed > 0);
        // The splice reshaped the mesh onto the surviving server and the
        // next iteration runs clean.
        assert_eq!(e.config().cluster.num_servers, 1);
        assert_eq!(e.config().parallelism.dp, 8);
        assert_eq!(r.per_iter[1].tasks_failed, 0);
        assert_eq!(r.splices.len(), 1);
        assert_eq!(r.splices[0].servers, 1);
    }

    #[test]
    fn resize_recovery_restores_baseline_reservation() {
        // Regression: an outage used to *commit* the tightened budget into
        // `config.gpu_reserved`, so a subsequent Resize recovery re-read the
        // tightened value and the degradation became permanent. The
        // sequence outage → resize → outage must see the resize restore the
        // baseline, and goodput return to the pre-outage level.
        let mut e = Engine::initialize(&tiny_model(), &EngineConfig::single_server()).unwrap();
        let baseline = e.baseline_gpu_reserved();
        assert_eq!(e.config().gpu_reserved, baseline);
        let healthy = e.train_iteration();
        let outage = |at_iter| ClusterEvent::Outage {
            at_iter,
            target: FaultTarget::Comm,
            at_ns: 0,
            duration_ns: 2_000_000,
        };
        let r = e
            .run_online(
                6,
                &[
                    outage(0),
                    ClusterEvent::Resize {
                        at_iter: 2,
                        servers: 1,
                    },
                    outage(4),
                ],
            )
            .unwrap();
        assert_eq!(r.splices.len(), 3);
        assert_eq!(
            [
                r.splices[0].at_iter,
                r.splices[1].at_iter,
                r.splices[2].at_iter
            ],
            [0, 2, 4]
        );
        // Iteration 3 runs the plan spliced by the Resize recovery: the
        // reservation is back at the baseline and goodput returns exactly
        // to the pre-outage level.
        assert_eq!(
            r.per_iter[3], healthy,
            "post-recovery iteration must match the pre-outage engine"
        );
        // The second outage then tightens *from the baseline*, not from the
        // already-degraded value: after the full sequence the reservation
        // equals exactly one outage's worth of degradation.
        let budget_at_baseline = EngineConfig::single_server()
            .with_gpu_reserved(baseline)
            .gpu_budget();
        assert_eq!(
            e.config().gpu_reserved,
            baseline + budget_at_baseline / 16,
            "resize must restore the baseline before the next outage tightens"
        );
    }

    #[test]
    fn total_server_loss_is_a_typed_error() {
        // Regression: `saturating_sub(servers).max(1)` used to resplice a
        // fully-destroyed fleet onto 1 phantom server. Losing every server
        // must surface as ClusterExhausted, not a silent 1-server replan.
        let mut e = Engine::initialize(&tiny_model(), &EngineConfig::servers(2)).unwrap();
        let err = e
            .run_online(
                3,
                &[ClusterEvent::ServerLoss {
                    at_iter: 0,
                    servers: 2,
                    at_ns: 0,
                }],
            )
            .unwrap_err();
        assert_eq!(
            err,
            Error::ClusterExhausted {
                had_servers: 2,
                lost_servers: 2,
            }
        );
        // The engine keeps its last good plan (still 2 servers configured).
        assert_eq!(e.config().cluster.num_servers, 2);
        // Over-loss (more servers reported lost than exist) is exhaustion
        // too, and it is detected even on the final iteration, where no
        // replanning boundary follows.
        let mut e = Engine::initialize(&tiny_model(), &EngineConfig::servers(2)).unwrap();
        let err = e
            .run_online(
                1,
                &[ClusterEvent::ServerLoss {
                    at_iter: 0,
                    servers: 5,
                    at_ns: 0,
                }],
            )
            .unwrap_err();
        assert!(matches!(
            err,
            Error::ClusterExhausted {
                lost_servers: 5,
                ..
            }
        ));
    }

    #[test]
    fn splice_resize_grows_and_shrinks_a_session() {
        // The service's elasticity primitive: resize to a bigger slice,
        // then back; the spliced engine matches a fresh one at each size.
        let mut e = Engine::initialize(&tiny_model(), &EngineConfig::single_server()).unwrap();
        let s1 = e.train_iteration();
        let grown = e.splice_resize(0, 2).unwrap();
        assert_eq!(grown.servers, 2);
        let s2 = e.train_iteration();
        let fresh2 = Engine::initialize(&tiny_model(), &EngineConfig::servers(2))
            .unwrap()
            .train_iteration();
        assert_eq!(s2, fresh2, "spliced session must match a fresh engine");
        assert_eq!(e.config().global_batch(), 16); // dp refit onto 16 GPUs
        let shrunk = e.splice_resize(1, 1).unwrap();
        assert_eq!(shrunk.servers, 1);
        assert_eq!(e.train_iteration(), s1);
        // An infeasible resize leaves the session runnable at its size.
        assert!(e.splice_resize(2, 0).is_err());
        assert_eq!(e.config().cluster.num_servers, 1);
        assert_eq!(e.train_iteration(), s1);
    }

    #[test]
    fn ppm_conversion_is_checked() {
        assert_eq!(ppm_u64(0.5), 500_000);
        assert_eq!(ppm_u64(1.0), 1_000_000);
        assert_eq!(ppm_u64(0.0), 0);
        assert_eq!(ppm_u64(-3.0), 0);
        assert_eq!(ppm_u64(f64::NAN), 0);
        assert_eq!(ppm_u64(f64::INFINITY), u64::MAX);
        assert_eq!(ppm_u64(1e300), u64::MAX);
        assert_eq!(saturating_ns(42), 42);
        assert_eq!(saturating_ns(u128::MAX), u64::MAX);
        // Bucket edges are exact powers of ten in integer arithmetic.
        for w in ITER_TIME_BUCKETS_NS.windows(2) {
            assert_eq!(w[1], w[0] * 10);
        }
        assert_eq!(ITER_TIME_BUCKETS_NS[0], 1_000_000);
    }

    #[test]
    fn debug_verify_gates_on_task_count() {
        // With ANGEL_DEBUG_VERIFY unset (the test environment), the
        // decision is purely the threshold: unconditional below, off above.
        if std::env::var("ANGEL_DEBUG_VERIFY").is_ok() {
            return; // explicit override in the environment wins; skip
        }
        assert!(should_debug_verify(100, 100));
        assert!(should_debug_verify(0, 100));
        assert!(!should_debug_verify(101, 100));
        let cfg = EngineConfig::single_server().with_debug_verify_task_limit(7);
        assert_eq!(cfg.debug_verify_task_limit, 7);
    }

    #[test]
    fn max_layers_monotone_in_memory() {
        let base = TransformerConfig::gpt3_28b();
        let small_cfg = EngineConfig::single_server();
        let mut big_host = EngineConfig::single_server();
        big_host.host_policy.usable_fraction = 0.95;
        let a = Engine::max_layers(&base, &small_cfg);
        let b = Engine::max_layers(&base, &big_host);
        assert!(b >= a);
        assert!(a > 0);
    }
}
