//! The Engine — Angel-PTM's user-facing API (Figure 6 of the paper) wired to
//! the simulated A100 hardware.
//!
//! ```python
//! model = angelptm.initialize(model, optimizer, config)
//! for batch in batches:
//!     loss = model(batch); model.backward(loss); model.step()
//! ```
//!
//! [`Engine::initialize`] performs what the production system does at
//! `angelptm.initialize`:
//!
//! 1. run the [`crate::Tracer`] over one symbolic iteration;
//! 2. place model states across the hierarchical memory (GPU ← CPU ← SSD)
//!    under the Section 4.2 heuristic — forward/backward on GPU, optimizer
//!    updates on CPU, FP32 states spilling to SSD when enabled;
//! 3. run the Unified Scheduler (Algorithm 1) to plan page movements,
//!    all-gathers and computes;
//! 4. size the dynamic GPU cache from the schedule's lifetime-accurate peak;
//! 5. materialize the placement in a real [`crate::PageAllocator`] so every
//!    page-accounting invariant is enforced, not assumed.
//!
//! [`Engine::train_iteration`] lowers the schedule onto the `angel-sim`
//! discrete-event hardware and reports the quantities the paper's evaluation
//! tables measure: iteration time → samples/s, per-resource utilization,
//! peak GPU memory, residency, staleness under the lock-free mechanism.

use crate::allocator::PageAllocator;
use crate::cache::{plan_cache, CachePlan};
use crate::communicator::Communicator;
use crate::executor::{Executor, Stream};
use crate::config::EngineConfig;
use crate::error::{Error, Result};
use crate::scheduler::{
    input_from_trace, Schedule, StepKind, TaskOp, UnifiedScheduler,
};
use crate::tensor::DType;
use crate::tracer::{Trace, Tracer};
use crate::zero::ZeroPartition;
use angel_hw::DeviceId;
use angel_model::TransformerConfig;
use angel_sim::collectives::Collective;
use angel_sim::{MemEffect, Resources, SimTask, Simulation, Work};

/// Resource ids of one lowered iteration, for utilization reporting.
struct LoweredResources {
    gpu: angel_sim::ResourceId,
    h2d: angel_sim::ResourceId,
    d2h: angel_sim::ResourceId,
    comm: angel_sim::ResourceId,
}
use serde::{Deserialize, Serialize};

/// Where this rank's model-state bytes ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// FP16 param+grad bytes resident on this rank's GPU (scheduler+cache).
    pub gpu_bytes: u64,
    /// Bytes in the CPU page pool (this rank's share).
    pub cpu_bytes: u64,
    /// Bytes on SSD (this rank's share).
    pub ssd_bytes: u64,
    /// This rank's total share of model states.
    pub rank_state_bytes: u64,
}

/// Per-iteration statistics — the measurement vocabulary of Section 6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterStats {
    /// End-to-end iteration time.
    pub iter_time_ns: u64,
    /// Global throughput: global batch ÷ iteration time.
    pub samples_per_sec: f64,
    /// GPU compute-stream utilization (1 − the paper's idle fraction).
    pub gpu_utilization: f64,
    /// PCIe (H2D+D2H average) utilization.
    pub pcie_utilization: f64,
    /// Collective-communication channel utilization.
    pub comm_utilization: f64,
    /// Average number of busy resources (overlap quality).
    pub overlap_ratio: f64,
    /// Planned peak GPU bytes (scheduler, lifetime-accurate).
    pub peak_gpu_bytes: u64,
    /// Fraction of the parameter shard resident on GPU.
    pub resident_fraction: f64,
    /// Time of one full optimizer update cycle (CPU/SSD path).
    pub update_cycle_ns: u64,
    /// Update staleness in iterations (lock-free mode; 0.0 when synchronous).
    pub staleness_iters: f64,
}

/// Multi-iteration aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    pub iters: usize,
    pub total_time_ns: u64,
    pub samples_per_sec: f64,
    pub per_iter: IterStats,
}

/// The initialized training engine for one model on one cluster.
pub struct Engine {
    model: TransformerConfig,
    config: EngineConfig,
    trace: Trace,
    schedule: Schedule,
    placement: Placement,
    cache_plan: CachePlan,
    /// Real page-accounting of the representative rank's three tiers.
    allocator: PageAllocator,
    zero: ZeroPartition,
    /// Per-layer FP16 parameter bytes that cross the collective fabric
    /// (all layers for dense models; non-expert parameters only under
    /// expert parallelism — local experts never travel).
    layer_comm_bytes: Vec<u64>,
}

impl Engine {
    /// Initialize training: trace, place, schedule, cache, materialize.
    pub fn initialize(model: &TransformerConfig, config: &EngineConfig) -> Result<Self> {
        let n_gpus = config.num_gpus();
        let zero = ZeroPartition::new(n_gpus);
        let tracer = Tracer {
            gpu_model: config.gpu_compute,
            cpu_model: config.cpu_update,
        };
        let trace = tracer.trace(model, config.batch_size, config.recompute);

        // ---- Byte placement (per representative rank) -------------------
        let total_params = model.total_params();
        let state_bytes = model.model_state_bytes();
        let rank_params = total_params.div_ceil(n_gpus as u64);
        let rank_state_bytes = state_bytes.div_ceil(n_gpus as u64);
        let rank_optim = rank_params * 12;
        let rank_p16g16 = rank_params * 4;

        let gpus_per_server = config.cluster.server.num_gpus() as u64;
        // Lock-free mode pins the Algorithm 2 FP16 buffers (p'₁₆ + g'₁₆,
        // 4 bytes/param) as two flat host arrays outside the page pool; the
        // pool then manages the remaining host memory. The buffers may use
        // at most 60% of physical RAM (beyond that the host cannot also run
        // the dataloader and the pool).
        let host_physical = config.cluster.server.cpu.capacity;
        let buffers_per_server =
            if config.lock_free { rank_params * 4 * gpus_per_server } else { 0 };
        if buffers_per_server > (host_physical as f64 * 0.60) as u64 {
            return Err(Error::ModelTooLarge {
                state_bytes,
                usable_bytes: host_physical * config.cluster.num_servers as u64,
            });
        }
        let pool_per_server = ((host_physical - buffers_per_server) as f64
            * config.host_policy.usable_fraction) as u64;
        let rank_cpu_pool = pool_per_server / gpus_per_server;
        let rank_ssd_pool = config.usable_ssd_bytes() / gpus_per_server;
        let gpu_budget = config.gpu_budget();

        // ---- Schedule (Algorithm 1) --------------------------------------
        // Dense models: plain ZeRO sharding of every layer's parameters.
        // MoE models (Section 6.4): expert parameters are partitioned by
        // expert parallelism — each rank holds `experts/N` experts locally
        // and never gathers the rest; only the non-expert parameters are
        // ZeRO-sharded and gathered.
        let input = if model.is_moe() {
            let experts_per_rank = (model.experts as u64).div_ceil(n_gpus as u64);
            let layers = (0..trace.layers)
                .map(|l| {
                    let (dense, expert_total) = trace.layer_param16_split(l);
                    let local_experts = if model.experts > 0 {
                        expert_total / model.experts as u64 * experts_per_rank
                    } else {
                        0
                    };
                    let shard = dense.div_ceil(n_gpus as u64) + local_experts;
                    let mut pages = Vec::new();
                    let mut rest = shard;
                    while rest > 0 {
                        let take = rest.min(config.page_size);
                        pages.push(take);
                        rest -= take;
                    }
                    // Gradients: a rank only materializes its local experts'
                    // gradients (tokens routed elsewhere never come back).
                    let (dense_g, expert_g) = trace.layer_grad16_split(l);
                    let local_expert_g = if model.experts > 0 {
                        expert_g / model.experts as u64 * experts_per_rank
                    } else {
                        0
                    };
                    crate::scheduler::LayerPlan {
                        layer: l,
                        shard_pages: pages,
                        full_param_bytes: dense + local_experts,
                        working_set: trace.layer_activation_bytes(l) + dense_g + local_expert_g,
                    }
                })
                .collect();
            let steps = crate::scheduler::SchedulerInput::default_steps(trace.layers);
            let step_base_load = if config.recompute {
                Vec::new()
            } else {
                steps
                    .iter()
                    .enumerate()
                    .map(|(j, s)| {
                        (0..trace.layers)
                            .filter(|&l| {
                                l != s.layer()
                                    && trace.forward_id(l) <= j
                                    && j <= trace.backward_id(l)
                            })
                            .map(|l| trace.layer_activation_bytes(l))
                            .sum()
                    })
                    .collect()
            };
            crate::scheduler::SchedulerInput {
                layers,
                steps,
                gpu_budget,
                page_size: config.page_size,
                step_base_load,
            }
        } else {
            input_from_trace(&trace, config.page_size, n_gpus, gpu_budget)
        };
        let schedule = UnifiedScheduler { phase2: config.phase2_advance, ..Default::default() }
            .schedule(&input)?;

        // GPU residency decided by the scheduler (param shard pages) plus
        // whatever optimizer cache fits afterwards.
        let resident_param_bytes =
            (schedule.stats.resident_fraction * zero.shard_bytes(total_params * 4) as f64) as u64;
        let cache_plan = if config.gpu_cache {
            plan_cache(
                gpu_budget,
                schedule.stats.peak_gpu_bytes,
                rank_optim,
                config.page_size,
                config.page_size * 16, // safety margin: 16 pages
            )
        } else {
            plan_cache(gpu_budget, gpu_budget, rank_optim, config.page_size, 0)
        };

        // Optimizer states: GPU cache first, then SSD (when enabled) else
        // CPU; FP16 states: GPU-resident fraction, remainder CPU.
        let optim_on_gpu = cache_plan.cache_bytes;
        let optim_rest = rank_optim - optim_on_gpu;
        let (optim_ssd, optim_cpu) = if config.use_ssd {
            (optim_rest.min(rank_ssd_pool), optim_rest.saturating_sub(rank_ssd_pool))
        } else {
            (0, optim_rest)
        };
        // FP16 parameters/gradients on the CPU: in lock-free mode they live
        // entirely in the pinned Algorithm 2 buffers (already accounted
        // above), so the page pool carries none of them; synchronous mode
        // spills whatever the GPU cannot keep resident.
        let p16_cpu = if config.lock_free {
            0
        } else {
            rank_p16g16.saturating_sub(resident_param_bytes)
        };
        let cpu_needed = optim_cpu + p16_cpu;
        if cpu_needed > rank_cpu_pool {
            let usable = gpu_budget * n_gpus as u64
                + rank_cpu_pool * n_gpus as u64
                + rank_ssd_pool * n_gpus as u64;
            return Err(Error::ModelTooLarge { state_bytes, usable_bytes: usable });
        }

        let placement = Placement {
            gpu_bytes: resident_param_bytes + optim_on_gpu,
            cpu_bytes: cpu_needed,
            ssd_bytes: optim_ssd,
            rank_state_bytes,
        };

        // ---- Materialize in the real allocator ---------------------------
        // Virtual pages: bookkeeping only, so even terabyte placements are
        // cheap, but every pool-capacity and two-tenant invariant is
        // enforced for real.
        let mut allocator = PageAllocator::with_page_size(config.page_size, false);
        allocator.add_pool(DeviceId::gpu(0), gpu_budget);
        allocator.add_pool(DeviceId::CPU, rank_cpu_pool);
        if config.use_ssd {
            allocator.add_pool(DeviceId::SSD, rank_ssd_pool);
        }
        // One tensor per layer per state class, on its planned tier. We
        // allocate the CPU/SSD-resident structures; GPU residency changes
        // dynamically per the schedule.
        let n_layers = model.layers as u64;
        let per_layer_p16 = (p16_cpu / n_layers).max(1);
        let per_layer_optim_cpu = optim_cpu / n_layers;
        let per_layer_optim_ssd = optim_ssd / n_layers;
        for _layer in 0..model.layers {
            allocator.alloc_tensor(vec![per_layer_p16 as usize], DType::Byte, DeviceId::CPU)?;
            if per_layer_optim_cpu > 0 {
                allocator.alloc_tensor(
                    vec![per_layer_optim_cpu as usize],
                    DType::Byte,
                    DeviceId::CPU,
                )?;
            }
            if per_layer_optim_ssd > 0 {
                allocator.alloc_tensor(
                    vec![per_layer_optim_ssd as usize],
                    DType::Byte,
                    DeviceId::SSD,
                )?;
            }
        }

        let layer_comm_bytes = (0..model.layers)
            .map(|l| {
                if model.is_moe() {
                    trace.layer_param16_split(l).0
                } else {
                    trace.layer_param16_bytes(l)
                }
            })
            .collect();

        Ok(Self {
            model: model.clone(),
            config: config.clone(),
            trace,
            schedule,
            placement,
            cache_plan,
            allocator,
            zero,
            layer_comm_bytes,
        })
    }

    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    pub fn placement(&self) -> Placement {
        self.placement
    }

    pub fn cache_plan(&self) -> CachePlan {
        self.cache_plan
    }

    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    pub fn allocator(&self) -> &PageAllocator {
        &self.allocator
    }

    /// One optimizer update cycle over this rank's CPU/SSD states: SSD read
    /// + CPU update + SSD write, with the CPU/SSD bandwidth shared by the
    /// server's ranks.
    pub fn update_cycle_ns(&self) -> u64 {
        let gpus_per_server = self.config.cluster.server.num_gpus();
        // Traffic = 28 bytes/param over the non-GPU-cached parameters.
        let cpu_params = self.cache_plan.cpu_update_bytes / 12;
        let cpu_traffic = cpu_params * 28;
        let cpu_time =
            self.config.cpu_update.time_ns_sharded(cpu_traffic, gpus_per_server);
        let ssd_time = if self.config.use_ssd {
            let link = &self.config.cluster.server.ssd_link;
            // Read + write the SSD-resident FP32 states, bandwidth shared
            // across the server's ranks.
            let bytes = 2 * self.placement.ssd_bytes;
            link.latency_ns
                + angel_hw::link::bytes_over_bandwidth_ns(
                    bytes * gpus_per_server as u64,
                    link.bandwidth,
                )
        } else {
            0
        };
        cpu_time + ssd_time
    }

    /// Execute one training iteration on the simulated hardware.
    /// Lower the schedule onto the simulated hardware: streams via the
    /// [`Executor`], collectives via the [`Communicator`], transfers on the
    /// PCIe/SSD links. Returns the ready-to-run simulation plus the ids of
    /// the resources whose utilization the stats report.
    fn build_iteration_sim(&self) -> (Simulation, LoweredResources) {
        let mut resources = Resources::new();
        let executor = Executor::new(&mut resources);
        let gpu_mem = resources.add_mem_domain("gpu-mem", self.config.gpu_budget());
        let pcie = &self.config.cluster.server.pcie;
        let h2d = resources.add_link("pcie-h2d", pcie.bandwidth, pcie.latency_ns);
        let d2h = resources.add_link("pcie-d2h", pcie.bandwidth, pcie.latency_ns);
        let n_gpus = self.config.num_gpus() as u64;
        let communicator = Communicator::new(&mut resources, self.config.cluster.clone(), n_gpus);
        let ssd_bw = self.config.cluster.server.ssd_link.bandwidth;
        let gpus_per_server = self.config.cluster.server.num_gpus();
        // SSD bandwidth is shared by the server's ranks.
        let ssd_ch = resources.add_link(
            "ssd-channel",
            (ssd_bw / gpus_per_server as u64).max(1),
            self.config.cluster.server.ssd_link.latency_ns,
        );

        let mut sim = Simulation::new(resources);
        let n_steps = self.schedule.num_steps;
        let flops = angel_model::flops::layer_flops(&self.model, self.config.batch_size);

        // Per-step bookkeeping while lowering.
        let mut compute_task: Vec<Option<usize>> = vec![None; n_steps];
        let mut gather_trigger: Vec<usize> = (0..n_steps).collect();
        for t in &self.schedule.tasks {
            if let TaskOp::AllGather { step, .. } = t.op {
                gather_trigger[step] = t.trigger_id;
            }
        }

        // 1. Initial page movements (trigger 0) on the H2D channel.
        for t in &self.schedule.tasks {
            if let TaskOp::MoveToGpu(page) = t.op {
                if t.trigger_id == 0 {
                    sim.submit(
                        SimTask::new(h2d, Work::Bytes(page.bytes))
                            .with_label(format!("move l{}p{}", page.layer, page.index))
                            .with_mem(MemEffect {
                                domain: gpu_mem,
                                acquire: page.bytes,
                                release: 0,
                            }),
                    );
                }
            }
        }

        // 2. Per-step gathers and computes in trigger order.
        for i in 0..n_steps {
            let step = step_of(&self.schedule, i);
            let layer = step.layer();
            // All-gather of the full layer parameters across ranks, launched
            // at its (phase-2 advanced) trigger: dependency on the compute
            // task of step `trigger − 1`.
            let trig = gather_trigger[i];
            let gdeps: Vec<usize> = if trig > 0 {
                compute_task[trig - 1].into_iter().collect()
            } else {
                Vec::new()
            };
            let gid = communicator.submit_now(
                &mut sim,
                Collective::AllGather,
                self.layer_comm_bytes[layer],
                gdeps,
                format!("all_gather s{i}"),
            );

            // Compute: forward or backward (+ recompute).
            let width = self.model.d_model as f64;
            let dur = match step {
                StepKind::Forward(_) => self.config.gpu_compute.time_ns_sized(
                    flops.forward,
                    self.config.batch_size as f64,
                    width,
                ),
                StepKind::Backward(_) => self.config.gpu_compute.time_ns_sized(
                    flops.backward
                        + if self.config.recompute { flops.recompute } else { 0 },
                    self.config.batch_size as f64,
                    width,
                ),
            };
            // Page bookkeeping / event dispatch overhead rides the GPU
            // stream (the paper's measured ~2.4% management cost).
            let dur = dur + (dur as f64 * self.config.mm_overhead) as u64;
            let cid =
                executor.submit(&mut sim, Stream::Gpu, dur, [gid], format!("compute s{i}"));
            compute_task[i] = Some(cid);

            // Backward extras: reduce-scatter gradients + offload the shard.
            if let StepKind::Backward(l) = step {
                let rs = communicator.submit_now(
                    &mut sim,
                    Collective::ReduceScatter,
                    self.layer_comm_bytes[l],
                    [cid],
                    format!("reduce_scatter l{l}"),
                );
                let shard = self.zero.shard_bytes(self.layer_comm_bytes[l]);
                let off = sim.submit(
                    SimTask::new(d2h, Work::Bytes(shard))
                        .with_label(format!("grad_offload l{l}"))
                        .with_deps([rs]),
                );

                // Synchronous optimizer updates join the iteration's
                // critical path; the lock-free mechanism decouples them
                // (accounted analytically by train_iteration).
                if !self.config.lock_free {
                    let n_layers = self.model.layers as u64;
                    let cpu_params = self.cache_plan.cpu_update_bytes / 12 / n_layers;
                    let upd_dur = self
                        .config
                        .cpu_update
                        .time_ns_sharded(cpu_params * 28, gpus_per_server);
                    if self.config.use_ssd && self.placement.ssd_bytes > 0 {
                        let layer_ssd = self.placement.ssd_bytes / n_layers;
                        let rd = sim.submit(
                            SimTask::new(ssd_ch, Work::Bytes(layer_ssd))
                                .with_label(format!("ssd_read l{l}"))
                                .with_deps([off]),
                        );
                        let upd = executor.submit(
                            &mut sim,
                            Stream::Cpu,
                            upd_dur,
                            [rd],
                            format!("cpu_update l{l}"),
                        );
                        sim.submit(
                            SimTask::new(ssd_ch, Work::Bytes(layer_ssd))
                                .with_label(format!("ssd_write l{l}"))
                                .with_deps([upd]),
                        );
                        // Updated FP16 parameters return to the GPU pages.
                        sim.submit(
                            SimTask::new(h2d, Work::Bytes(cpu_params * 2))
                                .with_label(format!("param_up l{l}"))
                                .with_deps([upd]),
                        );
                    } else if cpu_params > 0 {
                        let upd = executor.submit(
                            &mut sim,
                            Stream::Cpu,
                            upd_dur,
                            [off],
                            format!("cpu_update l{l}"),
                        );
                        // Updated FP16 parameters return to the GPU pages;
                        // GPU-cached layers skip this PCIe round trip — the
                        // Section 4.2 cache's second saving.
                        sim.submit(
                            SimTask::new(h2d, Work::Bytes(cpu_params * 2))
                                .with_label(format!("param_up l{l}"))
                                .with_deps([upd]),
                        );
                    }
                }
            }
        }

        // GPU-cached optimizer updates run on the GPU stream after backward.
        if self.cache_plan.gpu_update_bytes > 0 && !self.config.lock_free {
            let traffic = self.cache_plan.gpu_update_bytes / 12 * 28;
            executor.submit(
                &mut sim,
                Stream::Gpu,
                self.config.gpu_update.time_ns(traffic),
                [],
                "gpu_cached_update",
            );
        }

        let lowered = LoweredResources {
            gpu: executor.stream_id(Stream::Gpu),
            h2d,
            d2h,
            comm: communicator.channel_id(),
        };
        (sim, lowered)
    }

    /// Execute one training iteration on the simulated hardware.
    pub fn train_iteration(&mut self) -> IterStats {
        let (sim, lowered) = self.build_iteration_sim();
        let report = sim.run();
        let iter = report.makespan.max(1);
        let update_cycle = self.update_cycle_ns();
        // Lock-free: GPU iterations proceed at pipeline speed; updates cycle
        // in the background. Staleness = update cycle ÷ iteration time.
        let staleness = if self.config.lock_free {
            update_cycle as f64 / iter as f64
        } else {
            0.0
        };

        IterStats {
            iter_time_ns: iter,
            samples_per_sec: self.config.global_batch() as f64 / (iter as f64 / 1e9),
            gpu_utilization: report.utilization(lowered.gpu),
            pcie_utilization: (report.utilization(lowered.h2d) + report.utilization(lowered.d2h))
                / 2.0,
            comm_utilization: report.utilization(lowered.comm),
            overlap_ratio: report.overlap_ratio(),
            peak_gpu_bytes: self.schedule.stats.peak_gpu_bytes,
            resident_fraction: self.schedule.stats.resident_fraction,
            update_cycle_ns: update_cycle,
            staleness_iters: staleness,
        }
    }

    /// Export one iteration's timeline as Chrome trace-event JSON
    /// (`chrome://tracing` / Perfetto) — computes, movements, collectives
    /// and updates on their own tracks, making the overlap visible.
    pub fn export_chrome_trace(&self) -> String {
        let (sim, _) = self.build_iteration_sim();
        let report = sim.run();
        angel_sim::chrome_trace(&sim, &report)
    }

    /// Run `iters` iterations (deterministic steady state).
    pub fn run(&mut self, iters: usize) -> RunReport {
        assert!(iters >= 1);
        let per_iter = self.train_iteration();
        RunReport {
            iters,
            total_time_ns: per_iter.iter_time_ns * iters as u64,
            samples_per_sec: per_iter.samples_per_sec,
            per_iter,
        }
    }

    /// The largest layer count of `base` that [`Engine::initialize`] accepts
    /// under `config` — the Section 6.2 capacity experiment ("we increase
    /// the number of transformer blocks and fix other model settings").
    pub fn max_layers(base: &TransformerConfig, config: &EngineConfig) -> usize {
        let fits = |layers: usize| {
            layers >= 1 && Engine::initialize(&base.clone().with_layers(layers), config).is_ok()
        };
        if !fits(1) {
            return 0;
        }
        let mut lo = 1usize; // known good
        let mut hi = 2usize;
        while fits(hi) {
            lo = hi;
            hi *= 2;
            if hi > 4096 {
                return lo;
            }
        }
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if fits(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

fn step_of(schedule: &Schedule, i: usize) -> StepKind {
    schedule
        .tasks
        .iter()
        .find_map(|t| match t.op {
            TaskOp::Compute(k) if t.trigger_id == i => Some(k),
            _ => None,
        })
        .expect("every step has a compute task")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> TransformerConfig {
        TransformerConfig::gpt3_1_7b().with_layers(4).with_seq_len(256)
    }

    #[test]
    fn initialize_small_model() {
        let e = Engine::initialize(&tiny_model(), &EngineConfig::single_server()).unwrap();
        assert!(e.schedule().stats.peak_gpu_bytes <= EngineConfig::single_server().gpu_budget());
        // Small model: everything resident, full cache.
        assert!((e.schedule().stats.resident_fraction - 1.0).abs() < 1e-9);
        assert!(e.cache_plan().cached_fraction > 0.99);
    }

    #[test]
    fn iteration_produces_sane_stats() {
        let mut e =
            Engine::initialize(&tiny_model(), &EngineConfig::single_server().with_batch_size(8))
                .unwrap();
        let s = e.train_iteration();
        assert!(s.iter_time_ns > 0);
        assert!(s.samples_per_sec > 0.0);
        assert!(s.gpu_utilization > 0.0 && s.gpu_utilization <= 1.0);
        assert!(s.overlap_ratio >= s.gpu_utilization);
        assert_eq!(s.staleness_iters, 0.0);
    }

    #[test]
    fn larger_batch_raises_throughput() {
        let m = tiny_model();
        let s1 = Engine::initialize(&m, &EngineConfig::single_server().with_batch_size(1))
            .unwrap()
            .train_iteration();
        let s8 = Engine::initialize(&m, &EngineConfig::single_server().with_batch_size(8))
            .unwrap()
            .train_iteration();
        assert!(s8.samples_per_sec > s1.samples_per_sec);
    }

    #[test]
    fn oversized_model_rejected() {
        // ~3000 layers of GPT-28B geometry ≈ 2.4T params ≈ 39 TB of states:
        // too much for one server without SSD.
        let big = TransformerConfig::gpt3_28b().with_layers(3000);
        match Engine::initialize(&big, &EngineConfig::single_server()) {
            Err(Error::ModelTooLarge { .. }) | Err(Error::OutOfPages { .. }) => {}
            other => panic!("expected capacity failure, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn ssd_extends_capacity() {
        let base = TransformerConfig::gpt3_28b();
        let without = Engine::max_layers(&base, &EngineConfig::single_server());
        let with =
            Engine::max_layers(&base, &EngineConfig::single_server().with_ssd(true));
        assert!(with > without, "SSD must extend capacity: {with} vs {without}");
    }

    #[test]
    fn lock_free_reports_staleness() {
        let mut e = Engine::initialize(
            &tiny_model(),
            &EngineConfig::single_server().with_ssd(true).with_lock_free(true),
        )
        .unwrap();
        let s = e.train_iteration();
        assert!(s.update_cycle_ns > 0);
        assert!(s.staleness_iters >= 0.0);
    }

    #[test]
    fn run_aggregates() {
        let mut e = Engine::initialize(&tiny_model(), &EngineConfig::single_server()).unwrap();
        let r = e.run(10);
        assert_eq!(r.iters, 10);
        assert_eq!(r.total_time_ns, r.per_iter.iter_time_ns * 10);
    }

    #[test]
    fn max_layers_monotone_in_memory() {
        let base = TransformerConfig::gpt3_28b();
        let small_cfg = EngineConfig::single_server();
        let mut big_host = EngineConfig::single_server();
        big_host.host_policy.usable_fraction = 0.95;
        let a = Engine::max_layers(&base, &small_cfg);
        let b = Engine::max_layers(&base, &big_host);
        assert!(b >= a);
        assert!(a > 0);
    }
}
