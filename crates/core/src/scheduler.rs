//! The Unified Scheduler — Section 4.2 and Algorithm 1 of the paper.
//!
//! "The Unified Scheduler takes these statistics [tensor access patterns and
//! life-times] as input and schedules each operation at the right time during
//! training ... including calling the Allocator to move tensors, calling the
//! Executor to perform GPU computations, and calling the Communicator for
//! inter-GPU communication."
//!
//! The algorithm is reproduced with both phases:
//!
//! * **Phase 1** seeds the schedule with `move_to_gpu` tasks for every page
//!   of every layer's parameter shard ("based on our prior knowledge that
//!   the speed of CPU-GPU data transfer (32GB/s) is slower than that of
//!   GPU-GPU communication (200GB/s)"), then walks the compute steps in
//!   order, popping the most recent movement tasks onto a *wait stack*
//!   whenever the layer at hand would not fit (lines 7–9), emitting
//!   `all_gather` + `compute` tasks on demand (lines 10–12), and backfilling
//!   waiting movements as memory frees up (lines 13–15).
//! * **Phase 2** advances each `all_gather` to the earliest trigger id whose
//!   resulting peak memory stays within the GPU budget, maximizing the
//!   overlap between communication and earlier computation (lines 18–21).
//!
//! We extend the paper's single pass over layers to the full iteration's
//! compute-step list (forward 0..n, backward n-1..0), with the trace ids of
//! [`crate::tracer::Trace`] as trigger ids, so parameter residency is
//! planned across both passes.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};

/// A planned parameter page: `pages[index]` of `layer`'s local shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PlannedPage {
    pub layer: usize,
    pub index: usize,
    pub bytes: u64,
}

/// One compute step of the iteration (trigger-id domain of the schedule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StepKind {
    Forward(usize),
    Backward(usize),
}

impl StepKind {
    pub fn layer(self) -> usize {
        match self {
            StepKind::Forward(l) | StepKind::Backward(l) => l,
        }
    }
}

/// Task operations emitted by Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskOp {
    /// Move one parameter-shard page from CPU to GPU over PCIe.
    MoveToGpu(PlannedPage),
    /// All-gather the remote shards of one page across the data-parallel
    /// ranks (plus a CPU fetch when the local shard was never moved in).
    /// `step` is the compute step this gather feeds.
    AllGather { page: PlannedPage, step: usize },
    /// Run a compute step on the GPU.
    Compute(StepKind),
}

/// A scheduled task: `{operation, page, trigger_id}` in the paper's wording.
/// `trigger_id` is the compute-step id at (or after) which the task launches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleTask {
    pub op: TaskOp,
    pub trigger_id: usize,
}

/// Per-layer scheduling input distilled from the Tracer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerPlan {
    pub layer: usize,
    /// Byte sizes of the pages of this rank's parameter shard (FP16 params
    /// only — optimizer states stay on CPU/SSD per the Section 4.2 placement
    /// heuristic unless cached separately).
    pub shard_pages: Vec<u64>,
    /// Bytes of the layer's *full* FP16 parameters once gathered.
    pub full_param_bytes: u64,
    /// Peak transient bytes of the layer's compute step (activations +
    /// gradient buffers).
    pub working_set: u64,
}

impl LayerPlan {
    pub fn shard_bytes(&self) -> u64 {
        self.shard_pages.iter().sum()
    }
}

/// Scheduler input: the model plan, the compute-step list, the GPU byte
/// budget available to model states, and the page size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchedulerInput {
    pub layers: Vec<LayerPlan>,
    pub steps: Vec<StepKind>,
    pub gpu_budget: u64,
    pub page_size: u64,
    /// Extra GPU bytes pinned at each step independent of this schedule's
    /// decisions — e.g. accumulated activations of *other* layers when
    /// recomputation is off. Empty = zero everywhere.
    pub step_base_load: Vec<u64>,
}

impl SchedulerInput {
    /// Compute steps for `n` layers: forward 0..n then backward n-1..0.
    pub fn default_steps(n: usize) -> Vec<StepKind> {
        (0..n)
            .map(StepKind::Forward)
            .chain((0..n).rev().map(StepKind::Backward))
            .collect()
    }
}

/// Aggregate statistics of a schedule, used by reports and the capacity
/// search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleStats {
    /// Pages whose `move_to_gpu` survived phase 1 (GPU-resident shard).
    pub pages_resident: usize,
    /// Pages evicted through the wait stack and never re-scheduled.
    pub pages_cpu_bound: usize,
    /// Peak planned GPU bytes over all steps.
    pub peak_gpu_bytes: u64,
    /// Fraction of shard bytes resident on GPU.
    pub resident_fraction: f64,
    /// Number of all-gathers whose trigger was advanced in phase 2.
    pub gathers_advanced: usize,
}

/// The schedule: ordered tasks plus stats.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Schedule {
    pub tasks: Vec<ScheduleTask>,
    pub stats: ScheduleStats,
    pub num_steps: usize,
}

impl Schedule {
    /// All tasks with the given trigger id, in emission order.
    pub fn at_trigger(&self, id: usize) -> impl Iterator<Item = &ScheduleTask> {
        self.tasks.iter().filter(move |t| t.trigger_id == id)
    }
}

/// The Unified Scheduler component. `phase2` enables the all-gather
/// advancement pass (on in production; the scheduler ablation turns it off).
/// `prefetch_horizon` caps how many steps before its compute a gather may
/// launch: advancing further buys no extra overlap once the transfer hides
/// behind one or two intervening computes, and the memory it would pin is
/// better spent on the optimizer-state cache (Section 4.2's "dynamically
/// make cache size decisions ... based on tensor lifetime information").
#[derive(Debug, Clone)]
pub struct UnifiedScheduler {
    pub phase2: bool,
    pub prefetch_horizon: usize,
}

impl Default for UnifiedScheduler {
    fn default() -> Self {
        Self {
            phase2: true,
            prefetch_horizon: 4,
        }
    }
}

/// Incremental residency timeline: planned GPU bytes per compute step,
/// maintained under range updates so scheduling stays near-linear in
/// (pages + steps) even for hundred-layer models with 10⁵ shard pages.
///
/// `mem[j]` = resident shard bytes live at step `j` + gathered-buffer extras
/// whose span covers `j` + step `j`'s working set.
struct Timeline<'a> {
    input: &'a SchedulerInput,
    mem: Vec<u64>,
    /// Bytes of layer `l`'s shard moved at trigger 0 and still scheduled.
    resident0: Vec<u64>,
    /// Re-scheduled pages per layer: `(trigger, bytes)`.
    rescheduled: Vec<Vec<(usize, u64)>>,
    /// Current all-gather trigger per step (starts just-in-time at `i`).
    gather_trigger: Vec<usize>,
    /// Last compute step touching each layer.
    last_use: Vec<usize>,
    /// The compute steps of each layer (forward and backward ids).
    steps_of_layer: Vec<Vec<usize>>,
}

impl<'a> Timeline<'a> {
    fn new(input: &'a SchedulerInput) -> Self {
        let n_steps = input.steps.len();
        let n_layers = input.layers.len();
        let mut steps_of_layer = vec![Vec::new(); n_layers];
        for (j, s) in input.steps.iter().enumerate() {
            steps_of_layer[s.layer()].push(j);
        }
        let last_use: Vec<usize> = steps_of_layer
            .iter()
            .map(|v| *v.last().expect("layer unused"))
            .collect();
        let resident0: Vec<u64> = input.layers.iter().map(|l| l.shard_bytes()).collect();
        let mut mem = vec![0u64; n_steps];
        // Resident shards: every page starts at trigger 0, live until the
        // layer's last use.
        for (l, &bytes) in resident0.iter().enumerate() {
            for m in mem.iter_mut().take(last_use[l] + 1) {
                *m += bytes;
            }
        }
        // Per-step working set + just-in-time gather extra (full − resident)
        // + external base load.
        for (j, s) in input.steps.iter().enumerate() {
            let l = s.layer();
            mem[j] += input.layers[l].working_set;
            mem[j] += input.layers[l]
                .full_param_bytes
                .saturating_sub(resident0[l]);
            if let Some(&base) = input.step_base_load.get(j) {
                mem[j] += base;
            }
        }
        Self {
            input,
            mem,
            resident0,
            rescheduled: vec![Vec::new(); n_layers],
            gather_trigger: (0..n_steps).collect(),
            last_use,
            steps_of_layer,
        }
    }

    /// Shard bytes of layer `l` resident at step `j`.
    fn resident(&self, l: usize, j: usize) -> u64 {
        if j > self.last_use[l] {
            return 0;
        }
        self.resident0[l]
            + self.rescheduled[l]
                .iter()
                .filter(|(t, _)| *t <= j)
                .map(|(_, b)| b)
                .sum::<u64>()
    }

    /// Evict a trigger-0 page of layer `l` (phase 1, lines 7–9): the shard
    /// bytes leave every step, but the layer's own compute steps must now
    /// gather those bytes remotely, so their totals are unchanged.
    fn evict(&mut self, l: usize, bytes: u64) {
        self.resident0[l] -= bytes;
        for j in 0..=self.last_use[l] {
            self.mem[j] -= bytes;
        }
        for &i in &self.steps_of_layer[l] {
            self.mem[i] += bytes; // gather extra grows by the same amount
        }
    }

    /// Whether re-adding a page of layer `l` at trigger `t` keeps every step
    /// within budget. Affected steps are `[t, last_use(l)]`, excluding the
    /// layer's own compute steps at or after `t` (net-zero there).
    fn readd_fits(&self, l: usize, bytes: u64, t: usize) -> bool {
        if t > self.last_use[l] {
            return false; // page would arrive after its layer's last use
        }
        let own: &[usize] = &self.steps_of_layer[l];
        (t..=self.last_use[l]).all(|j| {
            if own.contains(&j) && j >= t {
                true
            } else {
                self.mem[j] + bytes <= self.input.gpu_budget
            }
        })
    }

    /// Commit a re-add (phase 1, lines 13–15).
    fn readd(&mut self, l: usize, bytes: u64, t: usize) {
        debug_assert!(self.readd_fits(l, bytes, t));
        for j in t..=self.last_use[l] {
            self.mem[j] += bytes;
        }
        for &i in &self.steps_of_layer[l] {
            if i >= t {
                self.mem[i] -= bytes; // gather extra shrinks back
            }
        }
        self.rescheduled[l].push((t, bytes));
    }

    /// Phase 2 (lines 18–21): advance step `i`'s all-gather to the earliest
    /// trigger that keeps every step within budget. Extending the gather's
    /// span from `[g, i]` to `[g−1, i]` adds its buffer only at step `g−1`.
    fn advance_gather(&mut self, i: usize, horizon: usize) -> bool {
        let l = self.input.steps[i].layer();
        let extra = self.input.layers[l]
            .full_param_bytes
            .saturating_sub(self.resident(l, i));
        let floor = i.saturating_sub(horizon);
        let mut g = self.gather_trigger[i];
        let original = g;
        while g > floor && self.mem[g - 1] + extra <= self.input.gpu_budget {
            g -= 1;
            self.mem[g] += extra;
        }
        self.gather_trigger[i] = g;
        g < original
    }

    fn peak(&self) -> u64 {
        self.mem.iter().copied().max().unwrap_or(0)
    }
}

impl UnifiedScheduler {
    /// Run Algorithm 1 on `input`.
    ///
    /// Errors with [`Error::WorkingSetTooLarge`] when some layer cannot run
    /// even with an empty GPU (gathered parameters + working set exceed the
    /// budget) — the condition under which the paper's system is also out of
    /// options without shrinking the batch.
    pub fn schedule(&self, input: &SchedulerInput) -> Result<Schedule> {
        assert!(!input.layers.is_empty(), "empty model");
        let n_steps = input.steps.len();

        // Infeasibility check: a layer must fit with nothing *evictable*
        // resident (external base load cannot be evicted).
        for (j, s) in input.steps.iter().enumerate() {
            let l = &input.layers[s.layer()];
            let base = input.step_base_load.get(j).copied().unwrap_or(0);
            let need = l.full_param_bytes + l.working_set + base;
            if need > input.gpu_budget {
                return Err(Error::WorkingSetTooLarge {
                    layer_bytes: need,
                    gpu_bytes: input.gpu_budget,
                });
            }
        }

        let mut res = Timeline::new(input);

        // ---- Phase 1 ----------------------------------------------------
        // Lines 3–5: prioritize move_to_gpu for every page, trigger 0. The
        // movement stack records emission order so line 8 can pop "the last
        // movement task".
        let mut move_stack: Vec<PlannedPage> = Vec::new();
        for (li, layer) in input.layers.iter().enumerate() {
            for (pi, &bytes) in layer.shard_pages.iter().enumerate() {
                move_stack.push(PlannedPage {
                    layer: li,
                    index: pi,
                    bytes,
                });
            }
        }
        // Pages re-scheduled later: (page, trigger id).
        let mut rescheduled: Vec<(PlannedPage, usize)> = Vec::new();
        let mut wait_stack: Vec<PlannedPage> = Vec::new();

        for i in 0..n_steps {
            // Lines 7–9: evict (pop) movements until this step fits.
            // `mem[i]` includes the step's own gather and working set, so
            // fitting means `mem[i] <= budget`.
            while res.mem[i] > input.gpu_budget {
                let victim = match move_stack.pop() {
                    Some(p) => p,
                    None => break, // nothing left to evict; gathers must stream
                };
                res.evict(victim.layer, victim.bytes);
                wait_stack.push(victim);
            }

            // Lines 13–15: backfill waiting pages while memory allows
            // (checked against every remaining step so later layers still
            // fit — the trace-driven equivalent of `get_available_memory`).
            while let Some(&page) = wait_stack.last() {
                if res.readd_fits(page.layer, page.bytes, i + 1) {
                    res.readd(page.layer, page.bytes, i + 1);
                    wait_stack.pop();
                    rescheduled.push((page, i + 1));
                } else {
                    break;
                }
            }
        }

        // Lines 10–12 were implicit above: every step gets an all_gather
        // bundle and a compute task, gathered just-in-time (trigger = i)
        // until phase 2 advances it.

        // ---- Phase 2 ----------------------------------------------------
        // Lines 18–21: advance each all_gather to the earliest trigger that
        // stays within budget.
        let mut gathers_advanced = 0usize;
        if self.phase2 {
            for i in 0..n_steps {
                if res.advance_gather(i, self.prefetch_horizon) {
                    gathers_advanced += 1;
                }
            }
        }

        // ---- Emit the task list ------------------------------------------
        let mut tasks = Vec::new();
        for page in &move_stack {
            tasks.push(ScheduleTask {
                op: TaskOp::MoveToGpu(*page),
                trigger_id: 0,
            });
        }
        for &(page, trig) in &rescheduled {
            tasks.push(ScheduleTask {
                op: TaskOp::MoveToGpu(page),
                trigger_id: trig,
            });
        }
        for (i, step) in input.steps.iter().enumerate() {
            let l = step.layer();
            for (pi, &bytes) in input.layers[l].shard_pages.iter().enumerate() {
                tasks.push(ScheduleTask {
                    op: TaskOp::AllGather {
                        page: PlannedPage {
                            layer: l,
                            index: pi,
                            bytes,
                        },
                        step: i,
                    },
                    trigger_id: res.gather_trigger[i],
                });
            }
            tasks.push(ScheduleTask {
                op: TaskOp::Compute(*step),
                trigger_id: i,
            });
        }
        tasks.sort_by_key(|t| t.trigger_id);

        let resident_pages = move_stack.len() + rescheduled.len();
        let total_pages: usize = input.layers.iter().map(|l| l.shard_pages.len()).sum();
        let resident_bytes: u64 = move_stack.iter().map(|p| p.bytes).sum::<u64>()
            + rescheduled.iter().map(|(p, _)| p.bytes).sum::<u64>();
        let shard_bytes: u64 = input.layers.iter().map(|l| l.shard_bytes()).sum();

        Ok(Schedule {
            tasks,
            num_steps: n_steps,
            stats: ScheduleStats {
                pages_resident: resident_pages,
                pages_cpu_bound: total_pages - resident_pages,
                peak_gpu_bytes: res.peak(),
                resident_fraction: if shard_bytes == 0 {
                    0.0
                } else {
                    resident_bytes as f64 / shard_bytes as f64
                },
                gathers_advanced,
            },
        })
    }
}

/// Build a [`SchedulerInput`] from a [`crate::tracer::Trace`], a page size,
/// a data-parallel degree (ZeRO sharding denominator) and the GPU budget.
pub fn input_from_trace(
    trace: &crate::tracer::Trace,
    page_size: u64,
    dp_degree: usize,
    gpu_budget: u64,
) -> SchedulerInput {
    assert!(dp_degree >= 1);
    let layers = (0..trace.layers)
        .map(|l| {
            let full = trace.layer_param16_bytes(l);
            let shard = full.div_ceil(dp_degree as u64);
            let mut pages = Vec::new();
            let mut rest = shard;
            while rest > 0 {
                let take = rest.min(page_size);
                pages.push(take);
                rest -= take;
            }
            LayerPlan {
                layer: l,
                shard_pages: pages,
                full_param_bytes: full,
                working_set: trace.layer_working_set(l),
            }
        })
        .collect();
    // Without recomputation, every layer's activations stay live from its
    // forward to its backward; that accumulated load is outside this
    // schedule's control but must constrain it.
    let steps = SchedulerInput::default_steps(trace.layers);
    let step_base_load = if trace.recompute {
        Vec::new()
    } else {
        steps
            .iter()
            .enumerate()
            .map(|(j, s)| {
                (0..trace.layers)
                    .filter(|&l| {
                        l != s.layer() && trace.forward_id(l) <= j && j <= trace.backward_id(l)
                    })
                    .map(|l| trace.layer_activation_bytes(l))
                    .sum()
            })
            .collect()
    };
    SchedulerInput {
        layers,
        steps,
        gpu_budget,
        page_size,
        step_base_load,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A uniform toy model with hand-checkable numbers.
    fn toy(
        n: usize,
        pages_per_layer: usize,
        page_bytes: u64,
        ws: u64,
        budget: u64,
    ) -> SchedulerInput {
        let layers = (0..n)
            .map(|l| LayerPlan {
                layer: l,
                shard_pages: vec![page_bytes; pages_per_layer],
                full_param_bytes: page_bytes * pages_per_layer as u64,
                working_set: ws,
            })
            .collect();
        SchedulerInput {
            layers,
            steps: SchedulerInput::default_steps(n),
            gpu_budget: budget,
            page_size: page_bytes,
            step_base_load: Vec::new(),
        }
    }

    #[test]
    fn everything_resident_when_memory_ample() {
        // 4 layers × 2 pages × 10 B = 80 B of shards, budget 1000.
        let input = toy(4, 2, 10, 5, 1000);
        let s = UnifiedScheduler::default().schedule(&input).unwrap();
        assert_eq!(s.stats.pages_cpu_bound, 0);
        assert_eq!(s.stats.pages_resident, 8);
        assert!((s.stats.resident_fraction - 1.0).abs() < 1e-12);
        let moves: Vec<_> = s
            .tasks
            .iter()
            .filter(|t| matches!(t.op, TaskOp::MoveToGpu(_)))
            .collect();
        assert_eq!(moves.len(), 8);
        assert!(moves.iter().all(|t| t.trigger_id == 0));
    }

    #[test]
    fn compute_tasks_in_step_order() {
        let input = toy(3, 1, 10, 0, 1000);
        let s = UnifiedScheduler::default().schedule(&input).unwrap();
        let computes: Vec<_> = s
            .tasks
            .iter()
            .filter_map(|t| match t.op {
                TaskOp::Compute(k) => Some((k, t.trigger_id)),
                _ => None,
            })
            .collect();
        assert_eq!(computes.len(), 6);
        assert_eq!(computes[0], (StepKind::Forward(0), 0));
        assert_eq!(computes[5], (StepKind::Backward(0), 5));
    }

    #[test]
    fn memory_pressure_evicts_pages() {
        // Each layer: 4 pages × 10 B = 40 B full params; ws 10. Budget 120:
        // cannot hold all 3 layers' shards (120 B) plus working sets.
        let input = toy(3, 4, 10, 10, 120);
        let s = UnifiedScheduler::default().schedule(&input).unwrap();
        assert!(s.stats.pages_cpu_bound > 0, "must evict under pressure");
        assert!(s.stats.peak_gpu_bytes <= 120);
        assert!(s.stats.resident_fraction < 1.0);
    }

    #[test]
    fn peak_never_exceeds_budget_when_feasible() {
        for budget in [60, 90, 150, 400] {
            let input = toy(4, 3, 10, 15, budget);
            let s = UnifiedScheduler::default().schedule(&input).unwrap();
            assert!(
                s.stats.peak_gpu_bytes <= budget,
                "budget {budget}: peak {}",
                s.stats.peak_gpu_bytes
            );
        }
    }

    #[test]
    fn infeasible_layer_detected() {
        // One layer needs 40 + 100 = 140 > 100 budget even alone.
        let input = toy(2, 4, 10, 100, 100);
        assert!(matches!(
            UnifiedScheduler::default().schedule(&input),
            Err(Error::WorkingSetTooLarge { .. })
        ));
    }

    #[test]
    fn phase2_advances_gathers_when_memory_allows() {
        let input = toy(4, 2, 10, 5, 1000);
        let s = UnifiedScheduler::default().schedule(&input).unwrap();
        // With ample memory every gather advances to the prefetch horizon.
        for t in &s.tasks {
            if let TaskOp::AllGather { step, .. } = t.op {
                assert_eq!(t.trigger_id, step.saturating_sub(4), "step {step}");
            }
        }
        assert!(s.stats.gathers_advanced > 0);
        // An unbounded horizon drags everything to trigger 0.
        let deep = UnifiedScheduler {
            phase2: true,
            prefetch_horizon: usize::MAX,
        }
        .schedule(&input)
        .unwrap();
        let gathers: Vec<_> = deep
            .tasks
            .iter()
            .filter(|t| matches!(t.op, TaskOp::AllGather { .. }))
            .collect();
        assert!(gathers.iter().all(|t| t.trigger_id == 0));
    }

    #[test]
    fn phase2_respects_budget() {
        // Sharded layers (shard 20 of full 40): gathers cost real memory,
        // so under a tight budget they can only be advanced a little.
        let mut input = toy(4, 2, 10, 10, 120);
        for l in &mut input.layers {
            l.full_param_bytes = 40;
        }
        let s = UnifiedScheduler::default().schedule(&input).unwrap();
        assert!(s.stats.peak_gpu_bytes <= 120);
        let g0 = s
            .tasks
            .iter()
            .filter(|t| matches!(t.op, TaskOp::AllGather { .. }) && t.trigger_id == 0)
            .count();
        let total_g = s
            .tasks
            .iter()
            .filter(|t| matches!(t.op, TaskOp::AllGather { .. }))
            .count();
        assert!(g0 < total_g, "g0={g0} total={total_g}");
    }

    #[test]
    fn tasks_sorted_by_trigger() {
        let input = toy(5, 3, 10, 10, 200);
        let s = UnifiedScheduler::default().schedule(&input).unwrap();
        assert!(s
            .tasks
            .windows(2)
            .all(|w| w[0].trigger_id <= w[1].trigger_id));
    }

    #[test]
    fn input_from_trace_wires_up() {
        let cfg = angel_model::TransformerConfig::gpt3_1_7b()
            .with_layers(2)
            .with_seq_len(128);
        let trace = crate::tracer::Tracer::default().trace(&cfg, 1, true);
        let input = input_from_trace(&trace, crate::PAGE_SIZE_DEFAULT, 8, 1 << 33);
        assert_eq!(input.layers.len(), 2);
        assert_eq!(input.steps.len(), 4);
        // Shard = full/8 rounded up into 4 MiB pages.
        let full = trace.layer_param16_bytes(0);
        let shard: u64 = input.layers[0].shard_pages.iter().sum();
        assert!(shard >= full / 8 && shard < full / 8 + crate::PAGE_SIZE_DEFAULT);
        let s = UnifiedScheduler::default().schedule(&input).unwrap();
        assert!(s.stats.peak_gpu_bytes <= input.gpu_budget);
    }

    #[test]
    fn more_budget_means_more_residency() {
        let tight = UnifiedScheduler::default()
            .schedule(&toy(6, 4, 10, 10, 100))
            .unwrap();
        let roomy = UnifiedScheduler::default()
            .schedule(&toy(6, 4, 10, 10, 400))
            .unwrap();
        assert!(roomy.stats.resident_fraction >= tight.stats.resident_fraction);
        assert!(roomy.stats.pages_cpu_bound <= tight.stats.pages_cpu_bound);
    }

    #[test]
    fn evicted_pages_can_be_rescheduled_later() {
        // Big early layers force eviction; after backward passes them, the
        // freed memory lets waiting pages return (lines 13–15).
        let mut input = toy(4, 2, 10, 4, 70);
        // Make layer 0 huge so early steps are tight.
        input.layers[0].shard_pages = vec![10; 4];
        input.layers[0].full_param_bytes = 40;
        let s = UnifiedScheduler::default().schedule(&input).unwrap();
        let late_moves = s
            .tasks
            .iter()
            .filter(|t| matches!(t.op, TaskOp::MoveToGpu(_)) && t.trigger_id > 0)
            .count();
        // Either everything fit up front, or some moves happen later — but
        // the budget must hold regardless.
        assert!(s.stats.peak_gpu_bytes <= 70);
        let _ = late_moves;
    }
}
