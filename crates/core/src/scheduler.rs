//! The Unified Scheduler — Section 4.2 and Algorithm 1 of the paper.
//!
//! "The Unified Scheduler takes these statistics [tensor access patterns and
//! life-times] as input and schedules each operation at the right time during
//! training ... including calling the Allocator to move tensors, calling the
//! Executor to perform GPU computations, and calling the Communicator for
//! inter-GPU communication."
//!
//! The algorithm is reproduced with both phases:
//!
//! * **Phase 1** seeds the schedule with `move_to_gpu` tasks for every page
//!   of every layer's parameter shard ("based on our prior knowledge that
//!   the speed of CPU-GPU data transfer (32GB/s) is slower than that of
//!   GPU-GPU communication (200GB/s)"), then walks the compute steps in
//!   order, popping the most recent movement tasks onto a *wait stack*
//!   whenever the layer at hand would not fit (lines 7–9), emitting
//!   `all_gather` + `compute` tasks on demand (lines 10–12), and backfilling
//!   waiting movements as memory frees up (lines 13–15).
//! * **Phase 2** advances each `all_gather` to the earliest trigger id whose
//!   resulting peak memory stays within the GPU budget, maximizing the
//!   overlap between communication and earlier computation (lines 18–21).
//!
//! We extend the paper's single pass over layers to the full iteration's
//! compute-step list (forward 0..n, backward n-1..0), with the trace ids of
//! [`crate::tracer::Trace`] as trigger ids, so parameter residency is
//! planned across both passes.
//!
//! # Complexity (DESIGN.md §9)
//!
//! At the paper's scale a layer shard is 10⁴–10⁵ pages, so the planner's
//! residency timeline is backed by a lazy range-add / range-max segment
//! tree ([`crate::seqtree::RangeAddMax`]) and phase 1 batches whole
//! same-layer page runs into single range updates. Every timeline
//! operation — evict, re-add fit check, re-add commit, gather advancement,
//! peak — is O(log steps), for an overall O((pages + steps)·log steps)
//! plan. The pre-refactor per-page / per-step implementation is retained
//! verbatim in [`oracle`]; tests and the criterion suite prove the
//! optimized planner emits byte-identical schedules and stats.

use crate::error::{Error, Result};
use crate::seqtree::RangeAddMax;
use serde::{Deserialize, Serialize};

/// A planned parameter page: `pages[index]` of `layer`'s local shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PlannedPage {
    pub layer: usize,
    pub index: usize,
    pub bytes: u64,
}

/// One compute step of the iteration (trigger-id domain of the schedule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StepKind {
    Forward(usize),
    Backward(usize),
}

impl StepKind {
    pub fn layer(self) -> usize {
        match self {
            StepKind::Forward(l) | StepKind::Backward(l) => l,
        }
    }
}

/// Task operations emitted by Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskOp {
    /// Move one parameter-shard page from CPU to GPU over PCIe.
    MoveToGpu(PlannedPage),
    /// All-gather the remote shards of one page across the data-parallel
    /// ranks (plus a CPU fetch when the local shard was never moved in).
    /// `step` is the compute step this gather feeds.
    AllGather { page: PlannedPage, step: usize },
    /// Run a compute step on the GPU.
    Compute(StepKind),
}

/// A scheduled task: `{operation, page, trigger_id}` in the paper's wording.
/// `trigger_id` is the compute-step id at (or after) which the task launches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleTask {
    pub op: TaskOp,
    pub trigger_id: usize,
}

/// Per-layer scheduling input distilled from the Tracer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerPlan {
    pub layer: usize,
    /// Byte sizes of the pages of this rank's parameter shard (FP16 params
    /// only — optimizer states stay on CPU/SSD per the Section 4.2 placement
    /// heuristic unless cached separately).
    pub shard_pages: Vec<u64>,
    /// Bytes of the layer's *full* FP16 parameters once gathered.
    pub full_param_bytes: u64,
    /// Peak transient bytes of the layer's compute step (activations +
    /// gradient buffers).
    pub working_set: u64,
}

impl LayerPlan {
    pub fn shard_bytes(&self) -> u64 {
        self.shard_pages.iter().sum()
    }
}

/// A [`LayerPlan`]'s byte totals as a `(shard, full, working_set)` triple.
pub(crate) type LayerTotals = (u64, u64, u64);

/// One timeline revert patch: `(layer, old totals, new totals)`.
pub(crate) type LayerPatch = (usize, LayerTotals, LayerTotals);

/// Scheduler input: the model plan, the compute-step list, the GPU byte
/// budget available to model states, and the page size.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerInput {
    pub layers: Vec<LayerPlan>,
    pub steps: Vec<StepKind>,
    pub gpu_budget: u64,
    pub page_size: u64,
    /// Extra GPU bytes pinned at each step independent of this schedule's
    /// decisions — e.g. accumulated activations of *other* layers when
    /// recomputation is off. Empty = zero everywhere.
    pub step_base_load: Vec<u64>,
}

impl SchedulerInput {
    /// Compute steps for `n` layers: forward 0..n then backward n-1..0.
    pub fn default_steps(n: usize) -> Vec<StepKind> {
        (0..n)
            .map(StepKind::Forward)
            .chain((0..n).rev().map(StepKind::Backward))
            .collect()
    }
}

/// Aggregate statistics of a schedule, used by reports and the capacity
/// search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleStats {
    /// Pages whose `move_to_gpu` survived phase 1 (GPU-resident shard).
    pub pages_resident: usize,
    /// Pages evicted through the wait stack and never re-scheduled.
    pub pages_cpu_bound: usize,
    /// Peak planned GPU bytes over all steps.
    pub peak_gpu_bytes: u64,
    /// Fraction of shard bytes resident on GPU.
    pub resident_fraction: f64,
    /// Number of all-gathers whose trigger was advanced in phase 2.
    pub gathers_advanced: usize,
}

/// The schedule: tasks ordered by trigger id, a per-trigger index, and
/// stats.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    pub tasks: Vec<ScheduleTask>,
    pub stats: ScheduleStats,
    pub num_steps: usize,
    /// `trigger_offsets[t]..trigger_offsets[t + 1]` is the range of `tasks`
    /// with trigger id `t` (length `num_steps + 1`). The executor reads one
    /// trigger's tasks per step, so the lookup must not scan the task list.
    pub trigger_offsets: Vec<usize>,
}

impl Schedule {
    /// All tasks with the given trigger id, in emission order — an O(1)
    /// slice lookup into the trigger-sorted task list.
    pub fn at_trigger(&self, id: usize) -> impl Iterator<Item = &ScheduleTask> {
        self.tasks[self.trigger_range(id)].iter()
    }

    /// The index range of tasks with trigger id `id`.
    pub fn trigger_range(&self, id: usize) -> std::ops::Range<usize> {
        if id + 1 >= self.trigger_offsets.len() {
            return 0..0;
        }
        self.trigger_offsets[id]..self.trigger_offsets[id + 1]
    }
}

/// Build the per-trigger offset table from a trigger-sorted task list.
/// Triggers are confined to `0..num_steps` by construction (re-adds land at
/// `i + 1 <= last_use < num_steps`).
fn trigger_offsets_of(tasks: &[ScheduleTask], num_steps: usize) -> Vec<usize> {
    let mut offsets = vec![0usize; num_steps + 1];
    for t in tasks {
        offsets[t.trigger_id + 1] += 1;
    }
    for i in 1..offsets.len() {
        offsets[i] += offsets[i - 1];
    }
    offsets
}

/// The Unified Scheduler component. `phase2` enables the all-gather
/// advancement pass (on in production; the scheduler ablation turns it off).
/// `prefetch_horizon` caps how many steps before its compute a gather may
/// launch: advancing further buys no extra overlap once the transfer hides
/// behind one or two intervening computes, and the memory it would pin is
/// better spent on the optimizer-state cache (Section 4.2's "dynamically
/// make cache size decisions ... based on tensor lifetime information").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnifiedScheduler {
    pub phase2: bool,
    pub prefetch_horizon: usize,
}

impl Default for UnifiedScheduler {
    fn default() -> Self {
        Self {
            phase2: true,
            prefetch_horizon: 4,
        }
    }
}

/// Incremental residency timeline: planned GPU bytes per compute step,
/// maintained as a lazy range-add / range-max segment tree so every
/// scheduling decision is O(log steps) — near-linear planning overall even
/// for hundred-layer models with 10⁵ shard pages.
///
/// Logical content (identical to [`oracle::NaiveTimeline`]): `mem[j]` =
/// resident shard bytes live at step `j` + gathered-buffer extras whose
/// span covers `j` + step `j`'s working set.
///
/// The state owns every buffer (no borrow of the input) so the incremental
/// replanner (`crate::replan`) can keep one timeline alive across plans and
/// re-arm it with [`TimelineState::reset`] — reusing the tree nodes and all
/// per-layer vectors instead of reallocating them each call. Methods that
/// need the model take `&SchedulerInput` explicitly; callers must pass the
/// same input the state was last reset with.
pub(crate) struct TimelineState {
    mem: RangeAddMax,
    /// Snapshot of `mem` as of the last reset, *before* any decision was
    /// applied — the revert point for [`TimelineState::reset_reverting`].
    mem_base: RangeAddMax,
    /// Pristine per-layer shard bytes matching `mem_base`.
    resident0_base: Vec<u64>,
    /// Scratch: the initial per-step totals the tree is (re)built from.
    mem0: Vec<u64>,
    /// Scratch: difference array for the resident-shard fill.
    diff: Vec<i64>,
    /// Bytes of layer `l`'s shard moved at trigger 0 and still scheduled.
    resident0: Vec<u64>,
    /// Re-added bytes per layer as `(trigger, cumulative bytes)`, trigger
    /// ascending — the prefix sums that replace the oracle's linear scan in
    /// `resident()`.
    resched_cum: Vec<Vec<(usize, u64)>>,
    /// Current all-gather trigger per step (starts just-in-time at `i`).
    gather_trigger: Vec<usize>,
    /// Last compute step touching each layer.
    last_use: Vec<usize>,
    /// The compute steps of each layer (forward and backward ids),
    /// ascending.
    steps_of_layer: Vec<Vec<usize>>,
    /// Per-layer step bitmaps (`words` u64 words per layer): O(1)
    /// is-own-step membership, replacing the oracle's `own.contains(&j)`.
    own_bits: Vec<u64>,
    words: usize,
}

impl TimelineState {
    pub(crate) fn new(input: &SchedulerInput) -> Self {
        let mut state = Self {
            mem: RangeAddMax::from_values(&[]),
            mem_base: RangeAddMax::from_values(&[]),
            resident0_base: Vec::new(),
            mem0: Vec::new(),
            diff: Vec::new(),
            resident0: Vec::new(),
            resched_cum: Vec::new(),
            gather_trigger: Vec::new(),
            last_use: Vec::new(),
            steps_of_layer: Vec::new(),
            own_bits: Vec::new(),
            words: 0,
        };
        state.reset(input, true);
        state
    }

    /// Re-arm for a fresh plan over `input`, reusing every allocation. The
    /// step-derived structures (per-layer step lists, bitmaps, last uses)
    /// are only rebuilt when `steps_changed` says the step list differs from
    /// the previous reset — layer/budget deltas skip that entire pass.
    pub(crate) fn reset(&mut self, input: &SchedulerInput, steps_changed: bool) {
        let n_steps = input.steps.len();
        let n_layers = input.layers.len();
        if steps_changed || self.steps_of_layer.len() != n_layers || self.words == 0 {
            self.words = n_steps.div_ceil(64);
            for v in &mut self.steps_of_layer {
                v.clear();
            }
            self.steps_of_layer.resize_with(n_layers, Vec::new);
            self.own_bits.clear();
            self.own_bits.resize(n_layers * self.words, 0);
            for (j, s) in input.steps.iter().enumerate() {
                let l = s.layer();
                self.steps_of_layer[l].push(j);
                self.own_bits[l * self.words + j / 64] |= 1 << (j % 64);
            }
            self.last_use.clear();
            self.last_use
                .extend(self.steps_of_layer.iter().map(|v| match v.last() {
                    Some(&j) => j,
                    // The trace emits at least a forward step per layer.
                    None => unreachable!("layer with no steps in the trace"),
                }));
        }
        self.resident0.clear();
        self.resident0
            .extend(input.layers.iter().map(|l| l.shard_bytes()));
        // Resident shards via a difference array (O(layers + steps) instead
        // of the oracle's O(layers × steps) fill): every page starts at
        // trigger 0, live until the layer's last use.
        self.diff.clear();
        self.diff.resize(n_steps + 1, 0);
        for (l, &bytes) in self.resident0.iter().enumerate() {
            self.diff[0] += bytes as i64;
            self.diff[self.last_use[l] + 1] -= bytes as i64;
        }
        self.mem0.clear();
        self.mem0.resize(n_steps, 0);
        let mut running = 0i64;
        for (j, m) in self.mem0.iter_mut().enumerate() {
            running += self.diff[j];
            *m = running as u64;
        }
        // Per-step working set + just-in-time gather extra (full − resident)
        // + external base load.
        for (j, s) in input.steps.iter().enumerate() {
            let l = s.layer();
            self.mem0[j] += input.layers[l].working_set;
            self.mem0[j] += input.layers[l]
                .full_param_bytes
                .saturating_sub(self.resident0[l]);
            if let Some(&base) = input.step_base_load.get(j) {
                self.mem0[j] += base;
            }
        }
        self.mem.reset_from_values(&self.mem0);
        self.mem_base.restore_from(&self.mem);
        self.resident0_base.clone_from(&self.resident0);
        for v in &mut self.resched_cum {
            v.clear();
        }
        self.resched_cum.resize_with(n_layers, Vec::new);
        self.gather_trigger.clear();
        self.gather_trigger.extend(0..n_steps);
    }

    /// Re-arm by *range-revert* instead of rebuild — valid only when the
    /// step list, layer count and base load are unchanged since the last
    /// reset. The byte deltas of the touched layers are applied to the
    /// baseline tree as O(log steps) range patches, then the live tree
    /// reverts to that baseline with one `restore_from` memcpy: untouched
    /// layers' timeline contributions come back verbatim, nothing is
    /// recomputed per-page or per-step.
    ///
    /// Each patch is `(layer, old LayerPlan totals, new LayerPlan totals)`
    /// as `(shard, full, working_set)` byte triples.
    pub(crate) fn reset_reverting(&mut self, input: &SchedulerInput, patches: &[LayerPatch]) {
        for &(l, (old_shard, old_full, old_ws), (new_shard, new_full, new_ws)) in patches {
            let lu = self.last_use[l];
            let d_res = new_shard as i64 - old_shard as i64;
            self.mem_base.add(0, lu, d_res);
            let old_extra = old_ws + old_full.saturating_sub(old_shard);
            let new_extra = new_ws + new_full.saturating_sub(new_shard);
            let d_extra = new_extra as i64 - old_extra as i64;
            if d_extra != 0 {
                for &s in &self.steps_of_layer[l] {
                    self.mem_base.add(s, s, d_extra);
                }
            }
            self.resident0_base[l] = new_shard;
        }
        self.mem.restore_from(&self.mem_base);
        self.resident0.clone_from(&self.resident0_base);
        for v in &mut self.resched_cum {
            v.clear();
        }
        self.gather_trigger.clear();
        self.gather_trigger.extend(0..input.steps.len());
    }

    /// Whether step `j` computes layer `l` (O(1) bitmap lookup).
    pub(crate) fn is_own_step(&self, l: usize, j: usize) -> bool {
        self.own_bits[l * self.words + j / 64] >> (j % 64) & 1 == 1
    }

    /// The compute steps of layer `l`, ascending.
    pub(crate) fn steps_of(&self, l: usize) -> &[usize] {
        &self.steps_of_layer[l]
    }

    /// Grow the planned total at layer `l`'s own compute steps by `d` bytes
    /// on *both* the live tree and the reset baseline — the replanner's
    /// slack fast path committing a working-set-only increase without
    /// re-running decisions. Patching `mem_base` too keeps the next
    /// [`Self::reset_reverting`] diffing against the input this timeline
    /// now reflects.
    pub(crate) fn nudge_own_steps(&mut self, l: usize, d: u64) {
        for &s in &self.steps_of_layer[l] {
            self.mem.add(s, s, d as i64);
            self.mem_base.add(s, s, d as i64);
        }
    }

    /// The planned total at step `i` (the phase-1 fit check's read).
    pub(crate) fn step_total(&self, i: usize) -> u64 {
        self.mem.get(i)
    }

    /// Last compute step touching layer `l`.
    pub(crate) fn last_use(&self, l: usize) -> usize {
        self.last_use[l]
    }

    /// The current all-gather trigger of every step.
    pub(crate) fn gather_triggers(&self) -> &[usize] {
        &self.gather_trigger
    }

    /// Shard bytes of layer `l` resident at step `j` — prefix-sum lookup
    /// over the re-add history instead of a linear scan.
    fn resident(&self, l: usize, j: usize) -> u64 {
        if j > self.last_use[l] {
            return 0;
        }
        let cum = &self.resched_cum[l];
        let idx = cum.partition_point(|&(t, _)| t <= j);
        self.resident0[l] + if idx == 0 { 0 } else { cum[idx - 1].1 }
    }

    /// Evict `total` trigger-0 bytes of layer `l` in one batch (phase 1,
    /// lines 7–9): the shard bytes leave every step, but the layer's own
    /// compute steps must now gather those bytes remotely, so their totals
    /// are unchanged.
    pub(crate) fn evict(&mut self, l: usize, total: u64) {
        self.resident0[l] -= total;
        self.mem.add(0, self.last_use[l], -(total as i64));
        for &s in &self.steps_of_layer[l] {
            self.mem.add(s, s, total as i64); // gather extra grows
        }
    }

    /// The byte capacity for re-adding layer-`l` pages at trigger `t`:
    /// `None` when nothing fits (including zero-byte pages), `Some(cap)`
    /// when any batch of total size `<= cap` keeps every affected step
    /// within budget. Affected steps are `[t, last_use(l)]` minus the
    /// layer's own compute steps (net-zero there), checked as range-max
    /// queries over the gaps between own steps.
    pub(crate) fn readd_capacity(&self, input: &SchedulerInput, l: usize, t: usize) -> Option<u64> {
        if t > self.last_use[l] {
            return None; // pages would arrive after the layer's last use
        }
        let own = &self.steps_of_layer[l];
        let mut gap_max: Option<u64> = None;
        let mut seg_start = t;
        for &s in &own[own.partition_point(|&s| s < t)..] {
            if s > seg_start {
                gap_max = gap_max.max(self.mem.max_in(seg_start, s - 1));
            }
            seg_start = s + 1;
        }
        if seg_start <= self.last_use[l] {
            gap_max = gap_max.max(self.mem.max_in(seg_start, self.last_use[l]));
        }
        match gap_max {
            None => Some(u64::MAX), // only own steps affected: anything fits
            Some(m) => input.gpu_budget.checked_sub(m),
        }
    }

    /// Commit a batched re-add of `total` bytes of layer `l` at trigger `t`
    /// (phase 1, lines 13–15).
    pub(crate) fn readd(&mut self, l: usize, total: u64, t: usize) {
        self.mem.add(t, self.last_use[l], total as i64);
        for &s in &self.steps_of_layer[l] {
            if s >= t {
                self.mem.add(s, s, -(total as i64)); // gather extra shrinks
            }
        }
        let prev = self.resched_cum[l].last().map_or(0, |&(_, c)| c);
        self.resched_cum[l].push((t, prev + total));
    }

    /// Phase 2 (lines 18–21): advance step `i`'s all-gather to the earliest
    /// trigger that keeps every step within budget. Extending the gather's
    /// span from `[g, i]` to `[g−1, i]` adds its buffer only at step `g−1`,
    /// so the stop point is the latest step in `[floor, g−1]` already above
    /// `budget − extra` — one segment-tree descent instead of a per-step
    /// walk.
    pub(crate) fn advance_gather(
        &mut self,
        input: &SchedulerInput,
        i: usize,
        horizon: usize,
    ) -> bool {
        self.advance_gather_impl(input, i, horizon, None)
    }

    /// [`Self::advance_gather`] that also records, for each fired advance,
    /// the span it occupied and the minimum byte margin by which the stop
    /// condition held across that span: `(new_g, g − 1, margin)`. A later
    /// increase of `≤ margin` bytes at any single step inside the span
    /// provably leaves this advance's stop point unchanged — the evidence
    /// the replanner's slack fast path runs on.
    pub(crate) fn advance_gather_recording(
        &mut self,
        input: &SchedulerInput,
        i: usize,
        horizon: usize,
        spans: &mut Vec<(usize, usize, u64)>,
    ) -> bool {
        self.advance_gather_impl(input, i, horizon, Some(spans))
    }

    fn advance_gather_impl(
        &mut self,
        input: &SchedulerInput,
        i: usize,
        horizon: usize,
        spans: Option<&mut Vec<(usize, usize, u64)>>,
    ) -> bool {
        let l = input.steps[i].layer();
        let extra = input.layers[l]
            .full_param_bytes
            .saturating_sub(self.resident(l, i));
        let floor = i.saturating_sub(horizon);
        let g = self.gather_trigger[i];
        if g <= floor {
            return false;
        }
        let new_g = match input.gpu_budget.checked_sub(extra) {
            // The gather buffer alone overflows the budget: no step can
            // absorb it (mem ≥ 0), so the trigger stays just-in-time.
            None => g,
            Some(threshold) => match self.mem.last_above(floor, g - 1, threshold) {
                Some(j) => j + 1,
                None => floor,
            },
        };
        if new_g < g {
            self.mem.add(new_g, g - 1, extra as i64);
            self.gather_trigger[i] = new_g;
            if let Some(spans) = spans {
                // Every step in [new_g, g−1] sat at ≤ threshold before the
                // add, i.e. at ≤ budget after it; the span max after the add
                // bounds how close the tightest step came.
                let span_max = self.mem.max_in(new_g, g - 1).unwrap_or(0);
                let margin = input.gpu_budget.saturating_sub(span_max);
                spans.push((new_g, g - 1, margin));
            }
            true
        } else {
            false
        }
    }

    pub(crate) fn peak(&self) -> u64 {
        self.mem.max_all()
    }
}

impl UnifiedScheduler {
    /// Run Algorithm 1 on `input`.
    ///
    /// Errors with [`Error::WorkingSetTooLarge`] when some layer cannot run
    /// even with an empty GPU (gathered parameters + working set exceed the
    /// budget) — the condition under which the paper's system is also out of
    /// options without shrinking the batch.
    ///
    /// This is the optimized near-linear planner; [`oracle::schedule`] is
    /// the retained reference implementation it is proven byte-identical
    /// against.
    pub fn schedule(&self, input: &SchedulerInput) -> Result<Schedule> {
        assert!(!input.layers.is_empty(), "empty model");
        let n_steps = input.steps.len();

        // Infeasibility check: a layer must fit with nothing *evictable*
        // resident (external base load cannot be evicted).
        for (j, s) in input.steps.iter().enumerate() {
            let l = &input.layers[s.layer()];
            let base = input.step_base_load.get(j).copied().unwrap_or(0);
            let need = l.full_param_bytes + l.working_set + base;
            if need > input.gpu_budget {
                return Err(Error::WorkingSetTooLarge {
                    layer_bytes: need,
                    gpu_bytes: input.gpu_budget,
                });
            }
        }

        let mut res = TimelineState::new(input);

        // ---- Phase 1 ----------------------------------------------------
        // Lines 3–5: prioritize move_to_gpu for every page, trigger 0. The
        // movement stack records emission order so line 8 can pop "the last
        // movement task". Total pages and shard bytes accumulate here (the
        // only pass over the page lists) for the final stats.
        let total_pages: usize = input.layers.iter().map(|l| l.shard_pages.len()).sum();
        let mut shard_bytes = 0u64;
        let mut move_stack: Vec<PlannedPage> = Vec::with_capacity(total_pages);
        for (li, layer) in input.layers.iter().enumerate() {
            for (pi, &bytes) in layer.shard_pages.iter().enumerate() {
                shard_bytes += bytes;
                move_stack.push(PlannedPage {
                    layer: li,
                    index: pi,
                    bytes,
                });
            }
        }
        // Pages re-scheduled later: (page, trigger id).
        let mut rescheduled: Vec<(PlannedPage, usize)> = Vec::new();
        let mut wait_stack: Vec<PlannedPage> = Vec::new();

        for i in 0..n_steps {
            // Lines 7–9: evict (pop) movements until this step fits.
            // `mem[i]` includes the step's own gather and working set, so
            // fitting means `mem[i] <= budget`. Same-layer page runs on the
            // stack top are popped as one batched range update: evicting a
            // page only lowers `mem[i]` when `i` lies in the victim layer's
            // live span and is not one of its own compute steps (net-zero
            // there), so a run either shrinks `mem[i]` page by page — take
            // exactly enough pages to reach the budget — or not at all —
            // the whole run drains, as the per-page loop would.
            loop {
                let current = res.step_total(i);
                if current <= input.gpu_budget {
                    break;
                }
                let Some(&top) = move_stack.last() else {
                    break; // nothing left to evict; gathers must stream
                };
                let l = top.layer;
                let run_start = run_start_of(&move_stack, l);
                let net_zero = i > res.last_use(l) || res.is_own_step(l, i);
                let mut batch = 0u64;
                let mut taken = move_stack.len();
                if net_zero {
                    // Popping this run never changes mem[i]: all of it goes.
                    taken = run_start;
                    batch = move_stack[run_start..].iter().map(|p| p.bytes).sum();
                } else {
                    let need = current - input.gpu_budget;
                    while taken > run_start && batch < need {
                        taken -= 1;
                        batch += move_stack[taken].bytes;
                    }
                }
                res.evict(l, batch);
                // Victims reach the wait stack in pop (reverse) order.
                wait_stack.extend(move_stack.drain(taken..).rev());
            }

            // Lines 13–15: backfill waiting pages while memory allows
            // (checked against every remaining step so later layers still
            // fit — the trace-driven equivalent of `get_available_memory`).
            // Re-adds of one layer all see the same per-step headroom (the
            // commit raises every checked step uniformly), so a same-layer
            // run batches into one capacity query + one range update.
            'readd: while let Some(&top) = wait_stack.last() {
                let l = top.layer;
                let t = i + 1;
                let Some(cap) = res.readd_capacity(input, l, t) else {
                    break;
                };
                let run_start = run_start_of(&wait_stack, l);
                let mut batch = 0u64;
                let mut taken = wait_stack.len();
                while taken > run_start {
                    let bytes = wait_stack[taken - 1].bytes;
                    match batch.checked_add(bytes) {
                        Some(b) if b <= cap => {
                            batch = b;
                            taken -= 1;
                        }
                        _ => break,
                    }
                }
                if taken == wait_stack.len() {
                    break; // head of the run does not fit — stop backfilling
                }
                res.readd(l, batch, t);
                for page in wait_stack.drain(taken..).rev() {
                    rescheduled.push((page, t));
                }
                if taken > run_start {
                    break 'readd; // run only partially fit
                }
            }
        }

        // Lines 10–12 were implicit above: every step gets an all_gather
        // bundle and a compute task, gathered just-in-time (trigger = i)
        // until phase 2 advances it.

        // ---- Phase 2 ----------------------------------------------------
        // Lines 18–21: advance each all_gather to the earliest trigger that
        // stays within budget.
        let mut gathers_advanced = 0usize;
        if self.phase2 {
            for i in 0..n_steps {
                if res.advance_gather(input, i, self.prefetch_horizon) {
                    gathers_advanced += 1;
                }
            }
        }

        // ---- Emit the task list ------------------------------------------
        // Every task's trigger is known before emission, so the counting
        // sort runs without materializing an unsorted buffer: count per
        // trigger, prefix-sum into the offset table, then write each task
        // straight into its final slot. Walking the sources in the oracle's
        // emission order (moves, re-adds, per-step gathers + computes)
        // keeps within-trigger order identical to its stable sort. Byte
        // stats fold into the same walk.
        let mut trigger_offsets = vec![0usize; n_steps + 1];
        let bump = |offsets: &mut Vec<usize>, trigger: usize, by: usize| {
            offsets[trigger + 1] += by;
        };
        bump(&mut trigger_offsets, 0, move_stack.len());
        for &(_, trig) in &rescheduled {
            bump(&mut trigger_offsets, trig, 1);
        }
        for (i, step) in input.steps.iter().enumerate() {
            let n_pages = input.layers[step.layer()].shard_pages.len();
            bump(&mut trigger_offsets, res.gather_triggers()[i], n_pages);
            bump(&mut trigger_offsets, i, 1); // the compute task
        }
        for i in 1..trigger_offsets.len() {
            trigger_offsets[i] += trigger_offsets[i - 1];
        }
        // `trigger_offsets` has n_steps + 1 slots; the last holds the total.
        let total_tasks = trigger_offsets.last().copied().unwrap_or(0);
        let mut cursor = trigger_offsets.clone();
        let mut tasks = vec![
            ScheduleTask {
                op: TaskOp::Compute(StepKind::Forward(0)),
                trigger_id: 0,
            };
            total_tasks
        ];
        let place = |tasks: &mut Vec<ScheduleTask>, cursor: &mut Vec<usize>, task: ScheduleTask| {
            tasks[cursor[task.trigger_id]] = task;
            cursor[task.trigger_id] += 1;
        };
        let mut resident_bytes = 0u64;
        for page in &move_stack {
            resident_bytes += page.bytes;
            place(
                &mut tasks,
                &mut cursor,
                ScheduleTask {
                    op: TaskOp::MoveToGpu(*page),
                    trigger_id: 0,
                },
            );
        }
        for &(page, trig) in &rescheduled {
            resident_bytes += page.bytes;
            place(
                &mut tasks,
                &mut cursor,
                ScheduleTask {
                    op: TaskOp::MoveToGpu(page),
                    trigger_id: trig,
                },
            );
        }
        for (i, step) in input.steps.iter().enumerate() {
            let l = step.layer();
            let trig = res.gather_triggers()[i];
            for (pi, &bytes) in input.layers[l].shard_pages.iter().enumerate() {
                place(
                    &mut tasks,
                    &mut cursor,
                    ScheduleTask {
                        op: TaskOp::AllGather {
                            page: PlannedPage {
                                layer: l,
                                index: pi,
                                bytes,
                            },
                            step: i,
                        },
                        trigger_id: trig,
                    },
                );
            }
            place(
                &mut tasks,
                &mut cursor,
                ScheduleTask {
                    op: TaskOp::Compute(*step),
                    trigger_id: i,
                },
            );
        }

        let resident_pages = move_stack.len() + rescheduled.len();
        Ok(Schedule {
            tasks,
            num_steps: n_steps,
            trigger_offsets,
            stats: ScheduleStats {
                pages_resident: resident_pages,
                pages_cpu_bound: total_pages - resident_pages,
                peak_gpu_bytes: res.peak(),
                resident_fraction: if shard_bytes == 0 {
                    0.0
                } else {
                    resident_bytes as f64 / shard_bytes as f64
                },
                gathers_advanced,
            },
        })
    }
}

/// Start index of the maximal run of layer-`l` pages at the top of `stack`.
fn run_start_of(stack: &[PlannedPage], l: usize) -> usize {
    let mut start = stack.len();
    while start > 0 && stack[start - 1].layer == l {
        start -= 1;
    }
    start
}

/// The pre-optimization Algorithm 1 planner, retained verbatim as the
/// correctness oracle: per-page O(steps) timeline updates, linear
/// `resident()` scans, `contains`-based fit checks and a comparison sort.
/// Tests ([`tests`] and the proptest suite) prove [`UnifiedScheduler::schedule`]
/// emits byte-identical schedules; the criterion suite (`crates/bench`)
/// records the speedup in `BENCH_plan.json`.
pub mod oracle {
    use super::*;

    /// The naive residency timeline: a plain `Vec<u64>` with O(steps)
    /// updates per page.
    pub struct NaiveTimeline<'a> {
        input: &'a SchedulerInput,
        mem: Vec<u64>,
        resident0: Vec<u64>,
        rescheduled: Vec<Vec<(usize, u64)>>,
        gather_trigger: Vec<usize>,
        last_use: Vec<usize>,
        steps_of_layer: Vec<Vec<usize>>,
    }

    impl<'a> NaiveTimeline<'a> {
        pub fn new(input: &'a SchedulerInput) -> Self {
            let n_steps = input.steps.len();
            let n_layers = input.layers.len();
            let mut steps_of_layer = vec![Vec::new(); n_layers];
            for (j, s) in input.steps.iter().enumerate() {
                steps_of_layer[s.layer()].push(j);
            }
            let last_use: Vec<usize> = steps_of_layer
                .iter()
                .map(|v| match v.last() {
                    Some(&j) => j,
                    // The trace emits at least a forward step per layer.
                    None => unreachable!("layer with no steps in the trace"),
                })
                .collect();
            let resident0: Vec<u64> = input.layers.iter().map(|l| l.shard_bytes()).collect();
            let mut mem = vec![0u64; n_steps];
            for (l, &bytes) in resident0.iter().enumerate() {
                for m in mem.iter_mut().take(last_use[l] + 1) {
                    *m += bytes;
                }
            }
            for (j, s) in input.steps.iter().enumerate() {
                let l = s.layer();
                mem[j] += input.layers[l].working_set;
                mem[j] += input.layers[l]
                    .full_param_bytes
                    .saturating_sub(resident0[l]);
                if let Some(&base) = input.step_base_load.get(j) {
                    mem[j] += base;
                }
            }
            Self {
                input,
                mem,
                resident0,
                rescheduled: vec![Vec::new(); n_layers],
                gather_trigger: (0..n_steps).collect(),
                last_use,
                steps_of_layer,
            }
        }

        fn resident(&self, l: usize, j: usize) -> u64 {
            if j > self.last_use[l] {
                return 0;
            }
            self.resident0[l]
                + self.rescheduled[l]
                    .iter()
                    .filter(|(t, _)| *t <= j)
                    .map(|(_, b)| b)
                    .sum::<u64>()
        }

        fn evict(&mut self, l: usize, bytes: u64) {
            self.resident0[l] -= bytes;
            for j in 0..=self.last_use[l] {
                self.mem[j] -= bytes;
            }
            for &i in &self.steps_of_layer[l] {
                self.mem[i] += bytes;
            }
        }

        fn readd_fits(&self, l: usize, bytes: u64, t: usize) -> bool {
            if t > self.last_use[l] {
                return false;
            }
            let own: &[usize] = &self.steps_of_layer[l];
            (t..=self.last_use[l]).all(|j| {
                if own.contains(&j) && j >= t {
                    true
                } else {
                    self.mem[j] + bytes <= self.input.gpu_budget
                }
            })
        }

        fn readd(&mut self, l: usize, bytes: u64, t: usize) {
            debug_assert!(self.readd_fits(l, bytes, t));
            for j in t..=self.last_use[l] {
                self.mem[j] += bytes;
            }
            for &i in &self.steps_of_layer[l] {
                if i >= t {
                    self.mem[i] -= bytes;
                }
            }
            self.rescheduled[l].push((t, bytes));
        }

        fn advance_gather(&mut self, i: usize, horizon: usize) -> bool {
            let l = self.input.steps[i].layer();
            let extra = self.input.layers[l]
                .full_param_bytes
                .saturating_sub(self.resident(l, i));
            let floor = i.saturating_sub(horizon);
            let mut g = self.gather_trigger[i];
            let original = g;
            while g > floor && self.mem[g - 1] + extra <= self.input.gpu_budget {
                g -= 1;
                self.mem[g] += extra;
            }
            self.gather_trigger[i] = g;
            g < original
        }

        fn peak(&self) -> u64 {
            self.mem.iter().copied().max().unwrap_or(0)
        }
    }

    /// Run the reference per-page Algorithm 1 — the exact pre-optimization
    /// `UnifiedScheduler::schedule`.
    pub fn schedule(sched: &UnifiedScheduler, input: &SchedulerInput) -> Result<Schedule> {
        assert!(!input.layers.is_empty(), "empty model");
        let n_steps = input.steps.len();

        for (j, s) in input.steps.iter().enumerate() {
            let l = &input.layers[s.layer()];
            let base = input.step_base_load.get(j).copied().unwrap_or(0);
            let need = l.full_param_bytes + l.working_set + base;
            if need > input.gpu_budget {
                return Err(Error::WorkingSetTooLarge {
                    layer_bytes: need,
                    gpu_bytes: input.gpu_budget,
                });
            }
        }

        let mut res = NaiveTimeline::new(input);

        let mut move_stack: Vec<PlannedPage> = Vec::new();
        for (li, layer) in input.layers.iter().enumerate() {
            for (pi, &bytes) in layer.shard_pages.iter().enumerate() {
                move_stack.push(PlannedPage {
                    layer: li,
                    index: pi,
                    bytes,
                });
            }
        }
        let mut rescheduled: Vec<(PlannedPage, usize)> = Vec::new();
        let mut wait_stack: Vec<PlannedPage> = Vec::new();

        for i in 0..n_steps {
            while res.mem[i] > input.gpu_budget {
                let victim = match move_stack.pop() {
                    Some(p) => p,
                    None => break,
                };
                res.evict(victim.layer, victim.bytes);
                wait_stack.push(victim);
            }

            while let Some(&page) = wait_stack.last() {
                if res.readd_fits(page.layer, page.bytes, i + 1) {
                    res.readd(page.layer, page.bytes, i + 1);
                    wait_stack.pop();
                    rescheduled.push((page, i + 1));
                } else {
                    break;
                }
            }
        }

        let mut gathers_advanced = 0usize;
        if sched.phase2 {
            for i in 0..n_steps {
                if res.advance_gather(i, sched.prefetch_horizon) {
                    gathers_advanced += 1;
                }
            }
        }

        let mut tasks = Vec::new();
        for page in &move_stack {
            tasks.push(ScheduleTask {
                op: TaskOp::MoveToGpu(*page),
                trigger_id: 0,
            });
        }
        for &(page, trig) in &rescheduled {
            tasks.push(ScheduleTask {
                op: TaskOp::MoveToGpu(page),
                trigger_id: trig,
            });
        }
        for (i, step) in input.steps.iter().enumerate() {
            let l = step.layer();
            for (pi, &bytes) in input.layers[l].shard_pages.iter().enumerate() {
                tasks.push(ScheduleTask {
                    op: TaskOp::AllGather {
                        page: PlannedPage {
                            layer: l,
                            index: pi,
                            bytes,
                        },
                        step: i,
                    },
                    trigger_id: res.gather_trigger[i],
                });
            }
            tasks.push(ScheduleTask {
                op: TaskOp::Compute(*step),
                trigger_id: i,
            });
        }
        tasks.sort_by_key(|t| t.trigger_id);
        let trigger_offsets = trigger_offsets_of(&tasks, n_steps);

        let resident_pages = move_stack.len() + rescheduled.len();
        let total_pages: usize = input.layers.iter().map(|l| l.shard_pages.len()).sum();
        let resident_bytes: u64 = move_stack.iter().map(|p| p.bytes).sum::<u64>()
            + rescheduled.iter().map(|(p, _)| p.bytes).sum::<u64>();
        let shard_bytes: u64 = input.layers.iter().map(|l| l.shard_bytes()).sum();

        Ok(Schedule {
            tasks,
            num_steps: n_steps,
            trigger_offsets,
            stats: ScheduleStats {
                pages_resident: resident_pages,
                pages_cpu_bound: total_pages - resident_pages,
                peak_gpu_bytes: res.peak(),
                resident_fraction: if shard_bytes == 0 {
                    0.0
                } else {
                    resident_bytes as f64 / shard_bytes as f64
                },
                gathers_advanced,
            },
        })
    }
}

/// Build a [`SchedulerInput`] from a [`crate::tracer::Trace`], a page size,
/// a data-parallel degree (ZeRO sharding denominator) and the GPU budget.
pub fn input_from_trace(
    trace: &crate::tracer::Trace,
    page_size: u64,
    dp_degree: usize,
    gpu_budget: u64,
) -> SchedulerInput {
    assert!(dp_degree >= 1);
    let layers = (0..trace.layers)
        .map(|l| {
            let full = trace.layer_param16_bytes(l);
            let shard = full.div_ceil(dp_degree as u64);
            let mut pages = Vec::with_capacity(shard.div_ceil(page_size.max(1)) as usize);
            let mut rest = shard;
            while rest > 0 {
                let take = rest.min(page_size);
                pages.push(take);
                rest -= take;
            }
            LayerPlan {
                layer: l,
                shard_pages: pages,
                full_param_bytes: full,
                working_set: trace.layer_working_set(l),
            }
        })
        .collect();
    // Without recomputation, every layer's activations stay live from its
    // forward to its backward; that accumulated load is outside this
    // schedule's control but must constrain it.
    let steps = SchedulerInput::default_steps(trace.layers);
    let step_base_load = if trace.recompute {
        Vec::new()
    } else {
        steps
            .iter()
            .enumerate()
            .map(|(j, s)| {
                (0..trace.layers)
                    .filter(|&l| {
                        l != s.layer() && trace.forward_id(l) <= j && j <= trace.backward_id(l)
                    })
                    .map(|l| trace.layer_activation_bytes(l))
                    .sum()
            })
            .collect()
    };
    SchedulerInput {
        layers,
        steps,
        gpu_budget,
        page_size,
        step_base_load,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A uniform toy model with hand-checkable numbers.
    fn toy(
        n: usize,
        pages_per_layer: usize,
        page_bytes: u64,
        ws: u64,
        budget: u64,
    ) -> SchedulerInput {
        let layers = (0..n)
            .map(|l| LayerPlan {
                layer: l,
                shard_pages: vec![page_bytes; pages_per_layer],
                full_param_bytes: page_bytes * pages_per_layer as u64,
                working_set: ws,
            })
            .collect();
        SchedulerInput {
            layers,
            steps: SchedulerInput::default_steps(n),
            gpu_budget: budget,
            page_size: page_bytes,
            step_base_load: Vec::new(),
        }
    }

    #[test]
    fn everything_resident_when_memory_ample() {
        // 4 layers × 2 pages × 10 B = 80 B of shards, budget 1000.
        let input = toy(4, 2, 10, 5, 1000);
        let s = UnifiedScheduler::default().schedule(&input).unwrap();
        assert_eq!(s.stats.pages_cpu_bound, 0);
        assert_eq!(s.stats.pages_resident, 8);
        assert!((s.stats.resident_fraction - 1.0).abs() < 1e-12);
        let moves: Vec<_> = s
            .tasks
            .iter()
            .filter(|t| matches!(t.op, TaskOp::MoveToGpu(_)))
            .collect();
        assert_eq!(moves.len(), 8);
        assert!(moves.iter().all(|t| t.trigger_id == 0));
    }

    #[test]
    fn compute_tasks_in_step_order() {
        let input = toy(3, 1, 10, 0, 1000);
        let s = UnifiedScheduler::default().schedule(&input).unwrap();
        let computes: Vec<_> = s
            .tasks
            .iter()
            .filter_map(|t| match t.op {
                TaskOp::Compute(k) => Some((k, t.trigger_id)),
                _ => None,
            })
            .collect();
        assert_eq!(computes.len(), 6);
        assert_eq!(computes[0], (StepKind::Forward(0), 0));
        assert_eq!(computes[5], (StepKind::Backward(0), 5));
    }

    #[test]
    fn memory_pressure_evicts_pages() {
        // Each layer: 4 pages × 10 B = 40 B full params; ws 10. Budget 120:
        // cannot hold all 3 layers' shards (120 B) plus working sets.
        let input = toy(3, 4, 10, 10, 120);
        let s = UnifiedScheduler::default().schedule(&input).unwrap();
        assert!(s.stats.pages_cpu_bound > 0, "must evict under pressure");
        assert!(s.stats.peak_gpu_bytes <= 120);
        assert!(s.stats.resident_fraction < 1.0);
    }

    #[test]
    fn peak_never_exceeds_budget_when_feasible() {
        for budget in [60, 90, 150, 400] {
            let input = toy(4, 3, 10, 15, budget);
            let s = UnifiedScheduler::default().schedule(&input).unwrap();
            assert!(
                s.stats.peak_gpu_bytes <= budget,
                "budget {budget}: peak {}",
                s.stats.peak_gpu_bytes
            );
        }
    }

    #[test]
    fn infeasible_layer_detected() {
        // One layer needs 40 + 100 = 140 > 100 budget even alone.
        let input = toy(2, 4, 10, 100, 100);
        assert!(matches!(
            UnifiedScheduler::default().schedule(&input),
            Err(Error::WorkingSetTooLarge { .. })
        ));
    }

    #[test]
    fn phase2_advances_gathers_when_memory_allows() {
        let input = toy(4, 2, 10, 5, 1000);
        let s = UnifiedScheduler::default().schedule(&input).unwrap();
        // With ample memory every gather advances to the prefetch horizon.
        for t in &s.tasks {
            if let TaskOp::AllGather { step, .. } = t.op {
                assert_eq!(t.trigger_id, step.saturating_sub(4), "step {step}");
            }
        }
        assert!(s.stats.gathers_advanced > 0);
        // An unbounded horizon drags everything to trigger 0.
        let deep = UnifiedScheduler {
            phase2: true,
            prefetch_horizon: usize::MAX,
        }
        .schedule(&input)
        .unwrap();
        let gathers: Vec<_> = deep
            .tasks
            .iter()
            .filter(|t| matches!(t.op, TaskOp::AllGather { .. }))
            .collect();
        assert!(gathers.iter().all(|t| t.trigger_id == 0));
    }

    #[test]
    fn phase2_respects_budget() {
        // Sharded layers (shard 20 of full 40): gathers cost real memory,
        // so under a tight budget they can only be advanced a little.
        let mut input = toy(4, 2, 10, 10, 120);
        for l in &mut input.layers {
            l.full_param_bytes = 40;
        }
        let s = UnifiedScheduler::default().schedule(&input).unwrap();
        assert!(s.stats.peak_gpu_bytes <= 120);
        let g0 = s
            .tasks
            .iter()
            .filter(|t| matches!(t.op, TaskOp::AllGather { .. }) && t.trigger_id == 0)
            .count();
        let total_g = s
            .tasks
            .iter()
            .filter(|t| matches!(t.op, TaskOp::AllGather { .. }))
            .count();
        assert!(g0 < total_g, "g0={g0} total={total_g}");
    }

    #[test]
    fn tasks_sorted_by_trigger() {
        let input = toy(5, 3, 10, 10, 200);
        let s = UnifiedScheduler::default().schedule(&input).unwrap();
        assert!(s
            .tasks
            .windows(2)
            .all(|w| w[0].trigger_id <= w[1].trigger_id));
    }

    #[test]
    fn trigger_index_matches_filter() {
        // The O(1) slice lookup returns exactly what the old full-list
        // filter did, for every trigger id (and nothing out of range).
        let input = toy(5, 3, 10, 10, 200);
        let s = UnifiedScheduler::default().schedule(&input).unwrap();
        for id in 0..s.num_steps + 2 {
            let via_index: Vec<_> = s.at_trigger(id).collect();
            let via_filter: Vec<_> = s.tasks.iter().filter(|t| t.trigger_id == id).collect();
            assert_eq!(via_index, via_filter, "trigger {id}");
        }
        assert_eq!(
            s.trigger_offsets.len(),
            s.num_steps + 1,
            "offset table spans every trigger"
        );
        assert_eq!(*s.trigger_offsets.last().unwrap(), s.tasks.len());
    }

    #[test]
    fn input_from_trace_wires_up() {
        let cfg = angel_model::TransformerConfig::gpt3_1_7b()
            .with_layers(2)
            .with_seq_len(128);
        let trace = crate::tracer::Tracer::default().trace(&cfg, 1, true);
        let input = input_from_trace(&trace, crate::PAGE_SIZE_DEFAULT, 8, 1 << 33);
        assert_eq!(input.layers.len(), 2);
        assert_eq!(input.steps.len(), 4);
        // Shard = full/8 rounded up into 4 MiB pages.
        let full = trace.layer_param16_bytes(0);
        let shard: u64 = input.layers[0].shard_pages.iter().sum();
        assert!(shard >= full / 8 && shard < full / 8 + crate::PAGE_SIZE_DEFAULT);
        let s = UnifiedScheduler::default().schedule(&input).unwrap();
        assert!(s.stats.peak_gpu_bytes <= input.gpu_budget);
    }

    #[test]
    fn more_budget_means_more_residency() {
        let tight = UnifiedScheduler::default()
            .schedule(&toy(6, 4, 10, 10, 100))
            .unwrap();
        let roomy = UnifiedScheduler::default()
            .schedule(&toy(6, 4, 10, 10, 400))
            .unwrap();
        assert!(roomy.stats.resident_fraction >= tight.stats.resident_fraction);
        assert!(roomy.stats.pages_cpu_bound <= tight.stats.pages_cpu_bound);
    }

    #[test]
    fn evicted_pages_can_be_rescheduled_later() {
        // Big early layers force eviction; after backward passes them, the
        // freed memory lets waiting pages return (lines 13–15).
        let mut input = toy(4, 2, 10, 4, 70);
        // Make layer 0 huge so early steps are tight.
        input.layers[0].shard_pages = vec![10; 4];
        input.layers[0].full_param_bytes = 40;
        let s = UnifiedScheduler::default().schedule(&input).unwrap();
        let late_moves = s
            .tasks
            .iter()
            .filter(|t| matches!(t.op, TaskOp::MoveToGpu(_)) && t.trigger_id > 0)
            .count();
        // Either everything fit up front, or some moves happen later — but
        // the budget must hold regardless.
        assert!(s.stats.peak_gpu_bytes <= 70);
        let _ = late_moves;
    }

    // ---- Oracle equivalence ---------------------------------------------

    fn assert_identical(input: &SchedulerInput, sched: &UnifiedScheduler) {
        let fast = sched.schedule(input);
        let slow = oracle::schedule(sched, input);
        match (fast, slow) {
            (Ok(f), Ok(s)) => {
                assert_eq!(f.tasks, s.tasks, "task lists diverge");
                assert_eq!(f.stats, s.stats, "stats diverge");
                assert_eq!(f.trigger_offsets, s.trigger_offsets, "indexes diverge");
                assert_eq!(f.num_steps, s.num_steps);
            }
            (Err(_), Err(_)) => {}
            (f, s) => panic!(
                "feasibility diverges: fast {:?} vs oracle {:?}",
                f.map(|x| x.stats),
                s.map(|x| x.stats)
            ),
        }
    }

    #[test]
    fn oracle_equivalence_on_hand_inputs() {
        let sched = UnifiedScheduler::default();
        for input in [
            toy(4, 2, 10, 5, 1000),
            toy(3, 4, 10, 10, 120),
            toy(6, 4, 10, 10, 100),
            toy(6, 4, 10, 10, 400),
            toy(1, 1, 1, 0, 1),
            toy(5, 3, 10, 10, 200),
        ] {
            assert_identical(&input, &sched);
        }
        // Sharded (gathers cost memory) + huge first layer + base load.
        let mut input = toy(4, 2, 10, 10, 120);
        for l in &mut input.layers {
            l.full_param_bytes = 40;
        }
        assert_identical(&input, &UnifiedScheduler::default());
        let mut input = toy(4, 2, 10, 4, 70);
        input.layers[0].shard_pages = vec![10; 4];
        input.layers[0].full_param_bytes = 40;
        input.step_base_load = vec![3; 8];
        assert_identical(&input, &UnifiedScheduler::default());
        // Phase 2 off, and unbounded horizon.
        assert_identical(
            &toy(4, 3, 10, 15, 90),
            &UnifiedScheduler {
                phase2: false,
                prefetch_horizon: 4,
            },
        );
        assert_identical(
            &toy(4, 3, 10, 15, 90),
            &UnifiedScheduler {
                phase2: true,
                prefetch_horizon: usize::MAX,
            },
        );
    }

    #[test]
    fn oracle_equivalence_on_traced_model() {
        let cfg = angel_model::TransformerConfig::gpt3_1_7b()
            .with_layers(6)
            .with_seq_len(256);
        let trace = crate::tracer::Tracer::default().trace(&cfg, 2, true);
        for budget_shift in [30, 31, 33] {
            let input = input_from_trace(&trace, crate::PAGE_SIZE_DEFAULT, 8, 1 << budget_shift);
            assert_identical(&input, &UnifiedScheduler::default());
        }
    }

    // ---- Phase-2 horizon boundary regressions ---------------------------

    #[test]
    fn advance_gather_stops_exactly_at_the_horizon() {
        // Ample memory: every gather must advance to exactly
        // max(i - horizon, 0), never one step further.
        for horizon in [0usize, 1, 2, 4, 7] {
            let input = toy(5, 2, 10, 5, 10_000);
            let s = UnifiedScheduler {
                phase2: true,
                prefetch_horizon: horizon,
            }
            .schedule(&input)
            .unwrap();
            for t in &s.tasks {
                if let TaskOp::AllGather { step, .. } = t.op {
                    assert_eq!(
                        t.trigger_id,
                        step.saturating_sub(horizon),
                        "horizon {horizon}, step {step}"
                    );
                }
            }
            assert_identical(
                &input,
                &UnifiedScheduler {
                    phase2: true,
                    prefetch_horizon: horizon,
                },
            );
        }
    }

    #[test]
    fn advance_gather_budget_block_inside_horizon() {
        // Sharded layers under a budget that lets gathers advance only
        // partway into the horizon window: the stop point (the latest
        // over-threshold step) must match the oracle's one-step walk.
        for budget in [80u64, 90, 100, 110, 120, 140] {
            let mut input = toy(6, 2, 10, 10, budget);
            for l in &mut input.layers {
                l.full_param_bytes = 40; // shard 20 of full 40
            }
            for horizon in [1usize, 3, 4, 6, usize::MAX] {
                assert_identical(
                    &input,
                    &UnifiedScheduler {
                        phase2: true,
                        prefetch_horizon: horizon,
                    },
                );
            }
        }
    }

    #[test]
    fn advance_gather_when_buffer_exceeds_budget() {
        // A gather whose buffer alone is above the remaining budget must
        // stay just-in-time (the oracle's `mem[g-1] + extra <= budget` is
        // false everywhere; the optimized path's checked_sub underflow arm).
        let mut input = toy(3, 1, 10, 0, 100);
        for l in &mut input.layers {
            l.full_param_bytes = 120; // gathered layer barely infeasible?
        }
        // full (120) + ws (0) > budget → infeasible for both.
        assert_identical(&input, &UnifiedScheduler::default());
        // Now make it feasible but with zero slack beyond the gather.
        for l in &mut input.layers {
            l.full_param_bytes = 100;
        }
        assert_identical(&input, &UnifiedScheduler::default());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Random scheduler inputs: 1–7 layers with jagged page lists (0–6
    /// pages of 0–40 bytes), independent full/working-set bytes, a budget
    /// spanning infeasible-to-ample, optional per-step base load, and a
    /// random prefetch horizon. Feasibility divergence is also checked.
    fn input_strategy() -> impl Strategy<Value = (SchedulerInput, UnifiedScheduler)> {
        (
            proptest::collection::vec(
                (
                    proptest::collection::vec(0u64..40, 0..6),
                    0u64..120,
                    0u64..60,
                ),
                1..7,
            ),
            1u64..400,
            any::<bool>(),
            0usize..8,
            any::<bool>(),
        )
            .prop_map(|(layers, budget, with_base, horizon, phase2)| {
                let n = layers.len();
                let layers: Vec<LayerPlan> = layers
                    .into_iter()
                    .enumerate()
                    .map(|(l, (pages, full, ws))| LayerPlan {
                        layer: l,
                        shard_pages: pages,
                        full_param_bytes: full,
                        working_set: ws,
                    })
                    .collect();
                let steps = SchedulerInput::default_steps(n);
                let step_base_load = if with_base {
                    (0..steps.len()).map(|j| (j as u64 * 7) % 23).collect()
                } else {
                    Vec::new()
                };
                (
                    SchedulerInput {
                        layers,
                        steps,
                        gpu_budget: budget,
                        page_size: 16,
                        step_base_load,
                    },
                    UnifiedScheduler {
                        phase2,
                        prefetch_horizon: horizon,
                    },
                )
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The optimized planner is byte-identical to the retained naive
        /// oracle: same task list, same `ScheduleStats` (including peak),
        /// same trigger index — or the same infeasibility verdict.
        #[test]
        fn optimized_schedule_matches_oracle(
            (input, sched) in input_strategy()
        ) {
            let fast = sched.schedule(&input);
            let slow = oracle::schedule(&sched, &input);
            match (fast, slow) {
                (Ok(f), Ok(s)) => {
                    prop_assert_eq!(f.tasks, s.tasks);
                    prop_assert_eq!(f.stats, s.stats);
                    prop_assert_eq!(f.trigger_offsets, s.trigger_offsets);
                    prop_assert_eq!(f.num_steps, s.num_steps);
                }
                (Err(_), Err(_)) => {}
                (f, s) => prop_assert!(
                    false,
                    "feasibility diverges: fast {:?} vs oracle {:?}",
                    f.is_ok(),
                    s.is_ok()
                ),
            }
        }
    }
}
