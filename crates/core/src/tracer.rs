//! The Tracer — Section 5 of the paper.
//!
//! "The Tracer in Angel-PTM is responsible for tracking the usage of each
//! tensor and summarizing a tensor access pattern for the given model as a
//! list of following elements: `tensor_id`, `first_id` (the logical ID when
//! first accessing this tensor), `end_id` (the logical ID when last
//! accessing this tensor), `cpu_time`, `gpu_time`."
//!
//! The production system obtains these by hooking parameter construction and
//! registering forward/backward hooks over one profiled iteration. Here the
//! iteration is replayed *symbolically*: training is iterative (Section 4.2,
//! "the training of deep learning models is iterative by nature"), so one
//! replay of the op list — forward over all layers, backward in reverse,
//! optimizer updates — yields the exact access pattern of every subsequent
//! iteration. Logical IDs index into that op list ("using logical IDs
//! instead of real-time for lifetime tracking simplifies the scheduling
//! process").

use angel_model::{layer_inventory, TensorClass, TensorSpec, TransformerConfig};
use angel_sim::compute::{CpuUpdateModel, GpuComputeModel};
use serde::{Deserialize, Serialize};

/// One step of the symbolic iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpKind {
    /// Forward computation of layer `l`.
    Forward(usize),
    /// Backward computation of layer `l` (includes recomputation when
    /// enabled).
    Backward(usize),
    /// Optimizer update of layer `l` (scheduled after backward produces the
    /// layer's gradients).
    Update(usize),
}

impl OpKind {
    pub fn layer(self) -> usize {
        match self {
            OpKind::Forward(l) | OpKind::Backward(l) | OpKind::Update(l) => l,
        }
    }
}

/// The access pattern of one tensor, exactly the record listed in Section 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TensorTrace {
    /// The logical ID of this tensor (index into the traced inventory).
    pub tensor_id: usize,
    /// The logical ID when first accessing this tensor.
    pub first_id: usize,
    /// The logical ID when last accessing this tensor.
    pub end_id: usize,
    /// The time for producing this tensor on CPU (ns).
    pub cpu_time: u64,
    /// The time for producing this tensor on GPU (ns).
    pub gpu_time: u64,
}

impl TensorTrace {
    /// Life-time in logical IDs: "the duration from its first access time to
    /// its last access time within a training iteration".
    pub fn lifetime(&self) -> usize {
        self.end_id - self.first_id
    }

    /// Whether the tensor is live at logical id `id`.
    pub fn live_at(&self, id: usize) -> bool {
        self.first_id <= id && id <= self.end_id
    }
}

/// Everything the Unified Scheduler needs about one model: the op list, the
/// inventory, and per-tensor traces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    pub ops: Vec<OpKind>,
    pub inventory: Vec<TensorSpec>,
    pub tensors: Vec<TensorTrace>,
    pub layers: usize,
    pub recompute: bool,
}

impl Trace {
    /// Logical id of the forward op of layer `l`.
    pub fn forward_id(&self, l: usize) -> usize {
        l
    }

    /// Logical id of the backward op of layer `l` (backward runs in reverse
    /// layer order right after the last forward).
    pub fn backward_id(&self, l: usize) -> usize {
        2 * self.layers - 1 - l
    }

    /// Logical id of the update op of layer `l`. Updates are emitted in
    /// backward (reverse-layer) order, mirroring Algorithm 2's updating
    /// thread ("for l_i ∈ reverse(model)").
    pub fn update_id(&self, l: usize) -> usize {
        2 * self.layers + (self.layers - 1 - l)
    }

    /// Bytes of model-state tensors belonging to layer `l` that must be
    /// GPU-resident for its forward/backward (FP16 params).
    pub fn layer_param16_bytes(&self, l: usize) -> u64 {
        self.inventory
            .iter()
            .filter(|t| t.layer == l && t.class == TensorClass::Param16)
            .map(|t| t.bytes)
            .sum()
    }

    /// Split of layer `l`'s FP16 parameter bytes into (non-expert,
    /// expert) parts. Under expert parallelism the expert part is *local*
    /// to each rank (sharded by routing, never gathered), while the
    /// non-expert part is ZeRO-sharded and gathered per use.
    pub fn layer_param16_split(&self, l: usize) -> (u64, u64) {
        let mut dense = 0;
        let mut expert = 0;
        for t in self
            .inventory
            .iter()
            .filter(|t| t.layer == l && t.class == TensorClass::Param16)
        {
            if t.name.contains("expert") {
                expert += t.bytes;
            } else {
                dense += t.bytes;
            }
        }
        (dense, expert)
    }

    /// Peak transient working set of layer `l` on the GPU: activations it
    /// produces (bounded to the layer when recomputation is on) plus its
    /// gradient buffer.
    pub fn layer_working_set(&self, l: usize) -> u64 {
        self.layer_activation_bytes(l) + self.layer_grad16_split(l).0 + self.layer_grad16_split(l).1
    }

    /// Activation bytes of layer `l`.
    pub fn layer_activation_bytes(&self, l: usize) -> u64 {
        self.inventory
            .iter()
            .filter(|t| t.layer == l && t.class == TensorClass::Activation)
            .map(|t| t.bytes)
            .sum()
    }

    /// Split of layer `l`'s FP16 gradient bytes into (non-expert, expert)
    /// parts, mirroring [`Trace::layer_param16_split`].
    pub fn layer_grad16_split(&self, l: usize) -> (u64, u64) {
        let mut dense = 0;
        let mut expert = 0;
        for t in self
            .inventory
            .iter()
            .filter(|t| t.layer == l && t.class == TensorClass::Grad16)
        {
            if t.name.contains("expert") {
                expert += t.bytes;
            } else {
                dense += t.bytes;
            }
        }
        (dense, expert)
    }

    /// Total bytes live at logical id `id` — the peak-memory primitive used
    /// by phase 2's OOM check.
    pub fn live_bytes_at(&self, id: usize) -> u64 {
        self.tensors
            .iter()
            .zip(&self.inventory)
            .filter(|(tr, _)| tr.live_at(id))
            .map(|(_, spec)| spec.bytes)
            .sum()
    }
}

/// The Tracer itself.
#[derive(Debug, Clone)]
pub struct Tracer {
    pub gpu_model: GpuComputeModel,
    pub cpu_model: CpuUpdateModel,
}

impl Default for Tracer {
    fn default() -> Self {
        Self {
            gpu_model: GpuComputeModel::a100(),
            cpu_model: CpuUpdateModel::epyc_tencent(),
        }
    }
}

impl Tracer {
    /// Replay one symbolic iteration of `config` at batch `b` and summarize
    /// every tensor's access pattern.
    ///
    /// Life-time rules:
    /// * `Param16(l)`: first = forward(l), last = backward(l) — the update
    ///   writes a *new* buffered parameter (Algorithm 2), so the training
    ///   iteration's own access ends at backward;
    /// * `Grad16(l)`: first = backward(l), last = update(l);
    /// * optimizer states (`Master32`/`Momentum32`/`Variance32`): accessed
    ///   only at update(l);
    /// * `Activation(l)`: produced at forward(l); with recomputation it is
    ///   released immediately (end = forward(l)) and re-derived inside
    ///   backward's working set, otherwise it lives until backward(l).
    pub fn trace(&self, config: &TransformerConfig, b: u64, recompute: bool) -> Trace {
        let n = config.layers;
        let mut ops = Vec::with_capacity(3 * n);
        for l in 0..n {
            ops.push(OpKind::Forward(l));
        }
        for l in (0..n).rev() {
            ops.push(OpKind::Backward(l));
        }
        for l in (0..n).rev() {
            ops.push(OpKind::Update(l));
        }

        let mut inventory = Vec::new();
        for l in 0..n {
            inventory.extend(layer_inventory(config, l, b));
        }

        let flops = angel_model::flops::layer_flops(config, b);
        let layer_gpu_time =
            self.gpu_model
                .time_ns_sized(flops.total(recompute), b as f64, config.d_model as f64);
        let layer_param_bytes: u64 = inventory
            .iter()
            .filter(|t| t.layer == 0 && t.class != TensorClass::Activation)
            .map(|t| t.bytes)
            .sum();

        let tensors = inventory
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let l = spec.layer;
                let fwd = l;
                let bwd = 2 * n - 1 - l;
                let upd = 2 * n + (n - 1 - l);
                let (first_id, end_id) = match spec.class {
                    TensorClass::Param16 => (fwd, bwd),
                    TensorClass::Grad16 => (bwd, upd),
                    TensorClass::Master32 | TensorClass::Momentum32 | TensorClass::Variance32 => {
                        (upd, upd)
                    }
                    TensorClass::Activation => {
                        if recompute {
                            (fwd, fwd)
                        } else {
                            (fwd, bwd)
                        }
                    }
                };
                // Production-time estimates, apportioned by size: the
                // profiled per-layer GPU time split over the layer's state
                // bytes, and the bandwidth-bound CPU update cost.
                let gpu_time = if layer_param_bytes == 0 {
                    0
                } else {
                    (layer_gpu_time as u128 * spec.bytes as u128 / layer_param_bytes.max(1) as u128)
                        as u64
                };
                let cpu_time = self.cpu_model.time_ns(spec.bytes * 2); // read+write
                TensorTrace {
                    tensor_id: i,
                    first_id,
                    end_id,
                    cpu_time,
                    gpu_time,
                }
            })
            .collect();

        Trace {
            ops,
            inventory,
            tensors,
            layers: n,
            recompute,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TransformerConfig {
        TransformerConfig::gpt3_1_7b()
            .with_layers(4)
            .with_seq_len(128)
    }

    #[test]
    fn op_list_structure() {
        let trace = Tracer::default().trace(&small(), 2, true);
        assert_eq!(trace.ops.len(), 12);
        assert_eq!(trace.ops[0], OpKind::Forward(0));
        assert_eq!(trace.ops[3], OpKind::Forward(3));
        assert_eq!(trace.ops[4], OpKind::Backward(3));
        assert_eq!(trace.ops[7], OpKind::Backward(0));
        assert_eq!(trace.ops[8], OpKind::Update(3));
        assert_eq!(trace.ops[11], OpKind::Update(0));
        // The id helpers agree with the list.
        for l in 0..4 {
            assert_eq!(trace.ops[trace.forward_id(l)], OpKind::Forward(l));
            assert_eq!(trace.ops[trace.backward_id(l)], OpKind::Backward(l));
            assert_eq!(trace.ops[trace.update_id(l)], OpKind::Update(l));
        }
    }

    #[test]
    fn param_lifetime_spans_forward_to_backward() {
        let trace = Tracer::default().trace(&small(), 2, true);
        let (i, spec) = trace
            .inventory
            .iter()
            .enumerate()
            .find(|(_, t)| t.layer == 1 && t.class == TensorClass::Param16)
            .unwrap();
        let tr = &trace.tensors[i];
        assert_eq!(tr.first_id, 1); // forward(1)
        assert_eq!(tr.end_id, trace.backward_id(1));
        assert!(tr.live_at(3));
        assert!(!tr.live_at(trace.update_id(1)));
        let _ = spec;
    }

    #[test]
    fn grad_lifetime_spans_backward_to_update() {
        let trace = Tracer::default().trace(&small(), 2, true);
        let (i, _) = trace
            .inventory
            .iter()
            .enumerate()
            .find(|(_, t)| t.layer == 2 && t.class == TensorClass::Grad16)
            .unwrap();
        let tr = &trace.tensors[i];
        assert_eq!(tr.first_id, trace.backward_id(2));
        assert_eq!(tr.end_id, trace.update_id(2));
    }

    #[test]
    fn optimizer_states_touch_only_update() {
        let trace = Tracer::default().trace(&small(), 2, true);
        for (tr, spec) in trace.tensors.iter().zip(&trace.inventory) {
            if spec.class.is_optimizer_state() {
                assert_eq!(tr.first_id, tr.end_id);
                assert_eq!(tr.first_id, trace.update_id(spec.layer));
                assert_eq!(tr.lifetime(), 0);
            }
        }
    }

    #[test]
    fn recompute_shortens_activation_lifetime() {
        let with = Tracer::default().trace(&small(), 2, true);
        let without = Tracer::default().trace(&small(), 2, false);
        let idx = with
            .inventory
            .iter()
            .position(|t| t.layer == 0 && t.class == TensorClass::Activation)
            .unwrap();
        assert_eq!(with.tensors[idx].lifetime(), 0);
        assert_eq!(without.tensors[idx].end_id, without.backward_id(0));
        assert!(without.tensors[idx].lifetime() > 0);
    }

    #[test]
    fn live_bytes_peak_midway() {
        // Without recomputation, everything forward-produced is still live at
        // the fwd/bwd boundary — the classic activation peak.
        let trace = Tracer::default().trace(&small(), 2, false);
        let at_start = trace.live_bytes_at(0);
        let at_turn = trace.live_bytes_at(trace.layers - 1);
        assert!(at_turn > at_start);
    }

    #[test]
    fn times_are_populated() {
        let trace = Tracer::default().trace(&small(), 2, true);
        assert!(trace.tensors.iter().any(|t| t.gpu_time > 0));
        assert!(trace.tensors.iter().all(|t| t.cpu_time > 0));
    }

    #[test]
    fn layer_aggregates() {
        let trace = Tracer::default().trace(&small(), 2, true);
        assert!(trace.layer_param16_bytes(0) > 0);
        assert!(trace.layer_working_set(0) > trace.layer_param16_bytes(0) / 100);
        // All layers of a homogeneous GPT are identical.
        assert_eq!(trace.layer_param16_bytes(0), trace.layer_param16_bytes(3));
    }
}
