//! ZeRO-style parameter sharding — Section 3.2's "Parameter Sharding" design
//! and Section 5's "Efficient Movement on Distributed Servers".
//!
//! "We adopt the parameter sharding approach proposed by ZeRO, which evenly
//! splits each parameter among multiple GPUs. When a parameter needs to be
//! calculated, the complete parameter is obtained through an all-gather
//! operation."
//!
//! "We evenly partition the model parameters across GPUs to parallelize the
//! movement of parameters between the CPU and GPUs" — with 8 GPUs each on
//! its own PCIe channel, host↔device movement of a full layer runs at 8× the
//! single-channel bandwidth.

use angel_hw::Link;
use angel_sim::collectives::{collective_time_ns, Collective};
use angel_sim::Ns;
use serde::{Deserialize, Serialize};

/// An even partition of tensors/pages across `ranks` data-parallel workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZeroPartition {
    pub ranks: usize,
}

impl ZeroPartition {
    pub fn new(ranks: usize) -> Self {
        assert!(ranks >= 1);
        Self { ranks }
    }

    /// Bytes of one rank's shard of a `total`-byte tensor (last rank may
    /// hold padding; we use the ceiling uniformly, as ZeRO pads).
    pub fn shard_bytes(&self, total: u64) -> u64 {
        total.div_ceil(self.ranks as u64)
    }

    /// Time to all-gather a `total`-byte tensor (all ranks end with a full
    /// copy) over `link`.
    pub fn all_gather_time_ns(&self, total: u64, link: &Link) -> Ns {
        collective_time_ns(Collective::AllGather, total, self.ranks as u64, link)
    }

    /// Time to reduce-scatter gradients of a `total`-byte tensor over `link`.
    pub fn reduce_scatter_time_ns(&self, total: u64, link: &Link) -> Ns {
        collective_time_ns(Collective::ReduceScatter, total, self.ranks as u64, link)
    }

    /// Time to move `total` bytes between host and devices when the movement
    /// is parallelized across the ranks' independent PCIe channels — each
    /// channel carries only the rank's shard.
    pub fn parallel_move_time_ns(&self, total: u64, pcie: &Link) -> Ns {
        pcie.transfer_ns(self.shard_bytes(total))
    }

    /// Speedup of parallel movement over a single channel, for reporting.
    pub fn parallel_move_speedup(&self, total: u64, pcie: &Link) -> f64 {
        let single = pcie.transfer_time_ns(total);
        let parallel = self.parallel_move_time_ns(total, pcie);
        single as f64 / parallel as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use angel_hw::{LinkClass, GB_PER_S, MIB};

    fn pcie() -> Link {
        Link::new(LinkClass::Pcie, 32 * GB_PER_S, 10_000)
    }

    #[test]
    fn shard_is_even_with_padding() {
        let z = ZeroPartition::new(8);
        assert_eq!(z.shard_bytes(800), 100);
        assert_eq!(z.shard_bytes(801), 101);
        assert_eq!(ZeroPartition::new(1).shard_bytes(800), 800);
    }

    #[test]
    fn parallel_movement_is_near_linear() {
        // Section 5: 8 GPUs each with an independent PCIe channel move a
        // layer ~8× faster than one channel.
        let z = ZeroPartition::new(8);
        let total = 512 * MIB;
        let speedup = z.parallel_move_speedup(total, &pcie());
        assert!(speedup > 7.5 && speedup <= 8.01, "speedup = {speedup}");
    }

    #[test]
    fn gather_time_reasonable() {
        let z = ZeroPartition::new(8);
        let nvlink = Link::new(LinkClass::NvLink, 200 * GB_PER_S, 5_000);
        let t = z.all_gather_time_ns(512 * MIB, &nvlink);
        // (7/8)·512 MiB over 200 GB/s ≈ 2.3 ms plus 7 × 5 µs latency.
        assert!(t > 2_000_000 && t < 3_000_000, "t = {t}");
    }

    #[test]
    fn reduce_scatter_matches_all_gather_volume() {
        let z = ZeroPartition::new(4);
        let l = pcie();
        assert_eq!(
            z.all_gather_time_ns(1 << 20, &l),
            z.reduce_scatter_time_ns(1 << 20, &l)
        );
    }
}
