//! Splice-soundness of the online replanning loop.
#![allow(clippy::disallowed_methods)] // test harness: failing loudly is the job
//!
//! The guarantee under test: when [`Engine::run_online`] splices a new plan
//! in at an iteration boundary, every iteration after the boundary is
//! **byte-identical** to what a fresh engine initialized at the new
//! configuration would run — no task from the abandoned tail of the old
//! plan executes, no stale trigger slot survives. Because the incremental
//! planner is proven byte-identical to a from-scratch schedule of the
//! mutated input (see `replan::proptests`), this reduces splice soundness
//! to plan equality, which these tests check on the schedules and the
//! deterministic per-iteration statistics.

use angel_core::{ClusterEvent, Engine, EngineConfig, FaultTarget, IterStats};
use angel_model::TransformerConfig;

fn tiny() -> TransformerConfig {
    TransformerConfig::gpt3_1_7b()
        .with_layers(4)
        .with_seq_len(256)
}

/// All IterStats fields derive from the same u64 simulation outputs, so
/// spliced-vs-fresh equality is exact, not approximate.
fn assert_identical_iter(a: &IterStats, b: &IterStats) {
    assert_eq!(a, b, "spliced iteration differs from fresh engine");
}

#[test]
fn resize_splice_matches_a_fresh_engine_at_the_new_size() {
    let mut spliced = Engine::initialize(&tiny(), &EngineConfig::servers(2)).unwrap();
    let report = spliced
        .run_online(
            3,
            &[ClusterEvent::Resize {
                at_iter: 0,
                servers: 1,
            }],
        )
        .unwrap();
    assert_eq!(report.splices.len(), 1);
    assert_eq!(report.splices[0].at_iter, 0);
    assert_eq!(report.splices[0].servers, 1);

    let mut fresh = Engine::initialize(&tiny(), &EngineConfig::servers(1)).unwrap();
    let fresh_iter = fresh.train_iteration();
    // Every post-splice iteration equals the fresh single-server iteration.
    assert_identical_iter(&report.per_iter[1], &fresh_iter);
    assert_identical_iter(&report.per_iter[2], &fresh_iter);
    // And the spliced plan itself is the fresh plan: identical task lists
    // and trigger layout — nothing of the two-server tail remains.
    assert_eq!(spliced.schedule().tasks, fresh.schedule().tasks);
    assert_eq!(
        spliced.schedule().trigger_offsets,
        fresh.schedule().trigger_offsets
    );
    assert_eq!(spliced.schedule().stats, fresh.schedule().stats);
    assert_eq!(spliced.config().parallelism, fresh.config().parallelism);
}

#[test]
fn server_loss_splice_runs_clean_after_the_boundary() {
    let mut spliced = Engine::initialize(&tiny(), &EngineConfig::servers(2)).unwrap();
    let report = spliced
        .run_online(
            2,
            &[ClusterEvent::ServerLoss {
                at_iter: 0,
                servers: 1,
                at_ns: 0,
            }],
        )
        .unwrap();
    // The loss iteration strands the collective chain…
    assert!(report.per_iter[0].tasks_failed > 0);
    // …but after the splice the degraded fleet runs the fresh single-server
    // plan, byte-identical to an engine that never saw two servers.
    let fresh_iter = Engine::initialize(&tiny(), &EngineConfig::servers(1))
        .unwrap()
        .train_iteration();
    assert_eq!(report.per_iter[1].tasks_failed, 0);
    assert_identical_iter(&report.per_iter[1], &fresh_iter);
    // Debug builds re-verified the spliced lowering (plan graph + SPMD).
    if cfg!(debug_assertions) {
        assert!(report.splices[0].verified);
    }
}

#[test]
fn outage_splice_replans_under_a_tightened_budget_and_stays_sound() {
    let mut spliced = Engine::initialize(&tiny(), &EngineConfig::single_server()).unwrap();
    let reserved = spliced.config().gpu_reserved;
    let report = spliced
        .run_online(
            3,
            &[ClusterEvent::Outage {
                at_iter: 0,
                target: FaultTarget::H2d,
                at_ns: 0,
                duration_ns: 1_000_000,
            }],
        )
        .unwrap();
    assert_eq!(report.splices.len(), 1);
    let tightened = spliced.config().gpu_reserved;
    assert!(tightened > reserved);
    // The post-splice iterations match a fresh engine at the tightened
    // budget exactly.
    let mut cfg = EngineConfig::single_server();
    cfg.gpu_reserved = tightened;
    let fresh_iter = Engine::initialize(&tiny(), &cfg).unwrap().train_iteration();
    assert_identical_iter(&report.per_iter[1], &fresh_iter);
    assert_identical_iter(&report.per_iter[2], &fresh_iter);
}
