//! Dense f32 kernels with hand-derived backward passes.
//!
//! Everything operates on row-major slices with explicit dimensions — no
//! tensor framework, as none exists in this environment. Each backward is
//! validated against central finite differences in the test module, which is
//! the load-bearing correctness argument for the convergence experiment.

/// `C(m×n) = A(m×k) · B(k×n)`.
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for p in 0..k {
            let aip = a[i * k + p];
            if aip == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            let crow = &mut c[i * n..(i + 1) * n];
            for j in 0..n {
                crow[j] += aip * brow[j];
            }
        }
    }
    c
}

/// `C(m×n) = A(m×k) · Bᵀ` where `B` is `n×k` (i.e. `C = A · B^T`).
pub fn matmul_nt(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0;
            for p in 0..k {
                s += a[i * k + p] * b[j * k + p];
            }
            c[i * n + j] = s;
        }
    }
    c
}

/// `C(k×n) = Aᵀ · B` where `A` is `m×k`, `B` is `m×n`.
pub fn matmul_tn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), m * n);
    let mut c = vec![0.0f32; k * n];
    for i in 0..m {
        for p in 0..k {
            let aip = a[i * k + p];
            if aip == 0.0 {
                continue;
            }
            let brow = &b[i * n..(i + 1) * n];
            let crow = &mut c[p * n..(p + 1) * n];
            for j in 0..n {
                crow[j] += aip * brow[j];
            }
        }
    }
    c
}

/// Backward of `C = A·B`: `dA = dC·Bᵀ`, `dB = Aᵀ·dC`, accumulated into the
/// provided gradient buffers.
#[allow(clippy::too_many_arguments)]
pub fn matmul_backward(
    dc: &[f32],
    a: &[f32],
    b: &[f32],
    da: &mut [f32],
    db: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    for i in 0..m {
        for j in 0..n {
            let d = dc[i * n + j];
            if d == 0.0 {
                continue;
            }
            for p in 0..k {
                da[i * k + p] += d * b[p * n + j];
                db[p * n + j] += a[i * k + p] * d;
            }
        }
    }
}

/// Transpose an `m×n` matrix.
pub fn transpose(a: &[f32], m: usize, n: usize) -> Vec<f32> {
    let mut t = vec![0.0f32; n * m];
    for i in 0..m {
        for j in 0..n {
            t[j * m + i] = a[i * n + j];
        }
    }
    t
}

/// Row-wise softmax over an `m×n` matrix with an optional causal mask
/// (`mask_causal = true` zeroes attention to future positions, assuming the
/// matrix is square scores).
pub fn softmax_rows(x: &[f32], m: usize, n: usize, mask_causal: bool) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let row = &x[i * n..(i + 1) * n];
        let limit = if mask_causal { i + 1 } else { n };
        let max = row[..limit]
            .iter()
            .cloned()
            .fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for j in 0..limit {
            let e = (row[j] - max).exp();
            out[i * n + j] = e;
            sum += e;
        }
        for j in 0..limit {
            out[i * n + j] /= sum;
        }
        // masked entries stay 0.
    }
    out
}

/// Backward of row-wise softmax: `dx_j = y_j (dy_j − Σ_k dy_k y_k)`.
pub fn softmax_rows_backward(dy: &[f32], y: &[f32], m: usize, n: usize) -> Vec<f32> {
    let mut dx = vec![0.0f32; m * n];
    for i in 0..m {
        let yr = &y[i * n..(i + 1) * n];
        let dyr = &dy[i * n..(i + 1) * n];
        let dot: f32 = yr.iter().zip(dyr).map(|(a, b)| a * b).sum();
        for j in 0..n {
            dx[i * n + j] = yr[j] * (dyr[j] - dot);
        }
    }
    dx
}

/// LayerNorm over the last dimension of an `m×d` matrix, with scale `gamma`
/// and shift `beta`. Returns `(y, mean, rstd)` — the statistics are needed
/// by the backward pass.
pub fn layernorm(
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    m: usize,
    d: usize,
) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    const EPS: f32 = 1e-5;
    let mut y = vec![0.0f32; m * d];
    let mut means = vec![0.0f32; m];
    let mut rstds = vec![0.0f32; m];
    for i in 0..m {
        let row = &x[i * d..(i + 1) * d];
        let mean = row.iter().sum::<f32>() / d as f32;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
        let rstd = 1.0 / (var + EPS).sqrt();
        for j in 0..d {
            y[i * d + j] = (row[j] - mean) * rstd * gamma[j] + beta[j];
        }
        means[i] = mean;
        rstds[i] = rstd;
    }
    (y, means, rstds)
}

/// Backward of LayerNorm. Accumulates `dgamma`/`dbeta`; returns `dx`.
#[allow(clippy::too_many_arguments)]
pub fn layernorm_backward(
    dy: &[f32],
    x: &[f32],
    gamma: &[f32],
    mean: &[f32],
    rstd: &[f32],
    dgamma: &mut [f32],
    dbeta: &mut [f32],
    m: usize,
    d: usize,
) -> Vec<f32> {
    let mut dx = vec![0.0f32; m * d];
    for i in 0..m {
        let xr = &x[i * d..(i + 1) * d];
        let dyr = &dy[i * d..(i + 1) * d];
        let mu = mean[i];
        let rs = rstd[i];
        // xhat_j = (x_j - mu) * rs; dy_xhat_j = dy_j * gamma_j
        let mut sum_dyx = 0.0f32;
        let mut sum_dyx_xhat = 0.0f32;
        for j in 0..d {
            let xhat = (xr[j] - mu) * rs;
            let dyx = dyr[j] * gamma[j];
            sum_dyx += dyx;
            sum_dyx_xhat += dyx * xhat;
            dgamma[j] += dyr[j] * xhat;
            dbeta[j] += dyr[j];
        }
        let dinv = d as f32;
        for j in 0..d {
            let xhat = (xr[j] - mu) * rs;
            let dyx = dyr[j] * gamma[j];
            dx[i * d + j] = rs * (dyx - sum_dyx / dinv - xhat * sum_dyx_xhat / dinv);
        }
    }
    dx
}

/// GeLU (tanh approximation, as in GPT) applied elementwise.
pub fn gelu(x: &[f32]) -> Vec<f32> {
    x.iter().map(|&v| gelu_scalar(v)).collect()
}

fn gelu_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

/// Backward of GeLU.
pub fn gelu_backward(dy: &[f32], x: &[f32]) -> Vec<f32> {
    const C: f32 = 0.797_884_6;
    dy.iter()
        .zip(x)
        .map(|(&d, &v)| {
            let inner = C * (v + 0.044715 * v * v * v);
            let t = inner.tanh();
            let dt = (1.0 - t * t) * C * (1.0 + 3.0 * 0.044715 * v * v);
            d * (0.5 * (1.0 + t) + 0.5 * v * dt)
        })
        .collect()
}

/// Cross-entropy loss from logits (`m×v`) and integer targets.
/// Returns `(mean loss, dlogits)`.
pub fn cross_entropy(logits: &[f32], targets: &[usize], m: usize, v: usize) -> (f32, Vec<f32>) {
    let probs = softmax_rows(logits, m, v, false);
    let mut loss = 0.0f32;
    let mut dlogits = probs.clone();
    for i in 0..m {
        let t = targets[i];
        debug_assert!(t < v);
        loss -= probs[i * v + t].max(1e-12).ln();
        dlogits[i * v + t] -= 1.0;
    }
    let scale = 1.0 / m as f32;
    dlogits.iter_mut().for_each(|g| *g *= scale);
    (loss * scale, dlogits)
}

/// Elementwise `a += b`.
pub fn add_inplace(a: &mut [f32], b: &[f32]) {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

/// Elementwise `a * s`.
pub fn scale(a: &mut [f32], s: f32) {
    for x in a.iter_mut() {
        *x *= s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central finite difference of a scalar function of a vector input.
    fn numeric_grad(f: &mut dyn FnMut(&[f32]) -> f32, x: &[f32], eps: f32) -> Vec<f32> {
        let mut g = vec![0.0f32; x.len()];
        let mut xp = x.to_vec();
        for i in 0..x.len() {
            let orig = xp[i];
            xp[i] = orig + eps;
            let fp = f(&xp);
            xp[i] = orig - eps;
            let fm = f(&xp);
            xp[i] = orig;
            g[i] = (fp - fm) / (2.0 * eps);
        }
        g
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32, what: &str) {
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "{what}[{i}]: {x} vs {y}"
            );
        }
    }

    fn pseudo(n: usize, seed: u32) -> Vec<f32> {
        // Deterministic pseudo-random values in [-1, 1].
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(12345);
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(1664525).wrapping_add(1013904223);
                (s >> 8) as f32 / (1u32 << 23) as f32 - 1.0
            })
            .collect()
    }

    #[test]
    fn matmul_identity() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let i = vec![1.0, 0.0, 0.0, 1.0];
        assert_eq!(matmul(&a, &i, 2, 2, 2), a);
    }

    #[test]
    fn matmul_known_values() {
        // [1 2; 3 4] · [5 6; 7 8] = [19 22; 43 50]
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        assert_eq!(matmul(&a, &b, 2, 2, 2), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_variants_agree() {
        let a = pseudo(6, 1); // 2×3
        let b = pseudo(12, 2); // 3×4
        let c = matmul(&a, &b, 2, 3, 4);
        let bt = transpose(&b, 3, 4); // 4×3
        assert_close(&matmul_nt(&a, &bt, 2, 3, 4), &c, 1e-6, "nt");
        // Aᵀ·C via matmul_tn must equal transpose(A)·C via plain matmul.
        let at = transpose(&a, 2, 3); // 3×2
        assert_close(
            &matmul_tn(&a, &c, 2, 3, 4),
            &matmul(&at, &c, 3, 2, 4),
            1e-6,
            "tn",
        );
    }

    #[test]
    fn matmul_grad_check() {
        let m = 2;
        let k = 3;
        let n = 2;
        let a = pseudo(m * k, 3);
        let b = pseudo(k * n, 4);
        // Scalar objective: sum of C elements weighted by fixed w.
        let w = pseudo(m * n, 5);
        let loss_a = |a: &[f32]| -> f32 {
            matmul(a, &b, m, k, n)
                .iter()
                .zip(&w)
                .map(|(c, w)| c * w)
                .sum()
        };
        let mut da = vec![0.0f32; m * k];
        let mut db = vec![0.0f32; k * n];
        matmul_backward(&w, &a, &b, &mut da, &mut db, m, k, n);
        let num_da = numeric_grad(&mut { |x: &[f32]| loss_a(x) }, &a, 1e-3);
        assert_close(&da, &num_da, 1e-2, "dA");
        let loss_b = |b: &[f32]| -> f32 {
            matmul(&a, b, m, k, n)
                .iter()
                .zip(&w)
                .map(|(c, w)| c * w)
                .sum()
        };
        let num_db = numeric_grad(&mut { |x: &[f32]| loss_b(x) }, &b, 1e-3);
        assert_close(&db, &num_db, 1e-2, "dB");
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = pseudo(12, 7);
        let y = softmax_rows(&x, 3, 4, false);
        for i in 0..3 {
            let s: f32 = y[i * 4..(i + 1) * 4].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn causal_mask_zeroes_future() {
        let x = pseudo(16, 8);
        let y = softmax_rows(&x, 4, 4, true);
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_eq!(y[i * 4 + j], 0.0);
            }
            let s: f32 = y[i * 4..(i + 1) * 4].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_grad_check() {
        let m = 2;
        let n = 4;
        let x = pseudo(m * n, 9);
        let w = pseudo(m * n, 10);
        let loss = |x: &[f32]| -> f32 {
            softmax_rows(x, m, n, false)
                .iter()
                .zip(&w)
                .map(|(y, w)| y * w)
                .sum()
        };
        let y = softmax_rows(&x, m, n, false);
        let dx = softmax_rows_backward(&w, &y, m, n);
        let num = numeric_grad(&mut { |x: &[f32]| loss(x) }, &x, 1e-3);
        assert_close(&dx, &num, 1e-2, "softmax dx");
    }

    #[test]
    fn layernorm_normalizes() {
        let x = pseudo(20, 11);
        let gamma = vec![1.0f32; 5];
        let beta = vec![0.0f32; 5];
        let (y, _, _) = layernorm(&x, &gamma, &beta, 4, 5);
        for i in 0..4 {
            let row = &y[i * 5..(i + 1) * 5];
            let mean: f32 = row.iter().sum::<f32>() / 5.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 5.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn layernorm_grad_check() {
        let m = 2;
        let d = 5;
        let x = pseudo(m * d, 12);
        let gamma = pseudo(d, 13).iter().map(|v| v + 1.5).collect::<Vec<_>>();
        let beta = pseudo(d, 14);
        let w = pseudo(m * d, 15);
        let loss = |x: &[f32]| -> f32 {
            layernorm(x, &gamma, &beta, m, d)
                .0
                .iter()
                .zip(&w)
                .map(|(y, w)| y * w)
                .sum()
        };
        let (_, mean, rstd) = layernorm(&x, &gamma, &beta, m, d);
        let mut dg = vec![0.0; d];
        let mut db = vec![0.0; d];
        let dx = layernorm_backward(&w, &x, &gamma, &mean, &rstd, &mut dg, &mut db, m, d);
        let num = numeric_grad(&mut { |x: &[f32]| loss(x) }, &x, 1e-3);
        assert_close(&dx, &num, 2e-2, "layernorm dx");
        // gamma gradient too.
        let loss_g = |g: &[f32]| -> f32 {
            layernorm(&x, g, &beta, m, d)
                .0
                .iter()
                .zip(&w)
                .map(|(y, w)| y * w)
                .sum()
        };
        let num_g = numeric_grad(&mut { |g: &[f32]| loss_g(g) }, &gamma, 1e-3);
        assert_close(&dg, &num_g, 2e-2, "layernorm dgamma");
    }

    #[test]
    fn gelu_grad_check() {
        let x = pseudo(16, 16);
        let w = pseudo(16, 17);
        let loss = |x: &[f32]| -> f32 { gelu(x).iter().zip(&w).map(|(y, w)| y * w).sum() };
        let dx = gelu_backward(&w, &x);
        let num = numeric_grad(&mut { |x: &[f32]| loss(x) }, &x, 1e-3);
        assert_close(&dx, &num, 1e-2, "gelu dx");
    }

    #[test]
    fn gelu_known_points() {
        assert!(gelu_scalar(0.0).abs() < 1e-7);
        assert!((gelu_scalar(10.0) - 10.0).abs() < 1e-3); // ≈identity for large x
        assert!(gelu_scalar(-10.0).abs() < 1e-3); // ≈0 for very negative x
    }

    #[test]
    fn cross_entropy_grad_check() {
        let m = 3;
        let v = 5;
        let logits = pseudo(m * v, 18);
        let targets = vec![1usize, 4, 0];
        let (_, dl) = cross_entropy(&logits, &targets, m, v);
        let num = numeric_grad(
            &mut { |x: &[f32]| cross_entropy(x, &targets, m, v).0 },
            &logits,
            1e-3,
        );
        assert_close(&dl, &num, 1e-2, "ce dlogits");
    }

    #[test]
    fn cross_entropy_perfect_prediction_low_loss() {
        // Put huge mass on the target class.
        let mut logits = vec![0.0f32; 10];
        logits[3] = 50.0;
        let (loss, _) = cross_entropy(&logits, &[3], 1, 10);
        assert!(loss < 1e-3);
        let (bad, _) = cross_entropy(&logits, &[7], 1, 10);
        assert!(bad > 10.0);
    }
}
