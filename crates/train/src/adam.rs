//! Mixed-precision Adam — the optimizer of the paper's workflow (Figure 1):
//! FP32 master parameters and moments, BF16 parameters and gradients in the
//! compute path.
//!
//! Implements [`angel_core::lockfree::Optimizer`] so the same code drives
//! both the synchronous baseline and the lock-free updating thread.

use crate::bf16::bf16_round;
use angel_core::lockfree::{LayerState, Optimizer};
use serde::{Deserialize, Serialize};

/// Adam hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdamConfig {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    /// Round incoming gradients to BF16 before use (they arrive as BF16 from
    /// the compute path; the rounding makes the simulation exact even when
    /// the caller kept f32 precision).
    pub bf16_grads: bool,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            bf16_grads: true,
        }
    }
}

/// The optimizer: one step counter per layer for bias correction.
#[derive(Debug, Clone)]
pub struct MixedPrecisionAdam {
    pub config: AdamConfig,
    steps: Vec<u64>,
}

impl MixedPrecisionAdam {
    pub fn new(config: AdamConfig, layers: usize) -> Self {
        Self {
            config,
            steps: vec![0; layers],
        }
    }

    /// One Adam step over a flat parameter group. `grads` are averaged over
    /// `micro` micro-batches first (the lock-free buffer accumulates sums).
    pub fn step(&mut self, layer: usize, state: &mut LayerState, grads: &[f32], micro: u32) {
        assert_eq!(state.p32.len(), grads.len());
        let c = self.config;
        self.steps[layer] += 1;
        let t = self.steps[layer] as i32;
        let bc1 = 1.0 - c.beta1.powi(t);
        let bc2 = 1.0 - c.beta2.powi(t);
        let inv_micro = 1.0 / micro.max(1) as f32;
        for (i, &grad) in grads.iter().enumerate() {
            let mut g = grad * inv_micro;
            if c.bf16_grads {
                g = bf16_round(g);
            }
            let m = &mut state.m32[i];
            let v = &mut state.v32[i];
            *m = c.beta1 * *m + (1.0 - c.beta1) * g;
            *v = c.beta2 * *v + (1.0 - c.beta2) * g * g;
            let mhat = *m / bc1;
            let vhat = *v / bc2;
            state.p32[i] -= c.lr * mhat / (vhat.sqrt() + c.eps);
        }
    }
}

impl Optimizer for MixedPrecisionAdam {
    fn update(&mut self, layer: usize, state: &mut LayerState, grads: &[f32], micro: u32) {
        self.step(layer, state, grads, micro);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(p: Vec<f32>) -> LayerState {
        LayerState::new(p)
    }

    #[test]
    fn first_step_moves_by_lr() {
        // With bias correction, the first Adam step is ≈ lr·sign(g).
        let mut adam = MixedPrecisionAdam::new(AdamConfig::default(), 1);
        let mut s = state(vec![1.0, -2.0]);
        adam.step(0, &mut s, &[0.5, -0.25], 1);
        assert!((s.p32[0] - (1.0 - 1e-3)).abs() < 1e-5, "{}", s.p32[0]);
        assert!((s.p32[1] - (-2.0 + 1e-3)).abs() < 1e-5, "{}", s.p32[1]);
    }

    #[test]
    fn zero_gradient_is_a_fixed_point() {
        let mut adam = MixedPrecisionAdam::new(AdamConfig::default(), 1);
        let mut s = state(vec![3.0; 4]);
        adam.step(0, &mut s, &[0.0; 4], 1);
        assert_eq!(s.p32, vec![3.0; 4]);
        assert_eq!(s.m32, vec![0.0; 4]);
    }

    #[test]
    fn micro_batch_averaging() {
        // Accumulated gradient 4.0 over 4 micro-batches == single grad 1.0.
        let mut a1 = MixedPrecisionAdam::new(AdamConfig::default(), 1);
        let mut a2 = MixedPrecisionAdam::new(AdamConfig::default(), 1);
        let mut s1 = state(vec![1.0]);
        let mut s2 = state(vec![1.0]);
        a1.step(0, &mut s1, &[4.0], 4);
        a2.step(0, &mut s2, &[1.0], 1);
        assert!((s1.p32[0] - s2.p32[0]).abs() < 1e-7);
    }

    #[test]
    fn converges_on_quadratic() {
        // Minimize f(p) = Σ (p-c)²/2; grad = p - c.
        let c = [0.3f32, -0.7, 2.0];
        let mut adam = MixedPrecisionAdam::new(
            AdamConfig {
                lr: 0.05,
                ..Default::default()
            },
            1,
        );
        let mut s = state(vec![0.0; 3]);
        for _ in 0..2000 {
            let g: Vec<f32> = s.p32.iter().zip(&c).map(|(p, c)| p - c).collect();
            adam.step(0, &mut s, &g, 1);
        }
        for (p, c) in s.p32.iter().zip(&c) {
            assert!((p - c).abs() < 0.02, "{p} vs {c}");
        }
    }

    #[test]
    fn per_layer_step_counters_independent() {
        let mut adam = MixedPrecisionAdam::new(AdamConfig::default(), 2);
        let mut s0 = state(vec![0.0]);
        let mut s1 = state(vec![0.0]);
        for _ in 0..10 {
            adam.step(0, &mut s0, &[1.0], 1);
        }
        adam.step(1, &mut s1, &[1.0], 1);
        // Layer 1's first step still gets full bias correction.
        assert!((s1.p32[0] + 1e-3).abs() < 1e-5);
    }

    #[test]
    fn bf16_gradient_rounding_is_small_perturbation() {
        let cfg_on = AdamConfig {
            bf16_grads: true,
            ..Default::default()
        };
        let cfg_off = AdamConfig {
            bf16_grads: false,
            ..Default::default()
        };
        let mut a_on = MixedPrecisionAdam::new(cfg_on, 1);
        let mut a_off = MixedPrecisionAdam::new(cfg_off, 1);
        let mut s_on = state(vec![1.0; 8]);
        let mut s_off = state(vec![1.0; 8]);
        let g: Vec<f32> = (0..8).map(|i| 0.123 + i as f32 * 0.0456).collect();
        for _ in 0..50 {
            a_on.step(0, &mut s_on, &g, 1);
            a_off.step(0, &mut s_off, &g, 1);
        }
        for (a, b) in s_on.p32.iter().zip(&s_off.p32) {
            assert!((a - b).abs() < 5e-3, "{a} vs {b}");
        }
    }
}
