//! BF16 emulation.
//!
//! Section 6.1: "We train all of these models using the mixed precision
//! technique ... which stores the model states in FP32 while computes in
//! BF16." BF16 is simply the top 16 bits of an IEEE-754 f32 (same exponent
//! range, 8-bit mantissa), so emulating it on f32 hardware is exact:
//! round-to-nearest-even on the low 16 mantissa bits.

/// Round an f32 to the nearest representable BF16 value (returned as f32).
pub fn bf16_round(x: f32) -> f32 {
    if x.is_nan() {
        return x;
    }
    let bits = x.to_bits();
    // Round-to-nearest-even: add 0x7FFF plus the LSB of the kept part.
    let rounding_bias = 0x7FFF + ((bits >> 16) & 1);
    let rounded = bits.wrapping_add(rounding_bias) & 0xFFFF_0000;
    f32::from_bits(rounded)
}

/// Apply BF16 rounding to a whole buffer in place.
pub fn bf16_round_slice(xs: &mut [f32]) {
    for x in xs.iter_mut() {
        *x = bf16_round(*x);
    }
}

/// Maximum relative error introduced by one BF16 rounding: 2⁻⁸ = 0.39%.
pub const BF16_MAX_REL_ERR: f32 = 1.0 / 256.0;

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_values_survive() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, -0.25, 1.5] {
            assert_eq!(bf16_round(v), v);
        }
    }

    #[test]
    fn rounding_truncates_mantissa() {
        let x = 1.0 + f32::EPSILON; // not representable in bf16
        let r = bf16_round(x);
        assert_eq!(r, 1.0);
        assert_eq!(r.to_bits() & 0xFFFF, 0);
    }

    #[test]
    fn round_to_nearest_even() {
        // BF16 keeps 7 mantissa bits: the spacing just above 1.0 is 2⁻⁷.
        let step = f32::from_bits(0x3F81_0000); // 1 + 2⁻⁷, representable
        assert_eq!(bf16_round(step), step);
        // Exactly halfway between 1.0 and 1+2⁻⁷ rounds to even (1.0).
        let half = f32::from_bits(0x3F80_8000); // 1 + 2⁻⁸
        assert_eq!(bf16_round(half), 1.0);
        // Three quarters of the gap rounds up.
        let three_q = f32::from_bits(0x3F80_C000);
        assert_eq!(bf16_round(three_q), step);
        // Exactly halfway between 1+2⁻⁷ and 1+2⁻⁶ rounds to even (1+2⁻⁶).
        let half2 = f32::from_bits(0x3F81_8000);
        assert_eq!(bf16_round(half2), f32::from_bits(0x3F82_0000));
    }

    #[test]
    fn specials() {
        assert!(bf16_round(f32::NAN).is_nan());
        assert_eq!(bf16_round(f32::INFINITY), f32::INFINITY);
        assert_eq!(bf16_round(f32::NEG_INFINITY), f32::NEG_INFINITY);
        assert_eq!(bf16_round(-0.0).to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn slice_helper() {
        let mut xs = vec![1.0 + f32::EPSILON; 4];
        bf16_round_slice(&mut xs);
        assert!(xs.iter().all(|&x| x == 1.0));
    }

    proptest! {
        #[test]
        fn relative_error_bounded(x in -1e30f32..1e30f32) {
            prop_assume!(x.is_finite() && x != 0.0);
            let r = bf16_round(x);
            let rel = ((r - x) / x).abs();
            prop_assert!(rel <= BF16_MAX_REL_ERR, "x={x} r={r} rel={rel}");
        }

        #[test]
        fn idempotent(x in proptest::num::f32::NORMAL) {
            let once = bf16_round(x);
            prop_assert_eq!(bf16_round(once), once);
        }

        #[test]
        fn low_bits_cleared(x in proptest::num::f32::NORMAL) {
            let r = bf16_round(x);
            prop_assume!(r.is_finite());
            prop_assert_eq!(r.to_bits() & 0xFFFF, 0);
        }
    }
}
