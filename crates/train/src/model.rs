//! A small but genuine pre-LN GPT with hand-derived backpropagation.
//!
//! Parameters live in *flat per-layer groups* (`Vec<Vec<f32>>`): group 0 is
//! the embeddings, groups `1..=L` are the transformer blocks, group `L+1` is
//! the final norm + unembedding. This layout maps one-to-one onto the
//! per-layer states of `angel_core::lockfree` (Algorithm 2 updates "for
//! `l_i ∈ reverse(model)`"), so the *same model code* runs under the
//! synchronous trainer and under the lock-free mechanism.
//!
//! Single-head attention: head count affects capacity, not the staleness
//! dynamics Table 6's convergence experiment measures, and it keeps the
//! hand-written backward auditable. The full-model gradient is verified
//! against finite differences in the tests.

use crate::ops::*;
use serde::{Deserialize, Serialize};

/// Architecture of the tiny GPT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GptConfig {
    pub vocab: usize,
    pub seq_len: usize,
    pub d_model: usize,
    pub d_ffn: usize,
    pub layers: usize,
}

impl GptConfig {
    /// A configuration small enough for CI but large enough to learn the
    /// synthetic corpus.
    pub fn tiny() -> Self {
        Self {
            vocab: 16,
            seq_len: 32,
            d_model: 32,
            d_ffn: 64,
            layers: 2,
        }
    }

    /// Number of parameter groups: embeddings + layers + head.
    pub fn num_groups(&self) -> usize {
        self.layers + 2
    }

    /// Flat size of each parameter group.
    pub fn group_sizes(&self) -> Vec<usize> {
        let d = self.d_model;
        let f = self.d_ffn;
        let mut sizes = Vec::with_capacity(self.num_groups());
        sizes.push(self.vocab * d + self.seq_len * d); // embeddings
        for _ in 0..self.layers {
            // ln1(g,b) + wq + wk + wv + wo + ln2(g,b) + w1 + w2
            sizes.push(2 * d + 4 * d * d + 2 * d + d * f + f * d);
        }
        sizes.push(2 * d + d * self.vocab); // final ln + unembed
        sizes
    }

    pub fn total_params(&self) -> usize {
        self.group_sizes().iter().sum()
    }
}

/// Byte offsets inside a transformer-block group.
struct BlockView<'a> {
    ln1_g: &'a [f32],
    ln1_b: &'a [f32],
    wq: &'a [f32],
    wk: &'a [f32],
    wv: &'a [f32],
    wo: &'a [f32],
    ln2_g: &'a [f32],
    ln2_b: &'a [f32],
    w1: &'a [f32],
    w2: &'a [f32],
}

fn block_view<'a>(group: &'a [f32], d: usize, f: usize) -> BlockView<'a> {
    let mut o = 0usize;
    let mut take = |n: usize| {
        let s = &group[o..o + n];
        o += n;
        s
    };
    BlockView {
        ln1_g: take(d),
        ln1_b: take(d),
        wq: take(d * d),
        wk: take(d * d),
        wv: take(d * d),
        wo: take(d * d),
        ln2_g: take(d),
        ln2_b: take(d),
        w1: take(d * f),
        w2: take(f * d),
    }
}

/// Mutable views into a block's gradient group (same layout).
struct BlockGrads<'a> {
    ln1_g: &'a mut [f32],
    ln1_b: &'a mut [f32],
    wq: &'a mut [f32],
    wk: &'a mut [f32],
    wv: &'a mut [f32],
    wo: &'a mut [f32],
    ln2_g: &'a mut [f32],
    ln2_b: &'a mut [f32],
    w1: &'a mut [f32],
    w2: &'a mut [f32],
}

fn block_grads<'a>(group: &'a mut [f32], d: usize, f: usize) -> BlockGrads<'a> {
    let (ln1_g, rest) = group.split_at_mut(d);
    let (ln1_b, rest) = rest.split_at_mut(d);
    let (wq, rest) = rest.split_at_mut(d * d);
    let (wk, rest) = rest.split_at_mut(d * d);
    let (wv, rest) = rest.split_at_mut(d * d);
    let (wo, rest) = rest.split_at_mut(d * d);
    let (ln2_g, rest) = rest.split_at_mut(d);
    let (ln2_b, rest) = rest.split_at_mut(d);
    let (w1, w2) = rest.split_at_mut(d * f);
    BlockGrads {
        ln1_g,
        ln1_b,
        wq,
        wk,
        wv,
        wo,
        ln2_g,
        ln2_b,
        w1,
        w2,
    }
}

/// Per-layer forward caches needed by backward.
struct BlockCache {
    x_in: Vec<f32>,
    xn1: Vec<f32>,
    mean1: Vec<f32>,
    rstd1: Vec<f32>,
    q: Vec<f32>,
    k: Vec<f32>,
    v: Vec<f32>,
    att: Vec<f32>,
    av: Vec<f32>,
    x_mid: Vec<f32>,
    xn2: Vec<f32>,
    mean2: Vec<f32>,
    rstd2: Vec<f32>,
    h: Vec<f32>,
    hg: Vec<f32>,
}

/// The model: configuration only — parameters are passed in per call so the
/// lock-free machinery can own them.
#[derive(Debug, Clone)]
pub struct TinyGpt {
    pub config: GptConfig,
}

impl TinyGpt {
    pub fn new(config: GptConfig) -> Self {
        Self { config }
    }

    /// Deterministic small-scale initialization (scaled uniform).
    pub fn init_params(&self, seed: u64) -> Vec<Vec<f32>> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f32 / (1u64 << 53) as f32 * 2.0 - 1.0
        };
        let scale = 0.08f32;
        self.config
            .group_sizes()
            .iter()
            .enumerate()
            .map(|(gi, &n)| {
                (0..n)
                    .map(|j| {
                        // LayerNorm gains initialize to 1, biases to 0.
                        if self.is_ln_gain(gi, j) {
                            1.0
                        } else if self.is_ln_bias(gi, j) {
                            0.0
                        } else {
                            next() * scale
                        }
                    })
                    .collect()
            })
            .collect()
    }

    fn is_ln_gain(&self, group: usize, idx: usize) -> bool {
        let d = self.config.d_model;
        if group == 0 {
            return false;
        }
        if group == self.config.layers + 1 {
            return idx < d;
        }
        let block2_off = 2 * d + 4 * d * d;
        idx < d || (idx >= block2_off && idx < block2_off + d)
    }

    fn is_ln_bias(&self, group: usize, idx: usize) -> bool {
        let d = self.config.d_model;
        if group == 0 {
            return false;
        }
        if group == self.config.layers + 1 {
            return (d..2 * d).contains(&idx);
        }
        let block2_off = 2 * d + 4 * d * d;
        (d..2 * d).contains(&idx) || (block2_off + d..block2_off + 2 * d).contains(&idx)
    }

    /// Forward pass returning the mean cross-entropy loss of one sequence.
    pub fn loss(&self, params: &[Vec<f32>], input: &[usize], target: &[usize]) -> f32 {
        self.forward_backward_inner(params, input, target, false).0
    }

    /// Forward pass returning the `s × vocab` logits (for sampling/eval).
    pub fn logits(&self, params: &[Vec<f32>], input: &[usize]) -> Vec<f32> {
        let c = self.config;
        let (s, d, f, v) = (input.len(), c.d_model, c.d_ffn, c.vocab);
        assert!(s <= c.seq_len && s > 0);
        let rsqrt_d = 1.0 / (d as f32).sqrt();
        let emb = &params[0];
        let (tok_emb, pos_emb) = emb.split_at(v * d);
        let mut x = vec![0.0f32; s * d];
        for (t, &tok) in input.iter().enumerate() {
            for j in 0..d {
                x[t * d + j] = tok_emb[tok * d + j] + pos_emb[t * d + j];
            }
        }
        for l in 0..c.layers {
            let p = block_view(&params[1 + l], d, f);
            let (xn1, _, _) = layernorm(&x, p.ln1_g, p.ln1_b, s, d);
            let q = matmul(&xn1, p.wq, s, d, d);
            let k = matmul(&xn1, p.wk, s, d, d);
            let vv = matmul(&xn1, p.wv, s, d, d);
            let mut scores = matmul_nt(&q, &k, s, d, s);
            scale(&mut scores, rsqrt_d);
            let att = softmax_rows(&scores, s, s, true);
            let av = matmul(&att, &vv, s, s, d);
            let o = matmul(&av, p.wo, s, d, d);
            add_inplace(&mut x, &o);
            let (xn2, _, _) = layernorm(&x, p.ln2_g, p.ln2_b, s, d);
            let h = matmul(&xn2, p.w1, s, d, f);
            let hg = gelu(&h);
            let ff = matmul(&hg, p.w2, s, f, d);
            add_inplace(&mut x, &ff);
        }
        let head = &params[c.layers + 1];
        let (lnf_g, rest) = head.split_at(d);
        let (lnf_b, unembed) = rest.split_at(d);
        let (xnf, _, _) = layernorm(&x, lnf_g, lnf_b, s, d);
        matmul(&xnf, unembed, s, d, v)
    }

    /// Forward + backward of one sequence: `(loss, per-group gradients)`.
    pub fn forward_backward(
        &self,
        params: &[Vec<f32>],
        input: &[usize],
        target: &[usize],
    ) -> (f32, Vec<Vec<f32>>) {
        let (loss, grads) = self.forward_backward_inner(params, input, target, true);
        let Some(grads) = grads else {
            // `forward_backward_inner` returns gradients whenever its
            // `backward` flag is set, as it is on the line above.
            unreachable!("backward pass returned no gradients");
        };
        (loss, grads)
    }

    fn forward_backward_inner(
        &self,
        params: &[Vec<f32>],
        input: &[usize],
        target: &[usize],
        want_grads: bool,
    ) -> (f32, Option<Vec<Vec<f32>>>) {
        let c = self.config;
        let (s, d, f, v) = (input.len(), c.d_model, c.d_ffn, c.vocab);
        assert!(s <= c.seq_len, "sequence longer than configured seq_len");
        assert_eq!(input.len(), target.len());
        assert_eq!(params.len(), c.num_groups());
        let rsqrt_d = 1.0 / (d as f32).sqrt();

        // ---- Embeddings ---------------------------------------------------
        let emb = &params[0];
        let (tok_emb, pos_emb) = emb.split_at(v * d);
        let mut x = vec![0.0f32; s * d];
        for (t, &tok) in input.iter().enumerate() {
            for j in 0..d {
                x[t * d + j] = tok_emb[tok * d + j] + pos_emb[t * d + j];
            }
        }

        // ---- Blocks --------------------------------------------------------
        let mut caches: Vec<BlockCache> = Vec::with_capacity(c.layers);
        for l in 0..c.layers {
            let p = block_view(&params[1 + l], d, f);
            let x_in = x.clone();
            let (xn1, mean1, rstd1) = layernorm(&x, p.ln1_g, p.ln1_b, s, d);
            let q = matmul(&xn1, p.wq, s, d, d);
            let k = matmul(&xn1, p.wk, s, d, d);
            let vv = matmul(&xn1, p.wv, s, d, d);
            let mut scores = matmul_nt(&q, &k, s, d, s);
            scale(&mut scores, rsqrt_d);
            let att = softmax_rows(&scores, s, s, true);
            let av = matmul(&att, &vv, s, s, d);
            let o = matmul(&av, p.wo, s, d, d);
            add_inplace(&mut x, &o);
            let x_mid = x.clone();
            let (xn2, mean2, rstd2) = layernorm(&x, p.ln2_g, p.ln2_b, s, d);
            let h = matmul(&xn2, p.w1, s, d, f);
            let hg = gelu(&h);
            let ff = matmul(&hg, p.w2, s, f, d);
            add_inplace(&mut x, &ff);
            caches.push(BlockCache {
                x_in,
                xn1,
                mean1,
                rstd1,
                q,
                k,
                v: vv,
                att,
                av,
                x_mid,
                xn2,
                mean2,
                rstd2,
                h,
                hg,
            });
        }

        // ---- Head -----------------------------------------------------------
        let head = &params[c.layers + 1];
        let (lnf_g, rest) = head.split_at(d);
        let (lnf_b, unembed) = rest.split_at(d);
        let (xnf, meanf, rstdf) = layernorm(&x, lnf_g, lnf_b, s, d);
        let logits = matmul(&xnf, unembed, s, d, v);
        let (loss, dlogits) = cross_entropy(&logits, target, s, v);

        if !want_grads {
            return (loss, None);
        }

        // ---- Backward --------------------------------------------------------
        let mut grads: Vec<Vec<f32>> = c.group_sizes().iter().map(|&n| vec![0.0f32; n]).collect();

        // Head.
        let mut dxnf = vec![0.0f32; s * d];
        {
            let ghead = &mut grads[c.layers + 1];
            let (glnf, gunembed) = ghead.split_at_mut(2 * d);
            let (glnf_g, glnf_b) = glnf.split_at_mut(d);
            matmul_backward(&dlogits, &xnf, unembed, &mut dxnf, gunembed, s, d, v);
            let dx_head =
                layernorm_backward(&dxnf, &x, lnf_g, &meanf, &rstdf, glnf_g, glnf_b, s, d);
            dxnf = dx_head; // now holds dL/dx at the top of the stack
        }
        let mut dx = dxnf;

        // Blocks in reverse.
        for l in (0..c.layers).rev() {
            let cache = &caches[l];
            let p = block_view(&params[1 + l], d, f);
            let g = block_grads(&mut grads[1 + l], d, f);

            // FFN: x = x_mid + gelu(ln2(x_mid)·W1)·W2
            let dff = dx.clone(); // gradient into the ff branch
            let mut dhg = vec![0.0f32; s * f];
            matmul_backward(&dff, &cache.hg, p.w2, &mut dhg, g.w2, s, f, d);
            let dh = gelu_backward(&dhg, &cache.h);
            let mut dxn2 = vec![0.0f32; s * d];
            matmul_backward(&dh, &cache.xn2, p.w1, &mut dxn2, g.w1, s, d, f);
            let dx_ln2 = layernorm_backward(
                &dxn2,
                &cache.x_mid,
                p.ln2_g,
                &cache.mean2,
                &cache.rstd2,
                g.ln2_g,
                g.ln2_b,
                s,
                d,
            );
            // Residual: dL/dx_mid = dx (skip path) + dx_ln2 (norm path).
            let mut dx_mid = dx;
            add_inplace(&mut dx_mid, &dx_ln2);

            // Attention: x_mid = x_in + (softmax(qkᵀ)·v)·Wo
            let do_ = dx_mid.clone();
            let mut dav = vec![0.0f32; s * d];
            matmul_backward(&do_, &cache.av, p.wo, &mut dav, g.wo, s, d, d);
            // av = att·v
            let mut datt = vec![0.0f32; s * s];
            let mut dv = vec![0.0f32; s * d];
            matmul_backward(&dav, &cache.att, &cache.v, &mut datt, &mut dv, s, s, d);
            let mut dscores = softmax_rows_backward(&datt, &cache.att, s, s);
            scale(&mut dscores, rsqrt_d);
            // scores = q·kᵀ: dq = dscores·k ; dk = dscoresᵀ·q
            let dq = matmul(&dscores, &cache.k, s, s, d);
            let dk = matmul_tn(&dscores, &cache.q, s, s, d);
            // q = xn1·Wq etc.
            let mut dxn1 = vec![0.0f32; s * d];
            matmul_backward(&dq, &cache.xn1, p.wq, &mut dxn1, g.wq, s, d, d);
            matmul_backward(&dk, &cache.xn1, p.wk, &mut dxn1, g.wk, s, d, d);
            matmul_backward(&dv, &cache.xn1, p.wv, &mut dxn1, g.wv, s, d, d);
            let dx_ln1 = layernorm_backward(
                &dxn1,
                &cache.x_in,
                p.ln1_g,
                &cache.mean1,
                &cache.rstd1,
                g.ln1_g,
                g.ln1_b,
                s,
                d,
            );
            dx = dx_mid;
            add_inplace(&mut dx, &dx_ln1);
        }

        // Embeddings.
        {
            let gemb = &mut grads[0];
            let (gtok, gpos) = gemb.split_at_mut(v * d);
            for (t, &tok) in input.iter().enumerate() {
                for j in 0..d {
                    gtok[tok * d + j] += dx[t * d + j];
                    gpos[t * d + j] += dx[t * d + j];
                }
            }
        }

        (loss, Some(grads))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micro_config() -> GptConfig {
        GptConfig {
            vocab: 5,
            seq_len: 4,
            d_model: 8,
            d_ffn: 12,
            layers: 1,
        }
    }

    #[test]
    fn group_sizes_consistent() {
        let c = GptConfig::tiny();
        let sizes = c.group_sizes();
        assert_eq!(sizes.len(), c.num_groups());
        assert_eq!(sizes[0], c.vocab * c.d_model + c.seq_len * c.d_model);
        assert_eq!(sizes[c.layers + 1], 2 * c.d_model + c.d_model * c.vocab);
        assert_eq!(c.total_params(), sizes.iter().sum::<usize>());
    }

    #[test]
    fn init_is_deterministic_and_ln_aware() {
        let m = TinyGpt::new(micro_config());
        let a = m.init_params(5);
        let b = m.init_params(5);
        assert_eq!(a, b);
        // LayerNorm gains are 1.0, biases 0.0.
        let d = m.config.d_model;
        assert!(a[1][..d].iter().all(|&x| x == 1.0));
        assert!(a[1][d..2 * d].iter().all(|&x| x == 0.0));
        let head = &a[m.config.layers + 1];
        assert!(head[..d].iter().all(|&x| x == 1.0));
        assert!(head[d..2 * d].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn loss_is_finite_and_near_uniform_at_init() {
        let m = TinyGpt::new(micro_config());
        let p = m.init_params(1);
        let loss = m.loss(&p, &[0, 1, 2, 3], &[1, 2, 3, 4]);
        assert!(loss.is_finite());
        // Random init ⇒ roughly uniform prediction: loss ≈ ln(5) = 1.609.
        assert!((loss - 5.0f32.ln()).abs() < 0.3, "loss = {loss}");
    }

    #[test]
    fn full_model_gradient_check() {
        // The load-bearing test: backprop through embeddings, attention
        // (with causal softmax), FFN, norms and the head matches finite
        // differences at sampled coordinates of every group.
        let m = TinyGpt::new(micro_config());
        let mut params = m.init_params(3);
        let input = [0usize, 2, 1, 4];
        let target = [2usize, 1, 4, 0];
        let (_, grads) = m.forward_backward(&params, &input, &target);
        let eps = 2e-3f32;
        for gi in 0..params.len() {
            let n = params[gi].len();
            // Sample a spread of coordinates per group.
            for &idx in &[0usize, n / 7, n / 3, n / 2, n - 1] {
                let orig = params[gi][idx];
                params[gi][idx] = orig + eps;
                let lp = m.loss(&params, &input, &target);
                params[gi][idx] = orig - eps;
                let lm = m.loss(&params, &input, &target);
                params[gi][idx] = orig;
                let num = (lp - lm) / (2.0 * eps);
                let ana = grads[gi][idx];
                assert!(
                    (num - ana).abs() <= 2e-2 * (1.0 + num.abs().max(ana.abs())),
                    "group {gi} idx {idx}: numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn causality_future_tokens_do_not_affect_past_logits() {
        let m = TinyGpt::new(micro_config());
        let p = m.init_params(9);
        // Two inputs differing only in the last token: the loss contribution
        // of earlier positions must be identical. Compare via per-position
        // probability of the same targets at position 0.
        let a = [0usize, 1, 2, 3];
        let b = [0usize, 1, 2, 0];
        // Use a length-1 effective check: loss over the first position only
        // (targets beyond position 0 differ in effect, so instead check that
        // gradients w.r.t. the last token's embedding are zero for earlier
        // positions — simpler: perturb last input token and compare loss of
        // a target sequence that only scores position 0..2).
        let t = [1usize, 2, 3, 0];
        let la = m.loss(&p, &a[..3], &t[..3]);
        let lb = m.loss(&p, &b[..3], &t[..3]);
        assert_eq!(la, lb); // first three tokens identical ⇒ identical loss
    }

    #[test]
    fn training_reduces_loss() {
        // A few plain-SGD steps on one batch must overfit it.
        let m = TinyGpt::new(micro_config());
        let mut params = m.init_params(7);
        let input = [0usize, 2, 1, 4];
        let target = [2usize, 1, 4, 0];
        let initial = m.loss(&params, &input, &target);
        for _ in 0..60 {
            let (_, grads) = m.forward_backward(&params, &input, &target);
            for (p, g) in params.iter_mut().zip(&grads) {
                for (pi, gi) in p.iter_mut().zip(g) {
                    *pi -= 0.5 * gi;
                }
            }
        }
        let trained = m.loss(&params, &input, &target);
        assert!(
            trained < initial * 0.5,
            "loss must drop: {initial} → {trained}"
        );
    }

    #[test]
    fn shorter_sequences_accepted() {
        let m = TinyGpt::new(micro_config());
        let p = m.init_params(1);
        let loss = m.loss(&p, &[1, 2], &[2, 3]);
        assert!(loss.is_finite());
    }
}
