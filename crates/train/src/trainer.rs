//! Synchronous and lock-free training loops — the Table 6 convergence
//! experiment ("experimental results on the validation loss verify that this
//! mechanism has little impact to the model quality").
//!
//! Both loops share the model ([`crate::TinyGpt`]), optimizer
//! ([`crate::MixedPrecisionAdam`]) and data ([`crate::CharCorpus`]); the only
//! difference is *when* gradients meet parameters:
//!
//! * [`train_sync`] — the baseline: every step applies its gradients before
//!   the next forward (classic synchronous training);
//! * [`train_lockfree`] — the compute loop reads *buffered* parameters and
//!   pushes gradients into Algorithm 2's machinery
//!   ([`angel_core::lockfree::LockFreeTrainer`]), with a [`MemoryStore`]
//!   throttled to an SSD-like bandwidth so updates genuinely lag behind the
//!   compute loop, producing real staleness.

use crate::adam::{AdamConfig, MixedPrecisionAdam};
use crate::bf16::{bf16_round, bf16_round_slice};
use crate::data::CharCorpus;
use crate::model::{GptConfig, TinyGpt};
use angel_core::lockfree::{ClearPolicy, LayerState, LockFreeTrainer, MemoryStore};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Shared training-run configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    pub model: GptConfig,
    pub adam: AdamConfig,
    pub steps: usize,
    pub seq_len: usize,
    pub seed: u64,
    /// Emulated SSD bandwidth for the lock-free store (bytes/s); `None` =
    /// unthrottled.
    pub ssd_bytes_per_sec: Option<u64>,
    pub clear_policy: ClearPolicy,
    /// Global gradient-norm clip (standard for transformer pre-training);
    /// `None` disables clipping.
    pub grad_clip: Option<f32>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            model: GptConfig::tiny(),
            adam: AdamConfig {
                lr: 3e-3,
                ..Default::default()
            },
            steps: 300,
            seq_len: 32,
            seed: 17,
            ssd_bytes_per_sec: None,
            clear_policy: ClearPolicy::OnUpdateReceipt,
            grad_clip: Some(1.0),
        }
    }
}

/// Scale all gradient groups so the global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
pub fn clip_global_norm(grads: &mut [Vec<f32>], max_norm: f32) -> f32 {
    let norm_sq: f32 = grads.iter().flat_map(|g| g.iter()).map(|x| x * x).sum();
    let norm = norm_sq.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for g in grads.iter_mut() {
            for x in g.iter_mut() {
                *x *= scale;
            }
        }
    }
    norm
}

/// Outcome of one training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    pub final_train_loss: f32,
    pub valid_loss: f32,
    pub initial_valid_loss: f32,
    /// Loss every 20 steps, for curves.
    pub loss_curve: Vec<f32>,
    /// Lock-free only: micro-batches dropped in update windows.
    pub grads_dropped: u64,
    pub grads_pushed: u64,
    pub updates_applied: u64,
}

/// Mean validation loss of `params` over the corpus' validation windows.
pub fn validation_loss(
    model: &TinyGpt,
    params: &[Vec<f32>],
    corpus: &CharCorpus,
    seq_len: usize,
) -> f32 {
    let mut total = 0.0f32;
    let mut n = 0usize;
    for (x, y) in corpus.valid_windows(seq_len) {
        total += model.loss(params, &x, &y);
        n += 1;
    }
    total / n.max(1) as f32
}

/// Synchronous baseline: gradient step before the next forward, with the
/// mixed-precision dance of Figure 1 (FP32 master, BF16 compute copies).
pub fn train_sync(config: &TrainConfig, corpus: &CharCorpus) -> TrainReport {
    let model = TinyGpt::new(config.model);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut states: Vec<LayerState> = model
        .init_params(config.seed)
        .into_iter()
        .map(LayerState::new)
        .collect();
    let mut adam = MixedPrecisionAdam::new(config.adam, states.len());
    let mut curve = Vec::new();
    let initial_valid = {
        let p: Vec<Vec<f32>> = states.iter().map(|s| s.p32.clone()).collect();
        validation_loss(&model, &p, corpus, config.seq_len)
    };
    let mut last_loss = 0.0;
    for step in 0..config.steps {
        // BF16 compute copies of the FP32 masters.
        let mut p16: Vec<Vec<f32>> = states.iter().map(|s| s.p32.clone()).collect();
        for g in &mut p16 {
            bf16_round_slice(g);
        }
        let (x, y) = corpus.sample(config.seq_len, &mut rng);
        let (loss, mut grads) = model.forward_backward(&p16, &x, &y);
        if let Some(max_norm) = config.grad_clip {
            clip_global_norm(&mut grads, max_norm);
        }
        for g in &mut grads {
            bf16_round_slice(g);
        }
        for (l, (state, grad)) in states.iter_mut().zip(&grads).enumerate() {
            adam.step(l, state, grad, 1);
        }
        last_loss = loss;
        if step % 20 == 0 {
            curve.push(loss);
        }
    }
    let p: Vec<Vec<f32>> = states.iter().map(|s| s.p32.clone()).collect();
    TrainReport {
        final_train_loss: last_loss,
        valid_loss: validation_loss(&model, &p, corpus, config.seq_len),
        initial_valid_loss: initial_valid,
        loss_curve: curve,
        grads_dropped: 0,
        grads_pushed: config.steps as u64,
        updates_applied: config.steps as u64,
    }
}

/// Lock-free training: the compute loop never waits for updates.
pub fn train_lockfree(config: &TrainConfig, corpus: &CharCorpus) -> TrainReport {
    let model = TinyGpt::new(config.model);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let initial = model.init_params(config.seed);
    let n_groups = initial.len();
    let initial_valid = validation_loss(&model, &initial, corpus, config.seq_len);

    let store_states: Vec<LayerState> = initial.iter().cloned().map(LayerState::new).collect();
    let store = match config.ssd_bytes_per_sec {
        Some(bw) => MemoryStore::throttled(store_states, bw),
        None => MemoryStore::new(store_states),
    };
    let adam = MixedPrecisionAdam::new(config.adam, n_groups);
    let trainer = LockFreeTrainer::spawn(
        initial,
        Box::new(store),
        Box::new(adam),
        bf16_round,
        config.clear_policy,
    );

    let mut curve = Vec::new();
    let mut last_loss = 0.0;
    for step in 0..config.steps {
        // Line 20 of Algorithm 2: fetch buffered (possibly stale) params.
        let params: Vec<Vec<f32>> = (0..n_groups).map(|l| trainer.read_params(l).0).collect();
        let (x, y) = corpus.sample(config.seq_len, &mut rng);
        let (loss, mut grads) = model.forward_backward(&params, &x, &y);
        if let Some(max_norm) = config.grad_clip {
            clip_global_norm(&mut grads, max_norm);
        }
        // Line 24: offload BF16 gradients, reverse layer order as backward
        // produces them.
        for (l, g) in grads.iter_mut().enumerate().rev() {
            bf16_round_slice(g);
            trainer.push_grads(l, std::mem::take(g));
        }
        last_loss = loss;
        if step % 20 == 0 {
            curve.push(loss);
        }
    }
    // Let the updating thread settle, then read the final masters.
    trainer.wait_quiescent();
    let stats = trainer.stats();
    // The harness trainer runs on an in-memory store whose I/O never
    // errors; shutdown only fails on store I/O.
    #[allow(clippy::disallowed_methods)]
    let states = trainer
        .shutdown(n_groups)
        .expect("in-memory store cannot fail");
    let p: Vec<Vec<f32>> = states.into_iter().map(|s| s.p32).collect();
    TrainReport {
        final_train_loss: last_loss,
        valid_loss: validation_loss(&model, &p, corpus, config.seq_len),
        initial_valid_loss: initial_valid,
        loss_curve: curve,
        grads_dropped: stats.grads_dropped,
        grads_pushed: stats.grads_pushed,
        updates_applied: stats.updates_applied,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(steps: usize) -> TrainConfig {
        TrainConfig {
            model: GptConfig {
                vocab: 12,
                seq_len: 24,
                d_model: 24,
                d_ffn: 48,
                layers: 2,
            },
            steps,
            seq_len: 24,
            ..Default::default()
        }
    }

    fn corpus() -> CharCorpus {
        CharCorpus::generate(12, 30_000, 99)
    }

    #[test]
    fn sync_training_learns() {
        let cfg = quick_config(250);
        let report = train_sync(&cfg, &corpus());
        assert!(
            report.valid_loss < report.initial_valid_loss * 0.8,
            "sync: {} → {}",
            report.initial_valid_loss,
            report.valid_loss
        );
        assert!(!report.loss_curve.is_empty());
    }

    #[test]
    fn lockfree_training_learns() {
        let cfg = quick_config(250);
        let report = train_lockfree(&cfg, &corpus());
        assert!(
            report.valid_loss < report.initial_valid_loss * 0.85,
            "lockfree: {} → {}",
            report.initial_valid_loss,
            report.valid_loss
        );
        assert_eq!(report.grads_pushed, 250 * cfg.model.num_groups() as u64);
        assert!(report.updates_applied > 0);
    }

    #[test]
    fn lockfree_matches_sync_quality() {
        // The Table 6 claim at small scale: sync 0.853 vs lock-free 0.861 —
        // within ~1%. We allow 10% at this tiny scale/step count.
        let cfg = quick_config(300);
        let c = corpus();
        let sync = train_sync(&cfg, &c);
        let lf = train_lockfree(&cfg, &c);
        let rel = (lf.valid_loss - sync.valid_loss).abs() / sync.valid_loss;
        assert!(
            rel < 0.10,
            "lock-free quality must track sync: sync={} lockfree={} rel={rel}",
            sync.valid_loss,
            lf.valid_loss
        );
    }

    #[test]
    fn throttled_store_induces_staleness_but_still_learns() {
        let mut cfg = quick_config(200);
        // ~1 MB/s: update rounds visibly lag the compute loop.
        cfg.ssd_bytes_per_sec = Some(1_000_000);
        let report = train_lockfree(&cfg, &corpus());
        // Accumulation happened: far fewer updates than pushes.
        assert!(report.updates_applied < report.grads_pushed);
        assert!(report.valid_loss < report.initial_valid_loss);
    }

    #[test]
    fn deterministic_sync_runs() {
        let cfg = quick_config(50);
        let c = corpus();
        let a = train_sync(&cfg, &c);
        let b = train_sync(&cfg, &c);
        assert_eq!(a.valid_loss, b.valid_loss);
        assert_eq!(a.loss_curve, b.loss_curve);
    }
}
